"""Tests for the experiment-execution engine (repro.eval.engine).

Covers the contract the drivers rely on: serial and parallel executors
produce identical records in request order, the compile cache is
content-addressed (same key -> same Binary object; new seed -> new
layout), identical run requests execute once per session, builder
callables materialize once, and JSONL records round-trip.
"""

import pytest

from repro.core.config import R2CConfig
from repro.eval.engine import (
    CompileCache,
    ExperimentEngine,
    RunRecord,
    RunRequest,
    read_records,
    write_records,
)
from repro.eval.harness import measure_config, measure_overhead
from repro.toolchain.builder import IRBuilder
from repro.workloads.programs import add_leaf_workers


def small_module(name="engine-test", calls=24):
    """A small call-heavy module: cheap to run, sensitive to diversification."""
    ir = IRBuilder(name)
    leaves = add_leaf_workers(ir, "w", 2, work=3)
    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    ivar = fb.counted_loop(calls, "body", "done")
    i = fb.load_local(ivar)
    result = fb.call(leaves[0], [fb.add(i, 1)])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    fb.loop_backedge(ivar, "body")
    fb.new_block("done")
    fb.out(fb.band(fb.load_local("acc"), 0xFFFF_FFFF))
    fb.ret(0)
    return ir.finish()


def request_set(module, seeds=(1, 2, 3)):
    """Protected cells per seed plus one baseline cell."""
    requests = [
        RunRequest(
            module=module,
            config=R2CConfig.full(seed=seed),
            load_seed=seed,
            label=f"full/{seed}",
        )
        for seed in seeds
    ]
    requests.append(
        RunRequest(
            module=module,
            config=R2CConfig.baseline(seed=seeds[0]),
            load_seed=seeds[0],
            label="baseline",
        )
    )
    return requests


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

def test_serial_and_parallel_records_identical():
    """The parallel executor is an implementation detail: for a fixed seed
    set it must produce byte-identical records, in request order."""
    module = small_module()
    requests = request_set(module)
    with ExperimentEngine(jobs=1) as serial, ExperimentEngine(jobs=2) as parallel:
        serial_records = serial.submit(requests)
        parallel_records = parallel.submit(requests)
    assert [r.canonical_json() for r in serial_records] == [
        r.canonical_json() for r in parallel_records
    ]
    assert [r.label for r in serial_records] == ["full/1", "full/2", "full/3", "baseline"]


def test_parallel_groups_share_compiles():
    """Duplicate load seeds against one binary compile once per batch even
    under the process-pool executor (cells grouped by compile key)."""
    module = small_module()
    config = R2CConfig.full(seed=5)
    requests = [
        RunRequest(module=module, config=config, load_seed=seed) for seed in (1, 2, 3)
    ]
    with ExperimentEngine(jobs=2) as engine:
        records = engine.submit(requests)
    assert sum(1 for r in records if not r.cache_hit) == 1
    assert sum(1 for r in records if r.cache_hit) == 2
    # One binary, three ASLR layouts; the computation is load-invariant.
    assert [r.load_seed for r in records] == [1, 2, 3]
    assert len({(r.exit_code, r.output) for r in records}) == 1


# ---------------------------------------------------------------------------
# Compile cache
# ---------------------------------------------------------------------------

def test_compile_cache_returns_same_binary_for_identical_key():
    cache = CompileCache()
    module = small_module()
    config = R2CConfig.full(seed=7)
    first, _, hit_first = cache.get_or_compile(module, config)
    second, _, hit_second = cache.get_or_compile(module, config)
    assert second is first
    assert (hit_first, hit_second) == (False, True)
    assert cache.compile_counts[(module.fingerprint(), config.digest())] == 1
    # A structurally identical module is the same content address.
    clone = small_module()
    third, _, hit_third = cache.get_or_compile(clone, config)
    assert third is first and hit_third


def test_compile_cache_seed_changes_layout():
    cache = CompileCache()
    module = small_module()
    a, _, _ = cache.get_or_compile(module, R2CConfig.full(seed=1))
    b, _, _ = cache.get_or_compile(module, R2CConfig.full(seed=2))
    assert a is not b
    # Differently seeded diversification: different text layout.
    assert a.symbols_text != b.symbols_text or a.eh_frame_rows() != b.eh_frame_rows()


def test_binary_carries_cache_identity():
    module = small_module()
    config = R2CConfig.full(seed=3)
    binary, _, _ = CompileCache().get_or_compile(module, config)
    assert binary.module_fingerprint == module.fingerprint()
    assert binary.config_digest == config.digest()


def test_module_fingerprint_is_content_addressed():
    assert small_module().fingerprint() == small_module().fingerprint()
    assert small_module().fingerprint() != small_module(calls=25).fingerprint()
    assert R2CConfig.full(seed=1).digest() != R2CConfig.full(seed=2).digest()


# ---------------------------------------------------------------------------
# Run-level dedup + harness integration (the measure_* satellites)
# ---------------------------------------------------------------------------

def test_identical_requests_execute_once():
    module = small_module()
    request = RunRequest(module=module, config=R2CConfig.full(seed=1), load_seed=1)
    with ExperimentEngine() as engine:
        first, second = engine.submit([request, request])
        third = engine.run(request)
    assert first is second is third
    summary = engine.summary()
    assert summary.executed == 1
    assert summary.requested == 3
    assert summary.run_cache_hits == 2


def test_measure_overhead_compiles_and_runs_baseline_once():
    """The Section 6.2 loop at seed recompiled/re-ran the baseline for
    every protected config; with the engine it happens exactly once per
    (module, machine)."""
    module = small_module()
    baseline_config = R2CConfig.baseline().replace(seed=1)
    with ExperimentEngine() as engine:
        for config in (R2CConfig.full(), R2CConfig.btdp_only(), R2CConfig.layout_only()):
            ratio = measure_overhead(module, config, seeds=(1, 2), engine=engine)
            assert ratio > 0
        assert engine.compile_count(module, baseline_config) == 1
        baseline_records = [
            r for r in engine.records if r.config_digest == baseline_config.digest()
        ]
        assert len(baseline_records) == 1


def test_measure_config_materializes_builder_once():
    invocations = []

    def builder():
        invocations.append(1)
        return small_module()

    with ExperimentEngine() as engine:
        measure_config(builder, R2CConfig.full(), seeds=(1, 2, 3), engine=engine)
    assert len(invocations) == 1


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

def test_run_records_roundtrip_jsonl(tmp_path):
    module = small_module()
    with ExperimentEngine() as engine:
        records = engine.submit(request_set(module, seeds=(1, 2)))
        path = tmp_path / "records.jsonl"
        assert engine.write_records(str(path)) == len(records)
    loaded = read_records(str(path))
    assert loaded == records
    assert all(isinstance(r.output, tuple) for r in loaded)
    # Appending accumulates.
    write_records(records[:1], str(path))
    assert len(read_records(str(path))) == len(records) + 1


def test_record_canonical_excludes_environment_fields():
    module = small_module()
    with ExperimentEngine() as engine:
        record = engine.run(
            RunRequest(module=module, config=R2CConfig.full(seed=1), load_seed=1)
        )
    canonical = record.canonical()
    for field_name in ("compile_seconds", "run_seconds", "cache_hit", "worker"):
        assert field_name not in canonical
    assert canonical["cycles"] == record.cycles
    assert RunRecord.from_json(record.to_json()) == record


def test_decomposition_requests_carry_tag_cycles():
    module = small_module()
    with ExperimentEngine() as engine:
        plain = engine.run(
            RunRequest(module=module, config=R2CConfig.full(seed=1), load_seed=1)
        )
        tagged = engine.run(
            RunRequest(
                module=module,
                config=R2CConfig.full(seed=1),
                load_seed=1,
                attribute_tags=True,
            )
        )
    assert plain.tag_cycles is None
    assert tagged.tag_cycles and all(v >= 0 for v in tagged.tag_cycles.values())
    # Attribution is observability only — the run itself is unchanged.
    assert tagged.cycles == plain.cycles


def test_from_json_ignores_unknown_keys():
    """Forward compatibility: JSONL written by a newer schema (extra
    fields) must load, not raise, and round-trip what this build knows."""
    module = small_module()
    with ExperimentEngine() as engine:
        record = engine.run(
            RunRequest(module=module, config=R2CConfig.full(seed=1), load_seed=1)
        )
    import json

    data = json.loads(record.to_json())
    data["future_field"] = {"nested": True}
    data["another_new_counter"] = 7
    loaded = RunRecord.from_json(json.dumps(data))
    assert loaded == record
    assert RunRecord.from_json(loaded.to_json()) == loaded


def test_set_session_engine_closes_replaced_engine():
    """Replacing the session engine must not leak the old worker pool."""
    from repro.eval.engine import get_session_engine, set_session_engine

    original = get_session_engine()
    first = ExperimentEngine(jobs=2)
    second = ExperimentEngine(jobs=2)
    try:
        set_session_engine(first)
        # Force the pool into existence, then replace the engine.
        first.submit(request_set(small_module(), seeds=(1, 2)))
        assert first._pool is not None
        set_session_engine(second)
        assert first._pool is None  # closed by the replacement
        # Re-setting the same engine must not close it.
        set_session_engine(second)
    finally:
        set_session_engine(original)
        first.close()
        second.close()


def test_engine_summary_counts():
    module = small_module()
    with ExperimentEngine() as engine:
        engine.submit(request_set(module, seeds=(1, 2)))
        engine.submit(request_set(module, seeds=(1, 2)))  # all run-cache hits
        summary = engine.summary()
    assert summary.executed == 3
    assert summary.requested == 6
    assert summary.run_cache_hits == 3
    assert summary.batches == 2
    assert summary.compiles == 3
    assert summary.distinct_binaries == 3
    assert sum(summary.worker_runs.values()) == summary.executed
