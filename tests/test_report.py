"""Backfill tests for the text renderers in :mod:`repro.eval.report`.

Renderers are the last unchecked surface between experiment data and the
console: each test builds the real dataclasses the renderer consumes and
pins the load-bearing parts of the output (headers, rows, verdict
lines) without chaining a full experiment run.
"""

from repro.analysis.entropy import EntropyAudit
from repro.analysis.findings import Finding
from repro.analysis.lint import LintReport, LintTargetResult
from repro.eval.engine import EngineSummary, FailureSummary
from repro.eval.report import (
    render_bench,
    render_engine_summary,
    render_lint,
    render_table1,
)
from repro.obs.bench import BenchCell, BenchReport


def test_render_table1_rows():
    text = render_table1(
        {
            "BTRA": {"max": 1.08, "geomean": 1.03},
            "Full": {"max": 1.21, "geomean": 1.09},
        }
    )
    assert "Component overheads" in text
    assert "BTRA" in text and "1.08" in text and "1.09" in text


def test_render_lint_clean_corpus():
    audit = EntropyAudit(
        seeds=[1, 2],
        gadget_counts=[10, 11],
        pairwise_survival=[(1, 2, 0.05)],
        layout_entropy_bits=1.0,
        max_layout_entropy_bits=1.0,
        regalloc_divergence=0.4,
    )
    report = LintReport(
        corpus="spec",
        config_name="full",
        seeds=[1, 2],
        targets=[LintTargetResult(name="xz", seeds=[1, 2], audit=audit)],
    )
    text = render_lint(report)
    assert "corpus=spec config=full" in text
    assert "xz" in text and "0.0500" in text
    assert "0 findings" in text


def test_render_lint_lists_findings():
    finding = Finding(rule="LINT001", where="xz/seed1", message="workload faulted")
    report = LintReport(
        corpus="spec",
        config_name="full",
        seeds=[1],
        targets=[
            LintTargetResult(name="xz", seeds=[1], findings=[finding], audit=None)
        ],
    )
    text = render_lint(report)
    assert "1 finding(s):" in text
    assert "[LINT001] xz/seed1: workload faulted" in text
    # No audit: the table falls back to placeholder columns.
    assert "-" in text


def test_render_engine_summary_with_failures():
    failures = FailureSummary(
        failures=2,
        by_outcome={"fault": 1, "timeout": 1},
        by_class={"GuardPageFault": 1},
        by_rule={"FLT001": 1},
        pool_rebuilds=1,
        quarantined=1,
    )
    summary = EngineSummary(
        jobs=2,
        batches=3,
        requested=10,
        executed=8,
        run_cache_hits=2,
        compile_cache_hits=4,
        compiles=6,
        distinct_binaries=6,
        compile_seconds=1.25,
        run_seconds=3.5,
        worker_runs={0: 4, 1: 4},
        backend="fast",
        failures=failures,
    )
    text = render_engine_summary(summary)
    assert "8 runs executed" in text and "backend=fast" in text
    assert "compile 1.25s" in text and "run 3.50s" in text
    assert "workers (2): 0:4, 1:4" in text
    assert "failures: 2 (fault:1, timeout:1)" in text
    assert "injected by rule: FLT001:1" in text
    assert "1 pool rebuilds" in text and "1 quarantined" in text


def _bench_report():
    return BenchReport(
        backend="fast",
        machine="epyc-rome",
        quick=True,
        jobs=1,
        cells=[
            BenchCell(
                workload="xz",
                config="baseline",
                outcome="ok",
                cycles=100_000.0,
                instructions=90_000,
                icache_hits=89_000,
                icache_misses=1_000,
                max_rss=4096,
                compile_seconds=0.01,
                run_seconds=0.2,
            ),
            BenchCell(
                workload="xz",
                config="full-avx",
                outcome="ok",
                cycles=110_000.0,
                instructions=95_000,
                icache_hits=93_000,
                icache_misses=2_000,
                max_rss=8192,
                compile_seconds=0.02,
                run_seconds=0.25,
            ),
            BenchCell(
                workload="mcf",
                config="full-avx",
                outcome="error",
                cycles=0.0,
                instructions=0,
                icache_hits=0,
                icache_misses=0,
                max_rss=0,
                compile_seconds=0.0,
                run_seconds=0.0,
            ),
        ],
        engine={
            "executed": 3,
            "compiles": 3,
            "compile_seconds": 0.03,
            "run_seconds": 0.45,
            "failures": 1,
        },
    )


def test_render_bench_overhead_column():
    text = render_bench(_bench_report())
    assert "Bench: backend=fast machine=epyc-rome quick=True jobs=1" in text
    lines = {line.split()[0:2][0] + "/" + line.split()[1]: line
             for line in text.splitlines() if line.startswith(("xz", "mcf"))}
    # Baseline and failed cells render no overhead ratio.
    assert " - " in lines["xz/baseline"]
    assert "+10.0%" in lines["xz/full-avx"]
    assert " - " in lines["mcf/full-avx"] and "error" in lines["mcf/full-avx"]
    assert "engine: 3 runs, 3 compiles" in text and "failures 1" in text


def test_render_bench_miss_rate():
    text = render_bench(_bench_report())
    # 1k misses over 90k accesses and 2k over 95k.
    assert "1.11%" in text and "2.11%" in text
