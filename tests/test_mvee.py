"""Tests for the MVEE combination (Section 7.3).

The claim under test: because R2C diversifies along multiple dimensions,
running two differently-diversified variants under input replication turns
even *silently successful* attacks into detectable divergence.
"""

import pytest

from repro.attacks.outcomes import AttackOutcome
from repro.attacks.rop import make_rop_hook
from repro.attacks.aocr import make_aocr_hook
from repro.core.config import R2CConfig
from repro.defenses.mvee import MVEE, MveeOutcome, mvee_attack_outcome


def test_mvee_requires_two_variants():
    with pytest.raises(ValueError):
        MVEE(R2CConfig.baseline(), variants=1)


def test_benign_runs_agree():
    """Diversified variants are observationally equivalent, so the
    cross-check is quiet in normal operation — the MVEE's false-positive
    story depends on exactly this."""
    mvee = MVEE(R2CConfig.full(), variants=3, build_seed=10)
    result = mvee.run()
    assert result.outcome is MveeOutcome.CLEAN
    outputs = {run.output for run in result.variants}
    assert len(outputs) == 1
    assert all(run.status == "exit" for run in result.variants)


def test_variants_are_actually_different_binaries():
    mvee = MVEE(R2CConfig.full(), variants=2, build_seed=10)
    a, b = mvee.binaries
    assert a.symbols_text != b.symbols_text


def test_mvee_detects_rop_that_baseline_misses():
    """Against a single undiversified victim the ROP attack succeeds
    silently.  Under an MVEE of two *baseline* variants it still wins
    (identical layouts -> identical corruption), but with R2C variants the
    same replicated writes diverge."""
    identical = MVEE(R2CConfig.baseline(), variants=2, build_seed=0)
    # Baseline "variants" are bit-identical: the attack compromises both.
    result = identical.run(make_rop_hook(), attacker_seed=1)
    assert result.outcome is MveeOutcome.COMPROMISED
    assert mvee_attack_outcome(result) is AttackOutcome.SUCCESS

    diversified = MVEE(R2CConfig.full(), variants=2, build_seed=0)
    result = diversified.run(make_rop_hook(), attacker_seed=1)
    assert result.outcome is not MveeOutcome.COMPROMISED


def test_mvee_turns_aocr_into_detection():
    detections = 0
    for trial in range(4):
        mvee = MVEE(R2CConfig.full(), variants=2, build_seed=50 + trial)
        result = mvee.run(make_aocr_hook(), attacker_seed=trial)
        assert result.outcome is not MveeOutcome.COMPROMISED
        if result.detected:
            detections += 1
    assert detections >= 2


def test_mvee_detects_even_against_weak_diversity():
    """The complementarity claim: even a *partially* diversified build
    (code shuffling only, which AOCR beats one-on-one) becomes resistant
    under an MVEE, because the data writes that succeed in the leader
    corrupt different bytes in the follower."""
    code_only = R2CConfig(
        enable_function_shuffle=True,
        enable_global_shuffle=True,
        enable_stack_slot_shuffle=True,
    )
    compromised = 0
    for trial in range(4):
        mvee = MVEE(code_only, variants=2, build_seed=80 + trial)
        result = mvee.run(make_aocr_hook(), attacker_seed=trial)
        if result.outcome is MveeOutcome.COMPROMISED:
            compromised += 1
    assert compromised <= 1


def test_mvee_result_bookkeeping():
    mvee = MVEE(R2CConfig.full(), variants=2, build_seed=5)
    result = mvee.run(make_rop_hook(), attacker_seed=2)
    assert len(result.variants) == 2
    assert mvee_attack_outcome(result) in (
        AttackOutcome.DETECTED,
        AttackOutcome.DIVERGED,
        AttackOutcome.FAILED,
    )
    if result.outcome is MveeOutcome.DIVERGED:
        # Lockstep divergence carries its CrashReport-style evidence.
        assert result.divergence is not None
        assert 1 <= result.divergence.variant < 2
        assert result.divergence.sync_point >= 1


def test_mvee_alloc_sequences_agree_on_benign_runs():
    """The identical-allocation-sequence invariant that makes by-address
    write replay sound: every diversified variant issues the same malloc
    request sizes in the same order (asserted each sync point by the
    lockstep group; observed here over a clean run)."""
    from repro.defenses.lockstep import LockstepGroup
    from repro.machine.loader import load_binary

    mvee = MVEE(R2CConfig.full(), variants=3, build_seed=10)
    processes = []
    for binary in mvee.binaries:
        process = load_binary(binary, seed=mvee.load_seed)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        processes.append(process)
    group = LockstepGroup(processes, compare_state=False)
    result = group.run()
    assert result.outcome is MveeOutcome.CLEAN
    logs = [variant.alloc_log for variant in group.variants]
    assert logs[0], "victim workload allocates; the invariant must be exercised"
    assert logs[0] == logs[1] == logs[2]
