"""Tests for N-variant batched lockstep execution (`repro.defenses.lockstep`).

The detection contract under test: a seeded corruption in one follower of
a replica group must surface as ``DIVERGED`` with the *correct variant
index* and a usable sync point — across multiple fault seeds and both
execution backends (the divergence report is backend-invariant because
execution is).
"""

import json

import pytest

from repro.attacks.outcomes import AttackOutcome
from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.defenses.lockstep import (
    DivergenceReport,
    LockstepGroup,
    MveeOutcome,
    run_bitflip_lockstep,
)
from repro.defenses.mvee import MveeResult, mvee_attack_outcome
from repro.machine.loader import load_binary
from repro.workloads.victim import build_victim

from tests.test_backends import BACKENDS

#: Fault seeds whose 96 data-region bitflips perturb victim execution.
#: Pinned empirically (a flip in an unused data word is — correctly —
#: invisible to the cross-check); each diverges identically on both
#: backends, covering both register- and status-kind reports.
DIVERGING_SEEDS = (3, 5, 11)


def _replica_group(count=3, *, backend="reference", sync_every=64, requests=3):
    binary = compile_module(build_victim(requests=requests), R2CConfig.baseline())
    processes = []
    for _ in range(count):
        process = load_binary(binary, seed=0x1C0C, execute_only=False)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        processes.append(process)
    return LockstepGroup(processes, backend=backend, sync_every=sync_every)


def test_lockstep_requires_two_variants():
    with pytest.raises(ValueError):
        _replica_group(count=1)


def test_benign_replicas_stay_clean():
    for backend in BACKENDS:
        group = _replica_group(backend=backend)
        assert group.compare_state  # same binary + layout arms replica mode
        result = group.run()
        assert result.outcome is MveeOutcome.CLEAN
        assert result.divergence is None
        assert result.sync_points > 1
        outputs = {tuple(variant.output) for variant in result.variants}
        assert len(outputs) == 1
        assert all(variant.status == "exit" for variant in result.variants)


@pytest.mark.parametrize("fault_seed", DIVERGING_SEEDS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_follower_bitflip_diverges_with_attribution(fault_seed, backend):
    """Seeded corruption in follower v1 yields DIVERGED naming variant 1
    and the sync point that caught it."""
    result = run_bitflip_lockstep(
        fault_seed=fault_seed, flips=96, backend=backend, corrupt_variant=1
    )
    assert result.outcome is MveeOutcome.DIVERGED
    report = result.divergence
    assert report is not None
    assert report.variant == 1
    assert report.sync_point >= 1
    assert report.kind in ("register", "rip", "output", "status", "alloc", "exit")
    if report.kind == "register":
        assert report.expected != report.observed


def test_divergence_report_is_backend_invariant():
    """Both backends catch the same corruption at the same sync point
    with the same first mismatching observable."""
    reports = {}
    for backend in BACKENDS:
        result = run_bitflip_lockstep(fault_seed=5, flips=96, backend=backend)
        report = result.divergence
        reports[backend] = (
            report.variant,
            report.sync_point,
            report.kind,
            report.field,
            repr(report.expected),
            repr(report.observed),
        )
    assert reports["reference"] == reports["fast"]


def test_divergence_report_serializes():
    result = run_bitflip_lockstep(fault_seed=11, flips=96)
    report = result.divergence
    data = json.loads(report.to_json())
    assert data["schema"] == "repro-divergence/v1"
    assert data["variant"] == 1
    assert data["sync_point"] == report.sync_point
    assert f"v{report.variant}" in report.summary_line()
    assert f"@sync{report.sync_point}" in report.summary_line()


def test_corrupting_variant_zero_is_rejected():
    """The leader is the cross-check baseline; the demo only corrupts
    followers so the reported index is unambiguous."""
    with pytest.raises(ValueError):
        run_bitflip_lockstep(corrupt_variant=0)


def test_alloc_sequence_mismatch_is_divergence():
    """The identical-allocation-ordering invariant is asserted, not
    assumed: a variant whose malloc request stream drifts from the
    leader's is reported as an ``alloc`` divergence at the next sync."""
    group = _replica_group()
    # Phase the leader ahead, then inject allocator drift into v2's log —
    # the observable a hijacked or OOM-rearmed allocator would produce.
    group.run_variant_until(0, lambda variant: len(variant.alloc_log) >= 2)
    group.variants[2].alloc_log.append(0xBAD)
    result = group.run()
    assert result.outcome is MveeOutcome.DIVERGED
    assert result.divergence.kind == "alloc"
    assert result.divergence.variant == 2


def test_divergence_increments_monitor_and_maps_to_attack_outcome():
    result = run_bitflip_lockstep(fault_seed=3, flips=96)
    assert result.outcome is MveeOutcome.DIVERGED
    mvee_view = MveeResult(outcome=result.outcome, divergence=result.divergence)
    assert mvee_attack_outcome(mvee_view) is AttackOutcome.DIVERGED
    assert AttackOutcome.DIVERGED.value == "diverged"


def test_merged_counters_attribute_per_variant():
    """The group's merged perf view sums scalars and namespaces tag
    buckets per variant."""
    group = _replica_group(count=2)
    group.run()
    merged = group.perf_counters()
    per_variant = [variant.result.instructions for variant in group.variants]
    assert merged.instructions == sum(per_variant)
    assert merged.instructions > 0
