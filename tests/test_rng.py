"""Tests for the deterministic diversification RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.rng import DiversityRng


def test_same_seed_same_stream():
    a = DiversityRng(42)
    b = DiversityRng(42)
    assert [a.randint(0, 1000) for _ in range(20)] == [
        b.randint(0, 1000) for _ in range(20)
    ]


def test_different_seeds_differ():
    a = [DiversityRng(1).randint(0, 10**9) for _ in range(5)]
    b = [DiversityRng(2).randint(0, 10**9) for _ in range(5)]
    assert a != b


def test_child_streams_are_independent_of_consumption():
    a = DiversityRng(7)
    a.randint(0, 100)  # consume some state
    child_after = a.child("btra")
    child_fresh = DiversityRng(7).child("btra")
    assert [child_after.randint(0, 10**6) for _ in range(10)] == [
        child_fresh.randint(0, 10**6) for _ in range(10)
    ]


def test_child_labels_distinguish_streams():
    rng = DiversityRng(7)
    a = rng.child("alpha").randint(0, 10**9)
    b = rng.child("beta").randint(0, 10**9)
    assert a != b


def test_shuffled_leaves_input_untouched():
    rng = DiversityRng(3)
    original = list(range(50))
    copy = list(original)
    shuffled = rng.shuffled(original)
    assert original == copy
    assert sorted(shuffled) == original


def test_shuffle_in_place_returns_same_list():
    rng = DiversityRng(3)
    items = list(range(10))
    out = rng.shuffle(items)
    assert out is items


def test_sample_has_no_duplicates():
    rng = DiversityRng(5)
    picked = rng.sample(list(range(100)), 30)
    assert len(set(picked)) == 30


@given(st.integers(min_value=0, max_value=2**62), st.text(min_size=1, max_size=20))
def test_child_derivation_is_stable(seed, label):
    a = DiversityRng(seed).child(label)
    b = DiversityRng(seed).child(label)
    assert a.randint(0, 2**32) == b.randint(0, 2**32)


@given(st.integers(min_value=0, max_value=2**30))
def test_randint_respects_bounds(seed):
    rng = DiversityRng(seed)
    for _ in range(20):
        value = rng.randint(3, 9)
        assert 3 <= value <= 9


def test_bool_probability_extremes():
    rng = DiversityRng(1)
    assert all(rng.bool(1.0) for _ in range(20))
    assert not any(rng.bool(0.0) for _ in range(20))
