"""Tests for the linker: layout, symbols, relocations, eh_frame metadata."""

import pytest

from repro.core.config import R2CConfig
from repro.core.pass_manager import build_plan
from repro.errors import LinkError
from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import GlobalVar
from repro.toolchain.linker import link_module
from repro.toolchain.plan import ModulePlan


def two_function_module():
    ir = IRBuilder()
    f = ir.function("helper", params=["x"])
    f.ret(f.add(f.param("x"), 1))
    m = ir.function("main")
    m.out(m.call("helper", [1]))
    m.ret(0)
    ir.global_var("gv", init=(9,))
    return ir.finish()


def test_start_is_first_and_symbols_present():
    binary = link_module(two_function_module())
    assert binary.symbols_text["_start"] == 0
    assert "main" in binary.symbols_text
    assert "helper" in binary.symbols_text
    assert "gv" in binary.symbols_data


def test_function_ranges_are_disjoint_and_cover_text():
    binary = link_module(two_function_module())
    ranges = sorted(binary.function_range(n) for n in binary.function_names())
    for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
        assert e1 <= s2
    assert ranges[0][0] == 0
    assert ranges[-1][1] == binary.text_size


def test_function_at_offset():
    binary = link_module(two_function_module())
    start, end = binary.function_range("main")
    assert binary.function_at_offset(start) == "main"
    assert binary.function_at_offset(end - 1) == "main"
    assert binary.function_at_offset(binary.text_size + 100) is None


def test_plan_function_order_is_respected():
    module = two_function_module()
    plan = ModulePlan(function_order=["main", "helper"])
    binary = link_module(module, plan)
    assert binary.symbols_text["main"] < binary.symbols_text["helper"]
    plan2 = ModulePlan(function_order=["helper", "main"])
    binary2 = link_module(module, plan2)
    assert binary2.symbols_text["helper"] < binary2.symbols_text["main"]


def test_data_relocs_for_function_pointers():
    ir = IRBuilder()
    f = ir.function("f", params=["x"])
    f.ret(f.param("x"))
    ir.global_var("fp", init=(("f", 0),))
    m = ir.function("main")
    m.ret(0)
    binary = link_module(ir.finish())
    reloc_symbols = [sym for _, sym, _ in binary.data_relocs]
    assert "f" in reloc_symbols


def test_got_created_only_when_needed():
    binary = link_module(two_function_module())
    assert "__got__" not in binary.symbols_data

    ir = IRBuilder()
    f = ir.function("f", params=["x"])
    f.ret(f.param("x"))
    m = ir.function("main")
    fp = m.func_addr("f")
    m.out(m.icall(fp, [1]))
    m.ret(0)
    binary2 = link_module(ir.finish())
    assert "__got__" in binary2.symbols_data


def test_eh_frame_rows_sorted_and_anonymous():
    module = two_function_module()
    plan, _ = build_plan(module, R2CConfig.full(seed=5))
    binary = link_module(module, plan)
    rows = binary.eh_frame_rows()
    starts = [row[0] for row in rows]
    assert starts == sorted(starts)
    # Rows are plain tuples with no names in them.
    assert all(len(row) == 4 for row in rows)


def test_callsite_records_point_into_caller():
    binary = link_module(two_function_module())
    for offset, record in binary.callsite_records.items():
        start, end = binary.function_range(record.caller)
        assert start <= offset < end


def test_undefined_symbol_in_global_init_rejected():
    ir = IRBuilder()
    m = ir.function("main")
    m.ret(0)
    module = ir.finish()
    module.globals.append(GlobalVar("bad", init=(("ghost_symbol", 0),)))
    with pytest.raises(LinkError, match="ghost_symbol"):
        link_module(module)


def test_duplicate_symbol_across_sections_rejected():
    ir = IRBuilder()
    m = ir.function("main")
    m.ret(0)
    module = ir.finish()
    module.globals.append(GlobalVar("main"))
    with pytest.raises(LinkError):
        link_module(module)


def test_same_seed_reproducible_binary():
    module = two_function_module()
    config = R2CConfig.full(seed=77)
    plan_a, _ = build_plan(module, config)
    import copy

    module_b = two_function_module()
    plan_b, _ = build_plan(module_b, config)
    binary_a = link_module(module, plan_a)
    binary_b = link_module(module_b, plan_b)
    assert binary_a.symbols_text == binary_b.symbols_text
    assert binary_a.data_image == binary_b.data_image


def test_different_seed_different_layout():
    module_a = two_function_module()
    plan_a, _ = build_plan(module_a, R2CConfig.full(seed=1))
    module_b = two_function_module()
    plan_b, _ = build_plan(module_b, R2CConfig.full(seed=2))
    binary_a = link_module(module_a, plan_a)
    binary_b = link_module(module_b, plan_b)
    assert binary_a.symbols_text != binary_b.symbols_text
