"""Tests for the paged virtual memory: permissions, guard pages, residency."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GuardPageFault, MemoryFault
from repro.machine.memory import Memory, PAGE_SIZE, Perm, page_base, page_range


BASE = 0x10000


def make_memory(perm=Perm.RW, pages=4):
    memory = Memory()
    memory.map_region(BASE, pages * PAGE_SIZE, perm)
    return memory


def test_read_write_roundtrip():
    memory = make_memory()
    memory.write(BASE + 100, b"hello world")
    assert memory.read(BASE + 100, 11) == b"hello world"


def test_word_roundtrip_and_wrapping():
    memory = make_memory()
    memory.write_word(BASE, 2**64 - 1)
    assert memory.read_word(BASE) == 2**64 - 1
    memory.write_word(BASE, -1)
    assert memory.read_word(BASE) == 2**64 - 1


def test_cross_page_access():
    memory = make_memory()
    addr = BASE + PAGE_SIZE - 4
    memory.write(addr, b"12345678")
    assert memory.read(addr, 8) == b"12345678"


def test_unmapped_read_faults():
    memory = make_memory()
    with pytest.raises(MemoryFault) as info:
        memory.read(BASE - PAGE_SIZE, 8)
    assert info.value.reason == "unmapped"


def test_write_to_readonly_faults():
    memory = make_memory(Perm.R)
    assert memory.read(BASE, 8) == bytes(8)
    with pytest.raises(MemoryFault):
        memory.write(BASE, b"x")


def test_execute_only_is_unreadable_but_fetchable():
    memory = make_memory(Perm.X)
    memory.fetch_check(BASE, 4)  # must not raise
    with pytest.raises(MemoryFault):
        memory.read(BASE, 1)
    with pytest.raises(MemoryFault):
        memory.write(BASE, b"x")


def test_fetch_from_non_executable_faults():
    memory = make_memory(Perm.RW)
    with pytest.raises(MemoryFault) as info:
        memory.fetch_check(BASE)
    assert info.value.kind == "fetch"


def test_guard_page_raises_guard_fault():
    memory = make_memory()
    memory.write_word(BASE + PAGE_SIZE, 7)  # touch before protecting
    memory.protect(BASE + PAGE_SIZE, PAGE_SIZE, Perm.NONE, guard=True)
    with pytest.raises(GuardPageFault):
        memory.read(BASE + PAGE_SIZE + 8, 8)
    with pytest.raises(GuardPageFault):
        memory.write(BASE + PAGE_SIZE, b"y")
    # Neighbouring pages still work.
    memory.write_word(BASE, 1)
    assert memory.read_word(BASE) == 1


def test_guard_fault_is_a_memory_fault_subclass():
    assert issubclass(GuardPageFault, MemoryFault)


def test_protect_unmapped_fails():
    memory = make_memory()
    with pytest.raises(MemoryFault):
        memory.protect(BASE + 100 * PAGE_SIZE, PAGE_SIZE, Perm.NONE)


def test_double_map_rejected():
    memory = make_memory()
    with pytest.raises(MemoryFault):
        memory.map_region(BASE, PAGE_SIZE, Perm.RW)


def test_raw_access_bypasses_permissions():
    memory = make_memory(Perm.NONE)
    memory.store_word_raw(BASE, 123)
    assert memory.load_word_raw(BASE) == 123
    with pytest.raises(MemoryFault):
        memory.read_word(BASE)


def test_resident_counts_touched_pages_only():
    memory = make_memory(pages=8)
    assert memory.resident_bytes() == 0
    memory.write_word(BASE, 1)
    assert memory.resident_bytes() == PAGE_SIZE
    memory.write_word(BASE + 3 * PAGE_SIZE, 1)
    assert memory.resident_bytes() == 2 * PAGE_SIZE
    memory.read(BASE, 8)  # already touched
    assert memory.resident_bytes() == 2 * PAGE_SIZE


def test_page_range_enumeration():
    assert list(page_range(0, 1)) == [0]
    assert list(page_range(PAGE_SIZE - 1, 2)) == [0, PAGE_SIZE]
    assert list(page_range(0, 0)) == []
    assert page_base(PAGE_SIZE + 5) == PAGE_SIZE


def test_perm_and_guard_queries():
    memory = make_memory()
    assert memory.is_mapped(BASE)
    assert not memory.is_mapped(BASE - 1)
    assert memory.perm_at(BASE) == Perm.RW
    assert memory.perm_at(BASE - PAGE_SIZE) is None
    memory.protect(BASE, PAGE_SIZE, Perm.NONE, guard=True)
    assert memory.is_guard(BASE + 10)
    assert not memory.is_guard(BASE + PAGE_SIZE)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4 * PAGE_SIZE - 9),
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_last_write_wins(writes):
    """Any sequence of in-bounds writes reads back exactly."""
    memory = make_memory()
    shadow = bytearray(4 * PAGE_SIZE)
    for offset, data in writes:
        data = data[: 4 * PAGE_SIZE - offset]
        memory.write(BASE + offset, data)
        shadow[offset : offset + len(data)] = data
    assert memory.read(BASE, 4 * PAGE_SIZE) == bytes(shadow)
