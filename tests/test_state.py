"""Property tests for :class:`MachineState` snapshot/restore.

The program/state split makes architectural state a first-class value:
``clone()`` captures it, ``restore()`` rewinds to it, and execution
resumed from a snapshot must be **byte-identical** to never having
stopped — same registers, same flags, same rip, same i-cache counters,
and the same accumulated :class:`ExecutionResult` (float ``cycles``
included, because each step slice folds onto the accumulated value in
the original order).

The generated programs are register-only and straight-line (plus a final
``EXIT``): process memory is deliberately *shared* between a state and
its clones (a snapshot is architectural, not a full core dump), so
memory-writing suffixes would legitimately re-apply their stores on
replay.  Register/flag state is exactly what the snapshot contract
covers, and what these properties pin down on both backends.
"""

from __future__ import annotations

import copy

from hypothesis import given, settings, strategies as st

from repro.machine.backends import get_backend
from repro.machine.costs import get_costs
from repro.machine.cpu import ExecutionResult
from repro.machine.isa import Imm, Instruction, Op, Reg
from repro.machine.state import MachineState

from tests.test_backends import BACKENDS, assemble

I = Instruction

#: Registers the generated programs may touch (caller-saved scratch).
_SCRATCH = (Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.R8, Reg.R9)
#: Register-to-register / register-immediate ALU ops (no memory, no
#: control flow): their only effects are registers and the compare flag.
_ALU = (Op.MOV, Op.ADD, Op.SUB, Op.IMUL, Op.AND, Op.OR, Op.XOR)


@st.composite
def straightline_programs(draw):
    """A register-only straight-line program and a split point inside it."""
    count = draw(st.integers(min_value=1, max_value=24))
    instrs = []
    for _ in range(count):
        op = draw(st.sampled_from(_ALU + (Op.CMP,)))
        dst = draw(st.sampled_from(_SCRATCH))
        if draw(st.booleans()):
            src = Imm(draw(st.integers(min_value=-(2**16), max_value=2**16)))
        else:
            src = draw(st.sampled_from(_SCRATCH))
        instrs.append(I(op, dst, src))
    instrs.append(I(Op.EXIT, Imm(draw(st.integers(min_value=0, max_value=3)))))
    # Split strictly inside the run so both the prefix and the suffix are
    # non-trivial replays.
    split = draw(st.integers(min_value=1, max_value=len(instrs) - 1))
    return instrs, split


def _fresh(instrs, backend_name):
    process, _ = assemble(list(instrs))
    state = MachineState(process, get_costs("epyc-rome"))
    state.rip = process.entry_point
    state._halted = False
    backend = get_backend(backend_name)
    return backend, backend.prepare(state), state


@given(straightline_programs())
@settings(max_examples=40, deadline=None)
def test_resume_from_snapshot_is_byte_identical(case):
    instrs, split = case
    for backend_name in BACKENDS:
        # Uninterrupted run.
        backend, program, plain = _fresh(instrs, backend_name)
        plain_result = ExecutionResult()
        backend.execute(program, plain, plain_result)

        # Interrupted run: step to the split, snapshot, finish.
        backend, program, state = _fresh(instrs, backend_name)
        result = ExecutionResult()
        backend.step(program, state, result, split)
        snapshot = state.clone()
        result_at_split = copy.deepcopy(result)
        backend.step(program, state, result, 10**9)
        assert state.state_equal(plain), backend_name
        assert result == plain_result, backend_name

        # Rewind to the snapshot and resume: byte-identical again.
        state.restore(snapshot)
        resumed = copy.deepcopy(result_at_split)
        backend.step(program, state, resumed, 10**9)
        assert state.state_equal(plain), backend_name
        assert resumed == plain_result, backend_name

        # The snapshot survived both replays untouched.
        assert snapshot.rip != plain.rip or split == len(instrs) - 1
        assert not snapshot._halted


@given(straightline_programs())
@settings(max_examples=25, deadline=None)
def test_clone_isolates_architectural_state(case):
    """Running the original to completion never mutates a clone taken
    mid-flight (lists and i-cache are deep enough copies)."""
    instrs, split = case
    backend, program, state = _fresh(instrs, "fast")
    result = ExecutionResult()
    backend.step(program, state, result, split)
    snapshot = state.clone()
    before = (
        list(snapshot.regs),
        list(snapshot.vregs),
        snapshot.rip,
        snapshot._cmp,
        snapshot.icache.hits,
        snapshot.icache.misses,
    )
    backend.step(program, state, result, 10**9)
    after = (
        list(snapshot.regs),
        list(snapshot.vregs),
        snapshot.rip,
        snapshot._cmp,
        snapshot.icache.hits,
        snapshot.icache.misses,
    )
    assert before == after


def test_restore_supports_repeated_rewinds():
    """One snapshot can seed any number of replays (state_equal after
    each), e.g. for record/replay debugging over a lockstep divergence."""
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(1)),
        I(Op.ADD, Reg.RAX, Reg.RAX),
        I(Op.IMUL, Reg.RAX, Imm(7)),
        I(Op.EXIT, Imm(0)),
    ]
    backend, program, state = _fresh(instrs, "reference")
    result = ExecutionResult()
    backend.step(program, state, result, 2)
    snapshot = state.clone()
    finals = []
    for _ in range(3):
        state.restore(snapshot)
        replay = ExecutionResult()
        backend.step(program, state, replay, 10**9)
        finals.append((list(state.regs), state.rip, state._exit_code))
    assert finals[0] == finals[1] == finals[2]
    assert finals[0][0][Reg.RAX] == 14
