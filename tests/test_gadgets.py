"""The static gadget dataflow miner (ISSUE 8).

Census correctness (straight-line windows, JOP counted separately),
semantic summaries pinned against hand-computed effects and — via the
hypothesis property — against concrete single-step execution on the
reference backend, equality-by-effect, cross-variant invariant search,
the satellite guarantee that semantic survival is >= the historical
offset+text metric on identical variants, chain synthesis, and the
repro-gadgets/v1 artifact schema.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.entropy import audit_binaries
from repro.analysis.gadgets import (
    EmitOutput,
    GADGET_WINDOW,
    RegLoadThenCall,
    _STOPPERS,
    concrete_check,
    executable,
    find_invariants,
    mine,
    mine_data_pointers,
    selfcheck,
    semantic_survival,
    summarize,
    synthesize,
    take_census,
    validate,
)
from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.workloads.victim import ATTACK_ARG, SUCCESS_TAG, build_victim


@pytest.fixture(scope="module")
def victim_binary():
    return compile_module(build_victim(), R2CConfig.baseline().replace(seed=0, verify=False))


@pytest.fixture(scope="module")
def victim_census(victim_binary):
    return take_census(victim_binary)


# ---- census ---------------------------------------------------------------


def test_census_counts_rop_and_jop_separately(victim_census):
    counts = victim_census.counts
    assert counts["ret"] > 0
    # The victim's indirect handler dispatch contributes call-terminated
    # JOP gadgets, censused under their own kind.
    assert counts["jop-call"] > 0
    assert sum(counts.values()) == len(victim_census.records)
    for record in victim_census.records:
        assert record.kind == record.summary.terminator


def test_census_suffixes_are_straight_line(victim_binary, victim_census):
    """No censused suffix crosses a control transfer or a text gap."""
    by_offset = dict(victim_binary.text)
    for record in victim_census.records:
        offset = record.offset
        for position in range(record.length):
            instr = by_offset[offset]
            if position < record.length - 1:
                assert instr.op not in _STOPPERS, record.text
            offset += instr.size
        assert record.length <= GADGET_WINDOW


# ---- semantic summaries ---------------------------------------------------


def test_summary_of_epilogue_loader():
    # The toolchain's epilogue shape: slot restore + stack release + ret.
    summary = summarize(
        [
            Instruction(Op.MOV, Reg.R11, Mem(base=Reg.RSP, offset=0x10)),
            Instruction(Op.ADD, Reg.RSP, Imm(0x38)),
            Instruction(Op.RET),
        ]
    )
    assert summary.terminator == "ret"
    assert summary.pure
    assert summary.stack_delta == 0x40  # 0x38 release + the RIP pop
    assert summary.ret_slot == 0x38
    assert ("r11", ("sld", 0x10, 0)) in summary.reg_effects
    assert summary.loads == (("stack", 0x10),)


def test_summary_push_pop_mirror_reference_rsp_semantics():
    pop = summarize([Instruction(Op.POP, Reg.RBX), Instruction(Op.RET)])
    assert pop.ret_slot == 8 and pop.stack_delta == 16
    assert ("rbx", ("sld", 0, 0)) in pop.reg_effects

    push = summarize([Instruction(Op.PUSH, Reg.RAX), Instruction(Op.RET)])
    # push rax; ret returns into the pushed value: the "ret slot" is the
    # word the gadget itself wrote below entry rsp.
    assert push.ret_slot == -8 and push.stack_delta == 0
    assert (("stack", -8), ("ireg", int(Reg.RAX), 0)) in push.stores


def test_summary_folds_flags_through_setcc():
    summary = summarize(
        [
            Instruction(Op.MOV, Reg.RAX, Imm(7)),
            Instruction(Op.CMP, Reg.RAX, Imm(7)),
            Instruction(Op.SETE, Reg.RBX),
            Instruction(Op.RET),
        ]
    )
    assert ("rbx", ("const", 1)) in summary.reg_effects
    assert summary.writes_flags and summary.reads_flags


def test_equal_by_effect_not_by_text():
    """`pop rbx; ret` and `mov rbx,[rsp]; add rsp,$8; ret` are the same
    gadget to a semantic miner — the equivalence textual matching misses."""
    pop_form = summarize([Instruction(Op.POP, Reg.RBX), Instruction(Op.RET)])
    mov_form = summarize(
        [
            Instruction(Op.MOV, Reg.RBX, Mem(base=Reg.RSP)),
            Instruction(Op.ADD, Reg.RSP, Imm(8)),
            Instruction(Op.RET),
        ]
    )
    assert pop_form.semantic_key() == mov_form.semantic_key()
    # ...and a different slot is a different effect.
    other = summarize(
        [
            Instruction(Op.MOV, Reg.RBX, Mem(base=Reg.RSP, offset=8)),
            Instruction(Op.ADD, Reg.RSP, Imm(8)),
            Instruction(Op.RET),
        ]
    )
    assert other.semantic_key() != pop_form.semantic_key()


def test_jop_summary_carries_the_transfer_target():
    summary = summarize(
        [
            Instruction(Op.MOV, Reg.RAX, Mem(base=Reg.RSP, offset=8)),
            Instruction(Op.CALL, Reg.RAX),
        ]
    )
    assert summary.terminator == "jop-call"
    assert summary.target == ("sld", 8, 0)
    assert "dispatch" in summary.capabilities()


# ---- the hypothesis property: summaries match concrete execution ----------


@settings(max_examples=40, deadline=None)
@given(pick=st.integers(min_value=0, max_value=10_000), rng_seed=st.integers(0, 2**16))
def test_summaries_match_concrete_execution(victim_binary, victim_census, pick, rng_seed):
    """Every statically executable summary must predict the reference
    backend exactly: final rsp, the loaded rip, register effects, and
    emitted output words, from randomized entry state."""
    records = [record for record in victim_census.records if executable(record)]
    assert records
    record = records[pick % len(records)]
    assert concrete_check(victim_binary, record, rng_seed=rng_seed) is None


def test_selfcheck_is_clean_on_the_victim(victim_binary, victim_census):
    checked, report = selfcheck(victim_binary, victim_census)
    assert checked > 0
    assert report.ok, report.render()


# ---- invariant search and the entropy satellite ---------------------------


def _variants(config, seeds):
    module = build_victim()
    return [
        compile_module(module, config.replace(seed=seed, verify=False)) for seed in seeds
    ]


def test_identical_variants_survive_fully_and_semantic_is_geq_text():
    """Satellite: on identical variants the position-independent semantic
    metric must be >= the historical offset+text metric (both 1.0)."""
    binaries = _variants(R2CConfig.baseline(), [0, 1])
    audit = audit_binaries(binaries, [0, 1])
    assert audit.max_survival == 1.0
    assert audit.mean_semantic_survival >= audit.mean_survival
    assert audit.mean_semantic_survival == 1.0
    assert audit.semantic_class_counts[0] == audit.semantic_class_counts[1]


def test_diversification_kills_pinned_but_not_all_semantic_classes():
    binaries = _variants(R2CConfig.full(seed=1), [1, 2, 3])
    censuses = [take_census(binary) for binary in binaries]
    invariants = find_invariants(censuses, [1, 2, 3])
    # Full R2C relocates everything: nothing survives position-pinned...
    assert not invariants.pinned
    # ...but semantically equivalent gadgets survive *somewhere* — the
    # attack surface the offset+text metric undercounts.
    assert invariants.independent
    pinned = semantic_survival(censuses[0], censuses[1], position_independent=False)
    independent = semantic_survival(censuses[0], censuses[1], position_independent=True)
    assert independent > pinned


def test_entropy_audit_reports_semantic_survival_under_full_r2c():
    binaries = _variants(R2CConfig.full(seed=1), [1, 2])
    audit = audit_binaries(binaries, [1, 2])
    assert audit.max_survival == 0.0
    assert 0.0 < audit.mean_semantic_survival < 1.0
    assert "semantic survival" in audit.render()


# ---- chain synthesis ------------------------------------------------------


def test_synthesizer_solves_emit_output_on_the_victim(victim_census):
    chain = synthesize(victim_census, EmitOutput(SUCCESS_TAG | ATTACK_ARG))
    assert chain is not None
    # Layout invariants: one launch word plus every gadget's full frame.
    assert len(chain.words) == 1 + sum(
        record.summary.stack_delta // 8 for record in chain.gadgets
    )
    value_words = [value for kind, value in chain.words if kind == "imm"]
    assert (SUCCESS_TAG | ATTACK_ARG) in value_words
    # Materialization relocates exactly the text words.
    base = 0x7000_0000
    resolved = chain.materialize(base)
    for (kind, value), word in zip(chain.words, resolved):
        assert word == (base + value if kind == "text" else value) & 0xFFFFFFFFFFFFFFFF


def test_synthesizer_chain_transfers_only_to_identical_variants(victim_census):
    chain = synthesize(victim_census, EmitOutput(SUCCESS_TAG | ATTACK_ARG))
    assert chain.transfers_to(victim_census)
    diversified = take_census(
        compile_module(build_victim(), R2CConfig.full(seed=5).replace(verify=False))
    )
    assert not chain.transfers_to(diversified)


def test_synthesizer_reg_load_then_call(victim_census):
    chain = synthesize(victim_census, RegLoadThenCall(None, 0x5CA7, 0x40))
    assert chain is not None
    assert chain.words[-1] == ("text", 0x40) or ("text", 0x40) in chain.words


# ---- mined data-pointer map -----------------------------------------------


def test_mine_data_pointers_recovers_the_dispatch_topology(victim_binary):
    data_map = mine_data_pointers(victim_binary)
    symbols = victim_binary.symbols_data
    assert data_map.handler_slot == symbols["handler_ptr"]
    assert data_map.param_slot == symbols["default_param"]
    assert [symbol for _, symbol in data_map.dormant_slots] == ["target_exec"]
    # Anchors are exactly the data symbols materialized in text.
    assert symbols["config_blob"] in data_map.anchor_offsets


# ---- the repro-gadgets/v1 artifact ----------------------------------------


def test_mine_artifact_validates_and_reports_selfcheck():
    report = mine(
        build_victim(),
        R2CConfig.full(seed=1),
        [1, 2],
        workload="victim",
        config_name="full",
        check_sample=8,
    )
    payload = json.loads(report.to_json())
    assert validate(payload) == []
    assert payload["schema"] == "repro-gadgets/v1"
    assert payload["selfcheck"]["mismatches"] == 0
    assert payload["ok"] is True
    goals = {row["goal"] for row in payload["synthesis"]}
    assert goals == {"emit-output", "reg-load-then-call", "write-what-where", "stack-pivot"}


def test_validate_rejects_malformed_artifacts():
    assert validate({"schema": "nope"})
    report = mine(
        build_victim(), R2CConfig.baseline(), [0, 1], workload="victim", config_name="baseline"
    )
    payload = json.loads(report.to_json())
    del payload["survival"]["semantic_independent"]
    assert any("semantic_independent" in p for p in validate(payload))
    broken = json.loads(report.to_json())
    broken["variants"][0]["total"] += 1
    assert any("total" in p for p in validate(broken))
