"""Tests for the reliability layer: deterministic fault injection and the
failure-tolerant engine (repro.reliability.faults + repro.eval.engine).

The contract under test: an injected fault never escapes as an exception —
it becomes a structured failure record with the right ``outcome`` and rule
attribution, the batch always comes back full and request-ordered, and
deterministic fault outcomes are byte-identical across execution backends.
"""

import pickle

import pytest

from repro.core.config import R2CConfig
from repro.eval.engine import (
    CACHEABLE_OUTCOMES,
    ExperimentEngine,
    RunRecord,
    RunRequest,
)
from repro.eval.report import render_engine_summary
from repro.reliability.faults import FAULT_KINDS, FaultPlan, FaultRule
from repro.workloads.victim import build_victim


def victim_requests(plan_labels, *, load_seed=11):
    """One request per label; distinct load seeds keep distinct labels from
    aliasing in the run-level dedup (labels are not part of the run key)."""
    module = build_victim(heap_churn=2)
    config = R2CConfig.baseline()
    return [
        RunRequest(module=module, config=config, load_seed=load_seed + index, label=label)
        for index, label in enumerate(plan_labels)
    ]


# ---------------------------------------------------------------------------
# FaultPlan / FaultRule
# ---------------------------------------------------------------------------

def test_fault_rule_validation():
    with pytest.raises(ValueError):
        FaultRule("R1", "not-a-kind")
    with pytest.raises(ValueError):
        FaultRule("R1", "bitflip", region="text")  # only data/heap/stack
    with pytest.raises(ValueError):
        FaultPlan(rules=(FaultRule("R1", "bitflip"), FaultRule("R1", "alloc-oom")))


def test_fault_plan_matching_and_signature():
    plan = FaultPlan(
        seed=9,
        rules=(
            FaultRule("FLIP", "bitflip", match="inject/*"),
            FaultRule("OOM", "alloc-oom", match="inject/oom"),
        ),
    )
    assert [r.rule_id for r in plan.rules_for("inject/oom")] == ["FLIP", "OOM"]
    assert plan.rule_of_kind("inject/x", "bitflip").rule_id == "FLIP"
    assert plan.rule_of_kind("clean", "bitflip") is None
    assert plan.injection_signature("clean") is None
    assert plan.injection_signature("inject/oom") == (9, ("FLIP", "OOM"))


def test_fault_plan_pickles():
    """Plans ride into pool workers; they must survive pickling."""
    plan = FaultPlan(
        seed=3, rules=tuple(FaultRule(f"R{i}", kind) for i, kind in enumerate(FAULT_KINDS))
    )
    assert pickle.loads(pickle.dumps(plan)) == plan


# ---------------------------------------------------------------------------
# Serial injection: every kind becomes the right structured outcome
# ---------------------------------------------------------------------------

def serial_plan():
    return FaultPlan(
        seed=5,
        rules=(
            FaultRule("FLIP", "bitflip", match="inject/flip", count=8),
            FaultRule("OOM", "alloc-oom", match="inject/oom", after_allocs=2),
            FaultRule("CE", "compile-error", match="inject/compile"),
            FaultRule("CRASH", "worker-crash", match="inject/crash"),
            FaultRule("HANG", "worker-hang", match="inject/hang", hang_seconds=30.0),
        ),
    )


def test_serial_injection_outcomes():
    labels = [
        "clean",
        "inject/flip",
        "inject/oom",
        "inject/compile",
        "inject/crash",
        "inject/hang",
    ]
    with ExperimentEngine(jobs=1, fault_plan=serial_plan()) as engine:
        records = engine.submit(victim_requests(labels))
    by_label = {r.label: r for r in records}
    assert [r.label for r in records] == labels
    assert by_label["clean"].outcome == "ok" and by_label["clean"].failure is None
    # A bitflip may land in padding (ok) or corrupt live state (fault);
    # either way it stays a record, not an exception.
    assert by_label["inject/flip"].outcome in ("ok", "fault")
    assert by_label["inject/oom"].outcome == "fault"
    assert by_label["inject/oom"].failure["class"] == "AllocatorError"
    assert by_label["inject/oom"].failure["rule"] == "OOM"
    assert by_label["inject/compile"].outcome == "error"
    assert by_label["inject/compile"].failure["rule"] == "CE"
    # Serial mode records worker kills/hangs instead of honouring them.
    assert by_label["inject/crash"].outcome == "error"
    assert by_label["inject/crash"].failure["rule"] == "CRASH"
    assert by_label["inject/hang"].outcome == "timeout"
    assert by_label["inject/hang"].failure["rule"] == "HANG"


def test_injection_signature_prevents_cache_aliasing():
    """A clean cell and an injected cell for the same (module, config,
    seed) must not serve each other from the run cache."""
    plan = FaultPlan(rules=(FaultRule("OOM", "alloc-oom", match="inject/*"),))
    with ExperimentEngine(jobs=1, fault_plan=plan) as engine:
        clean, injected = engine.submit(victim_requests(["clean", "inject/oom"]))
        assert clean.outcome == "ok"
        assert injected.outcome == "fault"
        # Cacheable outcomes are served from the run cache on resubmit.
        again = engine.submit(victim_requests(["clean", "inject/oom"]))
        assert again[0] is clean and again[1] is injected
        assert engine.summary().run_cache_hits == 2


def test_bitflip_deterministic_across_engines_and_backends():
    """The flip site is a pure function of (plan seed, rule, load seed), so
    the corrupted run is itself deterministic: both backends and fresh
    engines produce byte-identical canonical records."""
    plan = FaultPlan(
        seed=21,
        rules=(FaultRule("FLIP", "bitflip", match="flip/*", count=32, region="data"),),
    )
    canonicals = []
    for backend in ("reference", "fast"):
        for _ in range(2):
            with ExperimentEngine(jobs=1, backend=backend, fault_plan=plan) as engine:
                record = engine.submit(victim_requests(["flip/x"]))[0]
            canonicals.append(record.canonical_json())
    assert len(set(canonicals)) == 1


def test_fault_outcomes_identical_across_backends():
    """Differential check: injected OOM faults leave identical canonical
    records (outcome, failure detail, partial counters) on both backends."""
    plan = FaultPlan(
        rules=(FaultRule("OOM", "alloc-oom", match="inject/oom", after_allocs=4),)
    )
    per_backend = []
    for backend in ("reference", "fast"):
        with ExperimentEngine(jobs=1, backend=backend, fault_plan=plan) as engine:
            record = engine.submit(victim_requests(["inject/oom"]))[0]
        assert record.outcome == "fault"
        per_backend.append(record.canonical())
    assert per_backend[0] == per_backend[1]


# ---------------------------------------------------------------------------
# Parallel failure tolerance
# ---------------------------------------------------------------------------

def test_parallel_crash_quarantined_batch_complete():
    """An injected worker kill must not cost the batch: innocents complete,
    the poison request comes back as a structured error, and the engine
    stays usable."""
    plan = FaultPlan(rules=(FaultRule("CRASH", "worker-crash", match="inject/crash"),))
    labels = ["ok/a", "ok/b", "inject/crash", "ok/c"]
    with ExperimentEngine(jobs=2, fault_plan=plan) as engine:
        records = engine.submit(victim_requests(labels))
        assert [r.label for r in records] == labels
        by_label = {r.label: r for r in records}
        for label in ("ok/a", "ok/b", "ok/c"):
            assert by_label[label].outcome == "ok"
        crash = by_label["inject/crash"]
        assert crash.outcome == "error"
        assert crash.failure["class"] == "worker-crash"
        assert crash.failure["rule"] == "CRASH"
        summary = engine.summary()
        assert summary.failures.pool_rebuilds >= 1
        # The engine survives: a follow-up batch executes normally.
        after = engine.submit(victim_requests(["after/clean"]))
        assert after[0].outcome == "ok"


def test_parallel_hang_times_out_innocents_unaffected():
    plan = FaultPlan(
        rules=(FaultRule("HANG", "worker-hang", match="inject/hang", hang_seconds=60.0),)
    )
    labels = ["ok/a", "inject/hang", "ok/b"]
    with ExperimentEngine(jobs=2, fault_plan=plan, timeout=4.0) as engine:
        records = engine.submit(victim_requests(labels))
    by_label = {r.label: r for r in records}
    assert by_label["ok/a"].outcome == "ok"
    assert by_label["ok/b"].outcome == "ok"
    hang = by_label["inject/hang"]
    assert hang.outcome == "timeout"
    assert hang.failure["class"] == "worker-hang"
    assert hang.failure["rule"] == "HANG"


def test_serial_fallback_after_repeated_breakage():
    """With no rebuild budget, the engine degrades to in-process execution
    and still returns the full batch."""
    plan = FaultPlan(rules=(FaultRule("CRASH", "worker-crash", match="inject/crash"),))
    labels = ["ok/a", "inject/crash", "ok/b"]
    with ExperimentEngine(jobs=2, fault_plan=plan, max_pool_rebuilds=0) as engine:
        records = engine.submit(victim_requests(labels))
        summary = engine.summary()
    assert [r.label for r in records] == labels
    assert summary.failures.serial_fallbacks == 1
    assert all(r.outcome == "ok" for r in records if r.label.startswith("ok/"))
    assert records[1].outcome == "error"


def test_environmental_outcomes_not_cached():
    """timeout/error are environmental: resubmitting the key re-executes."""
    assert CACHEABLE_OUTCOMES == ("ok", "fault")
    plan = FaultPlan(rules=(FaultRule("CE", "compile-error", match="inject/compile"),))
    with ExperimentEngine(jobs=1, fault_plan=plan) as engine:
        first = engine.submit(victim_requests(["inject/compile"]))[0]
        second = engine.submit(victim_requests(["inject/compile"]))[0]
        assert first.outcome == second.outcome == "error"
        assert first is not second
        assert engine.summary().run_cache_hits == 0


# ---------------------------------------------------------------------------
# FailureSummary + rendering
# ---------------------------------------------------------------------------

def test_failure_summary_counts_and_render():
    with ExperimentEngine(jobs=1, fault_plan=serial_plan()) as engine:
        engine.submit(
            victim_requests(["clean", "inject/oom", "inject/compile", "inject/crash"])
        )
        summary = engine.summary()
    failures = summary.failures
    assert not failures.clean
    assert failures.by_outcome["fault"] == 1
    assert failures.by_outcome["error"] == 2
    assert failures.by_rule == {"OOM": 1, "CE": 1, "CRASH": 1}
    rendered = render_engine_summary(summary)
    assert rendered.startswith("Engine:")
    assert "failures:" in rendered
    assert "OOM:1" in rendered


# ---------------------------------------------------------------------------
# Chaos matrix
# ---------------------------------------------------------------------------

def test_chaos_matrix_green_and_serializes():
    from repro.reliability.chaos import EXPECTED_OUTCOMES, run_chaos

    report = run_chaos(jobs=2, backend="reference", seed=0, timeout=5.0)
    assert report.ok, report.violations
    assert {cell.kind for cell in report.cells} == set(EXPECTED_OUTCOMES)
    payload = report.to_json()
    assert '"ok": true' in payload
    assert report.outcomes_by_kind()["worker-hang"] == {"timeout": 2}
