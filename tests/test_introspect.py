"""Tests for the defender-side introspection utilities."""

import pytest

from repro.core.config import R2CConfig
from repro.eval.introspect import (
    HookProbe,
    build_two_site_module,
    observe_call_races,
)
from repro.toolchain.interp import interpret_module


def test_two_site_module_runs():
    module = build_two_site_module()
    exit_code, output = interpret_module(module)
    assert exit_code == 0
    assert len(output) == 1


def test_hook_probe_snapshots_every_invocation():
    probe = HookProbe(R2CConfig.full(seed=2, btra_mode="push")).run()
    assert len(probe.snapshots) == 4  # 3 loop calls + 1 extra site
    for snap in probe.snapshots:
        assert snap.ra_slot > snap.rsp
        assert snap.pre  # BTRAs present under full R2C


def test_hook_probe_baseline_has_no_btras():
    probe = HookProbe(R2CConfig.baseline()).run()
    assert all(not snap.pre and not snap.post for snap in probe.snapshots)


def test_race_observer_sees_all_btra_calls():
    observations = observe_call_races(R2CConfig.full(seed=2, btra_mode="push"))
    assert len(observations) == 4
    # The atomic sequence never changes a visible word across the call.
    assert all(not obs["changed_slots"] for obs in observations)


def test_race_observer_ignores_unprotected_calls():
    observations = observe_call_races(R2CConfig.baseline())
    assert observations == []  # no BTRA call sites to observe
