"""Tests for the IR optimizer: folding, DCE, branch folding — and above
all, semantics preservation under diversification."""

import copy

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import R2CConfig
from repro.toolchain.builder import IRBuilder
from repro.toolchain.interp import interpret_module
from repro.toolchain.opt import optimize_module
from tests.conftest import assert_equivalent
from tests.test_equivalence import generate_random_module


def count_instrs(module):
    return sum(
        len(block.instrs) for fn in module.functions.values() for block in fn.blocks
    )


def test_constant_folding_shrinks_code():
    ir = IRBuilder()
    m = ir.function("main")
    a = m.add(2, 3)
    b = m.mul(a, 4)
    c = m.bxor(b, 1)
    m.out(c)
    m.ret(0)
    module = ir.finish()
    before = count_instrs(module)
    optimize_module(module)
    after = count_instrs(module)
    assert after < before
    assert interpret_module(module) == (0, [21])


def test_folding_preserves_signed_semantics():
    ir = IRBuilder()
    m = ir.function("main")
    m.out(m.div(-7, 2))
    m.out(m.mod(-7, 2))
    m.out(m.shr(m.const(-1), 1))
    m.ret(0)
    module = ir.finish()
    reference = interpret_module(copy.deepcopy(module))
    optimize_module(module)
    assert interpret_module(module) == reference


def test_division_by_constant_zero_not_folded_away():
    ir = IRBuilder()
    m = ir.function("main")
    m.out(m.div(1, 0))
    m.ret(0)
    module = ir.finish()
    optimize_module(module)
    from repro.toolchain.interp import InterpError

    with pytest.raises(InterpError, match="division by zero"):
        interpret_module(module)


def test_dead_code_eliminated():
    ir = IRBuilder()
    m = ir.function("main")
    m.add(1, 2)  # dead
    m.mul(3, 4)  # dead
    m.out(7)
    m.ret(0)
    module = ir.finish()
    optimize_module(module)
    assert count_instrs(module) == 2  # out + ret
    assert interpret_module(module) == (0, [7])


def test_calls_are_never_removed():
    ir = IRBuilder()
    ir.global_var("g")
    f = ir.function("sideeffect", params=["x"])
    f.store_global("g", f.param("x"))
    f.ret(0)
    m = ir.function("main")
    m.call("sideeffect", [9])  # result unused, call must stay
    m.out(m.load_global("g"))
    m.ret(0)
    module = ir.finish()
    optimize_module(module)
    assert interpret_module(module) == (0, [9])


def test_branch_folding_removes_unreachable_block():
    ir = IRBuilder()
    m = ir.function("main")
    cond = m.cmp("lt", 1, 2)  # constant true
    m.cbr(cond, "yes", "no")
    m.new_block("yes")
    m.out(1)
    m.ret(0)
    m.new_block("no")
    m.out(2)
    m.ret(0)
    module = ir.finish()
    optimize_module(module)
    labels = module.functions["main"].block_labels()
    assert "no" not in labels
    assert interpret_module(module) == (0, [1])


def test_entry_block_never_dropped():
    ir = IRBuilder()
    m = ir.function("main")
    m.ret(0)
    module = ir.finish()
    optimize_module(module)
    assert module.functions["main"].blocks


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_seed=st.integers(min_value=0, max_value=10**6))
def test_optimizer_preserves_semantics_on_random_programs(program_seed):
    module = generate_random_module(program_seed)
    reference = interpret_module(copy.deepcopy(module))
    optimize_module(module)
    assert interpret_module(module) == reference


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    config_seed=st.integers(min_value=0, max_value=10**6),
)
def test_optimized_full_r2c_matches_interpreter(program_seed, config_seed):
    """opt_level=1 composed with full diversification stays correct."""
    module = generate_random_module(program_seed)
    config = R2CConfig.full(seed=config_seed).replace(opt_level=1)
    assert_equivalent(module, config)


def test_optimization_is_fair_between_baseline_and_protected():
    """Both sides of an overhead measurement see the same optimizer."""
    from repro.eval.harness import run_module
    from repro.workloads.spec import build_spec_benchmark

    module = build_spec_benchmark("xz")
    o0 = run_module(module, R2CConfig.baseline())
    o1 = run_module(module, R2CConfig.baseline().replace(opt_level=1))
    assert o1.output == o0.output
    assert o1.instructions <= o0.instructions
