"""Tests for the paper's discussed-but-optional extensions that this
reproduction implements: AVX-512 BTRA batches (Section 7.1), load-time
re-randomization (Section 7.3), and the BTRA consistency check (covered
further in test_btra)."""

import pytest

from repro.attacks import AttackOutcome, VictimSession, blindrop_attack, pirop_attack
from repro.core.config import R2CConfig
from repro.eval.harness import measure_config
from repro.machine.isa import Op
from repro.core.compiler import compile_module
from repro.workloads.spec import build_spec_benchmark
from repro.workloads.victim import build_victim
from tests.conftest import assert_equivalent


AVX512_FULL = R2CConfig.full(seed=19).replace(btra_vector_words=8)


def test_avx512_variant_is_semantics_preserving(simple_module):
    assert_equivalent(simple_module, AVX512_FULL)
    assert_equivalent(build_victim(), AVX512_FULL)


def test_avx512_emits_512_bit_ops():
    binary = compile_module(build_victim(), AVX512_FULL)
    ops = {instr.op for _, instr in binary.text}
    assert Op.VSTORE512 in ops and Op.VLOAD512 in ops
    assert Op.VSTORE not in ops


def test_avx512_halves_the_vector_instruction_count():
    avx2 = compile_module(build_victim(), R2CConfig.full(seed=19))
    avx512 = compile_module(build_victim(), AVX512_FULL)
    count2 = sum(1 for _, i in avx2.text if i.op in (Op.VSTORE, Op.VLOAD))
    count512 = sum(1 for _, i in avx512.text if i.op in (Op.VSTORE512, Op.VLOAD512))
    assert count512 < count2
    assert count512 >= count2 / 3  # roughly halved, not magicked away


def test_avx512_reduces_btra_overhead_on_call_dense_code():
    """Section 7.1: same BTRA count, wider batches -> lower impact."""
    source = lambda: build_spec_benchmark("omnetpp")
    base = measure_config(source, R2CConfig.baseline(), seeds=(1,))
    avx2 = measure_config(source, R2CConfig.btra_avx_only(), seeds=(1,))
    avx512 = measure_config(
        source, R2CConfig.btra_avx_only().replace(btra_vector_words=8), seeds=(1,)
    )
    assert avx512 < avx2
    assert avx512 > base


def test_avx512_supports_twice_as_many_btras_for_similar_cost():
    """The other direction of the Section 7.1 trade-off: 20 BTRAs with
    512-bit batches cost about what 10 cost with 256-bit batches."""
    source = lambda: build_spec_benchmark("omnetpp")
    ten_avx2 = measure_config(source, R2CConfig.btra_avx_only(), seeds=(1,))
    twenty_avx512 = measure_config(
        source,
        R2CConfig.btra_avx_only().replace(btra_vector_words=8, btras_per_callsite=20),
        seeds=(1,),
    )
    assert twenty_avx512 <= ten_avx2 * 1.25


def test_bad_vector_width_rejected():
    from repro.errors import ToolchainError

    with pytest.raises(ToolchainError, match="vector width"):
        compile_module(build_victim(), R2CConfig.full(seed=1).replace(btra_vector_words=6))


def test_rerandomization_changes_layout_across_restarts():
    session = VictimSession(R2CConfig.baseline(), rerandomize_on_restart=True)
    p1, _ = session.spawn()
    p2, _ = session.spawn()
    assert p1.symbols["main"] != p2.symbols["main"]


def test_rerandomization_defeats_blindrop_even_on_baseline():
    """Section 7.3: "Both attacks could be prevented by load time
    re-randomization" — with fresh ASLR per restart, the crash side
    channel and the address scan stop transferring between probes."""
    session = VictimSession(
        R2CConfig.baseline(), execute_only=False, rerandomize_on_restart=True
    )
    result = blindrop_attack(session, attacker_seed=3, max_probes=300)
    assert result.outcome is not AttackOutcome.SUCCESS


def test_pirop_is_aslr_immune_but_not_diversity_immune():
    """PIROP's defining property (Goktas et al., Section 7.2.5): it works
    *regardless of ASLR* — even per-restart re-randomization does not stop
    the 16-nibble guess against a monoculture build, because the low bits
    it corrupts are build constants, not load-time randomness.  What does
    stop it is R2C's compile-time entropy (shuffled functions, prolog
    traps, BTRA-displaced return addresses)."""
    rerandomized = VictimSession(
        R2CConfig.baseline(), execute_only=False, rerandomize_on_restart=True
    )
    result = pirop_attack(rerandomized, attacker_seed=3)
    assert result.outcome is AttackOutcome.SUCCESS  # ASLR-immunity

    diversified = VictimSession(R2CConfig.full(seed=23))
    result = pirop_attack(diversified, attacker_seed=3)
    assert result.outcome is not AttackOutcome.SUCCESS
