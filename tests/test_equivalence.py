"""Property-based compiler correctness: any program, any diversification.

The central invariant of DESIGN.md section 6: a diversified binary is
observationally equivalent to the baseline — and both match the reference
interpreter — for *any* seed and any combination of R2C features.  A
hypothesis-driven program generator produces random (but well-defined:
store-before-load, bounded loops, DAG call graphs) modules, and every one
is executed three ways.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.builder import IRBuilder
from repro.toolchain.interp import interpret_module
from tests.conftest import assert_equivalent, run_compiled


def generate_random_module(seed: int) -> object:
    """Deterministically generate a random, well-defined module."""
    rng = DiversityRng(seed).child("proggen")
    ir = IRBuilder(f"rand{seed}")

    n_globals = rng.randint(0, 3)
    for g in range(n_globals):
        ir.global_var(f"g{g}", init=(rng.randint(0, 999),))

    function_names = []
    n_functions = rng.randint(1, 4)
    for index in range(n_functions):
        n_params = rng.choice([0, 1, 1, 2, 2, 3, 7, 8])
        params = [f"p{k}" for k in range(n_params)]
        fb = ir.function(f"fn{index}", params=params)
        values = [fb.const(rng.randint(-50, 50))]
        for p in params:
            values.append(fb.param(p))

        def random_value():
            return rng.choice(values)

        for _ in range(rng.randint(2, 10)):
            kind = rng.randint(0, 6)
            if kind == 0:
                values.append(fb.add(random_value(), random_value()))
            elif kind == 1:
                values.append(fb.mul(random_value(), rng.randint(-9, 9)))
            elif kind == 2:
                values.append(fb.bxor(random_value(), random_value()))
            elif kind == 3:
                divisor = rng.randint(1, 13)
                values.append(fb.div(random_value(), divisor))
            elif kind == 4:
                divisor = rng.randint(1, 13)
                values.append(fb.mod(random_value(), divisor))
            elif kind == 5 and n_globals:
                values.append(fb.load_global(f"g{rng.randint(0, n_globals - 1)}"))
            elif kind == 6 and function_names:
                callee = rng.choice(function_names)
                callee_fn = ir.module.functions[callee]
                args = [random_value() for _ in callee_fn.params]
                values.append(fb.call(callee, args))
            else:
                values.append(fb.sub(random_value(), 1))

        # A conditional, then a bounded loop summing values.
        cond = fb.cmp(rng.choice(["lt", "ge", "eq"]), random_value(), random_value())
        fb.cbr(cond, "then", "else")
        fb.new_block("then")
        then_value = fb.add(random_value(), 1)
        fb.local("result")
        fb.store_local("result", then_value)
        fb.br("join")
        fb.new_block("else")
        fb.store_local("result", random_value())
        fb.br("join")
        fb.new_block("join")
        trip = rng.randint(1, 6)
        ivar = fb.counted_loop(trip, "loop", "after")
        i = fb.load_local(ivar)
        fb.store_local("result", fb.add(fb.load_local("result"), i))
        fb.loop_backedge(ivar, "loop")
        fb.new_block("after")
        fb.ret(fb.band(fb.load_local("result"), 0xFFFF_FFFF))
        function_names.append(fb.fn.name)

    main = ir.function("main")
    for name in function_names:
        fn = ir.module.functions[name]
        args = [rng.randint(-100, 100) for _ in fn.params]
        main.out(main.call(name, args))
    main.ret(0)
    return ir.finish()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    config_seed=st.integers(min_value=0, max_value=10**6),
    mode=st.sampled_from(["push", "avx"]),
)
def test_full_r2c_is_semantics_preserving(program_seed, config_seed, mode):
    module = generate_random_module(program_seed)
    assert_equivalent(module, R2CConfig.full(seed=config_seed, btra_mode=mode))


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program_seed=st.integers(min_value=0, max_value=10**6))
def test_baseline_matches_interpreter(program_seed):
    module = generate_random_module(program_seed)
    assert_equivalent(module, R2CConfig.baseline())


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    config_seed=st.integers(min_value=0, max_value=10**6),
)
def test_ablation_variants_are_semantics_preserving(program_seed, config_seed):
    module = generate_random_module(program_seed)
    base = R2CConfig.full(seed=config_seed, btra_mode="push")
    assert_equivalent(module, base.replace(unsafe_racy_btras=True))
    assert_equivalent(module, base.replace(unsafe_callee_btras=True))
    assert_equivalent(module, base.replace(btra_integrity_check=True))
    assert_equivalent(module, base.replace(unsafe_btdp_no_guard=True))


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    component=st.sampled_from(
        ["btra_push_only", "btra_avx_only", "btdp_only", "prolog_only", "layout_only", "oia_only"]
    ),
)
def test_component_configs_are_semantics_preserving(program_seed, component):
    module = generate_random_module(program_seed)
    config = getattr(R2CConfig, component)(seed=program_seed % 97)
    assert_equivalent(module, config)


def test_generator_is_deterministic():
    a = generate_random_module(1234)
    b = generate_random_module(1234)
    assert interpret_module(a) == interpret_module(b)


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program_seed=st.integers(min_value=0, max_value=10**6),
    config_seed=st.integers(min_value=0, max_value=10**6),
)
def test_backends_agree_on_random_programs(program_seed, config_seed):
    """The fast micro-op backend is observationally identical to the
    reference loop — full ExecutionResult, not just exit/output — for any
    generated program under baseline and fully diversified builds."""
    import dataclasses

    module = generate_random_module(program_seed)
    for config in (R2CConfig.baseline(), R2CConfig.full(seed=config_seed)):
        results = {}
        for backend in ("reference", "fast"):
            result, _ = run_compiled(
                module,
                config,
                backend=backend,
                count_opcodes=True,
                attribute_tags=True,
            )
            results[backend] = dataclasses.asdict(result)
        assert results["reference"] == results["fast"]
