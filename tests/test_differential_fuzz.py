"""Cross-backend differential fuzzing.

Two seeded generators — one emitting machine-level instruction streams,
one emitting IR modules compiled under random R2C configs — drive every
registered backend (``reference``, ``fast``, ``jit`` with tier 3 on)
over the same program and assert the observations are byte-identical:
the full :class:`ExecutionResult` (instructions, cycles, mem ops,
i-cache hits/misses, branch/call/ret/trap counts, tag attribution,
opcode counts, output), the fault class, message and resting ``rip`` for
crashing runs, the final register file, and the shadow stack.

Three layers:

* ``test_corpus_*`` — the committed regression corpus under
  ``tests/corpus/``: pinned seeds that once exercised an interesting
  path (each fault class, loop traces, guard exits, budget exhaustion
  mid-loop).  These always run and never change meaning.
* ``test_fuzz_machine_seeded`` / ``test_fuzz_ir_seeded`` — the bulk
  seeded sweep.  ``REPRO_FUZZ_CASES`` scales the machine-level case
  count (the IR sweep runs a quarter of it); CI's fuzz leg sets it to
  500.
* ``test_fuzz_hypothesis_explore`` — a hypothesis-driven seed explorer
  (derandomized, no database) for shrink-assisted local exploration.

A diverging case is minimized (machine level: greedy instruction
deletion preserving the divergence) and dumped as a JSON repro under
``$REPRO_FUZZ_DUMP`` (default ``fuzz-failures/``) before the assertion
propagates — CI uploads that directory as the failure artifact.  Pin the
dumped seed as a corpus file once the divergence is fixed.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
from pathlib import Path
from typing import List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder

from tests.test_backends import BACKENDS, DATA, assemble, run_one_backend

I = Instruction

#: Instruction budget for every fuzz run: generated loops retire at most
#: a few thousand instructions, so a clean run never trips this — but a
#: generator bug (or a divergence in branch semantics) does, and budget
#: exhaustion itself must then be backend-identical.
BUDGET = 30_000

FUZZ_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "24"))
DUMP_DIR = Path(os.environ.get("REPRO_FUZZ_DUMP", "fuzz-failures"))
CORPUS = Path(__file__).parent / "corpus"

#: General-purpose registers the generators draw from.  RBP is reserved
#: as the data-section base pointer, RSP is never touched directly, and
#: R8..R11 are reserved for loop counters so a loop body cannot clobber
#: its own induction variable.
GPRS = (Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.RSI, Reg.RDI)
COUNTERS = (Reg.R8, Reg.R9, Reg.R10, Reg.R11)

ARITH_RR = (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.IMUL)
JCCS = (Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE)


# ---------------------------------------------------------------------------
# The differential oracle.
# ---------------------------------------------------------------------------


def differential(make_process, **cpu_kwargs):
    """Run every registered backend; assert byte-identical observations
    against ``reference``.  Returns the reference observation."""
    outcomes = {
        backend: run_one_backend(make_process, backend, **cpu_kwargs)
        for backend in BACKENDS
    }
    reference = outcomes["reference"]
    for backend, outcome in outcomes.items():
        assert outcome == reference, (
            f"backend {backend!r} diverged from reference"
        )
    return reference


# ---------------------------------------------------------------------------
# Machine-level generator: seeded instruction streams.
#
# A program spec is a list of ``(op, a, b)`` entries where an operand
# may be the placeholder ``("L", index)`` — "absolute address of the
# entry at ``index``" — resolved by fix-point assembly (immediate widths
# shift addresses, which can shift widths again).
# ---------------------------------------------------------------------------

Entry = Tuple[Op, object, object]


def _gen_simple(rng: random.Random, spec: List[Entry]) -> None:
    """One straight-line instruction: arithmetic, memory via the RBP
    data base, a balanced push/pop pair, or a flag-setting compare."""
    choice = rng.random()
    reg = rng.choice(GPRS)
    if choice < 0.40:
        if rng.random() < 0.5:
            spec.append((rng.choice(ARITH_RR), reg, rng.choice(GPRS)))
        else:
            spec.append((rng.choice(ARITH_RR), reg, Imm(rng.randrange(1 << 16))))
    elif choice < 0.55:
        # Shift counts stay immediate and < 64: register-count shifts
        # would make the magnitude of intermediate values seed-dependent
        # in ways that slow Python big-int paths, not find bugs.
        spec.append((rng.choice((Op.SHL, Op.SHR)), reg, Imm(rng.randrange(64))))
    elif choice < 0.75:
        offset = 8 * rng.randrange(16)
        if rng.random() < 0.5:
            spec.append((Op.MOV, reg, Mem(Reg.RBP, offset)))
        else:
            spec.append((Op.MOV, Mem(Reg.RBP, offset), rng.choice(GPRS)))
    elif choice < 0.85:
        spec.append((Op.PUSH, reg, None))
        spec.append((Op.POP, rng.choice(GPRS), None))
    elif choice < 0.95:
        spec.append((Op.CMP, reg, Imm(rng.randrange(1 << 8))))
        spec.append((rng.choice(SETCCS), rng.choice(GPRS), None))
    else:
        spec.append((Op.NEG, reg, None))


SETCCS = (Op.SETE, Op.SETNE, Op.SETL, Op.SETG)


def _gen_loop(rng: random.Random, spec: List[Entry], counter: Reg) -> None:
    """A counted loop: enough iterations to cross the jit's promotion
    and trace thresholds, so compiled loop traces run under the fuzzer
    (including their side exits when the trip count ends the loop)."""
    spec.append((Op.MOV, counter, Imm(rng.randrange(3, 41))))
    head = len(spec)
    for _ in range(rng.randrange(1, 7)):
        _gen_simple(rng, spec)
    spec.append((Op.SUB, counter, Imm(1)))
    spec.append((Op.CMP, counter, Imm(0)))
    spec.append((Op.JG, ("L", head), None))


def _gen_diamond(rng: random.Random, spec: List[Entry]) -> None:
    """A forward conditional diamond; both arms join."""
    spec.append((Op.CMP, rng.choice(GPRS), Imm(rng.randrange(1 << 8))))
    jcc_at = len(spec)
    spec.append((rng.choice(JCCS), None, None))  # patched to the else arm
    for _ in range(rng.randrange(1, 4)):
        _gen_simple(rng, spec)
    jmp_at = len(spec)
    spec.append((Op.JMP, None, None))  # patched to the join
    else_at = len(spec)
    for _ in range(rng.randrange(1, 4)):
        _gen_simple(rng, spec)
    join_at = len(spec)
    spec.append((Op.NOP, None, None))
    spec[jcc_at] = (spec[jcc_at][0], ("L", else_at), None)
    spec[jmp_at] = (Op.JMP, ("L", join_at), None)


def _gen_hazard(rng: random.Random, spec: List[Entry]) -> None:
    """An instruction that may fault depending on generated state —
    fault class, message, rip and partial counters must all match."""
    choice = rng.random()
    if choice < 0.4:
        # Divide by a register that may well hold zero.
        spec.append((Op.IDIV, rng.choice(GPRS), rng.choice(GPRS)))
    elif choice < 0.7:
        # Load through a register: usually a wild dereference.
        spec.append((Op.MOV, rng.choice(GPRS), Mem(rng.choice(GPRS))))
    else:
        spec.append((Op.TRAP, None, None))


def machine_spec(seed: int) -> List[Entry]:
    """The seeded machine-level program for ``seed``."""
    rng = random.Random(seed)
    spec: List[Entry] = [(Op.MOV, Reg.RBP, Imm(DATA))]
    for reg in GPRS:
        spec.append((Op.MOV, reg, Imm(rng.randrange(1 << 32))))
    # Reserved slot: becomes a CALL to the trailing leaf (see below), or
    # stays a NOP.  A placeholder avoids insertion, which would shift
    # every label reference recorded after this point.
    call_slot = len(spec)
    spec.append((Op.NOP, None, None))
    for _ in range(rng.randrange(2, 5)):
        spec.append((Op.MOV, Mem(Reg.RBP, 8 * rng.randrange(16)), rng.choice(GPRS)))

    counters = list(COUNTERS)
    constructs = rng.randrange(2, 6)
    for _ in range(constructs):
        choice = rng.random()
        if choice < 0.40 and counters:
            _gen_loop(rng, spec, counters.pop())
        elif choice < 0.60:
            _gen_diamond(rng, spec)
        elif choice < 0.90:
            for _ in range(rng.randrange(1, 5)):
                _gen_simple(rng, spec)
        else:
            _gen_hazard(rng, spec)

    # An occasional monomorphic indirect jump over a nop sled — the
    # tier-3 specializer guards exactly this shape.
    if rng.random() < 0.35:
        reg = rng.choice(GPRS)
        jmp_at = len(spec)
        spec.append((Op.MOV, reg, None))  # patched: address of the join
        spec.append((Op.JMP, reg, None))
        for _ in range(rng.randrange(1, 3)):
            spec.append((Op.NOP, None, None))
        join_at = len(spec)
        spec.append((Op.NOP, None, None))
        spec[jmp_at] = (Op.MOV, reg, ("L", join_at))

    for reg in GPRS[: rng.randrange(1, len(GPRS))]:
        spec.append((Op.OUT, reg, None))
    spec.append((Op.EXIT, Imm(0), None))

    # A call target after the EXIT: a short arithmetic leaf, wired to
    # the reserved pre-body slot (calling from straight-line code, never
    # mid-loop: an unbalanced push inside a loop body would misalign
    # every later iteration, which is legal but drowns the sweep in
    # StackMisaligned cases).
    if rng.random() < 0.5:
        leaf_at = len(spec)
        for _ in range(rng.randrange(1, 4)):
            spec.append((rng.choice(ARITH_RR), rng.choice(GPRS), Imm(rng.randrange(256))))
        spec.append((Op.RET, None, None))
        spec[call_slot] = (Op.CALL, ("L", leaf_at), None)
    return spec


def _label_targets(spec: List[Entry]) -> set:
    targets = set()
    for op, a, b in spec:
        for operand in (a, b):
            if isinstance(operand, tuple) and operand[0] == "L":
                targets.add(operand[1])
    return targets


def build_spec(spec: List[Entry]):
    """Fix-point assemble a spec; returns ``(process, addresses)``."""
    addresses: List[int] = [0] * len(spec)
    process = None
    for _ in range(8):
        instrs = []
        for op, a, b in spec:
            ra = Imm(addresses[a[1]]) if isinstance(a, tuple) else a
            rb = Imm(addresses[b[1]]) if isinstance(b, tuple) else b
            if ra is None:
                instrs.append(I(op))
            elif rb is None:
                instrs.append(I(op, ra))
            else:
                instrs.append(I(op, ra, rb))
        process, new_addresses = assemble(instrs)
        if new_addresses == addresses:
            break
        addresses = new_addresses
    return process, addresses


def build_process(spec: List[Entry]):
    """Fix-point assemble a spec into a fresh process."""
    return build_spec(spec)[0]


# ---------------------------------------------------------------------------
# Divergence minimization and repro dumping.
# ---------------------------------------------------------------------------


def _diverges(spec: List[Entry]) -> bool:
    try:
        differential(lambda: build_process(spec), instruction_budget=BUDGET)
    except AssertionError:
        return True
    return False


def _drop(spec: List[Entry], index: int) -> List[Entry]:
    """Remove entry ``index``, shifting label references above it."""
    out: List[Entry] = []
    for position, (op, a, b) in enumerate(spec):
        if position == index:
            continue
        def shift(operand):
            if isinstance(operand, tuple) and operand[0] == "L":
                target = operand[1]
                return ("L", target - 1 if target > index else target)
            return operand
        out.append((op, shift(a), shift(b)))
    return out


def minimize_machine(spec: List[Entry], budget: int = 200) -> List[Entry]:
    """Greedy delta-debugging: delete one instruction at a time while
    the cross-backend divergence persists."""
    attempts = 0
    changed = True
    while changed and attempts < budget:
        changed = False
        targets = _label_targets(spec)
        for index in range(len(spec)):
            if index in targets or spec[index][0] is Op.EXIT:
                continue
            attempts += 1
            if attempts >= budget:
                break
            trial = _drop(spec, index)
            if _diverges(trial):
                spec = trial
                changed = True
                break
    return spec


def _dump_repro(kind: str, seed: int, spec: Optional[List[Entry]] = None) -> Path:
    DUMP_DIR.mkdir(parents=True, exist_ok=True)
    payload = {"kind": kind, "seed": seed}
    if spec is not None:
        payload["minimized"] = [
            [op.name, repr(a), repr(b)] for op, a, b in spec
        ]
    path = DUMP_DIR / f"{kind}-{seed}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def check_machine_seed(seed: int, budget: int = BUDGET) -> None:
    """Differential over the machine-level program for ``seed``.

    The primary run is *lean* (no opcode counting, no tag attribution) —
    that is the only variant the jit lowers to tier 3, so loop traces
    and superblock guards actually execute.  Every fourth seed also runs
    the rich variant for opcode-count and tag parity."""
    spec = machine_spec(seed)
    try:
        differential(lambda: build_process(spec), instruction_budget=budget)
        if seed % 4 == 0:
            differential(
                lambda: build_process(spec),
                instruction_budget=budget,
                count_opcodes=True,
                attribute_tags=True,
            )
    except AssertionError:
        minimized = minimize_machine(spec)
        path = _dump_repro("machine", seed, minimized)
        raise AssertionError(
            f"machine seed {seed} diverged; minimized repro at {path}"
        )


# ---------------------------------------------------------------------------
# IR-level generator: random modules under random R2C configs.
# ---------------------------------------------------------------------------


def random_config(rng: random.Random) -> R2CConfig:
    choice = rng.randrange(4)
    if choice == 0:
        return R2CConfig.baseline()
    if choice == 1:
        return R2CConfig.full(
            seed=rng.randrange(1000), btra_mode=rng.choice(("avx", "push"))
        )
    return R2CConfig(
        seed=rng.randrange(1000),
        opt_level=rng.randrange(2),
        enable_btra=rng.random() < 0.6,
        btra_mode=rng.choice(("avx", "push")),
        enable_btdp=rng.random() < 0.5,
        enable_nop_insertion=rng.random() < 0.5,
        enable_prolog_traps=rng.random() < 0.3,
        enable_stack_slot_shuffle=rng.random() < 0.5,
        enable_regalloc_shuffle=rng.random() < 0.5,
        enable_function_shuffle=rng.random() < 0.5,
        enable_global_shuffle=rng.random() < 0.5,
    )


def _ir_expr(rng: random.Random, fn, atoms: List[str], depth: int = 0) -> str:
    """A small random arithmetic expression over ``atoms``."""
    if depth >= 3 or rng.random() < 0.35:
        if atoms and rng.random() < 0.7:
            return rng.choice(atoms)
        return fn.const(rng.randrange(1 << 12))
    a = _ir_expr(rng, fn, atoms, depth + 1)
    b = _ir_expr(rng, fn, atoms, depth + 1)
    op = rng.choice(("add", "sub", "mul", "band", "bor", "bxor"))
    return getattr(fn, op)(a, b)


def ir_module(seed: int):
    """The seeded IR module for ``seed``: leaves (direct and indirect
    call targets), globals, counted loops, diamonds, output."""
    rng = random.Random(seed)
    ir = IRBuilder(f"fuzz{seed}")
    nglobals = rng.randrange(0, 3)
    for k in range(nglobals):
        init = tuple(rng.randrange(100) for _ in range(rng.randrange(1, 4)))
        ir.global_var(f"g{k}", size_words=len(init), init=init)
    globals_ = [f"g{k}" for k in range(nglobals)]

    leaves = []
    for k in range(rng.randrange(1, 4)):
        name = f"leaf{k}"
        fn = ir.function(name, params=["a", "b"])
        fn.ret(_ir_expr(rng, fn, [fn.param("a"), fn.param("b")]))
        leaves.append(name)

    main = ir.function("main")
    main.local("acc")
    main.store_local("acc", rng.randrange(100))
    label = 0

    def fresh() -> str:
        nonlocal label
        label += 1
        return f"b{label}"

    for _ in range(rng.randrange(2, 6)):
        choice = rng.random()
        acc = main.load_local("acc")
        if choice < 0.30:
            # A counted loop whose body folds a leaf call or arithmetic
            # into the accumulator — hot enough for tier 3 to trace.
            ivar = f"i{label}"
            main.local(ivar)
            main.store_local(ivar, 0)
            loop, body, done = fresh(), fresh(), fresh()
            trip = rng.randrange(3, 31)
            main.br(loop)
            main.new_block(loop)
            cond = main.cmp("lt", main.load_local(ivar), trip)
            main.cbr(cond, body, done)
            main.new_block(body)
            i = main.load_local(ivar)
            if rng.random() < 0.5:
                value = main.call(rng.choice(leaves), [main.load_local("acc"), i])
            else:
                value = _ir_expr(rng, main, [main.load_local("acc"), i])
            main.store_local("acc", value)
            main.store_local(ivar, main.add(main.load_local(ivar), 1))
            main.br(loop)
            main.new_block(done)
        elif choice < 0.50:
            then, other, join = fresh(), fresh(), fresh()
            pred = rng.choice(("lt", "le", "gt", "ge", "eq", "ne"))
            cond = main.cmp(pred, acc, rng.randrange(1 << 8))
            main.cbr(cond, then, other)
            main.new_block(then)
            main.store_local("acc", _ir_expr(rng, main, [main.load_local("acc")]))
            main.br(join)
            main.new_block(other)
            main.store_local("acc", main.bxor(main.load_local("acc"), 0x5A5A))
            main.br(join)
            main.new_block(join)
        elif choice < 0.65:
            leaf = rng.choice(leaves)
            if rng.random() < 0.5:
                value = main.call(leaf, [acc, rng.randrange(1 << 8)])
            else:
                value = main.icall(main.func_addr(leaf), [acc, rng.randrange(1 << 8)])
            main.store_local("acc", value)
        elif choice < 0.85 and globals_:
            name = rng.choice(globals_)
            main.store_local("acc", main.add(acc, main.load_global(name)))
            if rng.random() < 0.5:
                main.store_global(name, main.load_local("acc"))
        else:
            main.store_local("acc", _ir_expr(rng, main, [acc]))
    main.out(main.load_local("acc"))
    main.ret(0)
    return ir.finish()


def check_ir_seed(seed: int) -> None:
    rng = random.Random(~seed)
    config = random_config(rng)
    module = ir_module(seed)
    binary = compile_module(module, config)
    load_seed = rng.randrange(1, 100)

    def make():
        process = load_binary(binary, seed=load_seed)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        return process

    try:
        # Lean first — the variant tier 3 compiles traces for — then the
        # rich variant for opcode-count and tag-attribution parity.
        outcome = differential(make, instruction_budget=BUDGET)
        assert outcome["error"] is None, outcome["error"]
        differential(
            make,
            instruction_budget=BUDGET,
            count_opcodes=True,
            attribute_tags=True,
        )
    except AssertionError:
        path = _dump_repro("ir", seed)
        raise AssertionError(f"ir seed {seed} diverged; repro at {path}")


# ---------------------------------------------------------------------------
# The committed regression corpus: pinned seeds, always run.
# ---------------------------------------------------------------------------


def _corpus_entries():
    if not CORPUS.is_dir():
        return []
    return sorted(CORPUS.glob("*.json"), key=lambda p: p.name)


@pytest.mark.parametrize(
    "path", _corpus_entries(), ids=lambda p: p.stem
)
def test_corpus_replay(path):
    entry = json.loads(path.read_text())
    if entry["kind"] == "machine":
        check_machine_seed(entry["seed"], entry.get("budget", BUDGET))
    else:
        check_ir_seed(entry["seed"])


def test_corpus_is_not_empty():
    assert len(_corpus_entries()) >= 8


# ---------------------------------------------------------------------------
# The bulk seeded sweep (REPRO_FUZZ_CASES scales it; CI runs 500).
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(FUZZ_CASES))
def test_fuzz_machine_seeded(seed):
    check_machine_seed(seed)


@pytest.mark.parametrize("seed", range(max(6, FUZZ_CASES // 4)))
def test_fuzz_ir_seeded(seed):
    check_ir_seed(seed)


# ---------------------------------------------------------------------------
# Hypothesis exploration: derandomized so CI is reproducible, no local
# example database, seeds shrink toward small values on failure.
# ---------------------------------------------------------------------------


@settings(
    max_examples=int(os.environ.get("REPRO_FUZZ_HYP", "15")),
    deadline=None,
    database=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1), machine=st.booleans())
def test_fuzz_hypothesis_explore(seed, machine):
    if machine:
        check_machine_seed(seed)
    else:
        check_ir_seed(seed)
