"""Tests for the victim fleet (repro.fleet.*).

The acceptance physics under test: the on-disk compile cache is
content-addressed, single-flight, and self-healing; the scheduler never
loses a request (every arrival resolves to a typed outcome, under load
shedding, chaos, and rolling re-randomization alike); and the whole
simulation is bit-deterministic — same seed, same metrics, on every
backend.
"""

import os
import pickle
import time

import pytest

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.eval.engine import CompileCache, ExperimentEngine, RunRequest
from repro.fleet import (
    ChaosSpec,
    DiskCompileCache,
    Fleet,
    FleetOutcome,
    FleetWorker,
    TokenBucket,
    WorkerState,
    open_loop_arrivals,
    run_fleet,
)
from repro.obs.bench import BenchReport, validate
from repro.rng import DiversityRng
from repro.workloads.webserver import build_webserver


@pytest.fixture(scope="module")
def module():
    return build_webserver(requests=1, footprint_pages=1)


def serving_metrics(report):
    """The serving section minus host-environmental cache telemetry."""
    data = report.serving()
    data.pop("cache")
    return data


# ---------------------------------------------------------------------------
# DiskCompileCache
# ---------------------------------------------------------------------------

def test_binary_pickle_roundtrip(module):
    """Binaries (including the BTDP constructor) survive pickling — the
    invariant the on-disk store and the engine's pool both rest on."""
    binary = compile_module(module, R2CConfig.full(seed=3))
    clone = pickle.loads(pickle.dumps(binary))
    assert clone.constructors  # the BTDP constructor survived


def test_disk_cache_hits_across_instances(module, tmp_path):
    config = R2CConfig.baseline()
    first = DiskCompileCache(str(tmp_path))
    _, _, hit = first.get_or_compile(module, config)
    assert not hit and first.disk_writes == 1

    # A fresh instance (another process, another session) hits the disk.
    second = DiskCompileCache(str(tmp_path))
    binary, _, hit = second.get_or_compile(module, config)
    assert hit and second.disk_hits == 1 and second.disk_writes == 0
    # ...and the loaded binary is the same build.
    original = first._entries[(module.fingerprint(), config.digest())]
    assert binary.config_digest == original.config_digest
    assert binary.text_size == original.text_size


def test_disk_cache_heals_corrupt_entry(module, tmp_path):
    config = R2CConfig.baseline()
    cache = DiskCompileCache(str(tmp_path))
    cache.get_or_compile(module, config)
    path = cache.entry_path((module.fingerprint(), config.digest()))
    with open(path, "wb") as handle:
        handle.write(b"truncated garbage")

    healer = DiskCompileCache(str(tmp_path))
    _, _, hit = healer.get_or_compile(module, config)
    assert not hit  # recompiled
    assert healer.corrupt_entries == 1
    assert healer.disk_writes == 1  # and re-persisted a good entry


def test_disk_cache_waits_for_flight_then_compiles(module, tmp_path):
    """A held lock makes concurrent callers wait; if the flight never
    lands, the waiter compiles locally instead of deadlocking."""
    config = R2CConfig.baseline()
    cache = DiskCompileCache(str(tmp_path), wait_seconds=0.05, poll_seconds=0.01)
    lock = cache._lock_path((module.fingerprint(), config.digest()))
    with open(lock, "w", encoding="utf-8") as handle:
        handle.write("999999")  # a flight holder that never finishes
    _, _, hit = cache.get_or_compile(module, config)
    assert not hit
    assert cache.singleflight_waits == 1


def test_disk_cache_breaks_stale_locks(module, tmp_path):
    config = R2CConfig.baseline()
    cache = DiskCompileCache(str(tmp_path), wait_seconds=0.2, poll_seconds=0.01,
                             lock_stale_seconds=0.01)
    lock = cache._lock_path((module.fingerprint(), config.digest()))
    with open(lock, "w", encoding="utf-8") as handle:
        handle.write("999999")
    stale = time.time() - 60.0
    os.utime(lock, (stale, stale))
    cache.get_or_compile(module, config)
    assert not os.path.exists(lock)  # broken, compiled, released


def test_engine_cache_dir_shares_compiles(module, tmp_path):
    request = RunRequest(module, R2CConfig.baseline(), label="fleet/engine")
    first = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        assert isinstance(first.cache, DiskCompileCache)
        records = first.submit([request])
        assert records[0].outcome == "ok"
        assert first.cache.disk_writes == 1
    finally:
        first.close()

    second = ExperimentEngine(jobs=1, cache_dir=str(tmp_path))
    try:
        records = second.submit([request])
        assert records[0].outcome == "ok"
        assert second.cache.disk_hits == 1
        assert second.cache.misses == 0
    finally:
        second.close()


# ---------------------------------------------------------------------------
# Scheduler mechanics
# ---------------------------------------------------------------------------

def test_token_bucket_refills_on_virtual_clock():
    bucket = TokenBucket(rate=10.0, burst=2.0)
    assert bucket.admit(0.0) and bucket.admit(0.0)
    assert not bucket.admit(0.0)  # burst spent
    assert bucket.admit(0.1)  # one token back after 0.1s at 10/s
    assert not bucket.admit(0.1)


def test_open_loop_arrivals_seeded():
    first = open_loop_arrivals(rps=100.0, duration_seconds=1.0, rng=DiversityRng(7))
    second = open_loop_arrivals(rps=100.0, duration_seconds=1.0, rng=DiversityRng(7))
    other = open_loop_arrivals(rps=100.0, duration_seconds=1.0, rng=DiversityRng(8))
    assert first == second
    assert first != other
    assert all(0.0 <= at < 1.0 for at in first)
    assert first == sorted(first)


def small_fleet(module, workers=2, **kwargs):
    cache = CompileCache()
    pool = [
        FleetWorker(index, module, R2CConfig.full(seed=1_000), cache, backend="fast")
        for index in range(workers)
    ]
    for worker in pool:
        worker.profile = worker.build(0)
    return Fleet(pool, **kwargs)


def test_admission_sheds_explicitly_never_silently(module):
    """Overload resolves as typed REJECTED outcomes; arrivals always
    equal resolved outcomes."""
    fleet = small_fleet(
        module, workers=1, seed=3, bucket_rate=20.0, bucket_burst=2.0, max_queue=2,
        rerand_interval=None, hedge_after_seconds=None,
    )
    for index in range(50):
        fleet.submit(0.001 * index)  # 1000 rps offered at 20 rps admitted
    stats = fleet.run()
    assert stats.arrivals == 50
    assert stats.resolved == 50
    assert stats.outcomes["rejected"] > 0
    assert stats.shed == stats.outcomes["rejected"]


def test_deadline_resolves_timed_out(module):
    """A deadline shorter than the service time resolves TIMED_OUT —
    still typed, still counted."""
    fleet = small_fleet(
        module, workers=1, seed=3, deadline_seconds=0.0001,
        hedge_after_seconds=None, rerand_interval=None,
    )
    fleet.submit(0.0)
    stats = fleet.run()
    assert stats.outcomes["timed-out"] == 1
    assert stats.resolved == 1


def test_kill_reenqueues_inflight_request_as_degraded(module):
    """A killed worker's in-flight request retries on a sibling and
    completes DEGRADED — robustness the client can see but survive."""
    fleet = small_fleet(
        module, workers=2, seed=3, rerand_interval=None, hedge_after_seconds=None,
    )
    rid = fleet.submit(0.0)
    fleet._push(0.001, "kill", ((0,),))  # mid-service: worker 0 has it
    stats = fleet.run()
    assert stats.kills == 1
    assert stats.retries == 1
    request = fleet.requests[rid]
    assert request.outcome is FleetOutcome.DEGRADED
    assert request.workers == [0, 1]


def test_flapping_worker_quarantined_and_warm_spared(module):
    """Consecutive crashes quarantine the slot; the warm spare comes up
    re-diversified (a fresh generation) and serves again."""
    fleet = small_fleet(
        module, workers=1, seed=3, rerand_interval=None, hedge_after_seconds=None,
    )
    worker = fleet.workers[0]
    worker.quarantine_crashes = 3
    # Three kills spaced past the backoff revivals: a crash storm on the
    # slot with no successful serve in between.
    fleet._push(0.010, "kill", ((0,),))
    fleet._push(0.030, "kill", ((0,),))
    fleet._push(0.060, "kill", ((0,),))
    stats = fleet.run()
    assert stats.quarantines == 1
    assert stats.spare_activations == 1
    assert worker.state is WorkerState.IDLE
    assert worker.generation == 1  # the spare is a new diversification
    assert worker.consecutive_crashes == 0


def test_rolling_rerandomization_zero_drops(module):
    """Every worker rotates layouts under live load and not one request
    is dropped or shed by the rotation."""
    fleet = small_fleet(
        module, workers=2, seed=5, rerand_interval=0.2, hedge_after_seconds=None,
    )
    rng = DiversityRng(5).child("loadgen")
    for at in open_loop_arrivals(rps=150.0, duration_seconds=1.0, rng=rng):
        fleet.submit(at)
    fleet.schedule_rerandomization(1.0)
    stats = fleet.run()
    assert stats.swaps >= 4  # both workers rotated repeatedly
    assert stats.resolved == stats.arrivals
    assert stats.outcomes["rejected"] == 0
    assert stats.outcomes["timed-out"] == 0
    assert len(fleet.layout_changes) == stats.swaps
    assert all(worker.generation > 0 for worker in fleet.workers)


# ---------------------------------------------------------------------------
# End-to-end: run_fleet
# ---------------------------------------------------------------------------

def test_run_fleet_deterministic_across_backends_and_runs(tmp_path):
    kwargs = dict(workers=2, rps=150.0, duration_seconds=0.5, seed=9, chaos=True)
    fast = run_fleet(backend="fast", **kwargs)
    again = run_fleet(backend="fast", cache_dir=str(tmp_path), **kwargs)
    reference = run_fleet(backend="reference", **kwargs)
    assert serving_metrics(fast) == serving_metrics(again)
    assert serving_metrics(fast) == serving_metrics(reference)
    # Different seeds genuinely differ.
    other = run_fleet(backend="fast", workers=2, rps=150.0,
                      duration_seconds=0.5, seed=10, chaos=True)
    assert serving_metrics(fast) != serving_metrics(other)


def test_run_fleet_chaos_zero_lost():
    spec = ChaosSpec(kill_fraction=0.5, hang_fraction=0.5, attack_fraction=0.05,
                     compile_fault_every=2, kill_waves=3, hang_waves=2)
    report = run_fleet(workers=3, rps=200.0, duration_seconds=1.0,
                       backend="fast", seed=4, chaos_spec=spec)
    assert report.zero_lost
    assert report.kills + report.hangs > 0
    assert report.outcomes["fault"] > 0  # attack probes became faults
    assert report.compile_faults > 0
    assert report.swaps > 0  # rotation kept going under fire
    assert report.restarts > 0


def test_run_fleet_artifact_validates_and_roundtrips():
    report = run_fleet(workers=2, rps=100.0, duration_seconds=0.5,
                       backend="fast", seed=2)
    bench = report.to_bench_report()
    problems = validate(__import__("json").loads(bench.to_json()))
    assert problems == []
    clone = BenchReport.from_json(bench.to_json())
    assert clone.serving["arrivals"] == report.arrivals
    assert clone.serving["p99_ms"] == report.p99_ms
    assert clone.cells[0].cycles > 0  # anchored by a real execution
