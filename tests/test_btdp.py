"""BTDP invariants: guard pages, camouflage, and the Figure 5 hardening."""

import pytest

from repro.attacks.clustering import classify_word, cluster_by_gaps
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.core.passes.btdp import DECOY_PREFIX, HARDENED_PTR_SYMBOL, NAIVE_ARRAY_SYMBOL
from repro.errors import GuardPageFault
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.machine.memory import PAGE_SIZE, Perm
from repro.workloads.victim import build_victim

WORD = 8


def make_process(config, *, load_seed=3):
    binary = compile_module(build_victim(), config)
    process = load_binary(binary, seed=load_seed)
    process.register_service("attack_hook", lambda proc, cpu: 0)
    return binary, process


BTDP_CFG = R2CConfig(seed=8, enable_btdp=True)


def test_guard_pages_are_protected_and_flagged():
    _, process = make_process(BTDP_CFG)
    info = process.r2c_runtime
    assert info["guarded"]
    for page in info["guard_pages"]:
        assert page % PAGE_SIZE == 0
        assert process.memory.perm_at(page) == Perm.NONE
        assert process.memory.is_guard(page)


def test_btdp_values_point_into_guard_pages():
    _, process = make_process(BTDP_CFG)
    info = process.r2c_runtime
    pages = set(info["guard_pages"])
    for value in info["btdp_values"]:
        assert (value & ~(PAGE_SIZE - 1)) in pages


def test_btdp_dereference_raises_guard_fault():
    _, process = make_process(BTDP_CFG)
    value = process.r2c_runtime["btdp_values"][0]
    with pytest.raises(GuardPageFault):
        process.memory.read_word(value)


def test_btdps_share_value_range_with_benign_heap_pointers():
    """A value-range clusterer cannot separate BTDPs from real heap
    pointers — they land in one cluster (Section 4.2)."""
    _, process = make_process(BTDP_CFG)
    benign = process.allocator.malloc(64)
    btdps = process.r2c_runtime["btdp_values"]
    assert classify_word(benign) == "heap"
    assert all(classify_word(v) == "heap" for v in btdps)
    clusters = cluster_by_gaps([benign] + list(btdps))
    containing = [c for c in clusters if benign in c]
    assert len(containing) == 1
    assert len(containing[0]) == len(btdps) + 1


def test_hardened_mode_data_section_hides_the_array():
    """Figure 5: the data section holds only a pointer to the heap array
    plus decoys; the BTDP values themselves are not in the data section."""
    binary, process = make_process(BTDP_CFG)
    assert BTDP_CFG.btdp_hardened
    assert HARDENED_PTR_SYMBOL in binary.symbols_data
    assert NAIVE_ARRAY_SYMBOL not in binary.symbols_data
    array_ptr = process.memory.read_word(process.symbols[HARDENED_PTR_SYMBOL])
    assert process.layout.region_of(array_ptr) == "heap"
    info = process.r2c_runtime
    assert array_ptr == info["array_addr"]
    # Decoys are guard-page pointers that never appear in the stack array.
    decoys = info["decoy_values"]
    assert decoys and all(classify_word(v) == "heap" for v in decoys)
    assert not set(decoys) & set(info["btdp_values"])


def test_naive_mode_exposes_array_in_data_section():
    config = BTDP_CFG.replace(btdp_hardened=False)
    binary, process = make_process(config)
    assert NAIVE_ARRAY_SYMBOL in binary.symbols_data
    base = process.symbols[NAIVE_ARRAY_SYMBOL]
    values = [
        process.memory.read_word(base + WORD * i) for i in range(config.btdp_array_len)
    ]
    assert values == process.r2c_runtime["btdp_values"]


def test_btdps_written_into_stack_frames():
    """At the hook, the victim's stack must contain BTDP values."""
    binary = compile_module(build_victim(), R2CConfig.full(seed=14))
    process = load_binary(binary, seed=4)
    found = {}

    def hook(proc, cpu):
        if found:
            return 0
        found["x"] = True
        rsp = cpu.regs[Reg.RSP]
        btdps = set(proc.r2c_runtime["btdp_values"])
        hits = 0
        for offset in range(0, 200 * WORD, WORD):
            addr = rsp + offset
            if not proc.memory.is_mapped(addr):
                break
            if proc.memory.load_word_raw(addr) in btdps:
                hits += 1
        found["hits"] = hits
        return 0

    process.register_service("attack_hook", hook)
    CPU(process, get_costs("epyc-rome")).run()
    assert found["hits"] >= 1


def test_stackless_functions_skipped():
    config = R2CConfig(seed=8, enable_btdp=True, btdp_skip_stackless=True)
    from repro.core.pass_manager import build_plan
    from repro.toolchain.builder import IRBuilder
    import copy

    ir = IRBuilder()
    leaf = ir.function("leaf")  # no params, no locals
    leaf.ret(42)
    m = ir.function("main")
    m.local("x")
    m.store_local("x", m.call("leaf"))
    m.out(m.load_local("x"))
    m.ret(0)
    module = ir.finish()
    plan, _ = build_plan(copy.deepcopy(module), config)
    assert plan.functions["leaf"].btdp_count == 0


def test_btdp_count_within_config_bounds():
    config = R2CConfig(seed=8, enable_btdp=True, btdp_min_per_function=1, btdp_max_per_function=3)
    from repro.core.pass_manager import build_plan
    import copy

    module = build_victim()
    plan, _ = build_plan(copy.deepcopy(module), config)
    counted = [f.btdp_count for f in plan.functions.values() if f.btdp_count]
    assert counted
    assert all(1 <= c <= 3 for c in counted)


def test_unguarded_ablation_reads_silently():
    config = BTDP_CFG.replace(unsafe_btdp_no_guard=True)
    _, process = make_process(config)
    assert not process.r2c_runtime["guarded"]
    value = process.r2c_runtime["btdp_values"][0]
    process.memory.read_word(value)  # must not raise


def test_guard_pages_never_reused_by_malloc():
    _, process = make_process(BTDP_CFG)
    pages = set(process.r2c_runtime["guard_pages"])
    for _ in range(50):
        p = process.allocator.malloc(256)
        assert (p & ~(PAGE_SIZE - 1)) not in pages
