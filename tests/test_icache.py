"""Tests for the instruction-cache model."""

import pytest

from repro.machine.icache import ICache


def test_first_access_misses_then_hits():
    cache = ICache(size_bytes=1024, line_size=64, ways=2)
    assert cache.access(0, 4) == 1
    assert cache.access(0, 4) == 0
    assert cache.hits == 1 and cache.misses == 1


def test_access_spanning_lines_touches_both():
    cache = ICache(size_bytes=1024, line_size=64, ways=2)
    misses = cache.access(60, 8)  # crosses the 64-byte boundary
    assert misses == 2
    assert cache.access(60, 8) == 0


def test_lru_eviction_within_a_set():
    cache = ICache(size_bytes=2 * 64, line_size=64, ways=2)  # one set, 2 ways
    cache.access(0 * 64, 1)
    cache.access(1 * 64, 1)
    cache.access(2 * 64, 1)  # evicts line 0
    assert cache.access(1 * 64, 1) == 0  # still cached
    assert cache.access(0 * 64, 1) == 1  # was evicted


def test_lru_order_updated_on_hit():
    cache = ICache(size_bytes=2 * 64, line_size=64, ways=2)
    cache.access(0, 1)
    cache.access(64, 1)
    cache.access(0, 1)  # refresh line 0
    cache.access(128, 1)  # should evict line 64 (least recent)
    assert cache.access(0, 1) == 0
    assert cache.access(64, 1) == 1


def test_distinct_sets_do_not_conflict():
    cache = ICache(size_bytes=4 * 64, line_size=64, ways=2)  # 2 sets
    # Lines 0 and 1 map to different sets; filling one set leaves the other.
    cache.access(0, 1)
    cache.access(64, 1)
    cache.access(128, 1)
    cache.access(256, 1)
    assert cache.access(64, 1) == 0


def test_geometry_validation():
    with pytest.raises(ValueError):
        ICache(size_bytes=1000, line_size=64, ways=8)


def test_miss_rate_and_reset():
    cache = ICache(size_bytes=1024, line_size=64, ways=2)
    cache.access(0, 1)
    cache.access(0, 1)
    assert cache.miss_rate() == pytest.approx(0.5)
    cache.reset_counters()
    assert cache.accesses == 0
    assert cache.miss_rate() == 0.0


def test_big_code_footprint_thrashes_small_cache():
    """The scaled cache must show pressure for multi-KiB hot loops."""
    cache = ICache(size_bytes=4 * 1024, line_size=64, ways=8)
    footprint_lines = 128  # 8 KiB of code, 2x the cache
    for _ in range(3):
        for line in range(footprint_lines):
            cache.access(line * 64, 4)
    assert cache.miss_rate() > 0.5
