"""Tests for the repro.analysis static verification layer.

Three tiers, mirroring the layer itself:

* unit tests pinning each verifier rule to a hand-broken input (mutation
  testing: a flipped BTRA post-offset, an overwritten booby-trap slot, a
  BTDP retargeted off its guard page — each must yield its exact rule ID);
* corpus tests proving the full SPEC suite verifies clean across seeds
  and both BTRA modes (this doubles as the unwind audit: UNWIND001/002/003
  run over every frame and call-site record of every binary);
* integration tests for the engine's ``RunRequest.verify`` flag, the
  entropy auditor's floors, and the ``repro lint`` driver.
"""

from __future__ import annotations

import json
from math import log2

import pytest

from repro.analysis import (
    Finding,
    FindingsReport,
    RULES,
    VerificationError,
    default_verify,
    entropy,
    fail,
    set_default_verify,
    verify_binary,
    verify_loaded,
    verify_module,
)
from repro.analysis.lint import CONFIGS, build_corpus, run_lint
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.core.passes.btra import plan_btras
from repro.errors import ToolchainError
from repro.eval.engine import ExperimentEngine, RunRequest
from repro.eval.report import render_lint
from repro.machine.isa import Imm, Op, Reg
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import IRInstr
from repro.toolchain.plan import ModulePlan

SPEC_MODULES = dict(build_corpus("spec", quick=True))


def _fresh(module, mode="push", seed=5, **overrides):
    """Compile without the verify hook so tests mutate, then verify."""
    config = R2CConfig.full(seed=seed, btra_mode=mode).replace(
        verify=False, **overrides
    )
    return compile_module(module, config)


# ---------------------------------------------------------------------------
# findings model
# ---------------------------------------------------------------------------


def test_unregistered_rule_is_rejected():
    with pytest.raises(ValueError):
        Finding(rule="NOPE999", where="x", message="y")


def test_every_rule_has_a_description():
    for rule, description in RULES.items():
        assert rule[-3:].isdigit() and description


def test_fail_raises_verification_error_with_rule():
    with pytest.raises(VerificationError) as excinfo:
        fail("PLAN004", "f", "unbalanced", depth=3)
    assert excinfo.value.rules == ["PLAN004"]
    assert excinfo.value.report.findings[0].detail == {"depth": 3}
    # Subclasses ToolchainError so pre-existing except clauses still catch.
    assert isinstance(excinfo.value, ToolchainError)


def test_report_accumulates_and_renders():
    report = FindingsReport(target="unit")
    assert report.ok and report.render() == "unit: clean"
    report.add("STACK001", "f+0x8", "depth -1 underflows", depth=-1)
    report.add("STACK001", "f+0x10", "depth 2 at ret")
    report.add("BTRA001", "g+0x4", "wrong return address")
    assert not report.ok
    assert report.rules() == ["STACK001", "BTRA001"]
    assert len(report.by_rule("STACK001")) == 2
    assert "STACK001 f+0x8" in report.render()
    assert json.loads(report.findings[0].to_json())["rule"] == "STACK001"
    with pytest.raises(VerificationError):
        report.raise_if_findings()


def test_default_verify_toggle():
    previous = set_default_verify(False)
    try:
        assert default_verify() is False
        assert set_default_verify(True) is False
        assert default_verify() is True
    finally:
        set_default_verify(previous)


# ---------------------------------------------------------------------------
# IR verifier
# ---------------------------------------------------------------------------


def _two_block_module():
    ir = IRBuilder("broken")
    fn = ir.function("main")
    value = fn.add(1, 2)
    fn.br("exit")
    fn.new_block("exit")
    fn.out(value)
    fn.ret(0)
    return ir.finish()


def test_irverify_accepts_valid_module(simple_module):
    assert verify_module(simple_module).ok


def test_irverify_unknown_opcode_is_ir001():
    module = _two_block_module()
    module.functions["main"].blocks[0].instrs.insert(0, IRInstr("frobnicate", ()))
    assert verify_module(module).rules() == ["IR001"]


def test_irverify_missing_terminator_is_ir002():
    module = _two_block_module()
    module.functions["main"].blocks[1].instrs.pop()  # drop the ret
    assert "IR002" in verify_module(module).rules()


def test_irverify_unknown_label_is_ir003():
    module = _two_block_module()
    block = module.functions["main"].blocks[0]
    block.instrs[-1] = IRInstr("br", ("nowhere",))
    assert "IR003" in verify_module(module).rules()


def test_irverify_unknown_symbol_is_ir004():
    module = _two_block_module()
    block = module.functions["main"].blocks[0]
    block.instrs.insert(0, IRInstr("global_load", ("%t9", "missing_global", None)))
    assert "IR004" in verify_module(module).rules()


def test_irverify_call_arity_is_ir005(simple_module):
    # simple_module's main calls double(x) with one argument; add another.
    main = simple_module.functions["main"]
    for block in main.blocks:
        for index, instr in enumerate(block.instrs):
            if instr.op == "call":
                dst, callee, args = instr.args
                block.instrs[index] = IRInstr("call", (dst, callee, tuple(args) + (7,)))
    assert "IR005" in verify_module(simple_module).rules()


def test_irverify_use_before_def_is_ir006():
    # Diamond where only one path defines the vreg the join consumes —
    # structurally valid (Module.validate passes) but a dataflow bug.
    ir = IRBuilder("diamond")
    fn = ir.function("main")
    cond = fn.cmp("gt", 1, 0)
    fn.cbr(cond, "yes", "no")
    fn.new_block("yes")
    value = fn.add(1, 2)
    fn.br("join")
    fn.new_block("no")
    fn.br("join")
    fn.new_block("join")
    fn.out(value)
    fn.ret(0)
    module = ir.finish()
    report = verify_module(module)
    assert report.rules() == ["IR006"]
    assert report.findings[0].detail["vreg"] == value


def test_irverify_empty_function_is_ir007():
    module = _two_block_module()
    module.functions["main"].blocks.clear()
    assert verify_module(module).rules() == ["IR007"]


def test_compile_hook_rejects_broken_ir():
    module = _two_block_module()
    module.functions["main"].blocks[1].instrs.pop()
    with pytest.raises((VerificationError, ToolchainError)):
        compile_module(module, R2CConfig.baseline().replace(verify=True))


# ---------------------------------------------------------------------------
# corpus: SPEC verifies clean (doubles as the unwind audit)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["push", "avx"])
def test_spec_corpus_verifies_clean_across_seeds(mode):
    """Every SPEC program, >=3 seeds, both BTRA modes: zero findings.

    UNWIND001/002/003 run on every frame and call-site record here, so
    this is the static unwind audit of the ``.eh_frame`` analogue — any
    frame-size entry disagreeing with the computed stack depths fails.
    """
    for name, module in SPEC_MODULES.items():
        for seed in (1, 2, 3):
            binary = _fresh(module, mode=mode, seed=seed)
            report = verify_binary(binary, target=f"{name}/seed{seed}")
            assert report.ok, report.render()
            process = load_binary(binary, seed=seed)
            loaded = verify_loaded(process, target=f"{name}/seed{seed}")
            assert loaded.ok, loaded.render()


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_lint_configs_verify_clean_on_one_benchmark(config_name):
    module = SPEC_MODULES["mcf"]
    config = CONFIGS[config_name](3).replace(verify=False)
    binary = compile_module(module, config)
    report = verify_binary(binary)
    assert report.ok, report.render()


# ---------------------------------------------------------------------------
# mutation tests: each corruption must yield its exact rule ID
# ---------------------------------------------------------------------------


def test_flipped_post_offset_is_unwind001():
    binary = _fresh(SPEC_MODULES["mcf"])
    for record in binary.frame_records.values():
        if record.protected and record.post_offset > 0:
            record.post_offset += 1
            break
    else:
        pytest.fail("no protected function with a post offset")
    report = verify_binary(binary)
    assert "UNWIND001" in report.rules()


def test_shifted_return_address_is_btra001_push_mode():
    binary = _fresh(SPEC_MODULES["mcf"])
    for _, instr in binary.text:
        operand = instr.a
        if (
            instr.op is Op.PUSH
            and isinstance(operand, Imm)
            and operand.symbol
            and "::.Lret" in operand.symbol
        ):
            instr.a = Imm(operand.value + 8, symbol=operand.symbol)
            break
    else:
        pytest.fail("no pre-written return-address push found")
    assert verify_binary(binary).rules() == ["BTRA001"]


def test_shifted_return_address_is_btra001_avx_mode():
    binary = _fresh(SPEC_MODULES["mcf"], mode="avx")
    for index, (offset, symbol, addend) in enumerate(binary.data_relocs):
        if "::.Lret" in symbol:
            binary.data_relocs[index] = (offset, symbol, addend + 8)
            break
    else:
        pytest.fail("no return-address relocation in a BTRA array")
    assert verify_binary(binary).rules() == ["BTRA001"]


def test_overwritten_booby_trap_slot_is_btra002():
    binary = _fresh(SPEC_MODULES["mcf"])
    traps = set(binary.metadata["booby_trap_functions"])
    for _, instr in binary.text:
        operand = instr.a
        if instr.op is Op.PUSH and isinstance(operand, Imm) and operand.symbol in traps:
            instr.a = Imm(0, symbol="main")  # a real function, not a trap
            break
    else:
        pytest.fail("no booby-trap push found")
    assert verify_binary(binary).rules() == ["BTRA002"]


def test_btdp_off_guard_page_is_btdp002():
    # The unsafe_btdp_no_guard ablation points BTDPs at ordinary heap
    # memory — statically well-formed, so only verify_loaded catches it.
    binary = _fresh(SPEC_MODULES["mcf"], unsafe_btdp_no_guard=True)
    assert verify_binary(binary).ok
    process = load_binary(binary, seed=1)
    report = verify_loaded(process)
    assert report.rules() == ["BTDP002"]
    assert len(report.by_rule("BTDP002")) >= 1


def test_enlarged_prologue_sub_is_stack001_and_unwind001():
    binary = _fresh(SPEC_MODULES["mcf"])
    for record in sorted(binary.frame_records.values(), key=lambda r: r.entry_offset):
        if not record.protected:
            continue
        for offset, instr in binary.text:
            if (
                record.entry_offset <= offset < record.end_offset
                and instr.op is Op.SUB
                and instr.a is Reg.RSP
                and isinstance(instr.b, Imm)
            ):
                instr.b = Imm(instr.b.value + 16)  # +16 keeps call parity
                break
        else:
            continue
        break
    report = verify_binary(binary)
    assert "STACK001" in report.rules() and "UNWIND001" in report.rules()


def test_non_trap_in_booby_trap_body_is_trap002():
    binary = _fresh(SPEC_MODULES["mcf"])
    trap_name = sorted(binary.metadata["booby_trap_functions"])[0]
    record = binary.frame_records[trap_name]
    for offset, instr in binary.text:
        if record.entry_offset <= offset < record.end_offset:
            instr.op = Op.NOP
            break
    assert verify_binary(binary).rules() == ["TRAP002"]


def test_btra_planner_without_traps_is_plan001(simple_module):
    with pytest.raises(VerificationError) as excinfo:
        plan_btras(simple_module, R2CConfig.full(seed=1), None, ModulePlan(), set())
    assert excinfo.value.rules == ["PLAN001"]


# ---------------------------------------------------------------------------
# entropy auditor
# ---------------------------------------------------------------------------


def test_entropy_audit_needs_two_variants(simple_module):
    binary = _fresh(simple_module)
    with pytest.raises(ValueError):
        entropy.audit_binaries([binary], [1])


def test_identical_variants_share_every_gadget(simple_module):
    binary = _fresh(simple_module)
    audit = entropy.audit_binaries([binary, binary], [1, 1])
    assert audit.mean_survival == 1.0
    assert audit.layout_entropy_bits == 0.0
    assert audit.regalloc_divergence == 0.0


def test_diversified_spec_variants_hit_entropy_floors():
    """The floors a silently-deterministic 'diversified' build would fail."""
    audit = entropy.audit(SPEC_MODULES["perlbench"], R2CConfig.full(0), [1, 2, 3])
    assert audit.mean_survival <= 0.05
    assert audit.max_survival <= 0.10
    assert audit.layout_entropy_bits > 1.0
    assert audit.max_layout_entropy_bits == pytest.approx(log2(3))
    assert audit.regalloc_divergence > 0.05
    assert audit.slot_divergence > 0.05
    assert "entropy audit over 3 variants" in audit.render()


def test_gadget_extraction_finds_ret_suffixes(simple_module):
    binary = _fresh(simple_module)
    gadgets = entropy.extract_gadgets(binary, window=2)
    assert gadgets
    rets = [g for g in gadgets if len(g[1]) == 1]
    assert all(g[1][-1] == "ret" for g in gadgets)
    assert rets, "every ret yields at least the 1-instruction gadget"


# ---------------------------------------------------------------------------
# engine + lint integration
# ---------------------------------------------------------------------------


def test_engine_verify_flag_marks_record(simple_module):
    with ExperimentEngine(jobs=1) as engine:
        record = engine.run(
            RunRequest(
                module=simple_module,
                config=R2CConfig.full(seed=2).replace(verify=False),
                verify=True,
                label="analysis/verify",
            )
        )
        assert record.verified and record.exit_code == 42  # main returns acc
        # Verification is excluded from the run key: the verified record
        # satisfies the unverified request for the same cell from cache.
        again = engine.run(
            RunRequest(
                module=simple_module,
                config=R2CConfig.full(seed=2).replace(verify=False),
            )
        )
        assert again is record, "verify must not participate in the run key"


def test_run_lint_webserver_quick_is_clean():
    report = run_lint(corpus="webserver", seeds=2, quick=True)
    assert report.ok, render_lint(report)
    assert len(report.targets) >= 2
    assert all(t.audit is not None for t in report.targets)
    payload = json.loads(report.to_json())
    assert payload["ok"] and payload["corpus"] == "webserver"
    assert "0 findings" in render_lint(report)


def test_run_lint_rejects_unknown_config():
    with pytest.raises(ValueError):
        run_lint(config="definitely-not-a-config")
