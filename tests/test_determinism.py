"""Reproducibility: builds, loads, runs, and attack campaigns are pure
functions of their seeds — the property the whole evaluation methodology
rests on."""

from repro.attacks import ALL_ATTACKS, VictimSession
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.eval.harness import run_module
from repro.workloads.spec import build_spec_benchmark
from repro.workloads.victim import build_victim


def test_compile_is_deterministic():
    config = R2CConfig.full(seed=123)
    a = compile_module(build_victim(), config)
    b = compile_module(build_victim(), config)
    assert a.symbols_text == b.symbols_text
    assert bytes(a.data_image) == bytes(b.data_image)
    assert [(o, repr(i)) for o, i in a.text] == [(o, repr(i)) for o, i in b.text]


def test_run_metrics_are_deterministic():
    module = build_spec_benchmark("omnetpp")
    a = run_module(module, R2CConfig.full(seed=4), load_seed=9)
    b = run_module(module, R2CConfig.full(seed=4), load_seed=9)
    assert (a.cycles, a.instructions, a.calls, a.max_rss) == (
        b.cycles,
        b.instructions,
        b.calls,
        b.max_rss,
    )


def test_attack_campaigns_are_deterministic():
    for name in ("rop", "aocr", "pirop"):
        results = []
        for _ in range(2):
            session = VictimSession(R2CConfig.full(seed=31), load_seed=7)
            result = ALL_ATTACKS[name](session, attacker_seed=5)
            results.append((result.outcome, result.probes, result.detections))
        assert results[0] == results[1], name


def test_seed_isolation_between_features():
    """Changing one feature's presence must not reshuffle another feature's
    decisions (labelled child streams)."""
    base = R2CConfig(seed=9, enable_prolog_traps=True)
    with_nops = base.replace(enable_nop_insertion=True)
    from repro.core.pass_manager import build_plan
    import copy

    module = build_victim()
    plan_a, _ = build_plan(copy.deepcopy(module), base)
    plan_b, _ = build_plan(copy.deepcopy(module), with_nops)
    for name in plan_a.functions:
        assert (
            plan_a.functions[name].prolog_traps == plan_b.functions[name].prolog_traps
        )
