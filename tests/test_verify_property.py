"""Property test: every pass maps verifier-clean IR to verifier-clean
IR and verifier-clean binaries (ISSUE satellite c).

Random programs come from the deterministic generator the equivalence
suite already uses; Hypothesis explores the (program, compile seed,
BTRA mode) space.  For each example:

* the generated IR must pass the IR verifier;
* the optimizer must preserve verifier-cleanliness of the IR;
* the full R2C pass pipeline must emit a binary the invariant checker
  proves clean, and a loaded process whose BTDPs all hit guard pages —
  under both push- and AVX2-mode BTRA setup and multiple seeds.
"""

from __future__ import annotations

import copy

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.test_equivalence import generate_random_module

from repro.analysis import verify_binary, verify_loaded, verify_module
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.loader import load_binary
from repro.toolchain.opt import optimize_module

COMPILE_SEEDS = (1, 2, 3)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    program_seed=st.integers(min_value=0, max_value=10_000),
    compile_seed=st.sampled_from(COMPILE_SEEDS),
    mode=st.sampled_from(["push", "avx"]),
)
def test_passes_preserve_verifier_cleanliness(program_seed, compile_seed, mode):
    module = generate_random_module(program_seed)
    ir_report = verify_module(module)
    assert ir_report.ok, ir_report.render()

    config = R2CConfig.full(seed=compile_seed, btra_mode=mode).replace(verify=False)

    optimized = copy.deepcopy(module)
    optimize_module(optimized, config.opt_level)
    opt_report = verify_module(optimized, target=f"opt:{module.name}")
    assert opt_report.ok, opt_report.render()

    binary = compile_module(module, config)
    bin_report = verify_binary(binary, target=f"{module.name}/s{compile_seed}/{mode}")
    assert bin_report.ok, bin_report.render()

    process = load_binary(binary, seed=compile_seed)
    loaded = verify_loaded(process)
    assert loaded.ok, loaded.render()


@settings(max_examples=10, deadline=None)
@given(program_seed=st.integers(min_value=0, max_value=10_000))
def test_baseline_pipeline_also_verifier_clean(program_seed):
    # The no-diversification pipeline must satisfy the same invariants —
    # the checker proves calling-convention conformance, not R2C-ness.
    module = generate_random_module(program_seed)
    binary = compile_module(module, R2CConfig.baseline().replace(verify=False))
    report = verify_binary(binary)
    assert report.ok, report.render()
