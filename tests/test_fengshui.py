"""Tests for the feng-shui AOCR refinement (Section 7.2.3)."""

import pytest

from repro.attacks import AttackOutcome, VictimSession, aocr_attack
from repro.attacks.fengshui import (
    GROOMED_DISTANCES,
    fengshui_attack,
    find_groomed_pairs,
)
from repro.core.config import R2CConfig


def test_pair_finder_matches_known_distances():
    values = [0x1000, 0x1000 + 48, 0x9000, 0x5000]
    pairs = find_groomed_pairs(values)
    assert (0x1000, 0x1000 + 48) in pairs
    assert all(b - a in GROOMED_DISTANCES for a, b in pairs)


def test_pair_finder_ignores_random_values():
    import random

    rng = random.Random(7)
    values = [0x6200_0000_0000 + rng.randint(0, 2**24) for _ in range(8)]
    pairs = find_groomed_pairs(values)
    assert len(pairs) <= 1  # random addresses almost never pair up


def test_fengshui_succeeds_against_baseline():
    session = VictimSession(R2CConfig.baseline(), execute_only=False)
    result = fengshui_attack(session, attacker_seed=1)
    assert result.outcome is AttackOutcome.SUCCESS


def test_fengshui_dodges_btdp_detection_better_than_plain_aocr():
    """The Section 7.2.3 concession, quantified: distance filtering avoids
    the guard pages plain AOCR trips over."""
    plain_detected = 0
    fengshui_detected = 0
    trials = 6
    for trial in range(trials):
        plain = VictimSession(R2CConfig.full(seed=600 + trial))
        if aocr_attack(plain, attacker_seed=trial).outcome is AttackOutcome.DETECTED:
            plain_detected += 1
        refined = VictimSession(R2CConfig.full(seed=600 + trial))
        if fengshui_attack(refined, attacker_seed=trial).outcome is AttackOutcome.DETECTED:
            fengshui_detected += 1
    assert fengshui_detected < plain_detected


def test_fengshui_still_fails_against_full_r2c():
    """Dodging detection is not winning: shuffled+padded globals still
    break the corruption stage ("reduces attack surface considerably")."""
    for trial in range(4):
        session = VictimSession(R2CConfig.full(seed=650 + trial))
        result = fengshui_attack(session, attacker_seed=trial)
        assert result.outcome is not AttackOutcome.SUCCESS


def test_fengshui_beats_btdp_only_hardening():
    """BTDPs alone (no data-layout shuffling) do NOT stop the refined
    attack — the defense needs the whole R2C stack, which is exactly why
    the paper combines code, stack, and data diversification."""
    successes = 0
    for trial in range(4):
        config = R2CConfig(seed=660 + trial, enable_btdp=True)
        session = VictimSession(config, execute_only=False)
        if fengshui_attack(session, attacker_seed=trial).outcome is AttackOutcome.SUCCESS:
            successes += 1
    assert successes >= 3
