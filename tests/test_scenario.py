"""Tests for the victim-session harness: probes, restarts, budgets."""

import pytest

from repro.attacks.monitor import DefenseMonitor
from repro.attacks.scenario import AttackAborted, VictimSession, run_attack
from repro.attacks.outcomes import AttackOutcome
from repro.core.config import R2CConfig
from repro.workloads.victim import ATTACK_ARG, SUCCESS_TAG


def test_probe_clean_on_noop_hook():
    session = VictimSession(R2CConfig.baseline())
    status, result = session.probe(lambda view: None)
    assert status == "clean"
    assert result is not None and result.exit_code == 0


def test_probe_hook_fires_exactly_once():
    session = VictimSession(R2CConfig.baseline())
    fired = []
    session.probe(lambda view: fired.append(view.rsp))
    assert len(fired) == 1  # six requests, one armed hook


def test_probe_abort_is_clean():
    session = VictimSession(R2CConfig.baseline())

    def hook(view):
        raise AttackAborted("giving up")

    status, _ = session.probe(hook)
    assert status == "clean"


def test_probe_crash_classified():
    session = VictimSession(R2CConfig.baseline())

    def hook(view):
        view.read_word(0xDEAD_0000_0000)

    status, result = session.probe(hook)
    assert status == "crashed"
    assert result is None
    assert session.monitor.crashes == 1


def test_probe_detection_classified():
    session = VictimSession(R2CConfig.full(seed=3))

    def hook(view):
        process = view._process
        view.read_word(process.r2c_runtime["btdp_values"][0])

    status, _ = session.probe(hook)
    assert status == "detected"
    assert session.monitor.btdp_hits == 1


def test_forked_workers_share_layout():
    session = VictimSession(R2CConfig.full(seed=3))
    p1, _ = session.spawn()
    p2, _ = session.spawn()
    assert p1.symbols == p2.symbols


def test_detection_budget_trips():
    monitor = DefenseMonitor(detection_budget=2)
    assert not monitor.tripped
    from repro.errors import GuardPageFault

    monitor.classify(GuardPageFault("read", 1))
    monitor.classify(GuardPageFault("read", 2))
    assert monitor.tripped


def test_run_attack_success_path():
    session = VictimSession(R2CConfig.baseline())

    def hook(view):
        # Simulate the goal directly: write through the handler pointer.
        ref = view.reference
        process = view._process
        data_base = process.symbols["config_blob"] - ref.global_offset("config_blob")
        target = view.read_word(data_base + ref.global_offset("admin_table"))
        view.write_word(data_base + ref.global_offset("handler_ptr"), target)
        view.write_word(data_base + ref.global_offset("default_param"), ATTACK_ARG)

    result = run_attack(session, hook, "manual")
    assert result.outcome is AttackOutcome.SUCCESS
    assert result.attack == "manual"


def test_victim_session_with_build_seed_override():
    a = VictimSession(R2CConfig.full(), build_seed=1)
    b = VictimSession(R2CConfig.full(), build_seed=2)
    assert a.config.seed == 1 and b.config.seed == 2
    assert a.binary.symbols_text != b.binary.symbols_text


def test_n_variant_session_monoculture_is_compromised():
    """Identical (baseline) variants offer the lockstep no divergence to
    catch: the replicated writes compromise every variant."""
    from repro.attacks.rop import make_rop_hook

    session = VictimSession(R2CConfig.baseline(), variants=2, build_seed=1)
    result = run_attack(session, make_rop_hook(), "rop")
    assert result.outcome is AttackOutcome.SUCCESS


def test_n_variant_session_surfaces_diverged_outcome():
    """Weak (code-only) diversity loses one-on-one to AOCR, but the
    2-variant lockstep session turns the attack into DIVERGED — the
    first-class outcome, counted by the monitor."""
    from repro.attacks.aocr import make_aocr_hook

    code_only = R2CConfig(
        enable_function_shuffle=True,
        enable_global_shuffle=True,
        enable_stack_slot_shuffle=True,
    )
    session = VictimSession(code_only, variants=2, build_seed=80)
    result = run_attack(session, make_aocr_hook(), "aocr", attacker_seed=0)
    assert result.outcome is AttackOutcome.DIVERGED
    assert session.monitor.divergences == 1
    assert session.monitor.detections >= 1


def test_single_variant_session_is_unchanged():
    session = VictimSession(R2CConfig.full(), build_seed=1)
    assert session.variants == 1
    assert session.variant_binaries == [session.binary]
    with pytest.raises(ValueError):
        VictimSession(R2CConfig.full(), variants=0)


def test_cli_list_and_unknown(capsys):
    from repro.__main__ import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure6" in out
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_runs_quick_security(capsys):
    from repro.__main__ import main

    assert main(["security", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "closed" in out
