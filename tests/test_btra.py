"""BTRA invariants: the return-address properties of Section 4.1.

These tests compile real programs, stop them at a hook inside a callee,
and inspect the concrete stack bytes — verifying that booby-trapped return
addresses look, sit, and behave exactly as the paper specifies.
"""

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.errors import BoobyTrapTriggered
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder

WORD = 8


def build_probe_module(loop_calls=3):
    """main calls callee from site A (in a loop) and from site B once."""
    ir = IRBuilder("probe")
    callee = ir.function("callee", params=["x"])
    callee.local("t")
    callee.store_local("t", callee.add(callee.param("x"), 1))
    callee.rtcall("attack_hook", [], void=True)
    callee.ret(callee.load_local("t"))

    m = ir.function("main")
    m.local("acc")
    m.store_local("acc", 0)
    ivar = m.counted_loop(loop_calls, "body", "done")
    i = m.load_local(ivar)
    r = m.call("callee", [i])  # site A
    m.store_local("acc", m.add(m.load_local("acc"), r))
    m.loop_backedge(ivar, "body")
    m.new_block("done")
    r2 = m.call("callee", [7])  # site B
    m.out(m.add(m.load_local("acc"), r2))
    m.ret(0)
    return ir.finish()


class StackProbe:
    """Runs a compiled probe module, snapshotting the stack at each hook."""

    def __init__(self, config, *, load_seed=5, loop_calls=3):
        self.module = build_probe_module(loop_calls)
        self.binary = compile_module(self.module, config)
        self.process = load_binary(self.binary, seed=load_seed)
        self.snapshots = []

        def hook(process, cpu):
            rsp = cpu.regs[Reg.RSP]
            self.snapshots.append(self._snapshot(rsp))
            return 0

        self.process.register_service("attack_hook", hook)
        self.result = CPU(self.process, get_costs("epyc-rome")).run()

    def _snapshot(self, rsp):
        binary = self.binary
        text_base = self.process.text_base
        record = binary.frame_records["callee"]
        ra_slot = rsp + record.frame_bytes + WORD * record.post_offset
        ra = self.process.memory.load_word_raw(ra_slot)
        site = binary.callsite_records.get(ra - text_base)
        pre = [
            self.process.memory.load_word_raw(ra_slot + WORD * (k + 1))
            for k in range(site.pre_words if site else 0)
        ]
        post = [
            self.process.memory.load_word_raw(ra_slot - WORD * (k + 1))
            for k in range(site.post_words if site else 0)
        ]
        return {"rsp": rsp, "ra_slot": ra_slot, "ra": ra, "pre": pre, "post": post, "site": site}

    def booby_trap_ranges(self):
        names = self.binary.metadata["booby_trap_functions"]
        base = self.process.text_base
        return [
            (base + self.binary.frame_records[n].entry_offset,
             base + self.binary.frame_records[n].end_offset)
            for n in names
        ]


FULL_PUSH = R2CConfig.full(seed=21, btra_mode="push")
FULL_AVX = R2CConfig.full(seed=21, btra_mode="avx")


@pytest.fixture(scope="module")
def push_probe():
    return StackProbe(FULL_PUSH)


@pytest.fixture(scope="module")
def avx_probe():
    return StackProbe(FULL_AVX)


@pytest.mark.parametrize("probe_config", [FULL_PUSH, FULL_AVX], ids=["push", "avx"])
def test_btras_surround_the_return_address(probe_config):
    probe = StackProbe(probe_config)
    snap = probe.snapshots[0]
    assert snap["site"] is not None and snap["site"].uses_btra
    assert snap["site"].pre_words >= 1
    traps = probe.booby_trap_ranges()

    def is_btra(value):
        return any(start <= value < end for start, end in traps)

    assert all(is_btra(v) for v in snap["pre"]), "pre-BTRAs must target booby traps"
    assert all(is_btra(v) for v in snap["post"])
    assert not is_btra(snap["ra"]), "the real RA must not be a booby trap"


def test_property_a_each_btra_used_once_per_site(push_probe):
    snap = push_probe.snapshots[0]
    candidates = snap["pre"] + snap["post"] + [snap["ra"]]
    assert len(set(candidates)) == len(candidates)


def test_property_b_same_site_same_btras(push_probe):
    """Multiple invocations of one call site show identical BTRA sets."""
    first, second, third = push_probe.snapshots[:3]
    assert first["pre"] == second["pre"] == third["pre"]
    assert first["post"] == second["post"] == third["post"]
    assert first["ra"] == second["ra"] == third["ra"]


def test_property_c_different_sites_different_btras(push_probe):
    site_a = push_probe.snapshots[0]
    site_b = push_probe.snapshots[3]
    assert site_a["ra"] != site_b["ra"]
    assert set(site_a["pre"]) != set(site_b["pre"])


def test_pre_count_is_even_everywhere():
    for config in (FULL_PUSH, FULL_AVX):
        binary = compile_module(build_probe_module(), config)
        for record in binary.callsite_records.values():
            if record.uses_btra:
                assert record.pre_words % 2 == 0


def test_post_bounded_by_callee_post_offset():
    binary = compile_module(build_probe_module(), FULL_PUSH)
    for record in binary.callsite_records.values():
        if record.uses_btra and record.callee is not None:
            callee_rec = binary.frame_records[record.callee]
            if callee_rec.protected:
                assert record.post_words <= callee_rec.post_offset


def test_avx_and_push_produce_same_stack_shape(push_probe, avx_probe):
    """Both setup sequences leave pre/post BTRAs around the RA."""
    push_snap = push_probe.snapshots[0]
    avx_snap = avx_probe.snapshots[0]
    assert len(push_snap["pre"]) >= 1 and len(avx_snap["pre"]) >= 1
    assert avx_snap["site"].use_avx and not push_snap["site"].use_avx

    # Same seed -> the same plan decisions -> the same symbolic targets
    # (absolute addresses differ because the two encodings lay text out
    # differently).
    def symbolic(probe, values):
        out = []
        for value in values:
            offset = value - probe.process.text_base
            name = probe.binary.function_at_offset(offset)
            out.append((name, offset - probe.binary.frame_records[name].entry_offset))
        return out

    assert symbolic(push_probe, push_snap["pre"]) == symbolic(avx_probe, avx_snap["pre"])


def test_returning_into_a_btra_detonates(push_probe):
    """The reactive component: using a BTRA as a return target traps."""
    probe = StackProbe(FULL_PUSH)
    captured = {}

    def hook(process, cpu):
        if captured:
            return 0
        rsp = cpu.regs[Reg.RSP]
        snap = probe._snapshot.__func__(probe, rsp)  # reuse the prober
        captured["done"] = True
        process.memory.write_word(snap["ra_slot"], snap["pre"][0])
        return 0

    process = load_binary(probe.binary, seed=6)
    process.register_service("attack_hook", hook)
    # The probe's snapshot helper reads through probe.process; repoint it.
    probe.process = process
    with pytest.raises(BoobyTrapTriggered):
        CPU(process, get_costs("epyc-rome")).run()


def test_unprotected_callees_get_no_btras_by_default():
    ir = IRBuilder()
    ext = ir.function("external", params=["x"], protected=False)
    ext.ret(ext.param("x"))
    m = ir.function("main")
    m.out(m.call("external", [1]))
    m.ret(0)
    config = R2CConfig(seed=3, enable_btra=True, btras_for_unprotected_calls=False)
    binary = compile_module(ir.finish(), config)
    for record in binary.callsite_records.values():
        if record.callee == "external":
            assert not record.uses_btra


def test_worst_case_mode_adds_btras_to_unprotected_calls():
    ir = IRBuilder()
    ext = ir.function("external", params=["x"], protected=False)
    ext.ret(ext.param("x"))
    m = ir.function("main")
    m.out(m.call("external", [5]))
    m.ret(0)
    module = ir.finish()
    config = R2CConfig(seed=3, enable_btra=True, btras_for_unprotected_calls=True)
    binary = compile_module(module, config)
    found = [r for r in binary.callsite_records.values() if r.callee == "external"]
    assert found and all(r.uses_btra for r in found)
    # And the program still runs correctly.
    from tests.conftest import assert_equivalent

    assert_equivalent(module, config)


def test_stack_arg_unprotected_callee_never_gets_btras():
    ir = IRBuilder()
    params = [f"p{i}" for i in range(8)]
    ext = ir.function("external_wide", params=params, protected=False)
    acc = ext.param("p0")
    for p in params[1:]:
        acc = ext.add(acc, ext.param(p))
    ext.ret(acc)
    m = ir.function("main")
    m.out(m.call("external_wide", list(range(8))))
    m.ret(0)
    module = ir.finish()
    config = R2CConfig(seed=3, enable_btra=True, btras_for_unprotected_calls=True)
    binary = compile_module(module, config)
    for record in binary.callsite_records.values():
        if record.callee == "external_wide":
            assert not record.uses_btra
    from tests.conftest import assert_equivalent

    assert_equivalent(module, config)


def test_section_742_unprotected_caller_disables_callee_r2c():
    """A protected stack-arg function directly called from unprotected code
    has R2C disabled (the WebKit/Chromium patches)."""
    ir = IRBuilder()
    params = [f"p{i}" for i in range(8)]
    wide = ir.function("wide", params=params)  # protected, stack args
    acc = wide.param("p0")
    for p in params[1:]:
        acc = wide.add(acc, wide.param(p))
    wide.ret(acc)
    ext = ir.function("ext_caller", protected=False)
    ext.ret(ext.call("wide", [1, 2, 3, 4, 5, 6, 7, 8]))
    m = ir.function("main")
    m.out(m.call("ext_caller"))
    m.out(m.call("wide", [8, 7, 6, 5, 4, 3, 2, 1]))
    m.ret(0)
    module = ir.finish()
    config = R2CConfig.full(seed=5)
    binary = compile_module(module, config)
    assert "wide" in binary.metadata["r2c_disabled_functions"]
    from tests.conftest import assert_equivalent

    assert_equivalent(module, config)


def test_callee_btras_ablation_shares_sets():
    probe = StackProbe(FULL_PUSH.replace(unsafe_callee_btras=True))
    site_a = probe.snapshots[0]
    site_b = probe.snapshots[3]
    # Both sites call `callee`: under the weakened variant their BTRA sets
    # coincide, so the only difference is the return address itself.
    assert site_a["pre"] == site_b["pre"]
    assert site_a["ra"] != site_b["ra"]


def test_integrity_check_detonates_on_btra_corruption():
    config = FULL_PUSH.replace(btra_integrity_check=True)
    module = build_probe_module()
    binary = compile_module(module, config)
    process = load_binary(binary, seed=9)
    text_base = process.text_base
    record = binary.frame_records["callee"]
    state = {}

    def hook(proc, cpu):
        if state:
            return 0
        state["done"] = True
        rsp = cpu.regs[Reg.RSP]
        ra_slot = rsp + record.frame_bytes + WORD * record.post_offset
        ra = proc.memory.load_word_raw(ra_slot)
        site = binary.callsite_records[ra - text_base]
        # Corrupt every pre-BTRA (a PIROP-style spray).
        for k in range(site.pre_words):
            proc.memory.write_word(ra_slot + WORD * (k + 1), 0x4141_4141)
        return 0

    process.register_service("attack_hook", hook)
    with pytest.raises(BoobyTrapTriggered):
        CPU(process, get_costs("epyc-rome")).run()
