"""Tests for code-pointer hiding (Section 2.2) and the tooling additions
(disassembler, debugger)."""

import pytest

from repro.attacks import AttackOutcome, VictimSession, aocr_attack
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.core.passes.cph import TRAMPOLINE_PREFIX
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder
from repro.toolchain.disasm import disassemble_function, format_instruction, section_map
from repro.workloads.victim import build_victim
from tests.conftest import assert_equivalent

CPH_CFG = R2CConfig(seed=5, enable_cph=True)


def fn_ptr_module():
    ir = IRBuilder()
    f = ir.function("callee", params=["x"])
    f.ret(f.mul(f.param("x"), 3))
    ir.global_var("fp", init=(("callee", 0),))
    m = ir.function("main")
    target = m.load_global("fp")
    m.out(m.icall(target, [5]))
    got_target = m.func_addr("callee")
    m.out(m.icall(got_target, [7]))
    m.ret(0)
    return ir.finish()


def test_cph_is_semantics_preserving():
    assert_equivalent(fn_ptr_module(), CPH_CFG)
    assert_equivalent(build_victim(), CPH_CFG)
    assert_equivalent(build_victim(), R2CConfig.full(seed=9).replace(enable_cph=True))


def test_cph_hides_function_addresses_in_data_section():
    binary = compile_module(fn_ptr_module(), CPH_CFG)
    process = load_binary(binary, seed=2)
    observable = process.memory.read_word(process.symbols["fp"])
    assert observable != process.symbols["callee"]
    assert observable == process.symbols[f"{TRAMPOLINE_PREFIX}callee"]
    # GOT entry hidden too.
    got = process.symbols["__got__"]
    assert process.memory.read_word(got) == process.symbols[f"{TRAMPOLINE_PREFIX}callee"]


def test_cph_trampoline_is_one_jump():
    binary = compile_module(fn_ptr_module(), CPH_CFG)
    name = f"{TRAMPOLINE_PREFIX}callee"
    start, end = binary.function_range(name)
    instrs = [i for off, i in binary.text if start <= off < end]
    assert len(instrs) == 1
    assert instrs[0].tag == "cph-trampoline"


def test_cph_does_not_stop_aocr():
    """The Section 2.2 observation: whole-function reuse through a CPH
    pointer still calls the function."""
    model_cfg = R2CConfig(
        seed=7,
        enable_cph=True,
        enable_function_shuffle=True,
        enable_nop_insertion=True,
        booby_traps_standalone=True,
    )
    successes = 0
    for trial in range(3):
        session = VictimSession(model_cfg.replace(seed=400 + trial), execute_only=True)
        if aocr_attack(session, attacker_seed=trial).outcome is AttackOutcome.SUCCESS:
            successes += 1
    assert successes >= 2


def test_readactor_model_uses_cph():
    from repro.defenses import DEFENSE_MODELS

    assert DEFENSE_MODELS["readactor"].config.enable_cph


# ---- tooling: disassembler -------------------------------------------------

def test_disassemble_function_lists_instructions():
    binary = compile_module(fn_ptr_module(), R2CConfig.baseline())
    text = disassemble_function(binary, "callee")
    assert "<callee>" in text
    assert "imul" in text
    assert "ret" in text


def test_disassembly_shows_diversification_tags():
    binary = compile_module(build_victim(), R2CConfig.full(seed=3, btra_mode="push"))
    text = disassemble_function(binary, "process_request")
    assert "btra-setup" in text
    assert "btdp" in text


def test_section_map_lists_everything():
    binary = compile_module(build_victim(), R2CConfig.full(seed=3))
    text = section_map(binary)
    assert "process_request" in text
    assert "__got__" in text or "handler_ptr" in text
    assert "[unprotected]" in text  # booby traps / _start


def test_format_instruction_operands():
    from repro.machine.isa import Imm, Instruction, Mem, Op, Reg

    line = format_instruction(0x40, Instruction(Op.MOV, Reg.RAX, Mem(Reg.RSP, 8)))
    assert "mov" in line and "rax" in line and "rsp" in line


# ---- tooling: debugger ---------------------------------------------------------

def make_debug_session(config=None):
    binary = compile_module(build_victim(), config or R2CConfig.baseline())
    process = load_binary(binary, seed=3)
    process.register_service("attack_hook", lambda proc, cpu: 0)
    cpu = CPU(process, get_costs("epyc-rome"))
    return Debugger(cpu), process


def test_debugger_breakpoint_by_symbol():
    debugger, process = make_debug_session()
    debugger.break_at("process_request")
    finished = debugger.cont()
    assert not finished
    assert debugger.rip == process.symbols["process_request"]
    assert debugger.current_function() == "process_request"


def test_debugger_resume_and_finish():
    debugger, process = make_debug_session()
    debugger.break_at("target_exec")  # never called legitimately
    finished = debugger.cont()
    assert finished
    assert debugger.result.exit_code == 0


def test_debugger_stepping():
    debugger, process = make_debug_session()
    debugger.break_at("main")
    debugger.cont()
    start_rip = debugger.rip
    debugger.step(3)
    assert debugger.rip != start_rip


def test_debugger_repeated_breakpoint_hits():
    debugger, process = make_debug_session()
    debugger.break_at("process_request")
    hits = 0
    while not debugger.cont():
        hits += 1
        if hits > 10:
            break
    assert hits == 6  # the victim serves six requests


def test_debugger_watchpoint_sees_global_write():
    debugger, process = make_debug_session()
    debugger.add_watchpoint(process.symbols["counters"] + 24)  # audit_log target
    debugger.cont()
    assert debugger.watch_hits
    assert debugger.watch_hits[0]["address"] == process.symbols["counters"] + 24


def test_debugger_rejects_busy_cpu():
    debugger, _ = make_debug_session()
    with pytest.raises(ValueError):
        Debugger(debugger.cpu)
