"""Tests for the evaluation harness, statistics, and experiment drivers.

The experiment drivers run here on reduced inputs (few benchmarks, single
seed); the benchmarks/ directory runs them at full size.
"""

import pytest

from repro.core.config import R2CConfig
from repro.eval.experiments import (
    btra_guess_probability,
    experiment_memory,
    experiment_scalability,
    experiment_security_probabilities,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_webserver,
)
from repro.eval.harness import measure_overhead, run_module, verify_equivalence
from repro.eval.stats import geomean, median, overhead_percent, ratio_summary
from repro.eval import report
from repro.workloads.spec import build_spec_benchmark


def test_geomean():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([1.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_median():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 3, 2]) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        median([])


def test_overhead_percent():
    assert overhead_percent(110, 100) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        overhead_percent(1, 0)


def test_ratio_summary():
    summary = ratio_summary({"a": 1.0, "b": 1.21})
    assert summary["max"] == pytest.approx(1.21)
    assert summary["geomean"] == pytest.approx(1.1)


def test_run_module_collects_metrics():
    stats = run_module(build_spec_benchmark("xz"), R2CConfig.baseline())
    assert stats.exit_code == 0
    assert stats.instructions > 1000
    assert stats.calls > 10
    assert stats.max_rss > 0


def test_measure_overhead_protected_costs_more():
    ratio = measure_overhead(
        lambda: build_spec_benchmark("omnetpp"),
        R2CConfig.full(),
        seeds=(1,),
    )
    assert ratio > 1.05


def test_verify_equivalence_helper():
    assert verify_equivalence(build_spec_benchmark("xz"), R2CConfig.full(seed=3))


def test_table1_shapes_hold():
    """Push > AVX > BTDP/Prolog/Layout; Layout ~= 1 (Table 1)."""
    rows = experiment_table1(
        seeds=(1,),
        benchmarks=["omnetpp", "xalancbmk", "lbm"],
        components=["Push", "AVX", "Layout"],
    )
    assert rows["Push"]["geomean"] > rows["AVX"]["geomean"]
    assert rows["Layout"]["geomean"] < 1.02
    assert rows["Push"]["max"] >= rows["Push"]["geomean"]
    rendered = report.render_table1(rows)
    assert "Push" in rendered and "geomean" in rendered


def test_table2_counts_scale_free_ordering():
    counts = experiment_table2(inputs=(1,), benchmarks=["nab", "lbm", "omnetpp"])
    assert counts["nab"] > counts["omnetpp"] > counts["lbm"]
    assert "nab" in report.render_table2(counts)


def test_webserver_experiment_shows_overhead():
    data = experiment_webserver(requests=40, seeds=(1,), machines=["epyc-rome", "xeon"])
    for server, per_machine in data.items():
        for machine, pct in per_machine.items():
            assert 0 < pct < 60
    assert "nginx" in report.render_webserver(data)


def test_memory_experiment_contrast():
    """SPEC overhead small, webserver overhead large (Section 6.2.5)."""
    data = experiment_memory(benchmarks=["mcf", "lbm"])
    assert all(pct < 15 for pct in data["spec"].values())
    assert all(pct > 40 for pct in data["webserver"].values())
    assert all(share > 30 for share in data["btdp_share"].values())
    assert "BTDP" in report.render_memory(data)


def test_scalability_experiment_verifies():
    rows = experiment_scalability(sizes=(60, 120))
    assert all(row["verified"] for row in rows)
    assert rows[1]["instructions"] > rows[0]["instructions"]
    assert "functions" in report.render_scalability(rows)


def test_table3_matrix_small():
    matrix = experiment_table3(
        trials=1, attacks=["rop", "aocr"], defenses=["none", "r2c"]
    )
    assert matrix["none"]["rop"]["success"] == 1
    assert matrix["none"]["aocr"]["success"] == 1
    assert matrix["r2c"]["rop"]["success"] == 0
    assert matrix["r2c"]["aocr"]["success"] == 0
    rendered = report.render_table3(matrix)
    assert "●" in rendered and "○" in rendered


def test_security_probability_closed_form():
    assert btra_guess_probability(10, 1) == pytest.approx(1 / 11)
    assert btra_guess_probability(10, 4) == pytest.approx(0.00007, abs=2e-5)


def test_security_probabilities_match_monte_carlo():
    data = experiment_security_probabilities(
        leaks=(1, 2), mc_trials=30000, stack_samples=4
    )
    for n in (1, 2):
        closed = data["btra_closed_form"][n]
        measured = data["btra_measured"][n]
        assert measured == pytest.approx(closed, rel=0.35)
    frac = data["heap_benign_fraction"]
    assert frac is not None and 0.0 < frac < 1.0
    assert "closed" in report.render_security_probabilities(data)
