"""Tests for frame layout and the 16-byte alignment parity rule."""

import pytest

from repro.errors import ToolchainError
from repro.rng import DiversityRng
from repro.toolchain.frame import build_frame


def test_sequential_layout():
    layout = build_frame([("a", 1), ("b", 2), ("c", 1)])
    assert layout.offsets["a"] == 0
    assert layout.offsets["b"] == 8
    assert layout.offsets["c"] == 24


def test_alignment_parity_rule():
    """(frame_words + post + 1) must always be even (Section 5.1)."""
    for post in range(0, 6):
        for units in range(1, 9):
            layout = build_frame([(f"s{i}", 1) for i in range(units)], post_offset=post)
            frame_words = layout.frame_bytes // 8
            assert (frame_words + post + 1) % 2 == 0, (post, units)


def test_shuffle_permutes_offsets_but_keeps_extent():
    units = [(f"s{i}", 1) for i in range(10)]
    base = build_frame(units)
    shuffled = build_frame(units, shuffle_rng=DiversityRng(5).child("slots"))
    assert base.frame_bytes == shuffled.frame_bytes
    assert set(base.offsets) == set(shuffled.offsets)
    assert [base.offsets[n] for n, _ in units] != [shuffled.offsets[n] for n, _ in units]
    # All offsets still distinct and within the frame.
    offsets = sorted(shuffled.offsets.values())
    assert len(set(offsets)) == len(offsets)
    assert all(0 <= o < shuffled.frame_bytes for o in offsets)


def test_arrays_stay_contiguous_under_shuffle():
    units = [("buf", 4), ("x", 1), ("y", 1)]
    shuffled = build_frame(units, shuffle_rng=DiversityRng(3).child("slots"))
    other_offsets = [shuffled.offsets["x"], shuffled.offsets["y"]]
    buf = shuffled.offsets["buf"]
    for other in other_offsets:
        assert not (buf <= other < buf + 32)


def test_duplicate_slot_rejected():
    with pytest.raises(ToolchainError):
        build_frame([("a", 1), ("a", 1)])


def test_bad_size_rejected():
    with pytest.raises(ToolchainError):
        build_frame([("a", 0)])


def test_unknown_slot_lookup():
    layout = build_frame([("a", 1)])
    with pytest.raises(ToolchainError):
        layout.offset("zzz")
