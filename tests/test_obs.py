"""Tests for the observability layer: tracing, counters, profiler, bench.

The wall has three bricks:

* **Golden traces** — the span tree for one engine-mediated compile+run
  is pinned name-for-name (names, parentage, ordering; never durations).
* **Round-trips** — every JSON artifact (trace, counters, bench) loads
  back, and unknown keys are dropped, matching ``RunRecord.from_json``'s
  forward-compatibility semantics.
* **Passivity** — attaching a profiler or enabling tracing never changes
  ``ExecutionResult``, faults, or the final ``rip`` (hypothesis swept).
"""

import dataclasses
import json
import math
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import BoobyTrapTriggered
from repro.eval.engine import ExperimentEngine, RunRequest
from repro.eval.report import render_bench
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU, UNTAGGED_TAG
from repro.machine.isa import Imm, Instruction, Op, Reg
from repro.machine.loader import load_binary
from repro.obs.bench import BenchReport, run_bench, validate
from repro.obs.counters import PerfCounters
from repro.obs.profiler import UNKNOWN_FUNCTION, CycleProfiler
from repro.obs.tracing import (
    Span,
    TraceCollector,
    enable_tracing,
    get_collector,
    recent_span_names,
    span,
    span_tree,
    trace_capture,
    tracing_enabled,
)
from repro.toolchain.builder import IRBuilder
from repro.workloads.spec import build_spec_benchmark

from tests.test_backends import BACKENDS, assemble

I = Instruction


@contextmanager
def traced():
    """Enable tracing on a clean collector; restore the previous state."""
    previous = enable_tracing(True)
    get_collector().clear()
    try:
        yield get_collector()
    finally:
        enable_tracing(previous)
        get_collector().clear()


def small_module(name="obs-small"):
    ir = IRBuilder(name)
    leaf = ir.function("leaf", params=["x"])
    leaf.ret(leaf.add(leaf.mul(leaf.param("x"), 3), 1))
    main = ir.function("main")
    main.local("acc")
    main.store_local("acc", 0)
    ivar = main.counted_loop(6, "body", "done")
    total = main.add(main.load_local("acc"), main.call("leaf", [main.load_local(ivar)]))
    main.store_local("acc", total)
    main.loop_backedge(ivar, "body")
    main.new_block("done")
    main.out(main.load_local("acc"))
    main.ret(0)
    return ir.finish()


# ---------------------------------------------------------------------------
# Tracing core.
# ---------------------------------------------------------------------------


def test_tracing_disabled_by_default_and_null_span_is_harmless():
    assert not tracing_enabled()
    before = len(get_collector().spans)
    with span("compile/module", "compile", module="m") as open_span:
        open_span.set(extra=1)
    assert len(get_collector().spans) == before


def test_span_nesting_builds_the_tree():
    with traced() as collector:
        with span("outer", "t"):
            with span("inner-a", "t"):
                pass
            with span("inner-b", "t"):
                pass
        with span("sibling", "t"):
            pass
        tree = span_tree(collector.spans)
    assert tree == [
        {"name": "outer", "children": [
            {"name": "inner-a", "children": []},
            {"name": "inner-b", "children": []},
        ]},
        {"name": "sibling", "children": []},
    ]


def test_span_args_and_set():
    with traced() as collector:
        with span("probe", "engine", label="x") as open_span:
            open_span.set(hit=True)
        recorded = collector.spans[0]
    assert recorded.args == {"label": "x", "hit": True}
    assert recorded.category == "engine"
    assert recorded.duration_us >= 0.0


def test_recent_span_names_oldest_first():
    with traced():
        for name in ("a", "b", "c"):
            with span(name, "t"):
                pass
        assert recent_span_names() == ("a", "b", "c")
        assert recent_span_names(2) == ("b", "c")
    assert recent_span_names() == ()


def test_trace_capture_windows():
    with traced():
        with span("before", "t"):
            pass
        with trace_capture() as capture:
            with span("during", "t"):
                pass
        with span("after", "t"):
            pass
        assert [s.name for s in capture.spans()] == ["during"]
        assert capture.tree() == [{"name": "during", "children": []}]


def test_trace_json_round_trip_drops_unknown_keys():
    with traced() as collector:
        with span("outer", "t", k=1):
            with span("inner", "t"):
                pass
        text = collector.to_json()
    data = json.loads(text)
    data["mystery"] = True
    data["spans"][0]["novel_field"] = "future"
    spans = TraceCollector.from_json(json.dumps(data))
    assert [s.name for s in spans] == ["inner", "outer"]  # completion order
    assert spans[1].args == {"k": 1}
    assert not hasattr(spans[0], "novel_field")


def test_chrome_trace_shape(tmp_path):
    with traced() as collector:
        with span("outer", "compile"):
            with span("inner", "compile"):
                pass
        path = tmp_path / "trace.json"
        collector.write_chrome_trace(path)
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    # Chrome events are emitted in start order, not completion order.
    assert [e["name"] for e in events] == ["outer", "inner"]
    for event in events:
        assert event["ph"] == "X"
        assert event["cat"] == "compile"
        assert event["dur"] >= 0.0


# ---------------------------------------------------------------------------
# The golden engine trace: names, parentage and ordering are pinned.
# Durations never participate.
# ---------------------------------------------------------------------------

GOLDEN_ENGINE_TREE = [
    {"name": "engine/cache-probe", "children": [
        {"name": "compile/module", "children": [
            {"name": "compile/verify-ir", "children": []},
            {"name": "compile/plan", "children": [
                {"name": "compile/pass:oia", "children": []},
                {"name": "compile/pass:booby-traps", "children": []},
                {"name": "compile/pass:btra", "children": []},
                {"name": "compile/pass:nop-insertion", "children": []},
                {"name": "compile/pass:prolog-traps", "children": []},
                {"name": "compile/pass:stack-slot-shuffle", "children": []},
                {"name": "compile/pass:regalloc-shuffle", "children": []},
                {"name": "compile/pass:btdp", "children": []},
                {"name": "compile/pass:global-shuffle", "children": []},
                {"name": "compile/pass:function-shuffle", "children": []},
            ]},
            {"name": "compile/link", "children": []},
            {"name": "compile/verify-binary", "children": []},
        ]},
    ]},
    {"name": "engine/verify-binary", "children": []},
    {"name": "engine/load", "children": []},
    {"name": "engine/verify-process", "children": []},
    {"name": "engine/run", "children": []},
]


def test_golden_engine_span_tree():
    # scale=2 gives this module a fingerprint unique to this test, so the
    # compile/verify-ir span (memoized per fingerprint in _CLEAN_IR)
    # appears regardless of what other tests compiled first.
    module = build_spec_benchmark("xz", 2)
    engine = ExperimentEngine(jobs=1)
    with traced():
        try:
            record = engine.run(
                RunRequest(module=module, config=R2CConfig.full(seed=7), verify=True)
            )
        finally:
            engine.close()
    assert record.outcome == "ok"
    assert record.spans, "tracing was on: the record must carry its spans"
    tree = span_tree([Span.from_dict(d) for d in record.spans])
    assert tree == GOLDEN_ENGINE_TREE


def test_record_spans_absent_when_tracing_disabled():
    module = build_spec_benchmark("xz", 3)
    engine = ExperimentEngine(jobs=1)
    try:
        record = engine.run(RunRequest(module=module, config=R2CConfig.full(seed=7)))
    finally:
        engine.close()
    assert record.outcome == "ok"
    assert record.spans is None


# ---------------------------------------------------------------------------
# Machine counters.
# ---------------------------------------------------------------------------


def run_workload(backend, *, attribute_tags=True, profiler=False, tracing=False):
    binary = compile_module(small_module(), R2CConfig.full(seed=5))
    process = load_binary(binary, seed=2)
    cpu = CPU(
        process, get_costs("epyc-rome"), backend=backend, attribute_tags=attribute_tags
    )
    attached = CycleProfiler(cpu) if profiler else None
    if tracing:
        with traced():
            result = cpu.run()
    else:
        result = cpu.run()
    return result, cpu, attached


def test_perf_counters_identical_across_backends():
    views = {}
    for backend in BACKENDS:
        result, _, _ = run_workload(backend)
        views[backend] = result.perf_counters()
    assert views["reference"] == views["fast"]
    counters = views["reference"]
    assert counters.instructions > 0
    assert 0 < counters.branches_taken <= counters.branches
    assert counters.branch_mispredicts == counters.branches_taken
    assert counters.mem_ops > 0
    assert counters.btra_events > 0
    assert counters.btdp_events > 0


def test_perf_counters_json_round_trip_drops_unknown_keys():
    result, _, _ = run_workload("fast")
    counters = result.perf_counters()
    data = json.loads(counters.to_json())
    assert data["schema"] == "repro-counters/v1"
    data["from_the_future"] = 123
    loaded = PerfCounters.from_json(json.dumps(data))
    assert loaded == counters


def test_tag_attribution_decomposes_exactly():
    """Every instruction lands in exactly one tag bucket: counts sum to
    ``instructions`` exactly, cycle buckets sum to ``cycles`` (float
    re-association aside)."""
    result, _, _ = run_workload("reference")
    assert UNTAGGED_TAG in result.tag_counts
    assert set(result.tag_counts) == set(result.tag_cycles)
    assert sum(result.tag_counts.values()) == result.instructions
    assert math.isclose(
        sum(result.tag_cycles.values()), result.cycles, rel_tol=1e-9
    )


def test_counters_zero_without_tag_attribution():
    result, _, _ = run_workload("fast", attribute_tags=False)
    counters = result.perf_counters()
    assert counters.btra_events == 0 and counters.btdp_events == 0
    assert counters.tag_counts == {}


# ---------------------------------------------------------------------------
# The profiler.
# ---------------------------------------------------------------------------


def test_profiler_total_equals_result_cycles_exactly():
    for backend in BACKENDS:
        result, _, profiler = run_workload(backend, profiler=True)
        assert profiler.total_cycles == result.cycles
        assert profiler.instructions == result.instructions


def test_profiler_folded_stacks_byte_identical_across_backends():
    folded = {}
    for backend in BACKENDS:
        _, _, profiler = run_workload(backend, profiler=True)
        folded[backend] = profiler.folded_stacks()
    assert folded["reference"] == folded["fast"]
    for line in folded["fast"].splitlines():
        key, _, cycles = line.rpartition(" ")
        assert key and float(cycles) > 0.0


def test_profiler_attributes_to_function_symbols():
    _, _, profiler = run_workload("reference", profiler=True)
    names = dict(profiler.per_function())
    assert "main" in names and "leaf" in names
    assert all("::" not in name for name in names)
    report = profiler.report(top=5)
    assert "main" in report and "cycles" in report


def test_profiler_unknown_symbols_fold_to_placeholder():
    process, _ = assemble(
        [I(Op.MOV, Reg.RAX, Imm(4)), I(Op.OUT, Reg.RAX), I(Op.EXIT, Imm(0))]
    )
    cpu = CPU(process, get_costs("epyc-rome"))
    profiler = CycleProfiler(cpu)
    result = cpu.run()
    assert list(profiler.func_cycles) == [UNKNOWN_FUNCTION]
    assert profiler.total_cycles == result.cycles


def test_profiler_detach_restores_hook():
    process, _ = assemble([I(Op.EXIT, Imm(0))])
    seen = []
    cpu = CPU(process, get_costs("epyc-rome"))
    cpu.trace_fn = lambda c, rip, ins: seen.append(rip)
    profiler = CycleProfiler(cpu)
    # Bound-method equality, not identity: each attribute access mints a
    # fresh bound method object.
    assert cpu.trace_fn == profiler._trace
    profiler.detach()
    assert cpu.trace_fn != profiler._trace
    cpu.run()
    assert seen  # the original hook still fires


def test_profiler_sees_faulting_runs_identically():
    folded = {}
    for backend in BACKENDS:
        process, _ = assemble([I(Op.NOP), I(Op.TRAP), I(Op.EXIT, Imm(0))])
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        profiler = CycleProfiler(cpu)
        with pytest.raises(BoobyTrapTriggered):
            cpu.run()
        folded[backend] = (profiler.folded_stacks(), profiler.instructions)
    assert folded["reference"] == folded["fast"]
    assert folded["fast"][1] == 2  # NOP + the trap itself


# ---------------------------------------------------------------------------
# Passivity: observability must never perturb the observed machine.
# ---------------------------------------------------------------------------

_PASSIVITY_BINARIES = {}


def _passivity_binary(seed, mode):
    key = (seed, mode)
    if key not in _PASSIVITY_BINARIES:
        _PASSIVITY_BINARIES[key] = compile_module(
            small_module("obs-passive"), R2CConfig.full(seed=seed, btra_mode=mode)
        )
    return _PASSIVITY_BINARIES[key]


@given(
    seed=st.integers(min_value=0, max_value=5),
    mode=st.sampled_from(["avx", "push"]),
    backend=st.sampled_from(BACKENDS),
    load_seed=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_observability_is_passive(seed, mode, backend, load_seed):
    binary = _passivity_binary(seed, mode)
    snapshots = []
    for observed in (False, True):
        process = load_binary(binary, seed=load_seed)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend, attribute_tags=True)
        profiler = None
        error = None
        if observed:
            previous = enable_tracing(True)
            profiler = CycleProfiler(cpu)
        try:
            with span("test/run", "test"):
                result = cpu.run()
        except Exception as exc:  # noqa: BLE001 - fault identity is the point
            result = None
            error = (type(exc), str(exc))
        finally:
            if observed:
                profiler.detach()
                enable_tracing(previous)
                get_collector().clear()
        snapshots.append(
            (
                dataclasses.asdict(result) if result is not None else None,
                error,
                cpu.rip,
                list(cpu.regs),
            )
        )
    assert snapshots[0] == snapshots[1]


# ---------------------------------------------------------------------------
# The bench harness.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def bench_report():
    return run_bench(backend="fast", workloads=["xz"])


def test_bench_report_is_schema_valid(bench_report):
    data = json.loads(bench_report.to_json())
    assert validate(data) == []
    assert bench_report.ok
    assert {cell.config for cell in bench_report.cells} == {
        "baseline", "full-avx", "full-push",
    }
    baseline = bench_report.cell("xz", "baseline")
    full = bench_report.cell("xz", "full-avx")
    assert full.cycles > baseline.cycles > 0
    assert baseline.icache_hits > 0


def test_bench_json_round_trip_drops_unknown_keys(bench_report):
    text = bench_report.to_json()
    data = json.loads(text)
    data["invented"] = {"x": 1}
    data["cells"][0]["future_metric"] = 9.5
    loaded = BenchReport.from_json(json.dumps(data))
    assert loaded.to_json() == text


def test_bench_validate_reports_violations():
    problems = validate({"schema": "repro-bench/v0", "cells": [{"workload": "xz"}]})
    assert any("schema" in p for p in problems)
    assert any("missing top-level key" in p for p in problems)
    assert any("cells[0] missing" in p for p in problems)
    assert validate({"schema": "repro-bench/v1", "cells": []}) != []


def test_render_bench_table(bench_report):
    text = render_bench(bench_report)
    assert "backend=fast" in text
    assert "xz" in text and "full-avx" in text
    assert "vs base" in text and "+" in text  # overhead column is populated
    assert "engine:" in text and "failures 0" in text
