"""Tests for the workload programs: correctness under every configuration."""

import pytest

from repro.core.config import R2CConfig
from repro.toolchain.interp import interpret_module
from repro.workloads.browser import generate_browser_corpus
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_FOOTPRINT_PAGES, build_spec_benchmark
from repro.workloads.victim import ATTACK_ARG, SUCCESS_TAG, build_victim
from repro.workloads.webserver import SERVERS, build_webserver
from tests.conftest import assert_equivalent, run_compiled


def test_spec_suite_is_complete():
    paper_order = [
        "perlbench", "gcc", "mcf", "lbm", "omnetpp", "xalancbmk",
        "x264", "deepsjeng", "imagick", "leela", "nab", "xz",
    ]
    assert list(SPEC_BENCHMARKS) == paper_order
    assert set(SPEC_FOOTPRINT_PAGES) == set(SPEC_BENCHMARKS)


@pytest.mark.parametrize("name", sorted(SPEC_BENCHMARKS))
def test_spec_benchmark_correct_under_full_r2c(name):
    module = build_spec_benchmark(name)
    assert_equivalent(module, R2CConfig.full(seed=17))


def test_spec_scale_parameter_scales_work():
    small, _ = run_compiled(build_spec_benchmark("xz", 1))
    large, _ = run_compiled(build_spec_benchmark("xz", 2))
    assert large.instructions > 1.5 * small.instructions


def test_spec_footprint_increases_rss():
    _, slim = run_compiled(build_spec_benchmark("xz", 1))
    _, fat = run_compiled(build_spec_benchmark("xz", 1, footprint_pages=100))
    assert fat.max_rss >= slim.max_rss + 90 * 4096


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        build_spec_benchmark("nginx")


def test_call_frequency_ordering_matches_paper_extremes():
    """Table 2's anchors: nab has the most calls, lbm by far the fewest."""
    counts = {}
    for name in ("nab", "mcf", "omnetpp", "lbm", "xz"):
        result, _ = run_compiled(build_spec_benchmark(name))
        counts[name] = result.calls
    assert counts["nab"] == max(counts.values())
    assert counts["lbm"] == min(counts.values())
    assert counts["mcf"] > counts["xz"]


@pytest.mark.parametrize("server", SERVERS)
def test_webserver_correct_under_full_r2c(server):
    module = build_webserver(server, requests=40)
    assert_equivalent(module, R2CConfig.full(seed=23))


def test_webserver_rejects_unknown_server():
    with pytest.raises(ValueError):
        build_webserver("caddy")


def test_victim_runs_benign_by_default():
    module = build_victim(requests=3)
    exit_code, output = interpret_module(module)
    assert exit_code == 0
    # target_exec never runs legitimately.
    assert not any(w & 0xFFFF_0000 == SUCCESS_TAG for w in output)
    assert_equivalent(module, R2CConfig.full(seed=29))


def test_victim_has_aocr_preconditions():
    module = build_victim()
    names = {g.name for g in module.globals}
    assert {"handler_ptr", "default_param", "admin_table", "config_blob"} <= names
    assert "target_exec" in module.functions
    assert ATTACK_ARG <= 0xFFFF


def test_browser_corpus_scales_and_verifies():
    small = generate_browser_corpus(50, seed=3)
    large = generate_browser_corpus(150, seed=3)
    assert len(large.functions) > len(small.functions)
    assert_equivalent(small, R2CConfig.full(seed=31))


def test_browser_corpus_deterministic_per_seed():
    a = generate_browser_corpus(60, seed=9)
    b = generate_browser_corpus(60, seed=9)
    assert interpret_module(a) == interpret_module(b)
    c = generate_browser_corpus(60, seed=10)
    assert interpret_module(a) != interpret_module(c)


def test_browser_corpus_minimum_size():
    with pytest.raises(ValueError):
        generate_browser_corpus(5)


def test_browser_corpus_has_wide_and_indirect_calls():
    module = generate_browser_corpus(200, seed=1)
    assert any(len(fn.params) > 6 for fn in module.functions.values())
    assert any(g.name == "btable" for g in module.globals)
