"""Tests for the reference IR interpreter (the golden model)."""

import pytest

from repro.toolchain.builder import IRBuilder
from repro.toolchain.interp import InterpError, interpret_module


def build_and_run(build):
    ir = IRBuilder()
    build(ir)
    return interpret_module(ir.finish())


def test_arith_and_masking():
    def build(ir):
        m = ir.function("main")
        m.out(m.add(2**63, 2**63))  # wraps to 0
        m.out(m.mul(-3, 5))
        m.ret(0)

    exit_code, out = build_and_run(build)
    assert out[0] == 0
    assert out[1] == (-15) % 2**64


def test_div_mod_c_semantics():
    def build(ir):
        m = ir.function("main")
        m.out(m.div(-7, 2))
        m.out(m.mod(-7, 2))
        m.out(m.div(7, -2))
        m.ret(0)

    _, out = build_and_run(build)
    signed = lambda v: v - 2**64 if v >= 2**63 else v
    assert signed(out[0]) == -3
    assert signed(out[1]) == -1
    assert signed(out[2]) == -3


def test_division_by_zero_raises():
    def build(ir):
        m = ir.function("main")
        m.out(m.div(1, 0))
        m.ret(0)

    with pytest.raises(InterpError, match="division by zero"):
        build_and_run(build)


def test_uninitialized_local_read_raises():
    def build(ir):
        m = ir.function("main")
        m.local("x")
        m.out(m.load_local("x"))
        m.ret(0)

    with pytest.raises(InterpError, match="uninitialized"):
        build_and_run(build)


def test_call_and_recursion():
    def build(ir):
        fib = ir.function("fib", params=["n"])
        n = fib.param("n")
        small = fib.cmp("le", n, 1)
        fib.cbr(small, "base", "rec")
        fib.new_block("base")
        fib.ret(fib.param("n"))
        fib.new_block("rec")
        a = fib.call("fib", [fib.sub(fib.param("n"), 1)])
        b = fib.call("fib", [fib.sub(fib.param("n"), 2)])
        fib.ret(fib.add(a, b))
        m = ir.function("main")
        m.out(m.call("fib", [10]))
        m.ret(0)

    assert build_and_run(build) == (0, [55])


def test_icall_through_func_addr():
    def build(ir):
        inc = ir.function("inc", params=["x"])
        inc.ret(inc.add(inc.param("x"), 1))
        m = ir.function("main")
        fp = m.func_addr("inc")
        m.out(m.icall(fp, [41]))
        m.ret(0)

    assert build_and_run(build) == (0, [42])


def test_icall_to_non_function_raises():
    def build(ir):
        m = ir.function("main")
        m.out(m.icall(12345, [1]))
        m.ret(0)

    with pytest.raises(InterpError, match="indirect call"):
        build_and_run(build)


def test_global_pointer_arithmetic():
    def build(ir):
        ir.global_var("table", size_words=4, init=(10, 20, 30, 40))
        m = ir.function("main")
        base = m.addr_global("table")
        m.out(m.load(m.add(base, 16)))  # word 2
        m.out(m.load_global("table", 3))
        m.ret(0)

    assert build_and_run(build) == (0, [30, 40])


def test_malloc_gives_disjoint_memory():
    def build(ir):
        m = ir.function("main")
        a = m.rtcall("malloc", [16])
        b = m.rtcall("malloc", [16])
        m.store(a, 1)
        m.store(b, 2)
        m.out(m.load(a))
        m.out(m.load(b))
        m.ret(0)

    assert build_and_run(build) == (0, [1, 2])


def test_function_pointer_in_global_init():
    def build(ir):
        f = ir.function("f", params=["x"])
        f.ret(f.mul(f.param("x"), 3))
        ir.global_var("fptr", init=(("f", 0),))
        m = ir.function("main")
        target = m.load_global("fptr")
        m.out(m.icall(target, [5]))
        m.ret(0)

    assert build_and_run(build) == (0, [15])


def test_step_budget():
    def build(ir):
        m = ir.function("main")
        m.br("loop")
        m.new_block("loop")
        m.br("loop")

    ir = IRBuilder()
    build(ir)
    with pytest.raises(InterpError, match="budget"):
        interpret_module(ir.finish(), step_budget=1000)


def test_arg_count_mismatch():
    def build(ir):
        f = ir.function("f", params=["a", "b"])
        f.ret(0)
        m = ir.function("main")
        m.call("f", [1])
        m.ret(0)

    with pytest.raises(InterpError, match="expected 2 args"):
        build_and_run(build)


def test_negative_index_addressing():
    def build(ir):
        m = ir.function("main")
        m.local("arr", 4)
        m.store_local("arr", 9, index=2)
        # load arr[3 - 1] via a computed negative-offset-capable index
        idx = m.sub(3, 1)
        m.out(m.load_local("arr", idx))
        m.ret(0)

    assert build_and_run(build) == (0, [9])
