"""Tests for crash triage and the reactive supervisor
(repro.reliability.crashreport + repro.reliability.supervisor).

The acceptance physics under test: crash reports are structured and
backend-deterministic, restart policies mean what they say, and —
the paper's Section 4/7.3 point — a supervisor that re-randomizes on
restart defeats the Blind ROP probe loop that a plain fork-server
(restart-same) loses to.
"""

import pytest
from hypothesis import given, strategies as st

from repro.attacks import ALL_ATTACKS
from repro.attacks.outcomes import AttackOutcome
from repro.attacks.scenario import VictimSession
from repro.core.config import R2CConfig
from repro.reliability import (
    STATUS_UNAVAILABLE,
    TRIAGE_BENIGN,
    TRIAGE_BTDP,
    CrashReport,
    RestartPolicy,
    SupervisedSession,
)
from repro.reliability.supervisor import backoff_delay

WILD_ADDRESS = 0xDEAD_0000_0000


def wild_read(view):
    view.read_word(WILD_ADDRESS)


def btdp_deref(view):
    view.read_word(view._process.r2c_runtime["btdp_values"][0])


# ---------------------------------------------------------------------------
# CrashReport
# ---------------------------------------------------------------------------

def test_crash_report_fields_benign_fault():
    session = VictimSession(R2CConfig.baseline())
    probe = session.probe_ex(wild_read)
    assert probe.status == "crashed"
    report = CrashReport.from_fault(probe.exception, probe.cpu, probe.process, sequence=3)
    assert report.sequence == 3
    assert report.fault_class == "MemoryFault"
    assert report.triage == TRIAGE_BENIGN
    assert not report.detected
    assert report.faulting_address == WILD_ADDRESS
    assert report.faulting_region is None  # wild address maps to no region
    assert set(report.registers) >= {"rax", "rsp", "rbp"}
    assert report.registers["rsp"] != 0
    assert report.stack_window  # rsp is mapped, the window captured words
    # The unwinder recovers the victim's request-handling chain.
    assert "process_request" in report.backtrace
    line = report.summary_line()
    assert "benign-fault" in line and "MemoryFault" in line


def test_crash_report_btdp_trip_detected():
    session = VictimSession(R2CConfig.full(seed=3))
    probe = session.probe_ex(btdp_deref)
    report = CrashReport.from_fault(probe.exception, probe.cpu, probe.process)
    assert report.fault_class == "GuardPageFault"
    assert report.triage == TRIAGE_BTDP
    assert report.detected


def test_crash_report_identical_across_backends():
    """Both execution backends leave identical post-mortem state, so the
    serialized reports are byte-identical."""
    payloads = []
    for backend in ("reference", "fast"):
        session = VictimSession(R2CConfig.full(seed=5), backend=backend)
        probe = session.probe_ex(wild_read)
        assert probe.exception is not None
        report = CrashReport.from_fault(probe.exception, probe.cpu, probe.process)
        payloads.append(report.to_json())
    assert payloads[0] == payloads[1]


# ---------------------------------------------------------------------------
# Restart policies
# ---------------------------------------------------------------------------

def test_policy_parse():
    assert RestartPolicy.parse("restart-same") is RestartPolicy.RESTART_SAME
    assert RestartPolicy.parse(RestartPolicy.NONE) is RestartPolicy.NONE
    with pytest.raises(ValueError):
        RestartPolicy.parse("reboot")


def test_policy_none_takes_service_down():
    session = SupervisedSession(R2CConfig.baseline(), policy="none")
    status, _ = session.probe(wild_read)
    assert status == "crashed"
    assert not session.available
    status, result = session.probe(lambda view: None)
    assert status == STATUS_UNAVAILABLE and result is None
    assert session.stats.denials == 1
    assert len(session.reports) == 1


def test_restart_same_keeps_layout_rerandomize_rolls_it():
    same = SupervisedSession(R2CConfig.full(seed=3), policy="restart-same")
    same.probe(wild_read)
    same.probe(wild_read)
    p1, _ = same.spawn()
    p2, _ = same.spawn()
    assert p1.symbols == p2.symbols

    rerand = SupervisedSession(R2CConfig.full(seed=3), policy="restart-rerandomize")
    rerand.probe(wild_read)
    p3, _ = rerand.spawn()
    p4, _ = rerand.spawn()
    assert p3.symbols != p4.symbols


def test_restart_budget_and_backoff():
    session = SupervisedSession(
        R2CConfig.baseline(),
        policy="restart-same",
        max_restarts=3,
        backoff_base=1.0,
        backoff_cap=4.0,
    )
    for _ in range(4):
        session.probe(wild_read)
    # 3 restarts granted (backoff 1 + 2 + 4 capped), then the budget is
    # spent and the 4th crash takes the service down.
    assert session.stats.restarts == 3
    assert session.stats.backoff_seconds == pytest.approx(1.0 + 2.0 + 4.0)
    assert not session.available
    assert session.probe(lambda view: None)[0] == STATUS_UNAVAILABLE


def test_crash_storm_is_a_detection():
    """A victim with no traps still detects probing via the crash storm."""
    session = SupervisedSession(
        R2CConfig.baseline(), policy="restart-same", crash_storm_threshold=3
    )
    session.probe(lambda view: None)
    for _ in range(3):
        session.probe(wild_read)
    assert session.stats.first_storm_probe == 4
    assert session.stats.detection_latency == 4
    # A clean probe breaks the storm; the threshold starts over.
    session.probe(lambda view: None)
    session.probe(wild_read)
    assert session.stats.first_storm_probe == 4  # first crossing is sticky


def test_trap_trip_sets_detection_latency():
    session = SupervisedSession(R2CConfig.full(seed=3), policy="restart-same")
    session.probe(lambda view: None)
    session.probe(btdp_deref)
    assert session.stats.trap_detections == 1
    assert session.stats.first_trap_probe == 2
    assert session.stats.detection_latency == 2
    assert session.reports[0].detected


@given(
    crashes=st.integers(min_value=0, max_value=10_000),
    base=st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    cap=st.floats(min_value=0.001, max_value=600.0, allow_nan=False),
)
def test_backoff_schedule_monotone_and_capped(crashes, base, cap):
    """The restart backoff schedule is monotone non-decreasing in the
    consecutive-crash count and never exceeds the cap."""
    here = backoff_delay(crashes, base, cap)
    after = backoff_delay(crashes + 1, base, cap)
    assert 0.0 <= here <= cap
    assert after >= here
    # Huge counts stay finite and pinned to the cap (no overflow).
    assert backoff_delay(crashes + 10**9, base, cap) == cap


def test_crash_storm_threshold_off_by_one():
    """Exactly ``threshold`` consecutive crashes detect; ``threshold - 1``
    followed by a clean probe never does."""
    threshold = 4

    storming = SupervisedSession(
        R2CConfig.baseline(), policy="restart-same", crash_storm_threshold=threshold
    )
    for _ in range(threshold - 1):
        storming.probe(wild_read)
    assert storming.stats.first_storm_probe is None  # one short of the storm
    storming.probe(wild_read)
    assert storming.stats.first_storm_probe == threshold

    broken = SupervisedSession(
        R2CConfig.baseline(), policy="restart-same", crash_storm_threshold=threshold
    )
    for _ in range(threshold - 1):
        broken.probe(wild_read)
    broken.probe(lambda view: None)  # the storm breaks at threshold - 1
    for _ in range(threshold - 1):
        broken.probe(wild_read)
    assert broken.stats.first_storm_probe is None
    assert broken.stats.crashes == 2 * (threshold - 1)


def test_probe_deadline_times_out_hung_worker():
    """A per-probe deadline triages a hung worker like a crash: the probe
    reports "timed-out", the supervisor restarts, the service stays up."""
    session = SupervisedSession(
        R2CConfig.baseline(),
        policy="restart-same",
        probe_deadline_instructions=50,
    )
    status, result = session.probe(lambda view: None)  # the workload "hangs"
    assert status == "timed-out" and result is None
    assert session.stats.timeouts == 1
    assert session.stats.crashes == 1  # triaged like a crash...
    assert session.stats.restarts == 1
    assert session.available  # ...and the service came back
    assert len(session.reports) == 1


def test_no_deadline_keeps_budget_exhaustion_a_crash():
    """Without an armed deadline the legacy classification stands: budget
    exhaustion is just a crash, never "timed-out"."""
    session = SupervisedSession(
        R2CConfig.baseline(), policy="restart-same", instruction_budget=50
    )
    status, _ = session.probe(lambda view: None)
    assert status == "crashed"
    assert session.stats.timeouts == 0


# ---------------------------------------------------------------------------
# The acceptance scenario: supervised Blind ROP
# ---------------------------------------------------------------------------

def test_supervised_blindrop_policies():
    """restart-same reproduces the fork-server compromise; re-randomizing
    every respawn defeats the probe loop (Sections 4, 7.3)."""
    blindrop = ALL_ATTACKS["blindrop"]

    same = SupervisedSession(
        R2CConfig.baseline(), policy="restart-same", execute_only=False, load_seed=301
    )
    result_same = blindrop(same, attacker_seed=331)
    assert result_same.outcome is AttackOutcome.SUCCESS
    assert same.stats.restarts > 0
    # The defender knew: crash-storm detection fired during the probe loop.
    assert same.stats.detection_latency is not None

    rerand = SupervisedSession(
        R2CConfig.baseline(),
        policy="restart-rerandomize",
        execute_only=False,
        load_seed=301,
    )
    result_rerand = blindrop(rerand, attacker_seed=331)
    assert result_rerand.outcome is not AttackOutcome.SUCCESS
    assert rerand.stats.detection_latency is not None
    # Rerandomization makes the attacker pay: far more probes than the
    # fork-server compromise needed, with nothing to show for them.
    assert rerand.stats.probes > same.stats.probes
