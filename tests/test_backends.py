"""Differential tests for the execution backends.

The fetch/decode/execute split (DESIGN.md) requires the ``fast``
micro-op backend to be observationally indistinguishable from the
``reference`` interpreter loop: identical :class:`ExecutionResult`
counters (cycles, opcode counts, tag attribution, i-cache hits/misses),
identical faults (type, message, and faulting ``cpu.rip``) — even for
runs that crash mid-program — plus identical trace-hook and debugger
behaviour.  These tests drive both backends over the same programs and
compare everything.

The decode stage itself is also covered: a binary is decoded into
micro-ops exactly once per content fingerprint, however many times it is
loaded.
"""

import dataclasses

import pytest

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import (
    BoobyTrapTriggered,
    ExecutionLimitExceeded,
    GuardPageFault,
    InvalidInstruction,
    MachineError,
    MemoryFault,
    ShadowStackViolation,
    StackMisaligned,
)
from repro.machine.backends import available_backends, get_backend
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.debugger import Debugger
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.loader import load_binary
from repro.machine.memory import Perm
from repro.machine.uops import DECODE_STATS, clear_decode_cache, get_bound_program
from repro.machine.process import AddressSpaceLayout, Process

from tests.conftest import FULL_CONFIGS

I = Instruction

TEXT = 0x5555_0000_0000
DATA = 0x5555_0010_0000
HEAP = 0x6200_0000_0000
STACK = 0x7FFC_0000_0000

# Every registered backend participates in the differential suite — a
# backend added to the registry is automatically held to the reference
# contract here (and in the debugger/lockstep/state parity tests, which
# import this tuple).
BACKENDS = tuple(available_backends())


def assemble(instrs, *, execute_only=True):
    layout = AddressSpaceLayout(
        text_base=TEXT,
        text_size=0x10000,
        data_base=DATA,
        data_size=0x10000,
        heap_base=HEAP,
        heap_size=0x10000,
        stack_base=STACK,
        stack_size=0x10000,
    )
    process = Process(layout, execute_only_text=execute_only)
    addr = TEXT
    addresses = []
    for instr in instrs:
        process.place_instruction(addr, instr)
        addresses.append(addr)
        addr += instr.size
    process.entry_point = TEXT
    return process, addresses


def run_one_backend(make_process, backend, **cpu_kwargs):
    """Run ``make_process()`` under ``backend``; capture result and fault."""
    process = make_process()
    res = ExecutionResult()
    cpu = CPU(process, get_costs("epyc-rome"), backend=backend, **cpu_kwargs)
    error = None
    try:
        cpu.run(result=res)
    except Exception as exc:  # noqa: BLE001 - faults are the subject here
        error = (type(exc), str(exc))
    return {
        "result": dataclasses.asdict(res),
        "error": error,
        "rip": cpu.rip,
        "regs": list(cpu.regs),
        "shadow": list(cpu.shadow_stack),
        "exit_code": process.exit_code,
    }


def compare_backends(make_process, **cpu_kwargs):
    """Assert every registered backend observes the identical machine
    trajectory (``jit`` participates with tier 3 at its default)."""
    reference = run_one_backend(make_process, "reference", **cpu_kwargs)
    for backend in BACKENDS:
        if backend == "reference":
            continue
        observed = run_one_backend(make_process, backend, **cpu_kwargs)
        assert observed == reference, f"backend {backend!r} diverged"
    return reference


# ---------------------------------------------------------------------------
# Clean runs: counters must match field-for-field.
# ---------------------------------------------------------------------------


def test_counters_identical_on_straight_line_code():
    def make():
        process, _ = assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(40)),
                I(Op.MOV, Reg.RBX, Imm(2)),
                I(Op.ADD, Reg.RAX, Reg.RBX),
                I(Op.PUSH, Reg.RAX),
                I(Op.POP, Reg.RCX),
                I(Op.OUT, Reg.RCX),
                I(Op.EXIT, Imm(0)),
            ]
        )
        return process

    outcome = compare_backends(make, count_opcodes=True)
    assert outcome["error"] is None
    assert outcome["result"]["output"] == [42]


def test_counters_identical_on_compiled_workloads(simple_module):
    for name, config in FULL_CONFIGS.items():
        binary = compile_module(simple_module, config)

        def make():
            process = load_binary(binary, seed=1)
            process.register_service("attack_hook", lambda proc, cpu: 0)
            return process

        outcome = compare_backends(make, count_opcodes=True, attribute_tags=True)
        assert outcome["error"] is None, (name, outcome["error"])
        assert outcome["result"]["instructions"] > 0


def test_cycles_are_float_identical(simple_module):
    """Cost addition order is preserved, so float cycles match exactly."""
    binary = compile_module(simple_module, R2CConfig.full(seed=5))
    totals = {}
    for backend in BACKENDS:
        process = load_binary(binary, seed=1)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        result = CPU(process, get_costs("i9-9900k"), backend=backend).run()
        totals[backend] = result.cycles
    assert all(total == totals["reference"] for total in totals.values())


# ---------------------------------------------------------------------------
# Fault equivalence: type, message, faulting rip, and partial counters.
# ---------------------------------------------------------------------------


def test_booby_trap_identical():
    def make():
        process, _ = assemble([I(Op.NOP), I(Op.TRAP), I(Op.EXIT, Imm(0))])
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is BoobyTrapTriggered
    assert outcome["result"]["instructions"] == 2  # NOP + the trap itself


def test_shadow_stack_violation_identical():
    def make():
        instrs = [
            I(Op.CALL, Imm(0)),
            I(Op.EXIT, Imm(0)),
            # callee: overwrite the return address, then return.
            I(Op.MOV, Mem(Reg.RSP), Imm(0x1234)),
            I(Op.RET),
        ]
        process, addresses = assemble(instrs)
        instrs[0].a = Imm(addresses[2])
        return process

    outcome = compare_backends(make, shadow_stack=True)
    assert outcome["error"][0] is ShadowStackViolation
    assert outcome["result"]["rets"] == 0  # violating ret is not counted


def test_budget_exhaustion_identical():
    def make():
        instrs = [I(Op.JMP, Imm(0))]
        process, addresses = assemble(instrs)
        instrs[0].a = Imm(addresses[0])
        return process

    outcome = compare_backends(make, instruction_budget=75)
    assert outcome["error"][0] is ExecutionLimitExceeded
    assert outcome["result"]["instructions"] == 76


def test_division_by_zero_identical():
    def make():
        process, _ = assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(1)),
                I(Op.MOV, Reg.RBX, Imm(0)),
                I(Op.IDIV, Reg.RAX, Reg.RBX),
                I(Op.EXIT, Imm(0)),
            ]
        )
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is MachineError
    assert "division by zero" in outcome["error"][1]


def test_stack_misalignment_identical():
    def make():
        instrs = [
            I(Op.PUSH, Imm(1)),
            I(Op.CALL, Imm(0)),
            I(Op.EXIT, Imm(0)),
            I(Op.RET),
        ]
        process, addresses = assemble(instrs)
        instrs[1].a = Imm(addresses[3])
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is StackMisaligned


def test_fetch_from_data_identical():
    def make():
        process, _ = assemble([I(Op.JMP, Imm(DATA)), I(Op.EXIT, Imm(0))])
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is MemoryFault
    assert outcome["rip"] == DATA  # rip rests at the invalid target


def test_jump_into_instruction_middle_identical():
    """Executable bytes with no decoded instruction: InvalidInstruction."""

    def make():
        instrs = [I(Op.JMP, Imm(0)), I(Op.EXIT, Imm(0))]
        process, addresses = assemble(instrs)
        instrs[0].a = Imm(addresses[1] + 1)
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is InvalidInstruction
    assert "no instruction at" in outcome["error"][1]


def test_guard_page_dereference_identical():
    def make():
        process, _ = assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(HEAP)),
                I(Op.MOV, Reg.RBX, Mem(Reg.RAX)),
                I(Op.EXIT, Imm(0)),
            ]
        )
        process.memory.protect(HEAP, 4096, Perm.NONE, guard=True)
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is GuardPageFault


def test_runtime_service_changing_permissions_identical():
    """A CALLRT service may remap pages; the fast backend must revalidate
    its memoized fetch checks afterwards (the SYNC/perm-epoch path)."""

    def make():
        process, _ = assemble(
            [
                I(Op.CALLRT, Imm(symbol="lockdown")),
                I(Op.MOV, Reg.RAX, Imm(HEAP)),
                I(Op.MOV, Reg.RBX, Mem(Reg.RAX)),
                I(Op.EXIT, Imm(0)),
            ]
        )

        def lockdown(proc, cpu):
            proc.memory.protect(HEAP, 4096, Perm.NONE, guard=True)
            return 0

        process.register_service("lockdown", lockdown)
        return process

    outcome = compare_backends(make)
    assert outcome["error"][0] is GuardPageFault


# ---------------------------------------------------------------------------
# Observability parity: PerfCounters and folded-stack profiles must be
# byte-identical between backends across seeds and BTRA modes.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("btra_mode", ["avx", "push"])
@pytest.mark.parametrize("seed", [3, 4, 5])
def test_perf_counters_and_profiles_identical(seed, btra_mode):
    """Folded profiles, per-tag cycle decomposition, and shadow-ICache
    attribution are backend-byte-identical with tier 3 enabled.  The xz
    workload's call loop makes the jit inline direct call targets into
    its traces, so BTRA-displaced returns execute *inside* compiled
    trace bodies on the lean leg below."""
    from repro.machine.jit import jit_stats_snapshot
    from repro.obs.profiler import CycleProfiler
    from repro.workloads.spec import build_spec_benchmark

    module = build_spec_benchmark("xz")
    binary = compile_module(module, R2CConfig.full(seed=seed, btra_mode=btra_mode))
    observed = {}
    for backend in BACKENDS:
        process = load_binary(binary, seed=seed)
        cpu = CPU(
            process, get_costs("epyc-rome"), backend=backend, attribute_tags=True
        )
        profiler = CycleProfiler(cpu)
        result = cpu.run()
        observed[backend] = {
            "counters": result.perf_counters().to_json(),
            "folded": profiler.folded_stacks(),
            "hottest": profiler.hottest_rips(5),
            "result": dataclasses.asdict(result),
        }
    for backend in BACKENDS:
        assert observed[backend] == observed["reference"], backend
    counters = observed["fast"]["counters"]
    assert '"schema": "repro-counters/v1"' in counters

    # Lean leg: no profiler, no attribution — the variant tier 3 traces.
    lean = {}
    before = jit_stats_snapshot()
    for backend in BACKENDS:
        process = load_binary(binary, seed=seed)
        result = CPU(process, get_costs("epyc-rome"), backend=backend).run()
        lean[backend] = {
            "counters": result.perf_counters().to_json(),
            "result": dataclasses.asdict(result),
        }
    after = jit_stats_snapshot()
    for backend in BACKENDS:
        assert lean[backend] == lean["reference"], backend
    # The jit leg really exercised tier 3 (fresh compile or cached).
    assert (
        after["traces_compiled"] > before["traces_compiled"]
        or after["code_cache_hits"] > before["code_cache_hits"]
    )


# ---------------------------------------------------------------------------
# Trace hooks and the debugger ride on either backend.
# ---------------------------------------------------------------------------


def test_trace_fn_sees_identical_stream():
    streams = {}
    for backend in BACKENDS:
        seen = []
        process, _ = assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(7)),
                I(Op.OUT, Reg.RAX),
                I(Op.EXIT, Imm(0)),
            ]
        )
        cpu = CPU(
            process,
            get_costs("epyc-rome"),
            backend=backend,
            trace_fn=lambda c, rip, ins: seen.append((rip, ins.op, c.rip)),
        )
        cpu.run()
        streams[backend] = seen
    assert streams["reference"] == streams["fast"]
    # The hook observes cpu.rip parked on the traced instruction.
    assert all(rip == cur for rip, _, cur in streams["fast"])


def test_debugger_breakpoints_work_on_fast_backend():
    states = {}
    for backend in BACKENDS:
        instrs = [
            I(Op.MOV, Reg.RAX, Imm(1)),
            I(Op.ADD, Reg.RAX, Imm(2)),
            I(Op.OUT, Reg.RAX),
            I(Op.EXIT, Imm(0)),
        ]
        process, addresses = assemble(instrs)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        debugger.add_breakpoint(addresses[2])
        assert not debugger.cont()  # stopped at the OUT
        at_break = (cpu.rip, cpu.regs[Reg.RAX])
        assert debugger.cont()  # runs to completion
        states[backend] = (at_break, debugger.result.exit_code, list(process.output))
    assert states["reference"] == states["fast"]


# ---------------------------------------------------------------------------
# The decode stage: one decode per binary fingerprint, one bind per
# (process, cost model).
# ---------------------------------------------------------------------------


def test_binary_decoded_once_per_fingerprint(simple_module):
    config = R2CConfig.full(seed=9)
    first = compile_module(simple_module, config)
    second = compile_module(simple_module, config)
    assert first is not second
    assert first.module_fingerprint == second.module_fingerprint

    clear_decode_cache()
    for binary in (first, second, first):
        process = load_binary(binary, seed=1)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        CPU(process, get_costs("epyc-rome"), backend="fast").run()
    assert DECODE_STATS["decodes"] == 1
    assert DECODE_STATS["cache_hits"] == 2


def test_distinct_configs_decode_separately(simple_module):
    clear_decode_cache()
    for seed in (1, 2):
        binary = compile_module(simple_module, R2CConfig.full(seed=seed))
        process = load_binary(binary, seed=1)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        CPU(process, get_costs("epyc-rome"), backend="fast").run()
    assert DECODE_STATS["decodes"] == 2


def test_bound_program_cached_per_process_and_costs():
    process, _ = assemble([I(Op.NOP), I(Op.EXIT, Imm(0))])
    costs = get_costs("epyc-rome")
    program = get_bound_program(process, costs)
    assert get_bound_program(process, costs) is program
    other = get_bound_program(process, get_costs("xeon"))
    assert other is not program
    assert program.entry_count == 2


def test_rerunning_same_process_reuses_bound_program():
    process, _ = assemble(
        [I(Op.MOV, Reg.RAX, Imm(3)), I(Op.OUT, Reg.RAX), I(Op.EXIT, Imm(0))]
    )
    costs = get_costs("epyc-rome")
    cpu = CPU(process, costs, backend="fast")
    cpu.run()
    assert len(process.uop_programs) == 1
    CPU(process, costs, backend="fast").run()
    assert len(process.uop_programs) == 1


# ---------------------------------------------------------------------------
# Backend registry.
# ---------------------------------------------------------------------------


def test_backend_registry():
    assert set(BACKENDS) <= set(available_backends())
    assert get_backend("fast").name == "fast"
    with pytest.raises(MachineError):
        get_backend("warp-drive")


def test_unknown_backend_fails_at_run():
    process, _ = assemble([I(Op.EXIT, Imm(0))])
    cpu = CPU(process, get_costs("epyc-rome"), backend="bogus")
    with pytest.raises(MachineError):
        cpu.run()
