"""Tests for the IR, the builder API, and module validation."""

import pytest

from repro.errors import ToolchainError
from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import BasicBlock, Function, GlobalVar, IRInstr, Module


def test_builder_produces_valid_module(simple_module):
    simple_module.validate()
    assert set(simple_module.functions) == {"double", "main"}
    assert simple_module.global_var("counter").init == (5,)


def test_duplicate_function_rejected():
    ir = IRBuilder()
    ir.function("f")
    with pytest.raises(ToolchainError):
        ir.function("f")


def test_duplicate_global_rejected():
    ir = IRBuilder()
    ir.global_var("g")
    with pytest.raises(ToolchainError):
        ir.global_var("g")


def test_unterminated_block_rejected():
    ir = IRBuilder()
    f = ir.function("f")
    f.const(1)  # no terminator
    with pytest.raises(ToolchainError, match="terminator"):
        ir.finish()


def test_emit_after_terminator_rejected():
    ir = IRBuilder()
    f = ir.function("f")
    f.ret(0)
    with pytest.raises(ToolchainError, match="after terminator"):
        f.const(1)


def test_unknown_call_target_rejected():
    module = Module()
    fn = Function(
        "f",
        blocks=[
            BasicBlock(
                "entry",
                [IRInstr("call", ("%r", "ghost", ())), IRInstr("ret", (0,))],
            )
        ],
    )
    module.add_function(fn)
    with pytest.raises(ToolchainError, match="unknown function"):
        module.validate()


def test_unknown_label_rejected():
    ir = IRBuilder()
    f = ir.function("f")
    f.br("nowhere")
    with pytest.raises(ToolchainError, match="unknown label"):
        ir.finish()


def test_unknown_local_rejected():
    module = Module()
    fn = Function(
        "f",
        blocks=[
            BasicBlock(
                "entry",
                [IRInstr("local_load", ("%x", "ghost", 0)), IRInstr("ret", (0,))],
            )
        ],
    )
    module.add_function(fn)
    with pytest.raises(ToolchainError, match="unknown local"):
        module.validate()


def test_unknown_global_rejected():
    ir = IRBuilder()
    f = ir.function("f")
    with pytest.raises(ToolchainError):
        f.load_global("ghost")  # builder defers; validation catches it
        f.ret(0)
        ir.finish()


def test_global_with_too_many_initializers_rejected():
    with pytest.raises(ToolchainError):
        GlobalVar("g", size_words=1, init=(1, 2))


def test_bad_binop_rejected():
    module = Module()
    fn = Function(
        "f",
        blocks=[
            BasicBlock(
                "entry", [IRInstr("bin", ("frobnicate", "%d", 1, 2)), IRInstr("ret", (0,))]
            )
        ],
    )
    module.add_function(fn)
    with pytest.raises(ToolchainError, match="unknown binary op"):
        module.validate()


def test_terminator_mid_block_rejected():
    module = Module()
    fn = Function(
        "f",
        blocks=[BasicBlock("entry", [IRInstr("ret", (0,)), IRInstr("ret", (0,))])],
    )
    module.add_function(fn)
    with pytest.raises(ToolchainError, match="mid-block"):
        module.validate()


def test_param_access_requires_declared_param():
    ir = IRBuilder()
    f = ir.function("f", params=["x"])
    assert f.param("x")
    with pytest.raises(ToolchainError):
        f.param("y")


def test_has_stack_objects():
    ir = IRBuilder()
    f = ir.function("leaf")
    f.ret(0)
    g = ir.function("with_local")
    g.local("tmp")
    g.ret(0)
    h = ir.function("with_param", params=["x"])
    h.ret(0)
    module = ir.finish()
    assert not module.functions["leaf"].has_stack_objects()
    assert module.functions["with_local"].has_stack_objects()
    assert module.functions["with_param"].has_stack_objects()


def test_counted_loop_helper_runs():
    from repro.toolchain.interp import interpret_module

    ir = IRBuilder()
    main = ir.function("main")
    main.local("sum")
    main.store_local("sum", 0)
    ivar = main.counted_loop(5, "body", "done")
    i = main.load_local(ivar)
    main.store_local("sum", main.add(main.load_local("sum"), i))
    main.loop_backedge(ivar, "body")
    main.new_block("done")
    main.out(main.load_local("sum"))
    main.ret(0)
    assert interpret_module(ir.finish()) == (0, [10])
