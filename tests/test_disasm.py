"""Round-trip property of the disassembler (ISSUE satellite a).

Every opcode in the ISA must render through ``format_instruction`` and
re-parse through ``parse_instruction`` losslessly — the binary invariant
checker and the entropy auditor both lean on the listing grammar, so a
rendering ambiguity (e.g. ``$f+-0x8``) is a correctness bug, not a
cosmetic one.
"""

from __future__ import annotations

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.isa import Imm, Instruction, Label, Mem, Op, Reg
from repro.toolchain.disasm import (
    disassemble_function,
    format_instruction,
    format_operand,
    parse_instruction,
    parse_listing,
    parse_operand,
    render_instruction,
)

# Operand shapes covering every branch of format_operand / parse_operand.
OPERAND_SAMPLES = [
    None,
    Reg.RAX,
    Reg.RSP,
    Reg.R13,
    Reg.YMM2,
    Imm(0),
    Imm(42),
    Imm(-8),
    Imm(0x7FFFFFFF),
    Imm(-0x80000000),
    Imm(0, symbol="counter"),
    Imm(0x18, symbol="__r2c_guard"),
    Imm(-0x10, symbol="f::.Lret3"),  # negative addend: the $f-0x10 form
    Mem(base=Reg.RSP),
    Mem(base=Reg.RSP, offset=8),
    Mem(base=Reg.RBP, offset=-0x18),
    Mem(symbol="glob"),
    Mem(symbol="glob", offset=16),
    Mem(base=Reg.RAX, index=Reg.RCX, scale=8),
    Mem(base=Reg.RAX, index=Reg.RCX, scale=8, offset=-4),
    Mem(),  # renders [0x0]
    Label(".Lprolog_body"),
    Label(".Lbtra_ok7"),
]


@pytest.mark.parametrize("operand", OPERAND_SAMPLES, ids=repr)
def test_operand_round_trip(operand):
    assert parse_operand(format_operand(operand)) == operand


def _sample_operands(op: Op):
    """A plausible (a, b) pair per opcode — syntax, not semantics, is
    what the round trip proves, so one representative shape suffices."""
    if op in (Op.RET, Op.NOP, Op.TRAP, Op.VZEROUPPER):
        return None, None
    if op is Op.PUSH:
        return Imm(-0x10, symbol="main::.Lret2"), None
    if op is Op.POP:
        return Reg.RBX, None
    if op in (Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE):
        return Label(".Ltarget"), None
    if op is Op.CALL:
        return Imm(0, symbol="callee"), None
    if op is Op.CALLRT:
        return Label("malloc"), None
    if op in (Op.OUT, Op.NEG, Op.IDIV):
        return Reg.RDI, None
    if op is Op.EXIT:
        return Imm(1), None
    if op in (Op.SETE, Op.SETNE, Op.SETL, Op.SETLE, Op.SETG, Op.SETGE):
        return Reg.RAX, None
    if op in (Op.VLOAD, Op.VLOAD512):
        return Reg.YMM1, Mem(base=Reg.RSP, offset=-0x40)
    if op in (Op.VSTORE, Op.VSTORE512):
        return Mem(base=Reg.RSP, offset=-0x40), Reg.YMM1
    if op is Op.LEA:
        return Reg.RAX, Mem(base=Reg.RBP, index=Reg.RCX, scale=8, offset=-8)
    # Generic two-operand ALU/compare/mov shape.
    return Reg.RAX, Mem(base=Reg.RBP, offset=-0x20)


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.value)
def test_every_opcode_round_trips(op):
    a, b = _sample_operands(op)
    original = Instruction(op, a, b, tag="roundtrip-check")
    offset, parsed = parse_instruction(format_instruction(0x1A0, original))
    assert offset == 0x1A0
    assert parsed.op is original.op
    assert parsed.a == original.a
    assert parsed.b == original.b
    assert parsed.size == original.size
    assert parsed.tag == original.tag


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.value)
def test_every_opcode_round_trips_untagged(op):
    a, b = _sample_operands(op)
    original = Instruction(op, a, b)
    _, parsed = parse_instruction(format_instruction(0, original))
    assert (parsed.op, parsed.a, parsed.b, parsed.tag) == (op, a, b, None)


def test_render_instruction_is_offset_and_tag_free():
    instr = Instruction(Op.MOV, Reg.RAX, Imm(7), tag="nop-sled")
    assert render_instruction(instr) == "mov rax, $0x7"
    assert render_instruction(Instruction(Op.RET)) == "ret"


def test_negative_symbol_addend_is_unambiguous():
    # The historical ambiguity: "$f+-0x8" does not re-parse; the signed
    # rendering "$f-0x8" must be emitted and decoded instead.
    text = format_operand(Imm(-8, symbol="f"))
    assert text == "$f-0x8"
    assert parse_operand(text) == Imm(-8, symbol="f")


def test_parse_listing_recovers_overridden_sizes():
    nop = Instruction(Op.NOP, size=5)  # multi-byte NOP from the sled pass
    ret = Instruction(Op.RET)
    listing = "\n".join(
        ["<f>:  (6 bytes)", format_instruction(0x10, nop), format_instruction(0x15, ret)]
    )
    items = parse_listing(listing)
    assert [(o, i.op, i.size) for o, i in items] == [
        (0x10, Op.NOP, 5),
        (0x15, Op.RET, ret.size),
    ]


def test_listing_round_trip_across_fused_boundaries(simple_module):
    """Listings sliced across superinstruction fusion boundaries must
    survive the render/parse cycle with the fusion annotations intact.

    The tier-2 promoter fuses ``cmp+jcc`` and push-runs from lazily
    sliced blocks (:func:`fuse_slice`); a listing that re-parses into
    different fusions would make a disassembly-driven tool disagree with
    the execution engine about superinstruction extent.
    """
    from repro.machine.blocks import fuse_slice, slice_block

    # push-mode BTRAs emit consecutive pushes (push-runs); the module's
    # branches supply cmp+jcc pairs.
    binary = compile_module(simple_module, R2CConfig.full(seed=3, btra_mode="push"))
    index = dict(binary.text)

    fused_kinds = set()
    slices = []
    for offset, _ in binary.text:
        items = slice_block(index, offset)
        fusions = fuse_slice(items)
        if fusions:
            slices.append((items, fusions))
            fused_kinds.update(kind for kind, _, _ in fusions)
    # The workload must actually exercise both fusion patterns, or the
    # round trip proves nothing.
    assert fused_kinds == {"cmp+jcc", "push-run"}

    for items, fusions in slices:
        listing = "\n".join(format_instruction(addr, instr) for addr, instr in items)
        parsed = parse_listing(listing)
        assert [(o, i.op, i.a, i.b) for o, i in parsed] == [
            (o, i.op, i.a, i.b) for o, i in items
        ]
        assert fuse_slice(parsed) == fusions


def test_compiled_function_listing_round_trips(simple_module):
    """Disassemble every function of a fully diversified binary and parse
    the listings back; the reconstruction must match the text stream
    field-for-field (offsets, operands, sizes, provenance tags)."""
    for mode in ("avx", "push"):
        binary = compile_module(simple_module, R2CConfig.full(seed=9, btra_mode=mode))
        for name in binary.frame_records:
            start, end = binary.function_range(name)
            expected = [item for item in binary.text if start <= item[0] < end]
            parsed = parse_listing(disassemble_function(binary, name))
            assert len(parsed) == len(expected), name
            for (po, pi), (eo, ei) in zip(parsed, expected):
                assert po == eo, name
                assert pi.op is ei.op, (name, eo)
                assert pi.a == ei.a, (name, eo)
                assert pi.b == ei.b, (name, eo)
                assert pi.tag == ei.tag, (name, eo)
                # The final instruction's size is unrecoverable from
                # offsets alone; everywhere else it must match.
                if (po, pi) is not parsed[-1]:
                    assert pi.size == ei.size, (name, eo)
