"""Tests for AOCR's statistical pointer clustering."""

from repro.attacks.clustering import (
    classify_word,
    cluster_by_gaps,
    cluster_pointers,
)
from repro.machine.process import HEAP_ANCHOR, STACK_ANCHOR, TEXT_ANCHOR


def test_classify_by_band():
    assert classify_word(TEXT_ANCHOR + 0x1000) == "image"
    assert classify_word(HEAP_ANCHOR + 0x4000) == "heap"
    assert classify_word(STACK_ANCHOR + 0x100) == "stack"
    assert classify_word(1234) == "other"
    assert classify_word(0) == "other"


def test_cluster_pointers_buckets_with_addresses():
    words = [
        (0x100, TEXT_ANCHOR + 8),
        (0x108, HEAP_ANCHOR + 16),
        (0x110, 42),
        (0x118, STACK_ANCHOR + 24),
    ]
    clusters = cluster_pointers(words)
    assert clusters.image == [(0x100, TEXT_ANCHOR + 8)]
    assert clusters.heap_values() == [HEAP_ANCHOR + 16]
    assert clusters.stack == [(0x118, STACK_ANCHOR + 24)]
    assert clusters.other == [(0x110, 42)]


def test_gap_clustering_splits_far_groups():
    group_a = [1000, 1010, 1020]
    group_b = [2**40, 2**40 + 5]
    clusters = cluster_by_gaps(group_a + group_b)
    assert len(clusters) == 2
    assert sorted(clusters[0]) == group_a
    assert sorted(clusters[1]) == group_b


def test_gap_clustering_keeps_near_values_together():
    values = [HEAP_ANCHOR + i * 4096 for i in range(10)]
    clusters = cluster_by_gaps(values)
    assert len(clusters) == 1


def test_gap_clustering_empty():
    assert cluster_by_gaps([]) == []


def test_gap_clustering_respects_threshold():
    values = [0, 100, 10**10]
    assert len(cluster_by_gaps(values, gap=50)) == 3
    assert len(cluster_by_gaps(values, gap=10**11)) == 1
