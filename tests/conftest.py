"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis import set_default_verify
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder
from repro.toolchain.interp import interpret_module

# Every compilation in the test suite runs the repro.analysis verifiers as
# a post-condition (R2CConfig.verify=False opts individual tests out, e.g.
# when deliberately building broken modules).
set_default_verify(True)


def run_compiled(module, config=None, *, load_seed=1, machine="epyc-rome", **cpu_kwargs):
    """Compile, load and run a module; return (ExecutionResult, process)."""
    binary = compile_module(module, config)
    process = load_binary(binary, seed=load_seed)
    process.register_service("attack_hook", lambda proc, cpu: 0)
    cpu = CPU(process, get_costs(machine), **cpu_kwargs)
    result = cpu.run()
    process.note_resident()
    return result, process


def assert_equivalent(module, config, *, load_seed=1):
    """Assert the compiled module matches the reference interpreter."""
    expected_exit, expected_out = interpret_module(module)
    result, _ = run_compiled(module, config, load_seed=load_seed)
    assert result.exit_code == expected_exit, (
        f"exit {result.exit_code} != {expected_exit} under {config}"
    )
    assert result.output == expected_out, (
        f"output {result.output} != {expected_out} under {config}"
    )


@pytest.fixture
def simple_module():
    """A small module exercising calls, branches, locals and globals."""
    ir = IRBuilder("simple")
    ir.global_var("counter", init=(5,))
    double = ir.function("double", params=["x"])
    double.ret(double.mul(double.param("x"), 2))
    main = ir.function("main")
    main.local("acc")
    main.store_local("acc", 0)
    value = main.call("double", [21])
    main.store_local("acc", value)
    g = main.load_global("counter")
    cond = main.cmp("gt", g, 3)
    main.cbr(cond, "big", "small")
    main.new_block("big")
    main.out(main.add(main.load_local("acc"), g))
    main.br("done")
    main.new_block("small")
    main.out(0)
    main.br("done")
    main.new_block("done")
    main.ret(main.load_local("acc"))
    return ir.finish()


FULL_CONFIGS = {
    "baseline": R2CConfig.baseline(),
    "full-avx": R2CConfig.full(seed=11),
    "full-push": R2CConfig.full(seed=12, btra_mode="push"),
}
