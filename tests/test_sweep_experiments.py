"""Quick-size tests for the sweep and decomposition experiment drivers
(the benchmarks run them at full size)."""

import pytest

from repro.eval.experiments import (
    experiment_btra_sweep,
    experiment_btdp_sweep,
    experiment_opt_levels,
    experiment_overhead_decomposition,
)
from repro.eval.report import (
    render_btdp_sweep,
    render_btra_sweep,
    render_decomposition,
    render_opt_levels,
)


def test_btra_sweep_small():
    data = experiment_btra_sweep(counts=(2, 10), benchmark="omnetpp")
    assert data[10]["overhead_pct"] > data[2]["overhead_pct"] - 1.0
    assert data[2]["guess_probability"] == pytest.approx(1 / 3)
    assert "BTRAs" in render_btra_sweep(data)


def test_btdp_sweep_small():
    data = experiment_btdp_sweep(maxima=(0, 5), stack_samples=3)
    assert data[0]["benign_fraction"] == 1.0
    assert data[5]["benign_fraction"] < 1.0
    assert data[5]["overhead_pct"] > data[0]["overhead_pct"]
    assert "H/(H+B)" in render_btdp_sweep(data)


def test_opt_levels_small():
    data = experiment_opt_levels(redundancies=(0, 25))
    assert data["redundancy=25"]["O1"] > data["redundancy=25"]["O0"]
    assert "-O0" in render_opt_levels(data)


def test_decomposition_sums_to_added_cycles():
    data = experiment_overhead_decomposition(benchmark="xz")
    shares = [v for k, v in data.items() if k != "total_overhead_pct"]
    assert sum(shares) == pytest.approx(100.0, abs=0.5)
    assert data["total_overhead_pct"] > 0
    assert "decomposition" in render_decomposition(data).lower()


def test_decomposition_tags_are_diversification_tags():
    data = experiment_overhead_decomposition(benchmark="xz")
    known_prefixes = (
        "btra",
        "btdp",
        "nop-insertion",
        "prolog-trap",
        "oia",
        "align-pad",
        "(untagged",
        "total_overhead_pct",
        "booby-trap",
    )
    for tag in data:
        assert tag.startswith(known_prefixes), tag
