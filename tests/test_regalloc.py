"""Tests for liveness intervals and linear-scan allocation."""

from repro.machine.isa import Reg
from repro.rng import DiversityRng
from repro.toolchain.builder import IRBuilder
from repro.toolchain.callconv import ALLOCATABLE
from repro.toolchain.regalloc import allocate, compute_intervals


def linear_function(n_temps):
    ir = IRBuilder()
    f = ir.function("f", params=["x"])
    acc = f.param("x")
    temps = []
    for i in range(n_temps):
        t = f.add(acc, i)
        temps.append(t)
        acc = t
    f.ret(acc)
    ir.finish()
    return f.fn


def test_intervals_cover_first_to_last_use():
    fn = linear_function(3)
    intervals, count = compute_intervals(fn)
    by_name = {iv.vreg: iv for iv in intervals}
    for iv in intervals:
        assert 0 <= iv.start <= iv.end < count


def test_backedge_extends_liveness():
    """A value defined before a loop and used inside it must stay live
    through the loop's entire body."""
    ir = IRBuilder()
    f = ir.function("f", params=["n"])
    f.local("sum")
    f.store_local("sum", 0)
    n = f.param("n")  # defined pre-loop, used in the loop header
    ivar = f.counted_loop(n, "body", "done")
    i = f.load_local(ivar)
    f.store_local("sum", f.add(f.load_local("sum"), i))
    f.loop_backedge(ivar, "body")
    f.new_block("done")
    f.ret(f.load_local("sum"))
    ir.finish()

    intervals, _ = compute_intervals(f.fn)
    by_name = {iv.vreg: iv for iv in intervals}
    n_interval = by_name[n]
    # n's last use must be at/after the back edge branch (the loop's end).
    backedge_index = max(iv.end for iv in intervals)
    assert n_interval.end >= backedge_index - 2


def test_allocation_is_sound():
    """No two vregs with overlapping intervals share a register."""
    fn = linear_function(30)
    intervals, _ = compute_intervals(fn)
    allocation = allocate(fn)
    spans = {iv.vreg: (iv.start, iv.end) for iv in intervals}
    by_reg = {}
    for vreg, (kind, where) in allocation.locations.items():
        if kind == "reg":
            by_reg.setdefault(where, []).append(spans[vreg])
    for reg, ranges in by_reg.items():
        ranges.sort()
        for (s1, e1), (s2, e2) in zip(ranges, ranges[1:]):
            assert e1 < s2, f"register {reg} double-booked"


def test_spills_happen_when_pressure_exceeds_pool():
    ir = IRBuilder()
    f = ir.function("f", params=["x"])
    # Create many simultaneously-live values: all defined early, all used
    # at the end.
    temps = [f.add(f.param("x"), i) for i in range(len(ALLOCATABLE) + 5)]
    acc = 0
    for t in temps:
        acc = f.add(acc, t)
    f.ret(acc)
    ir.finish()
    allocation = allocate(f.fn)
    assert allocation.spill_count >= 1


def test_pool_shuffle_changes_assignment():
    fn = linear_function(10)
    base = allocate(fn)
    shuffled = allocate(fn, rng=DiversityRng(99).child("regs"))
    # Same vregs, potentially different registers.
    assert set(base.locations) == set(shuffled.locations)
    base_regs = [base.locations[v] for v in sorted(base.locations)]
    shuffled_regs = [shuffled.locations[v] for v in sorted(shuffled.locations)]
    assert base_regs != shuffled_regs


def test_used_registers_subset_of_pool():
    fn = linear_function(10)
    allocation = allocate(fn)
    assert set(allocation.used_registers) <= set(ALLOCATABLE)


def test_every_vreg_gets_a_location():
    fn = linear_function(25)
    intervals, _ = compute_intervals(fn)
    allocation = allocate(fn)
    assert {iv.vreg for iv in intervals} == set(allocation.locations)
