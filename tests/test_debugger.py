"""Backfill tests for the step-based debugger.

Breakpoints (by address and symbol), single-stepping, watchpoints, and
composition with the profiler — each checked for parity across both
execution backends, since the debugger drives either backend's ``step``
primitive over an explicit :class:`MachineState`.
"""

import pytest

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.backends import get_backend
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.loader import load_binary
from repro.machine.state import MachineState

from tests.test_backends import BACKENDS, DATA, assemble

I = Instruction


def counting_program():
    return assemble(
        [
            I(Op.MOV, Reg.RAX, Imm(0)),
            I(Op.ADD, Reg.RAX, Imm(5)),
            I(Op.ADD, Reg.RAX, Imm(7)),
            I(Op.OUT, Reg.RAX),
            I(Op.EXIT, Imm(0)),
        ]
    )


def test_single_step_parity_across_backends():
    """Stepping one instruction at a time observes the same (rip, rax)
    trajectory on both backends, ending with the same result."""
    trajectories = {}
    for backend in BACKENDS:
        process, _ = counting_program()
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        seen = []
        while not debugger.step():
            seen.append((cpu.rip, cpu.regs[Reg.RAX]))
        trajectories[backend] = (seen, debugger.result.exit_code, list(process.output))
    assert trajectories["reference"] == trajectories["fast"]
    seen, exit_code, output = trajectories["fast"]
    assert len(seen) == 4  # stopped before each of the 4 remaining instrs
    assert exit_code == 0 and output == [12]


def test_step_count_runs_exactly_n_instructions():
    process, addresses = counting_program()
    cpu = CPU(process, get_costs("epyc-rome"))
    debugger = Debugger(cpu)
    assert not debugger.step(3)
    assert cpu.rip == addresses[3]  # parked on the OUT
    assert cpu.regs[Reg.RAX] == 12
    assert debugger.step(100)  # runs off the end: program finishes
    assert debugger.finished


def test_breakpoint_then_resume_matches_undebugged_run():
    for backend in BACKENDS:
        plain_process, _ = counting_program()
        plain = CPU(plain_process, get_costs("epyc-rome"), backend=backend).run()

        process, addresses = counting_program()
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        debugger.add_breakpoint(addresses[2])
        assert not debugger.cont()
        assert cpu.rip == addresses[2] and cpu.regs[Reg.RAX] == 5
        assert debugger.cont()
        assert debugger.result.exit_code == plain.exit_code
        assert list(process.output) == list(plain_process.output)
        # Step-based stopping never re-fetches: the accumulated result of
        # a debugged run is byte-identical to the undebugged run, counts
        # and float cycles included.
        assert debugger.result.instructions == plain.instructions
        assert debugger.result.cycles == plain.cycles


def test_remove_breakpoint():
    process, addresses = counting_program()
    cpu = CPU(process, get_costs("epyc-rome"))
    debugger = Debugger(cpu)
    debugger.add_breakpoint(addresses[1])
    debugger.add_breakpoint(addresses[3])
    debugger.remove_breakpoint(addresses[1])
    assert not debugger.cont()
    assert cpu.rip == addresses[3]  # first stop is the remaining breakpoint
    assert debugger.cont()


def test_symbol_breakpoint_on_compiled_module(simple_module):
    binary = compile_module(simple_module, R2CConfig.full(seed=6))
    stops = {}
    for backend in BACKENDS:
        process = load_binary(binary, seed=1)
        process.register_service("attack_hook", lambda proc, cpu: 0)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        address = debugger.break_at("double")
        assert not debugger.cont()
        assert cpu.rip == address
        assert debugger.current_function() == "double"
        assert debugger.cont()
        # Relative position only: the load seed randomizes absolute bases.
        stops[backend] = (address - process.text_base, debugger.result.exit_code)
    assert stops["reference"] == stops["fast"]


def test_watchpoint_records_old_and_new_values():
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(DATA)),
        I(Op.MOV, Mem(Reg.RAX), Imm(0xBEEF)),
        I(Op.MOV, Mem(Reg.RAX), Imm(0xCAFE)),
        I(Op.EXIT, Imm(0)),
    ]
    process, _ = assemble(instrs, execute_only=False)
    cpu = CPU(process, get_costs("epyc-rome"))
    debugger = Debugger(cpu)
    debugger.add_watchpoint(DATA)
    assert debugger.cont()
    values = [(hit["old"], hit["new"]) for hit in debugger.watch_hits]
    assert values == [(0, 0xBEEF), (0xBEEF, 0xCAFE)]


def test_debugger_leaves_trace_hook_free():
    """The step-based debugger does not occupy ``trace_fn``: a hook
    installed before (or after) attaching keeps seeing every executed
    instruction exactly once."""
    process, _ = counting_program()
    cpu = CPU(process, get_costs("epyc-rome"))
    seen = []
    cpu.trace_fn = lambda c, rip, ins: seen.append(rip)
    debugger = Debugger(cpu)
    assert cpu.trace_fn is not None  # not displaced
    assert debugger.cont()
    assert len(seen) == debugger.result.instructions == 5


def test_debugger_drives_bare_machine_state():
    """Single-stepping works against a MachineState passed explicitly —
    no CPU façade required, backend chosen by name."""
    for backend in BACKENDS:
        process, addresses = counting_program()
        state = MachineState(process, get_costs("epyc-rome"))
        debugger = Debugger(state, backend=backend)
        assert not debugger.step(3)
        assert state.rip == addresses[3]
        assert state.regs[Reg.RAX] == 12
        assert debugger.step(100)
        assert debugger.result.exit_code == 0
        assert list(process.output) == [12]


def test_debugged_run_matches_plain_run_counters():
    """The refetch quirk is gone: stepping one instruction at a time
    accumulates exactly the undebugged run's result on both backends."""
    for backend in BACKENDS:
        plain_process, _ = counting_program()
        plain = CPU(plain_process, get_costs("epyc-rome"), backend=backend).run()

        process, _ = counting_program()
        state = MachineState(process, get_costs("epyc-rome"))
        debugger = Debugger(state, backend=backend)
        while not debugger.step():
            pass
        assert debugger.result.instructions == plain.instructions
        assert debugger.result.cycles == plain.cycles
        assert debugger.result.exit_code == plain.exit_code


def test_stepping_respects_instruction_budget():
    """The budget counts accumulated instructions across step slices, so a
    stepped run faults at exactly the same instruction as a plain run."""
    from repro.errors import ExecutionLimitExceeded

    for backend in BACKENDS:
        process, _ = counting_program()
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend, instruction_budget=3)
        debugger = Debugger(cpu)
        assert not debugger.step(2)
        with pytest.raises(ExecutionLimitExceeded):
            debugger.step(2)
        assert debugger.result.instructions == 4  # counted like the plain run


def test_profiler_chains_onto_debugger():
    """A profiler attached on top of a debugger keeps breakpoints working
    and still accounts every executed instruction's cycles."""
    from repro.obs.profiler import CycleProfiler

    process, addresses = counting_program()
    cpu = CPU(process, get_costs("epyc-rome"))
    debugger = Debugger(cpu)
    profiler = CycleProfiler(cpu)  # chains the debugger's hook
    debugger.add_breakpoint(addresses[3])
    assert not debugger.cont()
    assert cpu.rip == addresses[3]
    assert debugger.cont()
    # The debugger no longer rides the trace hook, so the profiler sees
    # each executed instruction exactly once and both tallies agree — the
    # old one-high-per-stop refetch quirk is gone.
    assert profiler.instructions == debugger.result.instructions
    assert profiler.total_cycles == debugger.result.cycles
