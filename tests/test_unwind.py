"""Tests for stack unwinding through diversified frames (Section 7.2.4)."""

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.toolchain.unwind import UnwindError, backtrace, unwind
from repro.workloads.victim import build_victim

EXPECTED_CHAIN = ["validate", "parse_headers", "process_request", "main", "_start"]


def capture_backtrace(config, *, load_seed=4, corrupt=False):
    binary = compile_module(build_victim(), config)
    process = load_binary(binary, seed=load_seed)
    captured = {}

    def hook(proc, cpu):
        if captured:
            return 0
        rsp = cpu.regs[Reg.RSP]
        if corrupt:
            record = binary.frame_records["validate"]
            ra_slot = rsp + record.frame_bytes + 8 * record.post_offset
            proc.memory.write_word(ra_slot, 0x1234)
        try:
            captured["bt"] = backtrace(proc, cpu.rip, rsp)
        except UnwindError as exc:
            captured["error"] = exc
        return 0

    process.register_service("attack_hook", hook)
    try:
        CPU(process, get_costs("epyc-rome")).run()
    except Exception:
        if not corrupt:  # a corrupted stack is allowed to crash the victim
            raise
    return captured


@pytest.mark.parametrize(
    "config",
    [
        R2CConfig.baseline(),
        R2CConfig.full(seed=31),
        R2CConfig.full(seed=31, btra_mode="push"),
        R2CConfig(seed=7, enable_btra=True, btra_mode="push"),
        R2CConfig.oia_only(seed=2),
    ],
    ids=["baseline", "full-avx", "full-push", "btra-only", "oia-only"],
)
def test_backtrace_through_diversified_frames(config):
    captured = capture_backtrace(config)
    assert captured["bt"] == EXPECTED_CHAIN


def test_backtrace_identical_across_seeds():
    for seed in (1, 2, 3):
        captured = capture_backtrace(R2CConfig.full(seed=seed))
        assert captured["bt"] == EXPECTED_CHAIN


def test_unwind_reports_frame_details():
    binary = compile_module(build_victim(), R2CConfig.full(seed=31))
    process = load_binary(binary, seed=4)
    captured = {}

    def hook(proc, cpu):
        if not captured:
            captured["frames"] = unwind(proc, cpu.rip, cpu.regs[Reg.RSP])
        return 0

    process.register_service("attack_hook", hook)
    CPU(process, get_costs("epyc-rome")).run()
    frames = captured["frames"]
    assert frames[0].function == "validate"
    # Each outer frame's rsp is strictly higher than the inner one's.
    rsps = [f.frame_rsp for f in frames]
    assert rsps == sorted(rsps)
    # Return addresses land inside the recorded caller functions.
    text_base = process.text_base
    for inner, outer in zip(frames, frames[1:-1]):
        ra_offset = inner.return_address - text_base
        assert binary.function_at_offset(ra_offset) == outer.function


def test_unwinder_detects_corrupted_return_address():
    captured = capture_backtrace(R2CConfig.full(seed=31), corrupt=True)
    assert "error" in captured


def test_unwind_outside_text_fails():
    binary = compile_module(build_victim(), R2CConfig.baseline())
    process = load_binary(binary, seed=4)
    with pytest.raises(UnwindError):
        unwind(process, 0xDEAD, process.layout.stack_top - 64)
