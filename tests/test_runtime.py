"""Tests for the R2C runtime constructor (Section 5.2 details)."""

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.loader import load_binary
from repro.machine.memory import PAGE_SIZE
from repro.workloads.victim import build_victim


def load_with(config, seed=3):
    binary = compile_module(build_victim(), config)
    return load_binary(binary, seed=seed)


def test_guard_page_count_matches_config():
    config = R2CConfig(seed=1, enable_btdp=True, btdp_guard_pages=7)
    process = load_with(config)
    assert len(process.r2c_runtime["guard_pages"]) == 7


def test_overallocation_scatters_guard_pages():
    """Freeing all but a random subset leaves the survivors non-contiguous
    (Section 5.2: "scattered randomly across the heap")."""
    config = R2CConfig(
        seed=2, enable_btdp=True, btdp_guard_pages=8, btdp_overallocate_factor=4
    )
    process = load_with(config)
    pages = sorted(process.r2c_runtime["guard_pages"])
    gaps = [b - a for a, b in zip(pages, pages[1:])]
    assert any(gap > PAGE_SIZE for gap in gaps)


def test_no_overallocation_means_contiguous_pages():
    config = R2CConfig(
        seed=2, enable_btdp=True, btdp_guard_pages=4, btdp_overallocate_factor=1
    )
    process = load_with(config)
    assert len(process.r2c_runtime["guard_pages"]) == 4


def test_array_length_matches_config():
    config = R2CConfig(seed=1, enable_btdp=True, btdp_array_len=17)
    process = load_with(config)
    assert len(process.r2c_runtime["btdp_values"]) == 17


def test_decoy_count_matches_config():
    config = R2CConfig(seed=1, enable_btdp=True, btdp_decoys_in_data=6)
    process = load_with(config)
    assert len(process.r2c_runtime["decoy_values"]) == 6


def test_hardened_array_lives_on_heap():
    process = load_with(R2CConfig(seed=1, enable_btdp=True))
    addr = process.r2c_runtime["array_addr"]
    assert process.layout.region_of(addr) == "heap"


def test_naive_array_lives_in_data():
    process = load_with(R2CConfig(seed=1, enable_btdp=True, btdp_hardened=False))
    addr = process.r2c_runtime["array_addr"]
    assert process.layout.region_of(addr) == "data"


def test_different_load_seeds_different_btdp_values():
    config = R2CConfig(seed=1, enable_btdp=True)
    binary = compile_module(build_victim(), config)
    a = load_binary(binary, seed=1)
    b = load_binary(binary, seed=2)
    assert a.r2c_runtime["btdp_values"] != b.r2c_runtime["btdp_values"]


def test_same_load_seed_reproduces_btdp_values():
    config = R2CConfig(seed=1, enable_btdp=True)
    binary = compile_module(build_victim(), config)
    a = load_binary(binary, seed=5)
    b = load_binary(binary, seed=5)
    assert a.r2c_runtime["btdp_values"] == b.r2c_runtime["btdp_values"]


def test_btdp_offsets_within_pages_vary():
    """BTDPs point at random *offsets* within guard pages, not page bases."""
    config = R2CConfig(seed=1, enable_btdp=True, btdp_array_len=64)
    process = load_with(config)
    offsets = {v & (PAGE_SIZE - 1) for v in process.r2c_runtime["btdp_values"]}
    assert len(offsets) > 10
