"""Tests for the CPU interpreter, including the BTRA-critical semantics."""

import pytest

from repro.errors import (
    BoobyTrapTriggered,
    ExecutionLimitExceeded,
    InvalidInstruction,
    MachineError,
    StackMisaligned,
)
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU, to_signed, truncated_div
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.process import AddressSpaceLayout, Process

TEXT = 0x5555_0000_0000
DATA = 0x5555_0010_0000
HEAP = 0x6200_0000_0000
STACK = 0x7FFC_0000_0000


def assemble(instrs, *, execute_only=True):
    """Build a process containing ``instrs`` laid out from the text base."""
    layout = AddressSpaceLayout(
        text_base=TEXT,
        text_size=0x10000,
        data_base=DATA,
        data_size=0x10000,
        heap_base=HEAP,
        heap_size=0x10000,
        stack_base=STACK,
        stack_size=0x10000,
    )
    process = Process(layout, execute_only_text=execute_only)
    addr = TEXT
    addresses = []
    for instr in instrs:
        process.place_instruction(addr, instr)
        addresses.append(addr)
        addr += instr.size
    process.entry_point = TEXT
    return process, addresses


def run(instrs, **kwargs):
    process, addresses = assemble(instrs)
    cpu = CPU(process, get_costs("epyc-rome"), **kwargs)
    result = cpu.run()
    return cpu, result, addresses


I = Instruction


def test_mov_and_arith():
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(40)),
            I(Op.MOV, Reg.RBX, Imm(2)),
            I(Op.ADD, Reg.RAX, Reg.RBX),
            I(Op.OUT, Reg.RAX),
            I(Op.SUB, Reg.RAX, Imm(12)),
            I(Op.IMUL, Reg.RAX, Imm(-2)),
            I(Op.OUT, Reg.RAX),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert result.output[0] == 42
    assert to_signed(result.output[1]) == -60


def test_division_semantics_match_c():
    # -7 / 2 == -3 in C (truncation toward zero).
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(-7)),
            I(Op.MOV, Reg.RBX, Imm(2)),
            I(Op.IDIV, Reg.RAX, Reg.RBX),
            I(Op.OUT, Reg.RAX),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert to_signed(result.output[0]) == -3


def test_truncated_div_exact_for_large_values():
    big = 2**62 + 12345
    assert truncated_div(big, 7) == big // 7
    assert truncated_div(-big, 7) == -(big // 7)


def test_division_by_zero_raises():
    with pytest.raises(MachineError):
        run(
            [
                I(Op.MOV, Reg.RAX, Imm(1)),
                I(Op.MOV, Reg.RBX, Imm(0)),
                I(Op.IDIV, Reg.RAX, Reg.RBX),
                I(Op.EXIT, Imm(0)),
            ]
        )


def test_shifts_mask_count():
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(1)),
            I(Op.SHL, Reg.RAX, Imm(65)),  # 65 & 63 == 1
            I(Op.OUT, Reg.RAX),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert result.output[0] == 2


def test_push_pop_stack_semantics():
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(0x1234)),
            I(Op.PUSH, Reg.RAX),
            I(Op.PUSH, Imm(0x5678)),
            I(Op.POP, Reg.RBX),
            I(Op.POP, Reg.RCX),
            I(Op.OUT, Reg.RBX),
            I(Op.OUT, Reg.RCX),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert result.output == [0x5678, 0x1234]
    assert cpu.regs[Reg.RSP] % 16 == 0


def test_call_writes_return_address_at_new_rsp():
    """The x86 property the BTRA setup of Section 5.1 depends on: the call
    overwrites the word at the decremented rsp in place."""
    marker = 0xDEAD_BEEF
    instrs = [
        I(Op.PUSH, Imm(marker)),  # the slot the call must overwrite
        I(Op.ADD, Reg.RSP, Imm(8)),  # reposition rsp above the slot
        I(Op.CALL, Imm(0)),  # target patched below
        I(Op.EXIT, Imm(0)),
        # callee:
        I(Op.MOV, Reg.RAX, Mem(Reg.RSP)),  # read the return address slot
        I(Op.OUT, Reg.RAX),
        I(Op.RET),
    ]
    process, addresses = assemble(instrs)
    instrs[2].a = Imm(addresses[4])
    cpu = CPU(process, get_costs("epyc-rome"))
    result = cpu.run()
    ra = result.output[0]
    assert ra == addresses[3]  # the instruction after the call
    assert ra != marker  # the pushed word was overwritten in place
    assert result.exit_code == 0


def test_alignment_enforced_at_call():
    instrs = [
        I(Op.PUSH, Imm(1)),  # rsp now ≡ 8 (mod 16)
        I(Op.CALL, Imm(0)),
        I(Op.EXIT, Imm(0)),
        I(Op.RET),
    ]
    process, addresses = assemble(instrs)
    instrs[1].a = Imm(addresses[3])
    cpu = CPU(process, get_costs("epyc-rome"))
    with pytest.raises(StackMisaligned):
        cpu.run()


def test_alignment_check_can_be_disabled():
    instrs = [
        I(Op.PUSH, Imm(1)),
        I(Op.CALL, Imm(0)),
        I(Op.EXIT, Imm(0)),
        I(Op.RET),
    ]
    process, addresses = assemble(instrs)
    instrs[1].a = Imm(addresses[3])
    cpu = CPU(process, get_costs("epyc-rome"), check_alignment=False)
    assert cpu.run().exit_code == 0


def test_conditional_jumps():
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(5)),
        I(Op.CMP, Reg.RAX, Imm(10)),
        I(Op.JL, Imm(0)),  # taken
        I(Op.OUT, Imm(111)),  # skipped
        I(Op.OUT, Imm(222)),  # target
        I(Op.EXIT, Imm(0)),
    ]
    process, addresses = assemble(instrs)
    instrs[2].a = Imm(addresses[4])
    result = CPU(process, get_costs("epyc-rome")).run()
    assert result.output == [222]


def test_setcc():
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(-3)),
            I(Op.CMP, Reg.RAX, Imm(2)),
            I(Op.SETL, Reg.RBX),
            I(Op.OUT, Reg.RBX),
            I(Op.SETGE, Reg.RCX),
            I(Op.OUT, Reg.RCX),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert result.output == [1, 0]


def test_trap_raises_booby_trap():
    with pytest.raises(BoobyTrapTriggered):
        run([I(Op.TRAP)])


def test_vector_load_store_moves_32_bytes():
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(DATA)),
        I(Op.VLOAD, Reg.YMM0, Mem(Reg.RAX)),
        I(Op.VSTORE, Mem(Reg.RSP, -32), Reg.YMM0),
        I(Op.VZEROUPPER),
        I(Op.MOV, Reg.RBX, Mem(Reg.RSP, -32 + 8)),
        I(Op.OUT, Reg.RBX),
        I(Op.EXIT, Imm(0)),
    ]
    process, _ = assemble(instrs)
    for i in range(4):
        process.memory.store_word_raw(DATA + 8 * i, 100 + i)
    result = CPU(process, get_costs("epyc-rome")).run()
    assert result.output == [101]


def test_callrt_dispatches_to_service():
    instrs = [
        I(Op.MOV, Reg.RDI, Imm(21)),
        I(Op.CALLRT, Imm(symbol="double")),
        I(Op.OUT, Reg.RAX),
        I(Op.EXIT, Imm(0)),
    ]
    process, _ = assemble(instrs)
    process.register_service("double", lambda proc, cpu: cpu.regs[Reg.RDI] * 2)
    result = CPU(process, get_costs("epyc-rome")).run()
    assert result.output == [42]


def test_unknown_service_raises():
    instrs = [I(Op.CALLRT, Imm(symbol="nope")), I(Op.EXIT, Imm(0))]
    process, _ = assemble(instrs)
    with pytest.raises(MachineError):
        CPU(process, get_costs("epyc-rome")).run()


def test_instruction_budget_enforced():
    instrs = [I(Op.JMP, Imm(0))]
    process, addresses = assemble(instrs)
    instrs[0].a = Imm(addresses[0])  # infinite loop
    cpu = CPU(process, get_costs("epyc-rome"), instruction_budget=100)
    with pytest.raises(ExecutionLimitExceeded):
        cpu.run()


def test_fetch_from_data_faults():
    instrs = [I(Op.JMP, Imm(DATA)), I(Op.EXIT, Imm(0))]
    process, _ = assemble(instrs)
    with pytest.raises(MachineError):
        CPU(process, get_costs("epyc-rome")).run()


def test_counters_and_cycles():
    cpu, result, _ = run(
        [
            I(Op.MOV, Reg.RAX, Imm(1)),
            I(Op.MOV, Reg.RBX, Imm(2)),
            I(Op.EXIT, Imm(0)),
        ]
    )
    assert result.instructions == 3
    assert result.cycles > 0
    assert result.icache_misses >= 1


def test_trace_fn_sees_every_instruction():
    seen = []
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(1)),
        I(Op.EXIT, Imm(0)),
    ]
    process, _ = assemble(instrs)
    cpu = CPU(
        process,
        get_costs("epyc-rome"),
        trace_fn=lambda c, rip, ins: seen.append(ins.op),
    )
    cpu.run()
    assert seen == [Op.MOV, Op.EXIT]


def test_opcode_counting():
    process, _ = assemble(
        [I(Op.MOV, Reg.RAX, Imm(1)), I(Op.MOV, Reg.RBX, Imm(2)), I(Op.EXIT, Imm(0))]
    )
    cpu = CPU(process, get_costs("epyc-rome"), count_opcodes=True)
    result = cpu.run()
    assert result.opcode_counts[Op.MOV] == 2
    assert result.opcode_counts[Op.EXIT] == 1


def test_mem_operand_with_index_scale():
    instrs = [
        I(Op.MOV, Reg.RAX, Imm(DATA)),
        I(Op.MOV, Reg.RBX, Imm(2)),
        I(Op.MOV, Reg.RCX, Mem(Reg.RAX, 8, index=Reg.RBX, scale=8)),
        I(Op.OUT, Reg.RCX),
        I(Op.EXIT, Imm(0)),
    ]
    process, _ = assemble(instrs)
    process.memory.store_word_raw(DATA + 8 + 16, 777)
    result = CPU(process, get_costs("epyc-rome")).run()
    assert result.output == [777]
