"""Tests for the diversification passes and pass manager."""

import copy

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.core.pass_manager import build_plan
from repro.machine.isa import Op
from repro.workloads.victim import build_victim
from tests.conftest import assert_equivalent


def plan_for(config, module=None):
    module = module if module is not None else build_victim()
    working = copy.deepcopy(module)
    plan, disabled = build_plan(working, config)
    return working, plan, disabled


def test_function_shuffle_permutes_order():
    _, plan_a, _ = plan_for(R2CConfig(seed=1, enable_function_shuffle=True))
    _, plan_b, _ = plan_for(R2CConfig(seed=2, enable_function_shuffle=True))
    assert plan_a.function_order != plan_b.function_order
    assert sorted(plan_a.function_order) == sorted(plan_b.function_order)


def test_booby_traps_interleaved_even_without_shuffle():
    _, plan, _ = plan_for(R2CConfig(seed=1, enable_btra=True))
    order = plan.function_order
    trap_positions = [i for i, n in enumerate(order) if n.startswith("__bt")]
    assert trap_positions
    # Not all appended at the end: at least one trap precedes a function.
    assert trap_positions[0] < len(order) - len(trap_positions)


def test_global_shuffle_adds_padding_and_reorders():
    module, plan, _ = plan_for(
        R2CConfig(seed=3, enable_global_shuffle=True, global_padding_min=1, global_padding_max=3)
    )
    assert plan.global_order is not None
    padding = [g for g in module.globals if g.is_padding]
    assert padding
    app_names = [n for n in plan.global_order if not n.startswith("__gpad")]
    original = [g.name for g in build_victim().globals]
    assert sorted(app_names) == sorted(original)
    assert app_names != original  # actually shuffled with this seed


def test_nop_insertion_within_bounds():
    _, plan, _ = plan_for(
        R2CConfig(seed=4, enable_nop_insertion=True, nops_min=2, nops_max=5)
    )
    counts = [
        cs.nops_before
        for fplan in plan.functions.values()
        for cs in fplan.call_sites
    ]
    assert counts
    assert all(2 <= c <= 5 for c in counts)


def test_nop_instructions_emitted():
    config = R2CConfig(seed=4, enable_nop_insertion=True)
    binary = compile_module(build_victim(), config)
    nops = [i for _, i in binary.text if i.op is Op.NOP and i.tag == "nop-insertion"]
    assert nops


def test_prolog_traps_within_bounds_and_emitted():
    config = R2CConfig(seed=4, enable_prolog_traps=True, prolog_traps_min=1, prolog_traps_max=5)
    _, plan, _ = plan_for(config)
    counts = [f.prolog_traps for f in plan.functions.values() if f.prolog_traps]
    assert counts and all(1 <= c <= 5 for c in counts)
    binary = compile_module(build_victim(), config)
    traps = [i for _, i in binary.text if i.op is Op.TRAP and i.tag == "prolog-trap"]
    assert traps


def test_prolog_traps_change_entry_to_body_distance():
    base = compile_module(build_victim(), R2CConfig.baseline())
    trapped = compile_module(build_victim(), R2CConfig(seed=4, enable_prolog_traps=True))
    name = "process_request"
    base_size = base.frame_records[name].end_offset - base.frame_records[name].entry_offset
    trap_size = trapped.frame_records[name].end_offset - trapped.frame_records[name].entry_offset
    assert trap_size > base_size


def test_slot_shuffle_produces_different_frame_layouts():
    config_a = R2CConfig(seed=1, enable_stack_slot_shuffle=True)
    config_b = R2CConfig(seed=2, enable_stack_slot_shuffle=True)
    binary_a = compile_module(build_victim(), config_a)
    binary_b = compile_module(build_victim(), config_b)
    rec_a = binary_a.frame_records["process_request"].slot_offsets
    rec_b = binary_b.frame_records["process_request"].slot_offsets
    assert rec_a != rec_b


def test_regalloc_shuffle_changes_emitted_code():
    a = compile_module(build_victim(), R2CConfig(seed=1, enable_regalloc_shuffle=True))
    b = compile_module(build_victim(), R2CConfig(seed=2, enable_regalloc_shuffle=True))
    text_a = [(o, repr(i)) for o, i in a.text]
    text_b = [(o, repr(i)) for o, i in b.text]
    assert text_a != text_b


def test_r2c_disabled_functions_empty_when_all_protected():
    _, _, disabled = plan_for(R2CConfig.full(seed=1))
    assert disabled == set()


def test_plan_records_worst_case_flag():
    _, plan, _ = plan_for(R2CConfig(seed=1, enable_btra=True, btras_for_unprotected_calls=True))
    assert plan.btras_for_unprotected_calls


def test_pass_manager_is_idempotent_per_seed():
    m1, plan1, _ = plan_for(R2CConfig.full(seed=42))
    m2, plan2, _ = plan_for(R2CConfig.full(seed=42))
    assert plan1.function_order == plan2.function_order
    assert plan1.global_order == plan2.global_order
    for name in plan1.functions:
        f1, f2 = plan1.functions[name], plan2.functions[name]
        assert f1.post_offset == f2.post_offset
        assert f1.btdp_indices == f2.btdp_indices
        assert [c.pre_btras for c in f1.call_sites] == [c.pre_btras for c in f2.call_sites]


def test_compiler_does_not_mutate_input_module():
    module = build_victim()
    globals_before = [g.name for g in module.globals]
    functions_before = set(module.functions)
    compile_module(module, R2CConfig.full(seed=5))
    assert [g.name for g in module.globals] == globals_before
    assert set(module.functions) == functions_before


def test_all_passes_compose_semantically(simple_module):
    """Every pairwise combination of passes keeps semantics."""
    flags = [
        "enable_btra",
        "enable_btdp",
        "enable_nop_insertion",
        "enable_prolog_traps",
        "enable_stack_slot_shuffle",
        "enable_regalloc_shuffle",
        "enable_function_shuffle",
        "enable_global_shuffle",
    ]
    for i, first in enumerate(flags):
        for second in flags[i + 1 :]:
            config = R2CConfig(seed=13, **{first: True, second: True})
            assert_equivalent(simple_module, config)
