"""Security evaluation tests: every attack vs. baseline and vs. R2C.

These reproduce the qualitative claims of Section 7.2: the monoculture
baseline falls to every attack; full R2C either thwarts them (FAILED /
CRASHED without payload execution) or actively detects them (booby traps,
BTDP guard pages).
"""

import pytest

from repro.attacks import (
    ALL_ATTACKS,
    AttackOutcome,
    VictimSession,
    aocr_attack,
    blindrop_attack,
    indirect_jitrop_attack,
    jitrop_attack,
    pirop_attack,
    rop_attack,
)
from repro.attacks.monitor import DefenseMonitor
from repro.core.config import R2CConfig
from repro.errors import BoobyTrapTriggered, GuardPageFault, MemoryFault


def baseline_session(**kwargs):
    return VictimSession(R2CConfig.baseline(), execute_only=False, **kwargs)


def r2c_session(seed=42, **kwargs):
    return VictimSession(R2CConfig.full(seed=seed), execute_only=True, **kwargs)


# ---- the monoculture falls to everything ----------------------------------

@pytest.mark.parametrize(
    "attack_name",
    ["rop", "indirect-jitrop", "aocr", "pirop", "mined-rop", "mined-aocr"],
)
def test_baseline_falls_to_single_shot_attacks(attack_name):
    result = ALL_ATTACKS[attack_name](baseline_session(), attacker_seed=1)
    assert result.outcome is AttackOutcome.SUCCESS, result


def test_mined_rop_matches_handwritten_rop_on_the_monoculture():
    """The miner-synthesized chain must reproduce the hand-written
    attack's outcome against the undiversified victim (ISSUE acceptance):
    same success, through a chain derived entirely from the census."""
    handwritten = rop_attack(baseline_session(), attacker_seed=1)
    mined = ALL_ATTACKS["mined-rop"](baseline_session(), attacker_seed=1)
    assert mined.outcome is handwritten.outcome is AttackOutcome.SUCCESS
    assert mined.probes == 1


@pytest.mark.parametrize("attack_name", ["mined-rop", "mined-aocr"])
def test_mined_attack_outcomes_are_backend_invariant(attack_name):
    """Table 3's mined rows must be byte-identical across execution
    backends; the per-cell guarantee is outcome identity."""
    from repro.machine.backends import available_backends

    for make_session in (baseline_session, lambda **kw: r2c_session(seed=41, **kw)):
        outcomes = {
            backend: ALL_ATTACKS[attack_name](
                make_session(backend=backend), attacker_seed=41
            ).outcome
            for backend in available_backends()
        }
        assert len(set(outcomes.values())) == 1, outcomes


def test_baseline_falls_to_jitrop_when_text_is_readable():
    result = jitrop_attack(baseline_session(), attacker_seed=1)
    assert result.outcome is AttackOutcome.SUCCESS


def test_baseline_falls_to_blindrop_with_restarts():
    result = blindrop_attack(baseline_session(), attacker_seed=1)
    assert result.outcome is AttackOutcome.SUCCESS
    assert result.probes > 5  # it genuinely brute-forced
    assert result.crashes > 0


# ---- R2C stops all of them --------------------------------------------------

@pytest.mark.parametrize("attack_name", sorted(ALL_ATTACKS))
@pytest.mark.parametrize("victim_seed", [41, 42, 43])
def test_r2c_stops_every_attack(attack_name, victim_seed):
    session = r2c_session(seed=victim_seed)
    result = ALL_ATTACKS[attack_name](session, attacker_seed=victim_seed)
    assert result.outcome is not AttackOutcome.SUCCESS, result


def test_jitrop_fails_on_execute_only_text():
    """Execute-only memory stops direct code disclosure cold."""
    result = jitrop_attack(r2c_session(), attacker_seed=3)
    assert result.outcome in (AttackOutcome.CRASHED, AttackOutcome.FAILED)


def test_aocr_gets_detected_by_btdps():
    """AOCR's heap-pointer chase hits a BTDP with high probability."""
    detected = 0
    for seed in range(6):
        session = r2c_session(seed=70 + seed)
        result = aocr_attack(session, attacker_seed=seed)
        assert result.outcome is not AttackOutcome.SUCCESS
        if result.outcome is AttackOutcome.DETECTED:
            detected += 1
    assert detected >= 3  # BTDPs outnumber benign heap pointers


def test_blindrop_trips_the_detection_budget_under_r2c():
    session = r2c_session(seed=55)
    result = blindrop_attack(session, attacker_seed=5)
    assert result.outcome is AttackOutcome.DETECTED
    assert session.monitor.booby_trap_hits >= session.monitor.detection_budget
    # And it needed far fewer probes than the baseline success required:
    assert result.probes < 100


def test_aocr_succeeds_against_code_only_diversity():
    """The paper's core motivation: Readactor-style code diversification
    without data diversification does NOT stop AOCR."""
    from repro.defenses import DEFENSE_MODELS

    model = DEFENSE_MODELS["readactor"]
    successes = 0
    for trial in range(4):
        session = VictimSession(
            model.victim_config(seed=200 + trial), execute_only=model.execute_only
        )
        result = aocr_attack(session, attacker_seed=trial)
        if result.outcome is AttackOutcome.SUCCESS:
            successes += 1
    assert successes >= 3


def test_rop_fails_against_readactor_style_defense():
    from repro.defenses import DEFENSE_MODELS

    model = DEFENSE_MODELS["readactor"]
    session = VictimSession(model.victim_config(seed=201), execute_only=True)
    result = rop_attack(session, attacker_seed=1)
    assert result.outcome is not AttackOutcome.SUCCESS


def test_pirop_succeeds_against_pure_aslr_but_not_r2c():
    base = pirop_attack(baseline_session(), attacker_seed=2)
    assert base.outcome is AttackOutcome.SUCCESS
    assert base.probes <= 16  # at most one guess per ASLR nibble
    protected = pirop_attack(r2c_session(seed=77), attacker_seed=2)
    assert protected.outcome is not AttackOutcome.SUCCESS


def test_monitor_classification():
    monitor = DefenseMonitor(detection_budget=2)
    assert monitor.classify(GuardPageFault("read", 0x1)) == "detected"
    assert monitor.classify(BoobyTrapTriggered(0x2)) == "detected"
    assert monitor.classify(MemoryFault("read", 0x3)) == "crashed"
    assert monitor.tripped
    assert monitor.btdp_hits == 1 and monitor.booby_trap_hits == 1


def test_attack_results_carry_bookkeeping():
    session = baseline_session()
    result = rop_attack(session, attacker_seed=1)
    assert result.attack == "rop"
    assert result.probes == 1
    assert str(result).startswith("rop: success")


# ---- ablations: the weakened variants are actually weaker -------------------

def test_naive_btdp_placement_lets_attackers_filter_decoys():
    """Figure 5: with the BTDP array readable in the data section, an
    attacker who knows the data base can subtract BTDPs from the heap
    cluster and dereference only benign pointers."""
    from repro.attacks.scenario import VictimSession

    config = R2CConfig.full(seed=60).replace(btdp_hardened=False)
    session = VictimSession(config)
    process, _ = session.spawn()
    info = process.r2c_runtime
    base = process.symbols["__btdp_array"]
    leaked = {
        process.memory.read_word(base + 8 * i)
        for i in range(config.btdp_array_len)
    }
    # Every stack BTDP is identifiable from the data section...
    assert set(info["btdp_values"]) <= leaked
    # ...whereas in hardened mode the data section exposes only decoys that
    # never appear on the stack.
    config_h = R2CConfig.full(seed=60)
    session_h = VictimSession(config_h)
    process_h, _ = session_h.spawn()
    info_h = process_h.r2c_runtime
    assert not set(info_h["btdp_values"]) & set(info_h["decoy_values"])


def test_unguarded_btdps_lose_the_reactive_property():
    config = R2CConfig.full(seed=61).replace(unsafe_btdp_no_guard=True)
    session = VictimSession(config)
    result = aocr_attack(session, attacker_seed=1)
    # Never detected: without guard pages the dereference is silent.
    assert result.outcome is not AttackOutcome.DETECTED
