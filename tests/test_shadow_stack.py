"""Tests for the shadow-stack enforcement model (Section 8.2).

The paper's framing: backward-edge CFI "generally prevents ROP and
JIT-ROP, but its effectiveness against AOCR depends on whether the
malicious control-flow transfers are valid in the approximated CFG."
AOCR's whole-function reuse only rides *forward* edges (an indirect call
the program legitimately makes), so a shadow stack never fires on it —
while every return-hijacking attack is caught immediately.
"""

import pytest

from repro.attacks import (
    ALL_ATTACKS,
    AttackOutcome,
    VictimSession,
    aocr_attack,
    blindrop_attack,
    rop_attack,
)
from repro.core.config import R2CConfig
from repro.defenses import DEFENSE_MODELS
from repro.errors import ShadowStackViolation
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.loader import load_binary
from repro.core.compiler import compile_module
from repro.workloads.victim import build_victim
from repro.workloads.spec import build_spec_benchmark


def shadow_session(**kwargs):
    model = DEFENSE_MODELS["shadowstack"]
    return VictimSession(
        model.victim_config(seed=7),
        execute_only=model.execute_only,
        shadow_stack=True,
        **kwargs,
    )


def test_legitimate_programs_run_under_shadow_stack():
    """Every benchmark's call/ret discipline satisfies the shadow stack —
    including under full R2C, whose BTRAs never alter return targets."""
    for config in (R2CConfig.baseline(), R2CConfig.full(seed=5, btra_mode="push")):
        binary = compile_module(build_spec_benchmark("xz"), config)
        process = load_binary(binary, seed=3)
        process.register_service("attack_hook", lambda p, c: 0)
        result = CPU(process, get_costs("epyc-rome"), shadow_stack=True).run()
        assert result.exit_code == 0


def test_shadow_stack_detects_return_hijack():
    session = shadow_session()
    result = rop_attack(session, attacker_seed=1)
    assert result.outcome is AttackOutcome.DETECTED
    assert session.monitor.shadow_stack_hits == 1


def test_shadow_stack_detects_blindrop_probes():
    session = shadow_session()
    result = blindrop_attack(session, attacker_seed=1)
    assert result.outcome is AttackOutcome.DETECTED


def test_shadow_stack_does_not_stop_aocr():
    """The Section 8.2 caveat, demonstrated: AOCR rides forward edges."""
    session = shadow_session()
    result = aocr_attack(session, attacker_seed=1)
    assert result.outcome is AttackOutcome.SUCCESS
    assert session.monitor.shadow_stack_hits == 0


def test_violation_carries_expected_and_actual():
    exc = ShadowStackViolation(0x1000, 0x2000)
    assert exc.expected == 0x1000 and exc.actual == 0x2000


def test_shadow_stack_and_r2c_compose():
    """Orthogonality (Section 8.2: "R2C and CFI are orthogonal defenses
    and could in principle strengthen each other")."""
    session = VictimSession(R2CConfig.full(seed=9), shadow_stack=True)
    for attack_name in ("rop", "aocr", "pirop"):
        result = ALL_ATTACKS[attack_name](session, attacker_seed=2)
        assert result.outcome is not AttackOutcome.SUCCESS, attack_name
