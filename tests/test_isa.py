"""Tests for instruction encoding sizes and operand types."""

from repro.machine.isa import (
    ALLOCATABLE_GPRS,
    GPRS,
    Imm,
    Instruction,
    Label,
    Mem,
    Op,
    Reg,
    VECTOR_REGS,
    encoded_size,
)


def test_register_sets():
    assert len(GPRS) == 16
    assert Reg.RSP in GPRS and Reg.RSP not in ALLOCATABLE_GPRS
    assert Reg.RBP not in ALLOCATABLE_GPRS
    assert all(r.name.startswith("YMM") for r in VECTOR_REGS)


def test_push_imm_is_wide():
    """A pushed 64-bit BTRA costs more bytes than a pushed register —
    this is the i-cache pressure mechanism of Section 6.2.1."""
    wide = encoded_size(Op.PUSH, Imm(0x5555_5555_0000), None)
    narrow = encoded_size(Op.PUSH, Reg.RAX, None)
    assert wide > narrow
    assert wide == 8


def test_mov_imm64_is_widest():
    assert encoded_size(Op.MOV, Reg.RAX, Imm(2**40)) == 10
    assert encoded_size(Op.MOV, Reg.RAX, Imm(5)) == 7
    assert encoded_size(Op.MOV, Reg.RAX, Imm(symbol="f")) == 10


def test_mem_operands_cost_extra_bytes():
    reg_form = encoded_size(Op.MOV, Reg.RAX, Reg.RBX)
    mem_form = encoded_size(Op.MOV, Reg.RAX, Mem(Reg.RSP, 8))
    assert mem_form > reg_form


def test_instruction_size_override():
    nop = Instruction(Op.NOP, size=5)
    assert nop.size == 5
    assert Instruction(Op.NOP).size == 1


def test_trap_is_one_byte():
    """Booby-trap bodies must be 1-byte instructions so any BTRA offset
    lands on an instruction boundary (Section 4.1)."""
    assert Instruction(Op.TRAP).size == 1


def test_operand_equality_and_repr():
    assert Imm(5) == Imm(5)
    assert Imm(5, symbol="a") != Imm(5)
    assert "a" in repr(Imm(0, symbol="a"))
    assert Label("x") == Label("x")
    assert "rsp" in repr(Mem(Reg.RSP, 16))
    text = repr(Instruction(Op.MOV, Reg.RAX, Imm(1), tag="btdp"))
    assert "mov" in text and "btdp" in text


def test_avx_setup_encodes_smaller_than_push_setup():
    """The Section 5.1.2 claim in bytes: batching 12 slots with vector
    instructions takes less code than 12 wide pushes."""
    push_bytes = 11 * encoded_size(Op.PUSH, Imm(1, symbol="t"), None) + encoded_size(
        Op.ADD, Reg.RSP, Imm(16)
    )
    avx_bytes = (
        3 * encoded_size(Op.VLOAD, Reg.YMM0, Mem(symbol="arr"))
        + 3 * encoded_size(Op.VSTORE, Mem(Reg.RSP, -96), Reg.YMM0)
        + encoded_size(Op.VZEROUPPER, None, None)
        + encoded_size(Op.SUB, Reg.RSP, Imm(16))
    )
    assert avx_bytes < push_bytes


def test_indirect_call_sizes():
    assert encoded_size(Op.CALL, Reg.RAX, None) == 3
    assert encoded_size(Op.CALL, Mem(Reg.RAX), None) == 7
    assert encoded_size(Op.CALL, Imm(symbol="f"), None) == 5
