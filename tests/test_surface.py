"""Tests for the attacker surface: capabilities and reference knowledge."""

import pytest

from repro.attacks.scenario import VictimSession, output_success
from repro.attacks.surface import AttackerView, ReferenceKnowledge
from repro.core.config import R2CConfig
from repro.errors import MemoryFault
from repro.machine.isa import Reg
from repro.workloads.victim import ATTACK_ARG, SUCCESS_TAG, VictimLayoutInfo

WORD = 8
CHAIN = VictimLayoutInfo().hook_chain


def capture_view_data(config, collect):
    session = VictimSession(config)
    box = {}

    def hook(view):
        box.update(collect(view))

    status, _ = session.probe(hook)
    assert status == "clean"
    return session, box


def test_reference_geometry_matches_runtime_for_own_build():
    """The attacker's static analysis of their own binary must agree with
    that binary's actual runtime stack layout — otherwise our 'reference
    knowledge' would be fantasy.  Verified for baseline and full R2C."""
    for config in (R2CConfig.baseline(), R2CConfig.full(seed=3)):
        session = VictimSession(config)
        # Defender check: use the VICTIM binary as its own reference.
        reference = ReferenceKnowledge(session.binary)
        frames = reference.stack_map_from_hook(CHAIN)
        box = {}

        def hook(view):
            ras = []
            for frame in frames:
                ras.append(view.read_word(view.rsp + frame.ra_slot))
            box["ras"] = ras

        session.probe(hook)
        text_base = None
        process, _ = session.spawn()
        text_base = process.text_base
        # Each predicted RA slot must hold a pointer that resumes inside
        # the predicted caller function.
        for frame, ra in zip(frames[:-1], box["ras"][:-1]):
            caller_index = CHAIN.index(frame.function) + 1
            caller = CHAIN[caller_index]
            fn = session.binary.function_at_offset(ra - text_base)
            assert fn == caller, (config, frame.function)


def test_leak_stack_is_bounded_by_stack_extent():
    _, box = capture_view_data(
        R2CConfig.baseline(), lambda view: {"leak": view.leak_stack(10**9)}
    )
    assert box["leak"]  # got something, and no fault despite the huge ask


def test_leak_stack_values_match_memory():
    def collect(view):
        leak = view.leak_stack(64)
        direct = [(a, view.read_word(a)) for a, _ in leak]
        return {"leak": leak, "direct": direct}

    _, box = capture_view_data(R2CConfig.baseline(), collect)
    assert box["leak"] == box["direct"]


def test_view_cannot_read_execute_only_text():
    session = VictimSession(R2CConfig.full(seed=4), execute_only=True)

    def hook(view):
        code_addr = next(
            value for _, value in view.leak_stack() if value > 0
        )
        view.read_word(view.rsp)  # stack read is fine
        # Reading text faults (classified as a crash by the session).
        from repro.attacks.clustering import cluster_pointers

        clusters = cluster_pointers(view.leak_stack())
        view.read_word(clusters.image[0][1])

    status, _ = session.probe(hook)
    assert status == "crashed"


def test_write_low_bytes_partial_overwrite():
    def collect(view):
        addr = view.rsp
        view.write_word(addr, 0x1122_3344_5566_7788)
        view.write_low_bytes(addr, 0xAABB, 2)
        return {"value": view.read_word(addr)}

    _, box = capture_view_data(R2CConfig.baseline(), collect)
    assert box["value"] == 0x1122_3344_5566_AABB


def test_reference_knowledge_offsets():
    session = VictimSession(R2CConfig.baseline())
    ref = session.reference
    assert ref.has_global("handler_ptr")
    assert not ref.has_global("nonexistent")
    assert ref.function_offset("target_exec") >= 0
    assert ref.ret_offsets() == sorted(ref.ret_offsets())


def test_reference_differs_from_victim_under_diversity():
    """The attacker's own R2C build rolled different dice."""
    session = VictimSession(R2CConfig.full(seed=9))
    victim_offsets = session.binary.symbols_text
    reference_offsets = session.reference.binary.symbols_text
    assert victim_offsets != reference_offsets


def test_reference_equals_victim_without_diversity():
    session = VictimSession(R2CConfig.baseline())
    assert session.binary.symbols_text == session.reference.binary.symbols_text
    assert bytes(session.binary.data_image) == bytes(session.reference.binary.data_image)


def test_output_success_tagging():
    assert output_success([SUCCESS_TAG | 0x1])
    assert not output_success([0x1234])
    assert output_success([SUCCESS_TAG | ATTACK_ARG], require_arg=True)
    assert not output_success([SUCCESS_TAG | 0x1], require_arg=True)


def test_attacker_rng_is_independent_of_victim_seed():
    views = []
    for victim_seed in (1, 2):
        session = VictimSession(R2CConfig.full(seed=victim_seed))

        def hook(view):
            views.append([view.rng.randint(0, 10**9) for _ in range(5)])

        session.probe(hook, attacker_seed=42)
    assert views[0] == views[1]
