"""Tests for the tier-2 jit backend and the progressive-lowering pipeline.

The differential suite (:mod:`tests.test_backends`) already holds ``jit``
to byte-identical results against ``reference`` and ``fast`` across
seeds and BTRA modes — every backend in the registry participates.  This
module covers what is specific to lowering: the block CFG recovery and
fusion tiers, monotone i-cache detection, the compiled-code cache shared
across loads of one image, and the deopt contract under a debugger —
breakpoints and single-stepping mid-run must observe the exact same
machine trajectory on ``jit`` as on ``fast``, including through
BTRA-displaced returns.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import ExecutionLimitExceeded
from repro.machine.blocks import recover_blocks
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.machine.jit import (
    _text_fits_icache,
    jit_stats_snapshot,
)
from repro.machine.loader import load_binary
from repro.machine.memory import Perm
from repro.machine.uops import get_bound_program
from repro.toolchain.builder import IRBuilder

from tests.test_backends import DATA, HEAP, assemble, run_one_backend
from tests.test_differential_fuzz import build_spec

I = Instruction


def loop_module():
    """A module whose hot loop re-enters its block heads many times —
    enough to cross the jit promotion threshold within one run."""
    ir = IRBuilder("jitloop")
    double = ir.function("double", params=["x"])
    double.ret(double.mul(double.param("x"), 2))
    main = ir.function("main")
    main.local("i")
    main.local("acc")
    main.store_local("i", 0)
    main.store_local("acc", 0)
    main.br("loop")
    main.new_block("loop")
    i = main.load_local("i")
    cond = main.cmp("lt", i, 50)
    main.cbr(cond, "body", "done")
    main.new_block("body")
    doubled = main.call("double", [main.load_local("i")])
    main.store_local("acc", main.add(main.load_local("acc"), doubled))
    main.store_local("i", main.add(main.load_local("i"), 1))
    main.br("loop")
    main.new_block("done")
    main.out(main.load_local("acc"))
    main.ret(0)
    return ir.finish()


# ---------------------------------------------------------------------------
# Debugger-triggered deopt: breakpoints and single steps mid-run must not
# perturb anything, through BTRA-displaced returns.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("btra_mode", ["avx", "push"])
def test_debugger_breakpoint_and_steps_identical_on_jit(btra_mode):
    """Break inside a callee, single-step through its (BTRA-displaced)
    return, continue to exit: ``jit`` == ``fast`` at every observation."""
    binary = compile_module(
        loop_module(), R2CConfig.full(seed=7, btra_mode=btra_mode)
    )
    observed = {}
    for backend in ("fast", "jit"):
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        debugger.break_at("double")
        stream = []
        stops = 0
        # Stop at the callee a few times; single-step each stop through
        # the RET (BTRA displaces the on-stack return address — the
        # executed stream must come back to the call site regardless).
        while stops < 3 and not debugger.cont():
            stops += 1
            stream.append(("stop", cpu.rip, list(cpu.regs)))
            for _ in range(25):
                if debugger.step(1):
                    break
                stream.append(cpu.rip)
        finished = debugger.finished or debugger.cont()
        while not finished:
            finished = debugger.cont()
        observed[backend] = {
            "stops": stops,
            "stream": stream,
            "result": dataclasses.asdict(debugger.result),
            "output": list(process.output),
            "rip": cpu.rip,
        }
    assert observed["jit"] == observed["fast"]


def test_debugged_run_equals_unbroken_run_on_jit():
    """The accumulated result of a breakpointed jit session equals an
    uninterrupted jit run (and the fast run) exactly."""
    binary = compile_module(loop_module(), R2CConfig.full(seed=8))

    def plain(backend):
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        return dataclasses.asdict(cpu.run())

    process = load_binary(binary, seed=1)
    cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
    debugger = Debugger(cpu)
    debugger.break_at("double")
    while not debugger.cont():
        debugger.step(3)
    debugged = dataclasses.asdict(debugger.result)

    assert debugged == plain("jit")
    assert debugged == plain("fast")


def test_single_stepping_drives_the_deopt_path():
    """max_steps=1 slices can never satisfy a block prolog's folded
    allowance, so a stepped jit session must route through the deopt
    escape once blocks are promoted — and still finish correctly."""
    binary = compile_module(loop_module(), R2CConfig.full(seed=9))
    process = load_binary(binary, seed=1)
    cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
    debugger = Debugger(cpu)
    before = jit_stats_snapshot()
    while not debugger.step(1):
        pass
    after = jit_stats_snapshot()
    assert after["deopts"] > before["deopts"]
    assert debugger.result.exit_code == 0


# ---------------------------------------------------------------------------
# Tier 3 deopt contract: mid-trace events — a breakpoint landing inside
# a compiled loop trace, budget exhaustion mid-iteration, a fetch-epoch
# bump between back edges, and a guard-failure storm — must all hand
# execution back to the interpreter with the exact fast-backend stream.
# ---------------------------------------------------------------------------


def hot_loop_spec(iterations=80):
    """A machine-level counted loop, hot enough to compile a tier-3 loop
    trace within one run.  Returns (spec, head_index, body_index)."""
    spec = [
        (Op.MOV, Reg.RAX, Imm(0)),
        (Op.MOV, Reg.RBP, Imm(DATA)),
        (Op.MOV, Reg.RCX, Imm(iterations)),
    ]
    head = len(spec)
    spec.append((Op.ADD, Reg.RAX, Imm(3)))
    body = len(spec)
    spec.append((Op.MOV, Mem(Reg.RBP, 8), Reg.RAX))
    spec.append((Op.MOV, Reg.RBX, Mem(Reg.RBP, 8)))
    spec.append((Op.SUB, Reg.RCX, Imm(1)))
    spec.append((Op.CMP, Reg.RCX, Imm(0)))
    spec.append((Op.JG, ("L", head), None))
    spec.append((Op.OUT, Reg.RAX, None))
    spec.append((Op.EXIT, Imm(0), None))
    spec = [entry if len(entry) == 3 else (*entry, None) for entry in spec]
    return spec, head, body


def test_breakpoint_inside_compiled_loop_trace():
    """Phase 1 runs a big step slice at full compiled speed (the loop
    trace executes); phase 2 sets a breakpoint on an address *inside*
    the trace body and continues — the trace prolog must reject its
    allowance, deopt, and the stepped stream must equal ``fast``'s."""
    spec, _head, body = hot_loop_spec()
    body_addr = build_spec(spec)[1][body]
    observed = {}
    for backend in ("fast", "jit"):
        process, addresses = build_spec(spec)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        before = jit_stats_snapshot()
        debugger.step(300)
        mid = jit_stats_snapshot()
        debugger.add_breakpoint(addresses[body])
        stream = []
        assert not debugger.cont()
        stream.append(("stop", cpu.rip, list(cpu.regs)))
        for _ in range(30):
            if debugger.step(1):
                break
            stream.append(cpu.rip)
        debugger.remove_breakpoint(addresses[body])
        finished = debugger.finished
        while not finished:
            finished = debugger.cont()
        observed[backend] = {
            "stream": stream,
            "result": dataclasses.asdict(debugger.result),
            "rip": cpu.rip,
            "output": list(process.output),
        }
        if backend == "jit":
            # The big slice really did compile and enter a loop trace.
            assert mid["loop_traces"] > before["loop_traces"]
    assert observed["jit"] == observed["fast"]
    # The stop parked exactly on the mid-trace breakpoint address.
    assert observed["jit"]["stream"][0][1] == body_addr


def test_budget_exhaustion_mid_trace_iteration():
    """An instruction budget landing mid-iteration: the loop trace must
    refuse the iteration it cannot afford, deopt, and let the
    interpreter raise ExecutionLimitExceeded at the exact instruction."""
    spec, head, _body = hot_loop_spec()
    body_len = 6  # ADD through JG
    budget = 3 + 50 * body_len + 2  # setup + 50 iterations + 2 instrs
    before = jit_stats_snapshot()
    outcomes = {
        backend: run_one_backend(
            lambda: build_spec(spec)[0], backend, instruction_budget=budget
        )
        for backend in ("reference", "fast", "jit")
    }
    after = jit_stats_snapshot()
    assert after["loop_traces"] > before["loop_traces"]
    assert outcomes["jit"] == outcomes["reference"]
    assert outcomes["fast"] == outcomes["reference"]
    assert outcomes["jit"]["error"][0] is ExecutionLimitExceeded
    assert outcomes["jit"]["result"]["instructions"] == budget + 1


def test_fetch_epoch_bump_between_back_edges():
    """A CALLRT service between inner-loop activations bumps the memory
    permission epoch (the re-randomization signal).  The installed
    trace's prolog must reject the stale epoch; the driver revalidates
    every constituent slice and re-enters the same compiled trace."""
    spec = [
        (Op.MOV, Reg.RAX, Imm(0)),
        (Op.MOV, Reg.RDI, Imm(4)),  # outer trips
    ]
    outer = len(spec)
    spec.append((Op.MOV, Reg.RCX, Imm(40)))  # inner trips
    inner = len(spec)
    spec.append((Op.ADD, Reg.RAX, Imm(1)))
    spec.append((Op.SUB, Reg.RCX, Imm(1)))
    spec.append((Op.CMP, Reg.RCX, Imm(0)))
    spec.append((Op.JG, ("L", inner)))
    spec.append((Op.CALLRT, Imm(symbol="bump")))
    spec.append((Op.SUB, Reg.RDI, Imm(1)))
    spec.append((Op.CMP, Reg.RDI, Imm(0)))
    spec.append((Op.JG, ("L", outer)))
    spec.append((Op.OUT, Reg.RAX))
    spec.append((Op.EXIT, Imm(0)))
    spec = [entry if len(entry) == 3 else (*entry, None) for entry in spec]

    def make():
        process, _ = build_spec(spec)

        def bump(proc, cpu):
            # Same permissions, new epoch: exactly what a benign
            # re-randomization step looks like to the fetch path.
            proc.memory.protect(HEAP, 4096, Perm.RW)
            return 0

        process.register_service("bump", bump)
        return process

    before = jit_stats_snapshot()
    outcomes = {
        backend: run_one_backend(make, backend)
        for backend in ("reference", "fast", "jit")
    }
    after = jit_stats_snapshot()
    assert outcomes["jit"] == outcomes["reference"]
    assert outcomes["fast"] == outcomes["reference"]
    assert outcomes["jit"]["error"] is None
    assert after["loop_traces"] > before["loop_traces"]
    # The trace was compiled once and revalidated across epochs, not
    # recompiled per epoch: the jit run saw 4 inner-loop activations but
    # at most one trace compilation for the head (plus none blacklisted).
    assert after["traces_compiled"] - before["traces_compiled"] <= 2
    assert after["traces_blacklisted"] == before["traces_blacklisted"]


def test_guard_failure_storm_blacklists_trace():
    """An indirect jump whose target flips permanently mid-run: once
    guard failures dominate trace entries the prolog demotes the trace,
    the head is blacklisted, and execution continues tier-2 — all
    byte-identical to the interpreter backends."""
    spec = [
        (Op.MOV, Reg.RAX, Imm(0)),
        (Op.MOV, Reg.RCX, Imm(240)),
    ]
    target_slot = len(spec)
    spec.append((Op.MOV, Reg.RDX, None))  # patched: address of landing A
    head = len(spec)
    spec.append((Op.ADD, Reg.RAX, Imm(1)))
    spec.append((Op.JMP, Reg.RDX))
    landing_a = len(spec)
    spec.append((Op.ADD, Reg.RAX, Imm(2)))
    jmp_common = len(spec)
    spec.append((Op.JMP, None))  # patched: common tail
    landing_b = len(spec)
    spec.append((Op.ADD, Reg.RAX, Imm(5)))
    common = len(spec)
    spec.append((Op.SUB, Reg.RCX, Imm(1)))
    spec.append((Op.CMP, Reg.RCX, Imm(200)))
    jne_skip = len(spec)
    spec.append((Op.JNE, None))  # patched: skip the target flip
    switch_slot = len(spec)
    spec.append((Op.MOV, Reg.RDX, None))  # patched: address of landing B
    skip = len(spec)
    spec.append((Op.CMP, Reg.RCX, Imm(0)))
    spec.append((Op.JG, ("L", head)))
    spec.append((Op.OUT, Reg.RAX))
    spec.append((Op.EXIT, Imm(0)))
    spec = [entry if len(entry) == 3 else (*entry, None) for entry in spec]
    spec[target_slot] = (Op.MOV, Reg.RDX, ("L", landing_a))
    spec[jmp_common] = (Op.JMP, ("L", common), None)
    spec[jne_skip] = (Op.JNE, ("L", skip), None)
    spec[switch_slot] = (Op.MOV, Reg.RDX, ("L", landing_b))

    before = jit_stats_snapshot()
    outcomes = {
        backend: run_one_backend(lambda: build_spec(spec)[0], backend)
        for backend in ("reference", "fast", "jit")
    }
    after = jit_stats_snapshot()
    assert outcomes["jit"] == outcomes["reference"]
    assert outcomes["fast"] == outcomes["reference"]
    assert outcomes["jit"]["error"] is None
    assert after["trace_guard_failures"] > before["trace_guard_failures"]
    assert after["traces_blacklisted"] > before["traces_blacklisted"]


# ---------------------------------------------------------------------------
# Tier 1: CFG recovery, fusion, stats.
# ---------------------------------------------------------------------------


def test_block_recovery_boundaries_and_fusion():
    def build(loop_head):
        return assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(0)),       # 0: falls into loop head
                I(Op.PUSH, Reg.RAX),              # 1: loop head (branch target)
                I(Op.PUSH, Reg.RBX),              # 2: push run with 1
                I(Op.POP, Reg.RBX),               # 3
                I(Op.POP, Reg.RAX),               # 4
                I(Op.ADD, Reg.RAX, Imm(1)),       # 5
                I(Op.CMP, Reg.RAX, Imm(3)),       # 6: fuses with 7
                I(Op.JL, Imm(loop_head)),         # 7: back edge
                I(Op.EXIT, Imm(0)),               # 8
            ]
        )

    # Two-pass: assemble to learn the loop head, reassemble with the
    # back edge pointing at it (the target width may shift addresses, so
    # iterate to a fixed point).
    _, addresses = build(0)
    while True:
        process, new_addresses = build(addresses[1])
        if new_addresses == addresses:
            break
        addresses = new_addresses
    program = recover_blocks(get_bound_program(process, get_costs("epyc-rome")))
    stats = program.stats()
    assert stats["blocks"] == 3
    heads = sorted(program.by_addr)
    assert heads == [addresses[0], addresses[1], addresses[8]]
    loop = program.by_addr[addresses[1]]
    assert loop.tier == 2
    kinds = {kind for kind, _, _ in loop.fused}
    assert kinds == {"cmp+jcc", "push-run"}
    assert ("taken", addresses[1]) in loop.successors()
    assert stats["superinstructions_fused"] == 2
    # Every in-block address maps to its residue through the terminator.
    assert program.steps_to_end[addresses[1]] == len(loop)
    assert program.steps_to_end[addresses[7]] == 1


def test_monotone_icache_detection():
    costs = get_costs("epyc-rome")
    process, _ = assemble([I(Op.MOV, Reg.RAX, Imm(1)), I(Op.EXIT, Imm(0))])
    assert _text_fits_icache(process.instructions, costs)
    # ways+1 distinct lines hashing into one set force real LRU.
    sets = costs.icache_size // (costs.icache_line * costs.icache_ways)
    stride = sets * costs.icache_line
    crowded = {
        0x1000 + k * stride: SimpleNamespace(size=1)
        for k in range(costs.icache_ways + 1)
    }
    assert not _text_fits_icache(crowded, costs)


# ---------------------------------------------------------------------------
# Tier 2: the compiled-code cache is shared across loads of one image.
# ---------------------------------------------------------------------------


def test_code_cache_reused_across_loads_of_one_image():
    binary = compile_module(loop_module(), R2CConfig.full(seed=10))

    def run_once():
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
        return cpu.run()

    before = jit_stats_snapshot()
    first = run_once()
    mid = jit_stats_snapshot()
    second = run_once()
    after = jit_stats_snapshot()

    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    # The hot loop crosses the promotion threshold: blocks were compiled.
    assert mid["blocks_compiled"] > before["blocks_compiled"]
    # The second load (same image, same layout seed) relinks cached code
    # objects instead of recompiling.
    assert after["blocks_compiled"] == mid["blocks_compiled"]
    assert after["code_cache_hits"] > mid["code_cache_hits"]
