"""Tests for the tier-2 jit backend and the progressive-lowering pipeline.

The differential suite (:mod:`tests.test_backends`) already holds ``jit``
to byte-identical results against ``reference`` and ``fast`` across
seeds and BTRA modes — every backend in the registry participates.  This
module covers what is specific to lowering: the block CFG recovery and
fusion tiers, monotone i-cache detection, the compiled-code cache shared
across loads of one image, and the deopt contract under a debugger —
breakpoints and single-stepping mid-run must observe the exact same
machine trajectory on ``jit`` as on ``fast``, including through
BTRA-displaced returns.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.blocks import recover_blocks
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger
from repro.machine.isa import Imm, Instruction, Op, Reg
from repro.machine.jit import (
    _text_fits_icache,
    jit_stats_snapshot,
)
from repro.machine.loader import load_binary
from repro.machine.uops import get_bound_program
from repro.toolchain.builder import IRBuilder

from tests.test_backends import assemble

I = Instruction


def loop_module():
    """A module whose hot loop re-enters its block heads many times —
    enough to cross the jit promotion threshold within one run."""
    ir = IRBuilder("jitloop")
    double = ir.function("double", params=["x"])
    double.ret(double.mul(double.param("x"), 2))
    main = ir.function("main")
    main.local("i")
    main.local("acc")
    main.store_local("i", 0)
    main.store_local("acc", 0)
    main.br("loop")
    main.new_block("loop")
    i = main.load_local("i")
    cond = main.cmp("lt", i, 50)
    main.cbr(cond, "body", "done")
    main.new_block("body")
    doubled = main.call("double", [main.load_local("i")])
    main.store_local("acc", main.add(main.load_local("acc"), doubled))
    main.store_local("i", main.add(main.load_local("i"), 1))
    main.br("loop")
    main.new_block("done")
    main.out(main.load_local("acc"))
    main.ret(0)
    return ir.finish()


# ---------------------------------------------------------------------------
# Debugger-triggered deopt: breakpoints and single steps mid-run must not
# perturb anything, through BTRA-displaced returns.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("btra_mode", ["avx", "push"])
def test_debugger_breakpoint_and_steps_identical_on_jit(btra_mode):
    """Break inside a callee, single-step through its (BTRA-displaced)
    return, continue to exit: ``jit`` == ``fast`` at every observation."""
    binary = compile_module(
        loop_module(), R2CConfig.full(seed=7, btra_mode=btra_mode)
    )
    observed = {}
    for backend in ("fast", "jit"):
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        debugger = Debugger(cpu)
        debugger.break_at("double")
        stream = []
        stops = 0
        # Stop at the callee a few times; single-step each stop through
        # the RET (BTRA displaces the on-stack return address — the
        # executed stream must come back to the call site regardless).
        while stops < 3 and not debugger.cont():
            stops += 1
            stream.append(("stop", cpu.rip, list(cpu.regs)))
            for _ in range(25):
                if debugger.step(1):
                    break
                stream.append(cpu.rip)
        finished = debugger.finished or debugger.cont()
        while not finished:
            finished = debugger.cont()
        observed[backend] = {
            "stops": stops,
            "stream": stream,
            "result": dataclasses.asdict(debugger.result),
            "output": list(process.output),
            "rip": cpu.rip,
        }
    assert observed["jit"] == observed["fast"]


def test_debugged_run_equals_unbroken_run_on_jit():
    """The accumulated result of a breakpointed jit session equals an
    uninterrupted jit run (and the fast run) exactly."""
    binary = compile_module(loop_module(), R2CConfig.full(seed=8))

    def plain(backend):
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend=backend)
        return dataclasses.asdict(cpu.run())

    process = load_binary(binary, seed=1)
    cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
    debugger = Debugger(cpu)
    debugger.break_at("double")
    while not debugger.cont():
        debugger.step(3)
    debugged = dataclasses.asdict(debugger.result)

    assert debugged == plain("jit")
    assert debugged == plain("fast")


def test_single_stepping_drives_the_deopt_path():
    """max_steps=1 slices can never satisfy a block prolog's folded
    allowance, so a stepped jit session must route through the deopt
    escape once blocks are promoted — and still finish correctly."""
    binary = compile_module(loop_module(), R2CConfig.full(seed=9))
    process = load_binary(binary, seed=1)
    cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
    debugger = Debugger(cpu)
    before = jit_stats_snapshot()
    while not debugger.step(1):
        pass
    after = jit_stats_snapshot()
    assert after["deopts"] > before["deopts"]
    assert debugger.result.exit_code == 0


# ---------------------------------------------------------------------------
# Tier 1: CFG recovery, fusion, stats.
# ---------------------------------------------------------------------------


def test_block_recovery_boundaries_and_fusion():
    def build(loop_head):
        return assemble(
            [
                I(Op.MOV, Reg.RAX, Imm(0)),       # 0: falls into loop head
                I(Op.PUSH, Reg.RAX),              # 1: loop head (branch target)
                I(Op.PUSH, Reg.RBX),              # 2: push run with 1
                I(Op.POP, Reg.RBX),               # 3
                I(Op.POP, Reg.RAX),               # 4
                I(Op.ADD, Reg.RAX, Imm(1)),       # 5
                I(Op.CMP, Reg.RAX, Imm(3)),       # 6: fuses with 7
                I(Op.JL, Imm(loop_head)),         # 7: back edge
                I(Op.EXIT, Imm(0)),               # 8
            ]
        )

    # Two-pass: assemble to learn the loop head, reassemble with the
    # back edge pointing at it (the target width may shift addresses, so
    # iterate to a fixed point).
    _, addresses = build(0)
    while True:
        process, new_addresses = build(addresses[1])
        if new_addresses == addresses:
            break
        addresses = new_addresses
    program = recover_blocks(get_bound_program(process, get_costs("epyc-rome")))
    stats = program.stats()
    assert stats["blocks"] == 3
    heads = sorted(program.by_addr)
    assert heads == [addresses[0], addresses[1], addresses[8]]
    loop = program.by_addr[addresses[1]]
    assert loop.tier == 2
    kinds = {kind for kind, _, _ in loop.fused}
    assert kinds == {"cmp+jcc", "push-run"}
    assert ("taken", addresses[1]) in loop.successors()
    assert stats["superinstructions_fused"] == 2
    # Every in-block address maps to its residue through the terminator.
    assert program.steps_to_end[addresses[1]] == len(loop)
    assert program.steps_to_end[addresses[7]] == 1


def test_monotone_icache_detection():
    costs = get_costs("epyc-rome")
    process, _ = assemble([I(Op.MOV, Reg.RAX, Imm(1)), I(Op.EXIT, Imm(0))])
    assert _text_fits_icache(process.instructions, costs)
    # ways+1 distinct lines hashing into one set force real LRU.
    sets = costs.icache_size // (costs.icache_line * costs.icache_ways)
    stride = sets * costs.icache_line
    crowded = {
        0x1000 + k * stride: SimpleNamespace(size=1)
        for k in range(costs.icache_ways + 1)
    }
    assert not _text_fits_icache(crowded, costs)


# ---------------------------------------------------------------------------
# Tier 2: the compiled-code cache is shared across loads of one image.
# ---------------------------------------------------------------------------


def test_code_cache_reused_across_loads_of_one_image():
    binary = compile_module(loop_module(), R2CConfig.full(seed=10))

    def run_once():
        process = load_binary(binary, seed=1)
        cpu = CPU(process, get_costs("epyc-rome"), backend="jit")
        return cpu.run()

    before = jit_stats_snapshot()
    first = run_once()
    mid = jit_stats_snapshot()
    second = run_once()
    after = jit_stats_snapshot()

    assert dataclasses.asdict(first) == dataclasses.asdict(second)
    # The hot loop crosses the promotion threshold: blocks were compiled.
    assert mid["blocks_compiled"] > before["blocks_compiled"]
    # The second load (same image, same layout seed) relinks cached code
    # objects instead of recompiling.
    assert after["blocks_compiled"] == mid["blocks_compiled"]
    assert after["code_cache_hits"] > mid["code_cache_hits"]
