"""Tests for the related-defense models (the Table 3 rows)."""

import pytest

from repro.attacks import ALL_ATTACKS, AttackOutcome, VictimSession, aocr_attack
from repro.defenses import DEFENSE_MODELS


def test_all_paper_rows_present():
    assert list(DEFENSE_MODELS) == [
        "none",
        "codearmor",
        "tasr",
        "stackarmor",
        "readactor",
        "krx",
        "shadowstack",
        "r2c",
        "r2c-mvee",
    ]


def test_mvee_row_is_n_variant():
    """The Section 7.3 combination row deploys 2 lockstep variants; every
    other row keeps the single-variant default."""
    assert DEFENSE_MODELS["r2c-mvee"].variants == 2
    assert all(
        model.variants == 1
        for name, model in DEFENSE_MODELS.items()
        if name != "r2c-mvee"
    )


def test_victim_config_reseeds():
    model = DEFENSE_MODELS["r2c"]
    assert model.victim_config(1).seed == 1
    assert model.victim_config(2).seed == 2


def test_only_r2c_has_data_and_stack_diversification():
    r2c = DEFENSE_MODELS["r2c"].config
    assert r2c.enable_btra and r2c.enable_btdp and r2c.enable_global_shuffle
    readactor = DEFENSE_MODELS["readactor"].config
    assert not readactor.enable_btdp and not readactor.enable_global_shuffle


def test_krx_models_single_decoy():
    krx = DEFENSE_MODELS["krx"].config
    assert krx.enable_btra and krx.btras_per_callsite == 1
    assert not krx.enable_btdp  # "no heap pointer protection"


def test_defense_models_are_runnable():
    """Every defense row compiles and runs the victim correctly."""
    for name, model in DEFENSE_MODELS.items():
        session = VictimSession(model.victim_config(seed=5), execute_only=model.execute_only)
        status, result = session.probe(lambda view: None)
        assert status == "clean", name


def test_code_only_rerandomization_loses_to_aocr():
    """CodeArmor/TASR-style code-space defenses fall to AOCR (Section 8)."""
    for name in ("codearmor", "tasr"):
        model = DEFENSE_MODELS[name]
        successes = 0
        for trial in range(3):
            session = VictimSession(
                model.victim_config(seed=300 + trial), execute_only=model.execute_only
            )
            if aocr_attack(session, attacker_seed=trial).outcome is AttackOutcome.SUCCESS:
                successes += 1
        assert successes >= 2, name


def test_r2c_row_blocks_every_attack_class():
    model = DEFENSE_MODELS["r2c"]
    for attack_name, attack in ALL_ATTACKS.items():
        session = VictimSession(model.victim_config(seed=91), execute_only=True)
        result = attack(session, attacker_seed=7)
        assert result.outcome is not AttackOutcome.SUCCESS, attack_name
