"""Tests for the heap allocator substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocatorError
from repro.heap.allocator import Allocator, HEADER_SIZE
from repro.machine.memory import Memory, PAGE_SIZE, Perm

HEAP_BASE = 0x100000
HEAP_SIZE = 64 * PAGE_SIZE


def make_allocator(size=HEAP_SIZE):
    memory = Memory()
    memory.map_region(HEAP_BASE, size, Perm.RW)
    return Allocator(memory, HEAP_BASE, size)


def test_malloc_returns_aligned_in_heap():
    alloc = make_allocator()
    ptr = alloc.malloc(100)
    assert ptr % 16 == 0
    assert HEAP_BASE <= ptr < HEAP_BASE + HEAP_SIZE


def test_allocations_do_not_overlap():
    alloc = make_allocator()
    blocks = [(alloc.malloc(64), 64) for _ in range(32)]
    spans = sorted((p, p + s) for p, s in blocks)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_free_and_reuse():
    alloc = make_allocator()
    a = alloc.malloc(64)
    alloc.free(a)
    b = alloc.malloc(64)
    assert b == a  # first fit reuses the space


def test_double_free_detected():
    alloc = make_allocator()
    a = alloc.malloc(32)
    alloc.free(a)
    with pytest.raises(AllocatorError):
        alloc.free(a)


def test_free_of_wild_pointer_detected():
    alloc = make_allocator()
    with pytest.raises(AllocatorError):
        alloc.free(HEAP_BASE + 64)


def test_header_magic_corruption_detected():
    alloc = make_allocator()
    ptr = alloc.malloc(32)
    alloc.memory.store_word_raw(ptr - HEADER_SIZE + 8, 0xBAD)
    with pytest.raises(AllocatorError):
        alloc.free(ptr)


def test_page_aligned_allocation():
    alloc = make_allocator()
    alloc.malloc(24)  # misalign the cursor first
    page = alloc.malloc_aligned(PAGE_SIZE, PAGE_SIZE)
    assert page % PAGE_SIZE == 0
    assert alloc.usable_size(page) == PAGE_SIZE


def test_bad_alignment_rejected():
    alloc = make_allocator()
    with pytest.raises(AllocatorError):
        alloc.malloc_aligned(64, 24)


def test_out_of_memory():
    alloc = make_allocator(size=2 * PAGE_SIZE)
    alloc.malloc(PAGE_SIZE)
    with pytest.raises(AllocatorError):
        alloc.malloc(4 * PAGE_SIZE)


def test_never_freed_chunk_is_never_reused():
    """The property BTDP guard pages rely on (Section 5.2)."""
    alloc = make_allocator()
    kept = alloc.malloc_aligned(PAGE_SIZE, PAGE_SIZE)
    neighbours = [alloc.malloc_aligned(PAGE_SIZE, PAGE_SIZE) for _ in range(8)]
    for n in neighbours:
        alloc.free(n)
    for _ in range(20):
        p = alloc.malloc(512)
        assert not (kept <= p < kept + PAGE_SIZE)


def test_coalescing_allows_big_allocation_after_frees():
    alloc = make_allocator()
    blocks = [alloc.malloc(PAGE_SIZE // 2) for _ in range(8)]
    for b in blocks:
        alloc.free(b)
    alloc.check_consistency()
    big = alloc.malloc(3 * PAGE_SIZE)
    assert big is not None


def test_stats_tracking():
    alloc = make_allocator()
    a = alloc.malloc(100)
    b = alloc.malloc(200)
    assert alloc.allocated_bytes == 300
    assert alloc.peak_allocated == 300
    alloc.free(a)
    assert alloc.allocated_bytes == 200
    assert alloc.peak_allocated == 300
    assert alloc.live_allocations() == {b: 200}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=-16, max_value=512), min_size=1, max_size=60))
def test_property_random_alloc_free_consistency(ops):
    """Random malloc/free interleavings keep the free list consistent and
    live allocations disjoint."""
    alloc = make_allocator()
    live = []
    for op in ops:
        if op > 0:
            try:
                ptr = alloc.malloc(op)
            except AllocatorError:
                continue
            live.append((ptr, op))
        elif live:
            index = (-op) % len(live)
            ptr, _ = live.pop(index)
            alloc.free(ptr)
    alloc.check_consistency()
    spans = sorted((p, p + s) for p, s in live)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
