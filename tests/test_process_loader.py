"""Tests for the process image, ASLR, and the loader."""

import pytest

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.errors import MemoryFault
from repro.machine.loader import load_binary
from repro.machine.memory import PAGE_SIZE, Perm
from repro.machine.process import randomize_layout
from repro.rng import DiversityRng
from repro.toolchain.builder import IRBuilder


def tiny_module():
    ir = IRBuilder()
    ir.global_var("g", init=(123,))
    m = ir.function("main")
    m.out(m.load_global("g"))
    m.ret(0)
    return ir.finish()


def test_layout_regions_are_disjoint_and_classified():
    layout = randomize_layout(
        DiversityRng(3), text_size=8192, data_size=4096
    )
    regions = [
        (layout.text_base, layout.text_size, "text"),
        (layout.data_base, layout.data_size, "data"),
        (layout.heap_base, layout.heap_size, "heap"),
        (layout.stack_base, layout.stack_size, "stack"),
    ]
    spans = sorted((b, b + s) for b, s, _ in regions)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
    for base, size, name in regions:
        assert layout.region_of(base) == name
        assert layout.region_of(base + size - 1) == name
    assert layout.region_of(0x1234) is None


def test_aslr_varies_with_seed():
    bases = set()
    for seed in range(8):
        layout = randomize_layout(
            DiversityRng(seed), text_size=4096, data_size=4096
        )
        bases.add(layout.text_base)
    assert len(bases) > 4


def test_aslr_disabled_is_deterministic():
    a = randomize_layout(DiversityRng(1), text_size=4096, data_size=4096, aslr=False)
    b = randomize_layout(DiversityRng(2), text_size=4096, data_size=4096, aslr=False)
    assert a.text_base == b.text_base


def test_stack_top_is_16_aligned():
    layout = randomize_layout(DiversityRng(9), text_size=4096, data_size=4096)
    assert layout.stack_top % 16 == 0


def test_loader_maps_text_execute_only_by_default():
    binary = compile_module(tiny_module())
    process = load_binary(binary, seed=1)
    with pytest.raises(MemoryFault):
        process.memory.read(process.symbols["main"], 8)
    process.memory.fetch_check(process.symbols["main"])


def test_loader_readable_text_option():
    binary = compile_module(tiny_module())
    process = load_binary(binary, seed=1, execute_only=False)
    process.memory.read(process.symbols["main"], 8)  # must not raise


def test_loader_resolves_data_and_symbols():
    binary = compile_module(tiny_module())
    process = load_binary(binary, seed=2)
    g = process.symbols["g"]
    assert process.memory.read_word(g) == 123
    assert process.layout.region_of(g) == "data"
    assert process.layout.region_of(process.symbols["main"]) == "text"


def test_same_load_seed_same_layout():
    binary = compile_module(tiny_module())
    a = load_binary(binary, seed=7)
    b = load_binary(binary, seed=7)
    assert a.symbols == b.symbols


def test_different_load_seed_different_layout():
    binary = compile_module(tiny_module())
    a = load_binary(binary, seed=7)
    b = load_binary(binary, seed=8)
    assert a.symbols["main"] != b.symbols["main"]


def test_text_pages_resident_after_load():
    binary = compile_module(tiny_module())
    process = load_binary(binary, seed=1)
    assert process.max_rss >= PAGE_SIZE * 2  # at least text + data


def test_resident_grows_with_heap_use():
    binary = compile_module(tiny_module())
    process = load_binary(binary, seed=1)
    before = process.note_resident()
    ptr = process.allocator.malloc(10 * PAGE_SIZE)
    for page in range(10):
        process.memory.store_word_raw(ptr + page * PAGE_SIZE, 1)
    after = process.note_resident()
    assert after >= before + 9 * PAGE_SIZE


def test_function_pointer_reloc_points_at_function():
    ir = IRBuilder()
    f = ir.function("callee", params=["x"])
    f.ret(f.param("x"))
    ir.global_var("fp", init=(("callee", 0),))
    m = ir.function("main")
    m.ret(0)
    binary = compile_module(ir.finish())
    process = load_binary(binary, seed=3)
    assert process.memory.read_word(process.symbols["fp"]) == process.symbols["callee"]


def test_cloned_process_runs_byte_identical_to_fresh_load():
    """Process.clone() is a faithful fork: a clone of a loaded full-R2C
    process executes exactly like a second load under the same seed, on
    both backends."""
    from repro.machine.loader import make_cpu
    from repro.workloads.victim import build_victim

    binary = compile_module(build_victim(requests=3), R2CConfig.full(seed=9))
    for backend in ("reference", "fast"):
        original = load_binary(binary, seed=7)
        fresh = load_binary(binary, seed=7)
        clone = original.clone()
        for process in (fresh, clone):
            process.register_service("attack_hook", lambda proc, cpu: 0)
        results = []
        for process in (fresh, clone):
            cpu = make_cpu(process, "epyc-rome", backend=backend)
            results.append(cpu.run())
        assert fresh.output == clone.output
        assert results[0].instructions == results[1].instructions
        assert results[0].cycles == results[1].cycles
        assert results[0].exit_code == results[1].exit_code


def test_cloned_process_is_isolated():
    """Writes, protection changes, and allocations on the clone never show
    through to the original (and vice versa)."""
    binary = compile_module(tiny_module())
    original = load_binary(binary, seed=5)
    clone = original.clone()

    slot = original.symbols["g"]
    assert clone.memory.read_word(slot) == 123
    clone.memory.store_word_raw(slot, 456)
    assert original.memory.read_word(slot) == 123
    original.memory.store_word_raw(slot, 789)
    assert clone.memory.read_word(slot) == 456

    ptr = clone.allocator.malloc(64)
    assert ptr not in original.allocator._live
    clone.memory.protect(original.layout.data_base, PAGE_SIZE, Perm.NONE)
    with pytest.raises(MemoryFault):
        clone.memory.read(slot, 8)
    original.memory.read(slot, 8)  # original unaffected
