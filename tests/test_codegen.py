"""End-to-end codegen tests: compile, link, load, run vs the interpreter."""

import pytest

from repro.core.config import R2CConfig
from repro.errors import LinkError
from repro.toolchain.builder import IRBuilder
from repro.toolchain.linker import link_module
from tests.conftest import assert_equivalent, run_compiled


def test_simple_module_baseline(simple_module):
    assert_equivalent(simple_module, R2CConfig.baseline())


def test_stack_arguments_baseline():
    ir = IRBuilder()
    wide = ir.function("wide", params=[f"p{i}" for i in range(10)])
    acc = wide.param("p0")
    for i in range(1, 10):
        acc = wide.add(acc, wide.param(f"p{i}"))
    wide.ret(acc)
    m = ir.function("main")
    m.out(m.call("wide", list(range(10))))
    m.out(m.call("wide", [100] * 10))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_stack_arguments_with_odd_count():
    ir = IRBuilder()
    wide = ir.function("wide", params=[f"p{i}" for i in range(7)])  # 1 stack arg
    acc = wide.param("p0")
    for i in range(1, 7):
        acc = wide.mul(wide.add(acc, wide.param(f"p{i}")), 3)
    wide.ret(acc)
    m = ir.function("main")
    m.out(m.call("wide", [1, 2, 3, 4, 5, 6, 7]))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_recursion_deep():
    ir = IRBuilder()
    f = ir.function("countdown", params=["n", "acc"])
    n = f.param("n")
    done = f.cmp("le", n, 0)
    f.cbr(done, "base", "rec")
    f.new_block("base")
    f.ret(f.param("acc"))
    f.new_block("rec")
    f.ret(f.call("countdown", [f.sub(f.param("n"), 1), f.add(f.param("acc"), f.param("n"))]))
    m = ir.function("main")
    m.out(m.call("countdown", [100, 0]))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_indirect_calls_and_got():
    ir = IRBuilder()
    for k in range(3):
        f = ir.function(f"h{k}", params=["x"])
        f.ret(f.add(f.param("x"), 10 * k))
    ir.global_var("table", size_words=3, init=(("h0", 0), ("h1", 0), ("h2", 0)))
    m = ir.function("main")
    for k in range(3):
        target = m.load_global("table", k)
        m.out(m.icall(target, [k]))
    fp = m.func_addr("h2")
    m.out(m.icall(fp, [100]))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_heap_and_pointers():
    ir = IRBuilder()
    m = ir.function("main")
    m.local("p")
    m.store_local("p", m.rtcall("malloc", [64]))
    p = m.load_local("p")
    for i in range(4):
        m.store(p, i * i, offset=8 * i)
    total = 0
    acc = m.const(0)
    for i in range(4):
        acc = m.add(acc, m.load(p, offset=8 * i))
    m.out(acc)
    m.rtcall("free", [m.load_local("p")], void=True)
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_mod_lowering_uses_scratch_slot():
    ir = IRBuilder()
    m = ir.function("main")
    m.out(m.mod(-17, 5))
    m.out(m.mod(17, -5))
    m.out(m.mod(12345678901234567, 97))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_void_function_returns_zero():
    ir = IRBuilder()
    f = ir.function("noop")
    f.ret()
    m = ir.function("main")
    m.out(m.call("noop"))
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_large_local_arrays():
    ir = IRBuilder()
    m = ir.function("main")
    m.local("arr", 32)
    for i in range(32):
        m.store_local("arr", 2 * i + 1, index=i)
    acc = m.const(0)
    for i in range(0, 32, 5):
        acc = m.add(acc, m.load_local("arr", i))
    m.out(acc)
    m.ret(0)
    assert_equivalent(ir.finish(), R2CConfig.baseline())


def test_entry_function_exit_code():
    ir = IRBuilder()
    m = ir.function("main")
    m.ret(77)
    result, _ = run_compiled(ir.finish())
    assert result.exit_code == 77


def test_missing_entry_rejected():
    ir = IRBuilder()
    f = ir.function("not_main")
    f.ret(0)
    with pytest.raises(LinkError, match="entry function"):
        link_module(ir.finish())


def test_every_config_component_is_semantics_preserving(simple_module):
    for factory in (
        R2CConfig.btra_push_only,
        R2CConfig.btra_avx_only,
        R2CConfig.btdp_only,
        R2CConfig.prolog_only,
        R2CConfig.layout_only,
        R2CConfig.oia_only,
    ):
        assert_equivalent(simple_module, factory(seed=9))


def test_full_config_both_modes(simple_module):
    assert_equivalent(simple_module, R2CConfig.full(seed=4))
    assert_equivalent(simple_module, R2CConfig.full(seed=4, btra_mode="push"))
