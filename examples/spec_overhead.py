#!/usr/bin/env python3
"""Mini Figure 6: full-R2C overhead on a SPEC-suite subset.

Compiles each synthetic SPEC benchmark with and without full protection
(fresh diversification seed per run, as in the paper) and prints the
overhead per benchmark on two machine models.

Run:  python examples/spec_overhead.py  [--jobs N] [benchmark ...]
"""

import sys

from repro.core.config import R2CConfig
from repro.eval.engine import ExperimentEngine, set_session_engine
from repro.eval.harness import measure_config
from repro.eval.stats import geomean
from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

DEFAULT_SUBSET = ["perlbench", "mcf", "lbm", "omnetpp", "xalancbmk", "xz"]
MACHINES = ["epyc-rome", "xeon"]


def main():
    print(__doc__)
    args = sys.argv[1:]
    jobs = 1
    if "--jobs" in args:
        at = args.index("--jobs")
        jobs = int(args[at + 1])
        del args[at : at + 2]
    names = args or DEFAULT_SUBSET
    unknown = [n for n in names if n not in SPEC_BENCHMARKS]
    if unknown:
        raise SystemExit(f"unknown benchmarks: {unknown}; pick from {list(SPEC_BENCHMARKS)}")

    engine = set_session_engine(ExperimentEngine(jobs=jobs))
    modules = {name: build_spec_benchmark(name) for name in names}
    print(f"{'benchmark':12s}" + "".join(f"{m:>12s}" for m in MACHINES))
    ratios = {m: [] for m in MACHINES}
    for name in names:
        row = f"{name:12s}"
        for machine in MACHINES:
            baseline = measure_config(modules[name], R2CConfig.baseline(), machine=machine, seeds=(1,))
            protected = measure_config(modules[name], R2CConfig.full(), machine=machine, seeds=(1, 2))
            ratio = protected / baseline
            ratios[machine].append(ratio)
            row += f"{100 * (ratio - 1):11.1f}%"
        print(row)
    print(f"{'geomean':12s}" + "".join(
        f"{100 * (geomean(ratios[m]) - 1):11.1f}%" for m in MACHINES
    ))
    engine.close()


if __name__ == "__main__":
    main()
