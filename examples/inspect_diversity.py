#!/usr/bin/env python3
"""Toolbox tour: disassemble, debug, and unwind a diversified binary.

Compiles the victim server under full R2C and then:

1. prints the section map and the diversified `process_request` listing
   (spot the `btra-setup`, `btdp`, and `prolog-trap` annotations);
2. sets a breakpoint on the handler, steps, and watches a global;
3. unwinds the stack from deep inside the request path — straight through
   every booby-trapped frame (the Section 7.2.4 claim).

Run:  python examples/inspect_diversity.py
"""

from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.toolchain.disasm import disassemble_function, section_map
from repro.toolchain.unwind import backtrace
from repro.workloads.victim import build_victim


def main():
    print(__doc__)
    binary = compile_module(build_victim(), R2CConfig.full(seed=2026, btra_mode="push"))

    print("=== section map (diversified layout) ===")
    print(section_map(binary))
    print()

    print("=== process_request, diversified ===")
    listing = disassemble_function(binary, "process_request")
    print("\n".join(listing.splitlines()[:28]))
    print("  ...")
    print()

    print("=== debugger session ===")
    process = load_binary(binary, seed=11)
    process.register_service("attack_hook", lambda p, c: 0)
    debugger = Debugger(CPU(process, get_costs("epyc-rome")))
    debugger.break_at("process_request")
    debugger.add_watchpoint(process.symbols["counters"] + 24)
    hits = 0
    while not debugger.cont():
        hits += 1
        if hits == 1:
            print(f"breakpoint: {debugger.current_function()} at {debugger.rip:#x}")
            debugger.step(5)
            print(f"after 5 steps: rip={debugger.rip:#x}, still in "
                  f"{debugger.current_function()}")
    print(f"breakpoint hit {hits} times (one per request); "
          f"watchpoint fired {len(debugger.watch_hits)} times")
    print()

    print("=== unwinding through BTRA frames ===")
    process2 = load_binary(binary, seed=12)
    trace = {}

    def hook(proc, cpu):
        if "bt" not in trace:
            trace["bt"] = backtrace(proc, cpu.rip, cpu.regs[Reg.RSP])
        return 0

    process2.register_service("attack_hook", hook)
    CPU(process2, get_costs("epyc-rome")).run()
    print(" -> ".join(trace["bt"]))
    print("Every frame above carries booby-trapped return addresses, yet the")
    print(".eh_frame metadata unwinds it precisely — exception handling works.")


if __name__ == "__main__":
    main()
