#!/usr/bin/env python3
"""Webserver throughput under R2C (the Section 6.2.4 experiment).

Serves a batch of requests through the synthetic nginx/Apache models,
baseline vs. fully protected, and reports the throughput decrease per
machine model — reproducing the paper's Intel/AMD split in direction.

Run:  python examples/webserver_bench.py
"""

from repro.eval.experiments import experiment_webserver
from repro.eval.report import render_webserver


def main():
    print(__doc__)
    data = experiment_webserver(requests=120, seeds=(1, 2))
    print(render_webserver(data))
    print()
    for server, per_machine in data.items():
        amd = (per_machine["epyc-rome"] + per_machine["tr-3970x"]) / 2
        intel = (per_machine["i9-9900k"] + per_machine["xeon"]) / 2
        print(f"{server}: Intel pays {intel:.1f}%, AMD pays {amd:.1f}% "
              f"(paper: 12-13% vs 3-4%)")


if __name__ == "__main__":
    main()
