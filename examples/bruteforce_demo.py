#!/usr/bin/env python3
"""Blind ROP vs. booby traps: the reactive component in action.

A Blind-ROP attacker brute-forces a restarting worker pool: locate the
return address by the crash side channel, then scan code addresses until
the payload runs.  Against the monoculture this is just a matter of
probes.  Against R2C the scan immediately walks into booby-trap functions
— every detonation is a *detection*, and the defender shuts the campaign
down after a handful.

Run:  python examples/bruteforce_demo.py
"""

from repro.attacks import VictimSession, blindrop_attack, pirop_attack
from repro.core.config import R2CConfig


def show(label, result, session):
    print(f"{label:>22}: {result.outcome.value:9s}  probes={result.probes:4d}  "
          f"crashes={result.crashes:4d}  booby-trap detections="
          f"{session.monitor.booby_trap_hits}")
    for note in result.notes:
        print(f"{'':>24}- {note}")


def main():
    print(__doc__)
    print("Blind ROP (crash side channel + code scan):")
    base = VictimSession(R2CConfig.baseline(), execute_only=False)
    show("baseline", blindrop_attack(base, attacker_seed=3), base)
    r2c = VictimSession(R2CConfig.full(seed=5))
    show("full R2C", blindrop_attack(r2c, attacker_seed=3), r2c)

    print()
    print("PIROP (partial pointer overwrite, no info leak):")
    base = VictimSession(R2CConfig.baseline(), execute_only=False)
    show("baseline", pirop_attack(base, attacker_seed=3), base)
    r2c = VictimSession(R2CConfig.full(seed=6))
    show("full R2C", pirop_attack(r2c, attacker_seed=3), r2c)


if __name__ == "__main__":
    main()
