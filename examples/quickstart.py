#!/usr/bin/env python3
"""Quickstart: compile a program with R2C and see the diversification.

Builds a small program against the public API, compiles it three ways
(baseline, full R2C with the AVX2 BTRA setup, full R2C with the push
setup), verifies all three compute the same result, and shows what an
attacker leaking the stack would see under each.

Run:  python examples/quickstart.py
"""

from repro import R2CConfig, compile_module
from repro.attacks.clustering import classify_word
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder


def build_program():
    """A tiny 'application': hash a few values through helper calls."""
    ir = IRBuilder("quickstart")
    mix = ir.function("mix", params=["x", "y"])
    mix.rtcall("attack_hook", [], void=True)  # a place to peek at the stack
    value = mix.bxor(mix.mul(mix.param("x"), 31), mix.param("y"))
    mix.ret(mix.band(value, 0xFFFF_FFFF))

    main = ir.function("main")
    main.local("acc")
    main.store_local("acc", 1)
    ivar = main.counted_loop(10, "body", "done")
    i = main.load_local(ivar)
    h = main.call("mix", [main.load_local("acc"), i])
    main.store_local("acc", h)
    main.loop_backedge(ivar, "body")
    main.new_block("done")
    main.out(main.load_local("acc"))
    main.ret(0)
    return ir.finish()


def run(config, label):
    binary = compile_module(build_program(), config)
    process = load_binary(binary, seed=7)
    peek = {}

    def hook(proc, cpu):
        if peek:
            return 0
        rsp = cpu.regs[Reg.RSP]
        top = proc.layout.stack_top
        words = [
            proc.memory.load_word_raw(rsp + 8 * k)
            for k in range(min(24, (top - rsp) // 8))
        ]
        peek["code_ptrs"] = [w for w in words if classify_word(w) == "image"]
        return 0

    process.register_service("attack_hook", hook)
    result = CPU(process, get_costs("epyc-rome")).run()
    print(f"{label:>10}: output={result.output}  cycles={result.cycles:10.0f}  "
          f"text={binary.text_size:6d}B  "
          f"code-pointer-looking words in one leaked frame window: "
          f"{len(peek['code_ptrs'])}")
    return result


def main():
    print(__doc__)
    base = run(R2CConfig.baseline(), "baseline")
    avx = run(R2CConfig.full(seed=1), "r2c-avx")
    push = run(R2CConfig.full(seed=2, btra_mode="push"), "r2c-push")

    assert base.output == avx.output == push.output, "diversification changed semantics!"
    print()
    print(f"overhead: avx {100 * (avx.cycles / base.cycles - 1):.1f}%, "
          f"push {100 * (push.cycles / base.cycles - 1):.1f}%")
    print("Under R2C the leaked stack window is full of booby-trapped return")
    print("addresses — only one of those code pointers is real.")


if __name__ == "__main__":
    main()
