#!/usr/bin/env python3
"""The paper's story in one script: AOCR vs. code-only diversity vs. R2C.

1. Against the undiversified baseline, the AOCR attack walks
   stack -> heap -> data section and hijacks the handler pointer.
2. Against a Readactor-style defense (execute-only memory + full code
   randomization + booby traps, but NO data diversification) AOCR still
   succeeds — the observation that motivated R2C.
3. Against full R2C, the very first inference steps collapse: the chosen
   "heap pointer" is a booby-trapped data pointer and the defender is
   alerted, or the shuffled data section defeats the corruption.

Run:  python examples/aocr_attack_demo.py
"""

from repro.attacks import VictimSession, aocr_attack
from repro.defenses import DEFENSE_MODELS


def campaign(defense_name, trials=5):
    model = DEFENSE_MODELS[defense_name]
    outcomes = []
    for trial in range(trials):
        session = VictimSession(
            model.victim_config(seed=1000 + trial),
            execute_only=model.execute_only,
        )
        result = aocr_attack(session, attacker_seed=trial)
        outcomes.append(result.outcome.value)
    return outcomes


def main():
    print(__doc__)
    for name in ("none", "readactor", "r2c"):
        outcomes = campaign(name)
        summary = {o: outcomes.count(o) for o in sorted(set(outcomes))}
        print(f"{name:>10} ({DEFENSE_MODELS[name].description})")
        print(f"{'':>10}  AOCR outcomes over {len(outcomes)} diversified victims: {summary}")
    print()
    print("Code diversification alone does not stop AOCR; R2C's data")
    print("diversification (BTDPs + shuffled globals) does — reactively.")


if __name__ == "__main__":
    main()
