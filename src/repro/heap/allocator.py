"""A first-fit heap allocator over the process heap region.

The BTDP runtime (Section 5.2 of the paper) leans on two allocator
behaviours that this implementation reproduces:

* it can return **page-aligned, page-sized** chunks scattered across the
  heap, which the R2C constructor turns into guard pages;
* chunks that are *never freed* are never reused for other allocations, so
  revoking read permission on a guard page cannot break an unrelated
  allocation sharing the page.

Every chunk carries a 16-byte in-band header (size + magic) in guest
memory, so heap metadata is itself observable/corruptible by attack code —
as on a real system.  Double frees and foreign pointers are detected via
the magic and a live-set check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import AllocatorError
from repro.machine.memory import Memory, PAGE_SIZE

HEADER_SIZE = 16
ALLOC_MAGIC = 0x5245_5052_4F48_4541  # "REPROHEA"
ALIGN = 16


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class Allocator:
    """First-fit free-list allocator with coalescing.

    Operates directly on guest :class:`Memory` so that headers live in the
    simulated address space.  The allocator itself is host code (the
    substrate boundary: guest programs reach it through the ``malloc`` /
    ``free`` runtime services registered by the loader).
    """

    def __init__(self, memory: Memory, base: int, size: int):
        if base % PAGE_SIZE:
            raise AllocatorError("heap base must be page aligned")
        self.memory = memory
        self.base = base
        self.size = size
        # Sorted, disjoint free ranges [start, end).
        self._free: List[Tuple[int, int]] = [(base, base + size)]
        # payload address -> payload size, for live allocations.
        self._live: Dict[int, int] = {}
        self.allocated_bytes = 0
        self.peak_allocated = 0
        # Fault injection (repro.reliability.faults): once armed, the
        # allocator fails every allocation after the next ``after_allocs``
        # successful ones, modelling heap exhaustion mid-run.
        self._oom_after: Optional[int] = None
        self._oom_rule = ""
        self._allocs_since_arm = 0

    # -- public API ------------------------------------------------------------

    def clone(self, memory: Memory) -> "Allocator":
        """Copy the allocator's state over a cloned :class:`Memory`.

        Free ranges, the live set, accounting, and any armed fault
        injection carry over; in-band chunk headers already live in the
        (cloned) guest memory, so the pair stays self-consistent."""
        clone = Allocator.__new__(Allocator)
        clone.memory = memory
        clone.base = self.base
        clone.size = self.size
        clone._free = list(self._free)
        clone._live = dict(self._live)
        clone.allocated_bytes = self.allocated_bytes
        clone.peak_allocated = self.peak_allocated
        clone._oom_after = self._oom_after
        clone._oom_rule = self._oom_rule
        clone._allocs_since_arm = self._allocs_since_arm
        return clone

    def arm_oom(self, after_allocs: int, rule_id: str = "") -> None:
        """Arm injected OOM: allow ``after_allocs`` more allocations, then
        raise :class:`AllocatorError` on every subsequent one."""
        self._oom_after = max(0, int(after_allocs))
        self._oom_rule = rule_id
        self._allocs_since_arm = 0

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes, 16-byte aligned.  Returns the payload address."""
        return self._allocate(size, ALIGN)

    def malloc_aligned(self, size: int, align: int) -> int:
        """Allocate with a stronger alignment (e.g. PAGE_SIZE for guard pages)."""
        if align < ALIGN or align & (align - 1):
            raise AllocatorError(f"bad alignment {align}")
        return self._allocate(size, align)

    def free(self, payload: int) -> None:
        """Release an allocation.  Detects double frees and wild pointers."""
        size = self._live.pop(payload, None)
        if size is None:
            raise AllocatorError(f"free of non-allocated pointer {payload:#x}")
        header = payload - HEADER_SIZE
        magic = self.memory.load_word_raw(header + 8)
        if magic != ALLOC_MAGIC:
            raise AllocatorError(f"corrupt chunk header at {header:#x}")
        self.memory.store_word_raw(header + 8, 0)
        self.allocated_bytes -= size
        total = _align_up(size, ALIGN) + HEADER_SIZE
        self._release(header, header + total)

    def usable_size(self, payload: int) -> int:
        size = self._live.get(payload)
        if size is None:
            raise AllocatorError(f"pointer {payload:#x} is not a live allocation")
        return size

    def is_live(self, payload: int) -> bool:
        return payload in self._live

    def live_allocations(self) -> Dict[int, int]:
        """Return a copy of the live payload->size map (for tests/metrics)."""
        return dict(self._live)

    # -- internals ----------------------------------------------------------------

    def _allocate(self, size: int, align: int) -> int:
        if size <= 0:
            raise AllocatorError(f"bad allocation size {size}")
        if self._oom_after is not None:
            if self._allocs_since_arm >= self._oom_after:
                raise AllocatorError(
                    f"injected out-of-memory"
                    f" ({self._oom_rule or 'fault-injection'})"
                    f" allocating {size} bytes"
                )
            self._allocs_since_arm += 1
        for i, (start, end) in enumerate(self._free):
            payload = _align_up(start + HEADER_SIZE, align)
            chunk_end = payload + _align_up(size, ALIGN)
            if chunk_end > end:
                continue
            header = payload - HEADER_SIZE
            # Return the unused head/tail of the range to the free list.
            replacement: List[Tuple[int, int]] = []
            if header > start:
                replacement.append((start, header))
            if chunk_end < end:
                replacement.append((chunk_end, end))
            self._free[i : i + 1] = replacement
            self.memory.store_word_raw(header, size)
            self.memory.store_word_raw(header + 8, ALLOC_MAGIC)
            self._live[payload] = size
            self.allocated_bytes += size
            if self.allocated_bytes > self.peak_allocated:
                self.peak_allocated = self.allocated_bytes
            return payload
        raise AllocatorError(f"out of heap memory allocating {size} bytes")

    def _release(self, start: int, end: int) -> None:
        """Insert [start, end) into the free list, coalescing neighbours."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (start, end))
        self._coalesce_around(lo)

    def _coalesce_around(self, index: int) -> None:
        free = self._free
        # Merge with successor first so the index stays valid.
        if index + 1 < len(free) and free[index][1] == free[index + 1][0]:
            free[index] = (free[index][0], free[index + 1][1])
            del free[index + 1]
        if index > 0 and free[index - 1][1] == free[index][0]:
            free[index - 1] = (free[index - 1][0], free[index][1])
            del free[index]

    # -- diagnostics ------------------------------------------------------------

    def check_consistency(self) -> None:
        """Raise AllocatorError if the free list is unsorted or overlapping."""
        prev_end: Optional[int] = None
        for start, end in self._free:
            if start >= end:
                raise AllocatorError(f"empty/inverted free range {start:#x}..{end:#x}")
            if prev_end is not None and start < prev_end:
                raise AllocatorError("overlapping free ranges")
            if start < self.base or end > self.base + self.size:
                raise AllocatorError("free range outside heap")
            prev_end = end
        for payload, size in self._live.items():
            for start, end in self._free:
                if payload < end and payload + size > start:
                    raise AllocatorError(
                        f"live allocation {payload:#x} overlaps free range"
                    )
