"""Heap management substrate (the "glibc malloc" of the simulation)."""

from repro.heap.allocator import Allocator, HEADER_SIZE

__all__ = ["Allocator", "HEADER_SIZE"]
