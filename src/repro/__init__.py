"""repro — a reproduction of *R2C: AOCR-Resilient Diversity with Reactive
and Reflective Camouflage* (Berlakovich & Brunthaler, EuroSys 2023).

The package builds the paper's entire stack as a simulation:

* :mod:`repro.machine` — an x86-64-style machine (ISA, paged memory with
  execute-only and guard pages, cycle/i-cache cost model, ASLR process).
* :mod:`repro.toolchain` — a mini compiler (IR, codegen, regalloc, linker)
  standing in for LLVM.
* :mod:`repro.core` — the R2C defense itself: BTRAs, BTDPs, booby traps,
  code/data layout randomization, the runtime constructor, and the
  compiler facade.
* :mod:`repro.attacks` — ROP / JIT-ROP / AOCR / Blind-ROP / PIROP attack
  implementations against simulated processes.
* :mod:`repro.workloads` — SPEC-CPU-2017-like synthetic benchmarks, a
  webserver, and a browser-scale corpus generator.
* :mod:`repro.eval` — the harness that regenerates every table and figure
  of the paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
"""

__version__ = "1.0.0"

from repro.core.config import R2CConfig
from repro.core.compiler import R2CCompiler, compile_module

__all__ = ["R2CConfig", "R2CCompiler", "compile_module", "__version__"]
