"""Browser-scale corpus generator (Section 6.3: scalability).

The paper's scalability claim is that the R2C compiler survives WebKit
(4.5 MLoC) and Chromium (32 MLoC).  The analogue here: generate a
synthetic corpus of thousands of functions with a random DAG call graph,
function-pointer tables, globals, wide (stack-argument) signatures and
recursion, compile it under full R2C, and verify the binary still computes
the same checksum as the reference interpreter.

The generator is deterministic in ``seed`` so scalability measurements are
repeatable.
"""

from __future__ import annotations

from repro.rng import DiversityRng
from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import Module


def generate_browser_corpus(
    functions: int = 300,
    *,
    seed: int = 0,
    globals_count: int = 24,
    run_fraction: float = 0.05,
) -> Module:
    """Generate a corpus with ``functions`` functions.

    ``run_fraction`` bounds how many roots ``main`` actually invokes, so
    huge corpora stay runnable: compile-time scales with the corpus,
    runtime stays bounded.
    """
    if functions < 10:
        raise ValueError("corpus needs at least 10 functions")
    rng = DiversityRng(seed).child("browser-corpus")
    ir = IRBuilder(f"browser{functions}")

    for g in range(globals_count):
        ir.global_var(f"bg{g}", size_words=1, init=(rng.randint(1, 1000),))

    names = []
    for index in range(functions):
        wide = rng.random() < 0.03 and index > 0
        params = [f"p{k}" for k in range(8)] if wide else ["x"]
        fb = ir.function(f"bf{index}", params=params)
        acc = fb.param(params[0])
        for name in params[1:]:
            acc = fb.add(fb.mul(acc, 3), fb.param(name))
        # A couple of arithmetic statements.
        for _ in range(rng.randint(1, 4)):
            op = rng.choice(["add", "xor", "mul"])
            k = rng.randint(1, 97)
            if op == "add":
                acc = fb.add(acc, k)
            elif op == "xor":
                acc = fb.bxor(acc, k)
            else:
                acc = fb.band(fb.mul(acc, k), 0xFFFF_FFFF)
        # Occasionally read a global.
        if rng.random() < 0.3:
            acc = fb.add(acc, fb.load_global(f"bg{rng.randint(0, globals_count - 1)}"))
        # Call earlier functions only (keeps the graph a DAG).  The fan-out
        # distribution is subcritical (mean < 1) so a root invocation's
        # dynamic call cascade stays bounded even for huge corpora.
        if index > 0:
            for _ in range(rng.choice([0, 0, 1, 1, 2])):
                callee_index = rng.randint(max(0, index - 40), index - 1)
                callee = names[callee_index]
                callee_fn = ir.module.functions[callee]
                if len(callee_fn.params) == 1:
                    acc = fb.add(acc, fb.call(callee, [acc]))
                else:
                    args = [acc] + [rng.randint(0, 9) for _ in range(7)]
                    acc = fb.add(acc, fb.call(callee, args))
        fb.ret(fb.band(acc, 0xFFFF_FFFF))
        names.append(fb.fn.name)

    # A function-pointer table over a sample of unary functions.
    unary = [n for n in names if len(ir.module.functions[n].params) == 1]
    table = rng.sample(unary, min(8, len(unary)))
    ir.global_var("btable", size_words=len(table), init=tuple((n, 0) for n in table))

    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 1)
    root_count = max(3, int(functions * run_fraction))
    roots = rng.sample(unary, min(root_count, len(unary)))
    for root in roots:
        value = fb.call(root, [fb.load_local("acc")])
        fb.store_local("acc", fb.band(value, 0xFFFF_FFFF))
    # One pass over the dispatch table.
    for index in range(len(table)):
        target = fb.load_global("btable", index)
        value = fb.icall(target, [fb.load_local("acc")])
        fb.store_local("acc", fb.band(value, 0xFFFF_FFFF))
    fb.out(fb.load_local("acc"))
    fb.ret(0)
    return ir.finish()
