"""The vulnerable server program the security evaluation attacks.

The victim reproduces the preconditions of the AOCR attacks (Section 2.3):

* a **function-pointer global** (``handler_ptr``) that the request loop
  calls indirectly — the whole-function-reuse hijack point;
* a **default-parameter global** (``default_param``) passed to the handler
  — AOCR attack (C) corrupts exactly such a value;
* an attacker-desirable function ``target_exec`` ("the shell spawner"),
  never called legitimately, but with its pointer reachable from the data
  section (an ``admin_table``) — as libc functions are via the GOT;
* **heap objects holding data-section pointers** reached from stack-held
  heap pointers — the AOCR stepping stones (stack -> heap -> data);
* a memory-corruption vulnerability: the ``attack_hook`` runtime call
  inside ``process_request`` hands an attacker arbitrary read/write at a
  moment when the stack is deep and observable (the Malicious Thread
  Blocking assumption of Section 3).

``target_exec`` emits ``SUCCESS_TAG | (arg & 0xFFFF)``; an attack counts
as successful iff that tag appears in the process output with the
attacker's argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import Module

#: High bits of target_exec's output; low 16 bits echo its argument.
SUCCESS_TAG = 0xDEAD_0000
#: The argument value attacks try to force into target_exec.
ATTACK_ARG = 0x5CA7
#: Benign value of default_param.
BENIGN_PARAM = 7


def fire_once(service):
    """Wrap an ``attack_hook`` service so only its *first* call runs it.

    The victim's vulnerability sits inside ``validate``, which executes
    once per request iteration — but every attack model in the paper
    corrupts the process exactly once (the Malicious Thread Blocking
    moment of Section 3).  Single-victim probes, the MVEE leader/follower
    hooks, and N-variant lockstep sessions all share this wrapper so the
    "one corruption per process" semantics stay identical everywhere.
    Later firings are benign no-ops returning 0.
    """
    fired = {}

    def hook(process, cpu):
        if fired:
            return 0
        fired["yes"] = True
        value = service(process, cpu)
        return 0 if value is None else value

    return hook


@dataclass
class VictimLayoutInfo:
    """Names of the victim's attack-relevant symbols (for building the
    attacker's *reference* knowledge from their own compile, never read
    from the victim process)."""

    handler_ptr_global: str = "handler_ptr"
    default_param_global: str = "default_param"
    admin_table_global: str = "admin_table"
    config_global: str = "config_blob"
    target_function: str = "target_exec"
    benign_handler: str = "benign_handler"
    request_function: str = "process_request"
    #: Call chain active at the attack hook, innermost first.
    hook_chain: tuple = ("validate", "parse_headers", "process_request", "main")


def build_victim(requests: int = 6, heap_churn: int = 0) -> Module:
    """Build the victim module; ``requests`` request iterations.

    ``heap_churn`` adds that many short-lived malloc/free pairs per request
    — allocation traffic for the chaos matrix's injected-OOM cells to
    starve.  The default of 0 leaves the module identical to previous
    builds (compile caches and recorded fingerprints stay valid).
    """
    ir = IRBuilder("victim")

    ir.global_var("default_param", init=(BENIGN_PARAM,))
    ir.global_var("handler_ptr", init=(("benign_handler", 0),))
    ir.global_var("config_blob", size_words=6, init=(3, 1, 4, 1, 5, 9))
    ir.global_var("admin_table", size_words=2, init=(("target_exec", 0), ("audit_log", 0)))
    ir.global_var("counters", size_words=4)

    benign = ir.function("benign_handler", params=["arg"])
    benign.ret(benign.add(benign.param("arg"), 1))

    target = ir.function("target_exec", params=["cmd"])
    cmd = target.param("cmd")
    tagged = target.bor(target.band(cmd, 0xFFFF), SUCCESS_TAG)
    target.out(tagged)
    target.ret(0)

    audit = ir.function("audit_log", params=["event"])
    audit.store_global("counters", audit.param("event"), index=3)
    audit.ret(0)

    checksum = ir.function("checksum_block", params=["ptr", "words"])
    checksum.local("sum")
    checksum.store_local("sum", 0)
    body, done = "ck", "ck_done"
    ivar = checksum.counted_loop(checksum.param("words"), body, done)
    i = checksum.load_local(ivar)
    base = checksum.load_local("ptr")
    word = checksum.load(checksum.add(base, checksum.mul(i, 8)))
    checksum.store_local("sum", checksum.add(checksum.load_local("sum"), word))
    checksum.loop_backedge(ivar, body)
    checksum.new_block(done)
    checksum.ret(checksum.load_local("sum"))

    # The innermost frame: small locals, and the vulnerability itself.
    validate = ir.function("validate", params=["hdr"])
    validate.local("flags")
    validate.store_local("flags", validate.band(validate.param("hdr"), 0xFF))
    # --- the vulnerability: attacker gains read/write here, with the
    # whole request-handling call chain observable on the stack ---
    validate.rtcall("attack_hook", [], void=True)
    validate.ret(validate.load_local("flags"))

    # Middle frame: carries a heap pointer (the request object) in a
    # parameter home — a benign heap pointer on the stack.
    parse = ir.function("parse_headers", params=["obj_ptr"])
    parse.local("hdr")
    obj_word = parse.load(parse.param("obj_ptr"), offset=8)
    parse.store_local("hdr", parse.add(obj_word, 0x20))
    flags = parse.call("validate", [parse.load_local("hdr")])
    parse.ret(flags)

    # The vulnerable request handler.  Its frame holds heap pointers (the
    # request object and a scratch buffer) and it blocks in attack_hook
    # with several frames' worth of stack above it.
    process = ir.function("process_request", params=["req_id"])
    process.local("obj")       # heap pointer -> request object
    process.local("scratch")   # heap pointer -> scratch buffer
    process.local("hdrbuf", 8)  # a stack buffer (overflowable)
    obj = process.rtcall("malloc", [32])
    process.store(obj, process.addr_global("config_blob"), offset=0)
    process.store(obj, process.param("req_id"), offset=8)
    process.store(obj, process.addr_global("counters"), offset=16)
    process.store_local("obj", obj)
    scratch = process.rtcall("malloc", [64])
    process.store_local("scratch", scratch)
    for _ in range(heap_churn):
        churn = process.rtcall("malloc", [48])
        process.rtcall("free", [churn], void=True)
    process.store_local("hdrbuf", process.param("req_id"), index=0)
    process.store_local("hdrbuf", 0x4745_5420, index=1)  # "GET "
    ck = process.call("checksum_block", [process.load_local("obj"), 3])
    process.store_local("hdrbuf", ck, index=2)
    flags = process.call("parse_headers", [process.load_local("obj")])
    process.store_local("hdrbuf", flags, index=3)
    handler = process.load_global("handler_ptr")
    param = process.load_global("default_param")
    result = process.icall(handler, [param])
    process.call("audit_log", [result])
    process.ret(result)

    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    body, done = "reqs", "reqs_done"
    ivar = fb.counted_loop(requests, body, done)
    i = fb.load_local(ivar)
    r = fb.call("process_request", [i])
    fb.store_local("acc", fb.add(fb.load_local("acc"), r))
    fb.loop_backedge(ivar, body)
    fb.new_block(done)
    fb.out(fb.load_local("acc"))
    fb.ret(0)
    return ir.finish()
