"""Workloads: the programs the evaluation compiles and runs.

* :mod:`repro.workloads.programs` — reusable IR program-fragment builders
  (call chains, dispatch tables, pointer chases, arithmetic kernels).
* :mod:`repro.workloads.spec` — twelve synthetic benchmarks named after
  the SPEC CPU 2017 programs of the paper, with call density and memory
  behaviour calibrated to reproduce the overhead *shape* of Figure 6 and
  the call-frequency ordering of Table 2.
* :mod:`repro.workloads.webserver` — an nginx/Apache-like request loop for
  the throughput experiment of Section 6.2.4.
* :mod:`repro.workloads.browser` — a browser-scale synthetic corpus
  generator for the scalability experiment of Section 6.3.
* :mod:`repro.workloads.victim` — the vulnerable server the security
  evaluation attacks (Section 7.2).
"""

from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark
from repro.workloads.webserver import build_webserver
from repro.workloads.browser import generate_browser_corpus
from repro.workloads.victim import build_victim, VictimLayoutInfo

__all__ = [
    "SPEC_BENCHMARKS",
    "build_spec_benchmark",
    "build_webserver",
    "generate_browser_corpus",
    "build_victim",
    "VictimLayoutInfo",
]
