"""Synthetic SPEC CPU 2017 stand-ins (Sections 6.2, 7.1).

Twelve benchmarks named after the paper's SPEC programs.  Each models the
*mechanism* that determines its R2C overhead in the paper — call density
above all ("R2C adds BTRAs per call site, explaining the overhead for
function heavy benchmarks", Section 7.1):

=============  =======================================================
perlbench      interpreter dispatch: indirect calls through a handler
               table, plus direct helper calls (call-heavy)
gcc            recursive-descent flavoured: call chains + recursion
mcf            network simplex flavoured: heap pointer chasing with a
               very high absolute call count but long loop bodies
lbm            stencil arithmetic, almost call-free (lowest overhead)
omnetpp        discrete-event simulation: dense virtual dispatch over
               many tiny methods (the paper's worst outlier)
xalancbmk      XML transform: deep call chains, wide (stack-argument)
               calls, dispatch — many small functions
x264           block processing: arithmetic with periodic helper calls
deepsjeng      alpha-beta search: branching recursion
imagick        pixel kernels with occasional helper calls
leela          MCTS: recursion + heap traffic + dispatch
nab            MD force loops: an extreme direct-call count on a tiny
               leaf (the Table 2 call-frequency champion)
xz             entropy coding: bit-twiddling loops, few calls
=============  =======================================================

The ``scale`` parameter multiplies loop trip counts; the default keeps a
single run in the tens of thousands of simulated instructions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import Module
from repro.workloads.programs import (
    add_call_chain,
    add_dispatch_table,
    add_leaf_workers,
    add_pointer_chase,
    add_recursive_search,
    add_stack_arg_worker,
    emit_arith_kernel,
    emit_call_loop,
    emit_dispatch_loop,
    emit_heap_touch,
)


def _main(ir: IRBuilder, footprint_pages: int = 0):
    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    emit_heap_touch(fb, footprint_pages)
    return fb


def _finish(ir: IRBuilder, fb) -> Module:
    fb.out(fb.band(fb.load_local("acc"), 0xFFFF_FFFF))
    fb.ret(0)
    return ir.finish()


def build_perlbench(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("perlbench")
    handlers = add_leaf_workers(ir, "op", 12, work=9)
    add_dispatch_table(ir, "perl", handlers, "op_table")
    fb = _main(ir, footprint_pages)
    emit_dispatch_loop(fb, "op_table", len(handlers), 400 * scale, "acc")
    emit_call_loop(fb, handlers[0], 170 * scale, "acc")
    return _finish(ir, fb)


def build_gcc(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("gcc")
    leaves = add_leaf_workers(ir, "ast", 6, work=8)
    chain = add_call_chain(ir, "parse", 5, leaves[0], work=10)
    search = add_recursive_search(ir, "fold", 30)
    fb = _main(ir, footprint_pages)
    emit_call_loop(fb, chain, 40 * scale, "acc")
    # Recursion depth is input-independent: real gcc's call volume scales
    # with input size through its pass loops, not through deeper recursion.
    result = fb.call(search, [10, 3])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    emit_arith_kernel(fb, 500 * scale, "acc")
    return _finish(ir, fb)


def build_mcf(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("mcf")
    add_pointer_chase(ir, "arc", nodes=0)
    leaves = add_leaf_workers(ir, "cost", 3, work=22)
    fb = _main(ir, footprint_pages)
    fb.local("head")
    fb.store_local("head", fb.call("arc_build", [140 * scale]))
    total = fb.call("arc_walk", [fb.load_local("head"), 140 * scale])
    fb.store_local("acc", fb.add(fb.load_local("acc"), total))
    emit_call_loop(fb, leaves[0], 680 * scale, "acc")
    return _finish(ir, fb)


def build_lbm(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("lbm")
    leaves = add_leaf_workers(ir, "site", 2)
    fb = _main(ir, footprint_pages)
    emit_arith_kernel(fb, 1400 * scale, "acc")
    emit_call_loop(fb, leaves[0], 4 * scale, "acc")
    return _finish(ir, fb)


def build_omnetpp(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("omnetpp")
    # Tiny "virtual methods" that themselves call a leaf: dense,
    # double-decker call traffic over many small functions.
    inner = add_leaf_workers(ir, "msg", 8, work=5)
    methods: List[str] = []
    for index in range(16):
        fb = ir.function(f"mod_handle{index}", params=["ev"])
        ev = fb.param("ev")
        value = fb.call(inner[index % len(inner)], [ev])
        fb.ret(fb.add(value, index))
        methods.append(fb.fn.name)
    add_dispatch_table(ir, "omnet", methods, "vtable")
    fb = _main(ir, footprint_pages)
    emit_dispatch_loop(fb, "vtable", len(methods), 380 * scale, "acc")
    return _finish(ir, fb)


def build_xalancbmk(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("xalancbmk")
    leaves = add_leaf_workers(ir, "node", 8, work=5)
    chain = add_call_chain(ir, "template", 9, leaves[1], work=6)
    wide = add_stack_arg_worker(ir, "fmt")
    add_dispatch_table(ir, "xsl", leaves, "xsl_table")
    fb = _main(ir, footprint_pages)
    emit_call_loop(fb, chain, 38 * scale, "acc")
    emit_dispatch_loop(fb, "xsl_table", len(leaves), 160 * scale, "acc")
    body, done = "wide_loop", "wide_done"
    ivar = fb.counted_loop(70 * scale, body, done)
    i = fb.load_local(ivar)
    w = fb.call(wide, [i, 1, 2, 3, 4, 5, 6, 7, 8])
    fb.store_local("acc", fb.add(fb.load_local("acc"), w))
    fb.loop_backedge(ivar, body)
    fb.new_block(done)
    return _finish(ir, fb)


def build_x264(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("x264")
    leaves = add_leaf_workers(ir, "sad", 4, work=12)
    fb = _main(ir, footprint_pages)
    emit_arith_kernel(fb, 600 * scale, "acc")
    emit_call_loop(fb, leaves[0], 200 * scale, "acc")
    emit_arith_kernel(fb, 300 * scale, "acc")
    return _finish(ir, fb)


def build_deepsjeng(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("deepsjeng")
    search = add_recursive_search(ir, "ab", 36)
    leaves = add_leaf_workers(ir, "eval", 4, work=10)
    fb = _main(ir, footprint_pages)
    result = fb.call(search, [10 + min(scale, 3), 1])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    emit_call_loop(fb, leaves[0], 150 * scale, "acc")
    return _finish(ir, fb)


def build_imagick(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("imagick")
    leaves = add_leaf_workers(ir, "pix", 3, work=14)
    fb = _main(ir, footprint_pages)
    emit_arith_kernel(fb, 900 * scale, "acc")
    emit_call_loop(fb, leaves[0], 170 * scale, "acc")
    return _finish(ir, fb)


def build_leela(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("leela")
    search = add_recursive_search(ir, "mcts", 30)
    add_pointer_chase(ir, "board", nodes=0)
    leaves = add_leaf_workers(ir, "policy", 6, work=9)
    add_dispatch_table(ir, "leela", leaves, "policy_table")
    fb = _main(ir, footprint_pages)
    result = fb.call(search, [10 + min(scale, 3), 2])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    fb.local("head")
    fb.store_local("head", fb.call("board_build", [60 * scale]))
    walked = fb.call("board_walk", [fb.load_local("head"), 60 * scale])
    fb.store_local("acc", fb.add(fb.load_local("acc"), walked))
    emit_dispatch_loop(fb, "policy_table", len(leaves), 130 * scale, "acc")
    return _finish(ir, fb)


def build_nab(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("nab")
    leaves = add_leaf_workers(ir, "force", 2, work=18)
    fb = _main(ir, footprint_pages)
    emit_call_loop(fb, leaves[0], 650 * scale, "acc")
    emit_call_loop(fb, leaves[1], 350 * scale, "acc")
    emit_arith_kernel(fb, 350 * scale, "acc")
    return _finish(ir, fb)


def build_xz(scale: int = 1, footprint_pages: int = 0) -> Module:
    ir = IRBuilder("xz")
    leaves = add_leaf_workers(ir, "crc", 2, work=10)
    fb = _main(ir, footprint_pages)
    emit_arith_kernel(fb, 1200 * scale, "acc")
    emit_call_loop(fb, leaves[0], 55 * scale, "acc")
    return _finish(ir, fb)


#: Benchmark name -> builder, in the paper's Figure 6 / Table 2 order.
SPEC_BENCHMARKS: Dict[str, Callable[[int], Module]] = {
    "perlbench": build_perlbench,
    "gcc": build_gcc,
    "mcf": build_mcf,
    "lbm": build_lbm,
    "omnetpp": build_omnetpp,
    "xalancbmk": build_xalancbmk,
    "x264": build_x264,
    "deepsjeng": build_deepsjeng,
    "imagick": build_imagick,
    "leela": build_leela,
    "nab": build_nab,
    "xz": build_xz,
}


#: Default working-set ballast (heap pages) per benchmark for the memory
#: experiment, loosely proportional to the real programs' footprints.
SPEC_FOOTPRINT_PAGES: Dict[str, int] = {
    "perlbench": 1400,
    "gcc": 2000,
    "mcf": 2800,
    "lbm": 2600,
    "omnetpp": 1000,
    "xalancbmk": 1600,
    "x264": 2100,
    "deepsjeng": 1800,
    "imagick": 2300,
    "leela": 1100,
    "nab": 1500,
    "xz": 2400,
}


def build_spec_benchmark(
    name: str, scale: int = 1, footprint_pages: int = 0
) -> Module:
    """Build one benchmark module by its SPEC name.

    ``footprint_pages`` adds heap working-set ballast (used by the memory
    experiment; see :data:`SPEC_FOOTPRINT_PAGES`)."""
    try:
        builder = SPEC_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC_BENCHMARKS)}"
        ) from None
    return builder(scale, footprint_pages)
