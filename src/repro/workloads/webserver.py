"""Webserver workload (Section 6.2.4: nginx / Apache throughput).

Models the per-request work of an event-loop webserver: parse a request
buffer, route through a handler table (indirect call), run the handler's
helper-call chain, accumulate a response checksum.  Request handling is
call-dense but the resident set is tiny — which is exactly why the paper
sees ~100% *memory* overhead for webservers (the fixed BTDP guard-page
cost dominates a small base RSS, Section 6.2.5) next to only 1-3% on the
memory-hungry SPEC programs.

``server="nginx"`` and ``server="apache"`` differ in handler-chain depth
(Apache's per-request module pipeline is longer), giving the two servers
slightly different overhead points, as in the paper.
"""

from __future__ import annotations

from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import Module
from repro.workloads.programs import (
    add_call_chain,
    add_dispatch_table,
    add_leaf_workers,
    emit_heap_touch,
)

SERVERS = ("nginx", "apache")


def build_webserver(
    server: str = "nginx",
    requests: int = 150,
    footprint_pages: int = 48,
    vulnerable: bool = False,
) -> Module:
    """Build a webserver module that processes ``requests`` requests.

    ``footprint_pages`` models the server's steady-state buffers/caches —
    small compared to SPEC working sets, which is why the fixed BTDP cost
    dominates webserver RSS (Section 6.2.5).

    ``vulnerable=True`` plants the same ``attack_hook`` vulnerability the
    victim workload carries inside ``handle_request``, so supervised-attack
    scenarios can target a realistic server.  The default leaves the module
    byte-identical to previous builds (benchmark fingerprints stay valid).
    """
    if server not in SERVERS:
        raise ValueError(f"unknown server {server!r}; choose from {SERVERS}")
    chain_depth = 3 if server == "nginx" else 5

    ir = IRBuilder(server)
    leaves = add_leaf_workers(ir, "hdr", 4, work=14)
    handlers = []
    for index in range(4):
        chain = add_call_chain(ir, f"route{index}", chain_depth, leaves[index])
        handlers.append(chain)
    add_dispatch_table(ir, "router", handlers, "route_table")

    parse = ir.function("parse_request", params=["req_id"])
    parse.local("hash")
    parse.store_local("hash", parse.param("req_id"))
    body, done = "scan", "scan_done"
    ivar = parse.counted_loop(28, body, done)
    i = parse.load_local(ivar)
    h = parse.load_local("hash")
    h = parse.add(parse.mul(h, 31), i)
    parse.store_local("hash", parse.band(h, 0xFFFF_FFFF))
    parse.loop_backedge(ivar, body)
    parse.new_block(done)
    parse.ret(parse.load_local("hash"))

    handle = ir.function("handle_request", params=["req_id"])
    handle.local("resp")
    parsed = handle.call("parse_request", [handle.param("req_id")])
    if vulnerable:
        # The same arbitrary read/write hook the victim workload exposes,
        # planted mid-request while the routing state is live on the stack.
        handle.rtcall("attack_hook", [], void=True)
    route = handle.mod(parsed, len(handlers))
    target = handle.load_global("route_table", route)
    result = handle.icall(target, [parsed])
    handle.store_local("resp", result)
    extra = handle.call(leaves[0], [handle.load_local("resp")])
    handle.ret(handle.add(handle.load_local("resp"), extra))

    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    emit_heap_touch(fb, footprint_pages)
    body, done = "serve", "serve_done"
    ivar = fb.counted_loop(requests, body, done)
    i = fb.load_local(ivar)
    resp = fb.call("handle_request", [i])
    fb.store_local("acc", fb.band(fb.add(fb.load_local("acc"), resp), 0xFFFF_FFFF))
    fb.loop_backedge(ivar, body)
    fb.new_block(done)
    fb.out(fb.load_local("acc"))
    fb.ret(0)
    return ir.finish()
