"""Reusable IR program fragments for the synthetic workloads.

Each helper adds functions to an :class:`~repro.toolchain.builder.IRBuilder`
and returns the names it created.  The fragments model the behaviours that
drive R2C's overhead profile:

* call-dense code (BTRA setup cost scales with call count, Section 7.1);
* indirect dispatch (omnetpp-style virtual calls);
* recursion (deepsjeng-style search);
* pointer chasing over the heap (mcf-style, puts heap pointers on stacks);
* tight arithmetic loops with no calls (lbm-style, near-zero overhead);
* stack-argument calls (exercising offset-invariant addressing).

All fragments produce verifiable output: they accumulate checksums that
``main`` emits via ``out``, so every benchmark doubles as a correctness
test of the diversifying compiler.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.toolchain.builder import FunctionBuilder, IRBuilder


def add_leaf_workers(
    ir: IRBuilder, prefix: str, count: int, work: int = 6
) -> List[str]:
    """Leaf worker functions with ``work`` rounds of hash-style arithmetic.

    ``work`` calibrates the callee body size relative to the fixed per-call
    BTRA cost, i.e. the call *density* of the benchmark — the quantity the
    paper identifies as the overhead driver (Section 7.1).
    """
    names = []
    for index in range(count):
        fb = ir.function(f"{prefix}_leaf{index}", params=["x"])
        x = fb.param("x")
        value = fb.add(fb.mul(x, 2 * index + 3), index + 1)
        for round_index in range(work):
            value = fb.bxor(value, fb.shr(value, 7))
            value = fb.add(fb.mul(value, 31), round_index)
        fb.ret(fb.band(value, 0xFFFF_FFFF))
        names.append(fb.fn.name)
    return names


def add_call_chain(
    ir: IRBuilder, prefix: str, depth: int, leaf: str, work: int = 2
) -> str:
    """A chain f0 -> f1 -> ... -> leaf, each frame with locals and ``work``
    rounds of arithmetic (the per-frame body size knob)."""
    previous = leaf
    for level in reversed(range(depth)):
        fb = ir.function(f"{prefix}_chain{level}", params=["x"])
        fb.local("acc")
        x = fb.param("x")
        value = fb.add(x, level)
        for round_index in range(work):
            value = fb.add(fb.mul(value, 5), round_index)
            value = fb.bxor(value, fb.shr(value, 9))
        fb.store_local("acc", fb.band(value, 0xFFFF_FFFF))
        inner = fb.call(previous, [fb.load_local("acc")])
        fb.ret(fb.add(inner, 1))
        previous = fb.fn.name
    return previous


def add_dispatch_table(
    ir: IRBuilder, prefix: str, handlers: Sequence[str], table_global: str
) -> None:
    """A global function-pointer table (populated at link time)."""
    ir.global_var(
        table_global,
        size_words=len(handlers),
        init=tuple((name, 0) for name in handlers),
    )


def emit_dispatch_loop(
    fb: FunctionBuilder, table_global: str, table_len: int, iterations: int, acc_local: str
) -> None:
    """An indirect-call dispatch loop (virtual-call heavy, omnetpp-style)."""
    body = f"disp_{table_global}_{len(fb.fn.blocks)}"
    exit_label = f"{body}_done"
    ivar = fb.counted_loop(iterations, body, exit_label)
    i = fb.load_local(ivar)
    index = fb.mod(i, table_len)
    target = fb.load_global(table_global, index)
    result = fb.icall(target, [i])
    fb.store_local(acc_local, fb.add(fb.load_local(acc_local), result))
    fb.loop_backedge(ivar, body)
    fb.new_block(exit_label)


def emit_call_loop(
    fb: FunctionBuilder, callee: str, iterations: int, acc_local: str
) -> None:
    """A direct-call loop (the basic call-density knob)."""
    body = f"calls_{callee}_{len(fb.fn.blocks)}"
    exit_label = f"{body}_done"
    ivar = fb.counted_loop(iterations, body, exit_label)
    i = fb.load_local(ivar)
    result = fb.call(callee, [i])
    fb.store_local(acc_local, fb.add(fb.load_local(acc_local), result))
    fb.loop_backedge(ivar, body)
    fb.new_block(exit_label)


def emit_arith_kernel(fb: FunctionBuilder, iterations: int, acc_local: str) -> None:
    """A tight arithmetic loop with no calls (lbm/xz-style)."""
    body = f"arith_{acc_local}_{len(fb.fn.blocks)}"
    exit_label = f"{body}_done"
    ivar = fb.counted_loop(iterations, body, exit_label)
    i = fb.load_local(ivar)
    acc = fb.load_local(acc_local)
    acc = fb.add(acc, fb.mul(i, 17))
    acc = fb.bxor(acc, fb.shl(i, 3))
    acc = fb.sub(acc, fb.shr(acc, 5))
    fb.store_local(acc_local, fb.band(acc, 0xFFFF_FFFF))
    fb.loop_backedge(ivar, body)
    fb.new_block(exit_label)


def add_pointer_chase(ir: IRBuilder, prefix: str, nodes: int) -> str:
    """A heap linked-list walk: builds the list, then a chase function.

    The chase loads node pointers into locals — putting benign heap
    pointers on the stack, AOCR's raw material (Section 2.3).
    """
    walk = ir.function(f"{prefix}_walk", params=["head", "steps"])
    walk.local("cur")
    walk.local("sum")
    walk.store_local("cur", walk.param("head"))
    walk.store_local("sum", 0)
    body, exit_label = "walk_body", "walk_done"
    ivar = walk.counted_loop(walk.param("steps"), body, exit_label)
    cur = walk.load_local("cur")
    value = walk.load(cur, offset=8)
    walk.store_local("sum", walk.add(walk.load_local("sum"), value))
    walk.store_local("cur", walk.load(cur, offset=0))
    walk.loop_backedge(ivar, body)
    walk.new_block(exit_label)
    walk.ret(walk.load_local("sum"))

    build = ir.function(f"{prefix}_build", params=["n"])
    build.local("head")
    build.local("prev")
    head = build.rtcall("malloc", [16])
    build.store(head, 0, offset=0)
    build.store(head, 1, offset=8)
    build.store_local("head", head)
    build.store_local("prev", head)
    body2, exit2 = "build_body", "build_done"
    ivar2 = build.counted_loop(build.param("n"), body2, exit2)
    node = build.rtcall("malloc", [16])
    i2 = build.load_local(ivar2)
    build.store(node, 0, offset=0)
    build.store(node, build.add(i2, 2), offset=8)
    prev = build.load_local("prev")
    build.store(prev, node, offset=0)
    build.store_local("prev", node)
    build.loop_backedge(ivar2, body2)
    build.new_block(exit2)
    build.ret(build.load_local("head"))
    return f"{prefix}"


def add_recursive_search(ir: IRBuilder, prefix: str, branch_work: int) -> str:
    """A bounded two-way recursion (deepsjeng/leela-style search)."""
    fb = ir.function(f"{prefix}_search", params=["depth", "score"])
    fb.local("tmp")
    depth = fb.param("depth")
    done = fb.cmp("le", depth, 0)
    fb.cbr(done, "base", "recurse")

    fb.new_block("base")
    fb.ret(fb.add(fb.param("score"), 1))

    fb.new_block("recurse")
    score = fb.param("score")
    work = score
    for step in range(branch_work):
        work = fb.add(fb.mul(work, 3), step)
    fb.store_local("tmp", work)
    d1 = fb.sub(fb.param("depth"), 1)
    left = fb.call(fb.fn.name, [d1, fb.load_local("tmp")])
    d2 = fb.sub(fb.param("depth"), 2)
    right = fb.call(fb.fn.name, [d2, left])
    fb.ret(fb.band(fb.add(left, right), 0xFFFF_FFFF))
    return fb.fn.name


def add_stack_arg_worker(ir: IRBuilder, prefix: str) -> str:
    """A function with stack arguments (exercises OIA, Section 5.1.1)."""
    params = [f"p{i}" for i in range(9)]
    fb = ir.function(f"{prefix}_wide", params=params)
    acc = fb.param("p0")
    for name in params[1:]:
        acc = fb.add(fb.mul(acc, 3), fb.param(name))
    fb.ret(fb.band(acc, 0xFFFF_FFFF))
    return fb.fn.name


def emit_heap_touch(fb: FunctionBuilder, pages: int) -> None:
    """Allocate and touch ``pages`` heap pages (working-set ballast).

    Real SPEC programs have working sets in the hundreds of megabytes,
    which is why the fixed BTDP guard-page cost is only 1-3% of their RSS
    but ~100% of a small webserver's (Section 6.2.5).  The memory
    experiment adds this ballast to the SPEC stand-ins.
    """
    if pages <= 0:
        return
    buf_local = f"__ballast{len(fb.fn.blocks)}"
    fb.local(buf_local)
    fb.store_local(buf_local, fb.rtcall("malloc", [pages * 4096]))
    body = f"touch_{buf_local}"
    exit_label = f"{body}_done"
    ivar = fb.counted_loop(pages, body, exit_label)
    i = fb.load_local(ivar)
    addr = fb.add(fb.load_local(buf_local), fb.mul(i, 4096))
    fb.store(addr, i)
    fb.loop_backedge(ivar, body)
    fb.new_block(exit_label)
