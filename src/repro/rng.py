"""Deterministic randomness for diversification and simulation.

All random decisions in the package flow through :class:`DiversityRng`, a
thin wrapper over :class:`random.Random` that can spawn independent child
streams.  Child streams make diversification passes order-independent: the
BTRA pass and the BTDP pass each derive their own stream from the build
seed, so adding a pass never perturbs the decisions of another.  This
mirrors how the real R2C compiler re-seeds per compilation ("we recompiled
the benchmarks with a different seed for each of the executions",
Section 6.2 of the paper).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(seed: int, label: str) -> int:
    """Derive a stable 64-bit child seed from a parent seed and a label."""
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class DiversityRng:
    """A seeded random stream with labelled, independent child streams."""

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = random.Random(seed)

    def child(self, label: str) -> "DiversityRng":
        """Return an independent stream derived from this one.

        The same ``(seed, label)`` pair always yields the same stream,
        regardless of how much randomness has been consumed elsewhere.
        """
        return DiversityRng(_derive_seed(self.seed, label))

    # -- primitive draws ---------------------------------------------------

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Shuffle ``items`` in place and return it for chaining."""
        self._rng.shuffle(items)
        return items

    def shuffled(self, items: Iterable[T]) -> List[T]:
        """Return a new shuffled list, leaving the input untouched."""
        out = list(items)
        self._rng.shuffle(out)
        return out

    def bool(self, p_true: float = 0.5) -> bool:
        return self._rng.random() < p_true
