"""Exception hierarchy shared across the repro package.

Every layer raises a subclass of :class:`ReproError` so callers can catch
simulation problems without accidentally swallowing programming errors.
Memory faults additionally carry enough structure for the attack monitor
(:mod:`repro.attacks.monitor`) to classify them, e.g. to tell a booby-trap
detonation apart from a plain wild access.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ToolchainError(ReproError):
    """Raised for malformed IR, codegen failures, or link errors."""


class LinkError(ToolchainError):
    """Raised when symbol resolution or section layout fails."""


class MachineError(ReproError):
    """Base class for runtime errors inside the simulated machine."""


class InvalidInstruction(MachineError):
    """Raised when the CPU fetches something that is not an instruction."""


class MemoryFault(MachineError):
    """A memory access violated the page permissions (SIGSEGV analogue).

    Attributes:
        kind: one of ``"read"``, ``"write"``, ``"fetch"``.
        address: the faulting virtual address.
        reason: short human-readable cause (``"unmapped"``, ``"protection"``).
    """

    def __init__(self, kind: str, address: int, reason: str = "protection"):
        self.kind = kind
        self.address = address
        self.reason = reason
        super().__init__(f"{kind} fault at {address:#x} ({reason})")


class GuardPageFault(MemoryFault):
    """A memory access hit a guard page installed by the R2C runtime.

    Dereferencing a booby-trapped data pointer lands here; the monitor
    treats this as a detected attack rather than a plain crash.
    """


class BoobyTrapTriggered(MachineError):
    """Control flow reached a booby-trap function (BTRA detonation)."""

    def __init__(self, address: int):
        self.address = address
        super().__init__(f"booby trap triggered at {address:#x}")


class StackMisaligned(MachineError):
    """The stack pointer violated the 16-byte ABI alignment at a call."""


class ShadowStackViolation(MachineError):
    """A return target disagreed with the shadow stack (backward-edge CFI).

    Raised only when the CPU's optional shadow stack is enabled — the
    enforcement-based comparison point of Section 8.2.
    """

    def __init__(self, expected: int, actual: int):
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"return to {actual:#x} but shadow stack expected {expected:#x}"
        )


class ExecutionLimitExceeded(MachineError):
    """The interpreter exceeded its configured instruction budget."""


class AllocatorError(ReproError):
    """Heap allocator misuse (double free, corrupt chunk, OOM)."""


class InjectedFault(ReproError):
    """A fault deliberately injected by a reliability :class:`FaultPlan` rule.

    Carries the rule's kind and ID so the engine can attribute the failure
    record to the rule that produced it (``python -m repro chaos`` asserts
    on exactly this attribution).
    """

    def __init__(self, kind: str, rule_id: str, message: str = ""):
        self.kind = kind
        self.rule_id = rule_id
        super().__init__(message or f"injected {kind} ({rule_id})")
