"""Multi-Variant Execution Engine (the Section 7.3 proposal).

The paper: "A way to strengthen R2C's security would be to combine it with
Multi-Variant Execution Engines.  MVEEs and diversification defenses like
R2C naturally complement each other.  Considering that R2C diversifies
along multiple dimensions, an MVEE would detect data corruption or leakage
in one of the variants with high probability."

This module implements that combination as a façade over
:class:`repro.defenses.lockstep.LockstepGroup`.  An :class:`MVEE` compiles
the same source into N *differently diversified* variants (different R2C
seeds), then runs them in two phases:

1. **Leader phase** — the leader alone is stepped until its attack hook
   fires; the attack logic runs against it and its memory *writes* are
   recorded byte-for-byte.
2. **Lockstep phase** — all variants are stepped in batches by one
   scheduling loop (one decode per distinct binary, N architectural
   states).  Each follower replays the recorded writes at the same
   addresses when *its* hook fires — MVEE input replication.  At every
   sync point the group cross-checks output events and heap-allocation
   ordering; at the end it cross-checks exit status and fault class.

Because the variants' layouts differ, a write that surgically corrupts
the leader lands somewhere else in a follower — and the resulting
behavioural divergence is a detection, even when the attack against a
single variant would have succeeded silently.

**The identical-allocation-sequence invariant.**  Write replay is *by
address*.  That is only meaningful if follower heap objects sit at the
same allocator offsets as the leader's — i.e. every variant must issue
the identical sequence of allocation requests (sizes, in order).  R2C
diversification never perturbs the guest's allocation behaviour (traps
and BTDPs are placed by load-time constructors, not guest ``malloc``), so
the invariant holds for benign runs; the lockstep group *asserts* it at
every sync point by logging each variant's ``malloc`` request sizes and
cross-checking the sequences as prefixes.  A mismatch is reported as an
``alloc`` divergence — allocator drift is then attributable evidence, not
a silent source of bogus write replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.attacks.monitor import DefenseMonitor
from repro.attacks.outcomes import AttackOutcome
from repro.attacks.scenario import AttackAborted, output_success
from repro.attacks.surface import AttackerView, ReferenceKnowledge
from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.defenses.lockstep import (
    DivergenceReport,
    LockstepGroup,
    MveeOutcome,
)
from repro.errors import MachineError
from repro.machine.loader import load_binary
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.workloads.victim import build_victim, fire_once

__all__ = [
    "MVEE",
    "MveeOutcome",
    "MveeResult",
    "VariantRun",
    "mvee_attack_outcome",
]


@dataclass
class VariantRun:
    """Observable behaviour of one variant."""

    status: str  # "exit" | "crashed" | "detected"
    exit_code: Optional[int]
    output: Tuple[int, ...]
    attacked_success: bool


@dataclass
class MveeResult:
    outcome: MveeOutcome
    variants: List[VariantRun] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Populated when the lockstep cross-check caught a divergence: which
    #: variant, at which sync point, first mismatching observable.
    divergence: Optional[DivergenceReport] = None
    sync_points: int = 0

    @property
    def detected(self) -> bool:
        return self.outcome in (MveeOutcome.DIVERGED, MveeOutcome.TRAPPED)


class _RecordingView(AttackerView):
    """AttackerView that logs every write for replay in the followers."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_log: List[Tuple[int, bytes]] = []

    def write_word(self, address: int, value: int) -> None:
        data = (value & (2**64 - 1)).to_bytes(8, "little")
        self.write_log.append((address, data))
        super().write_word(address, value)

    def write_low_bytes(self, address: int, value: int, nbytes: int) -> None:
        data = (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little")
        self.write_log.append((address, data))
        super().write_low_bytes(address, value, nbytes)


class MVEE:
    """Runs N diversified variants of one module in batched lockstep."""

    def __init__(
        self,
        config: R2CConfig,
        *,
        module: Optional[Module] = None,
        variants: int = 2,
        build_seed: int = 0,
        load_seed: int = 0xBEEF,
        backend: str = "reference",
        sync_every: int = 256,
    ):
        if variants < 2:
            raise ValueError("an MVEE needs at least two variants")
        self.module = module if module is not None else build_victim()
        self.configs = [
            config.replace(seed=build_seed + 1000 * index) for index in range(variants)
        ]
        self.binaries = [compile_module(self.module, cfg) for cfg in self.configs]
        self.load_seed = load_seed
        self.backend = backend
        self.sync_every = sync_every
        # The attacker's reference: their own build, as in VictimSession.
        self.reference = ReferenceKnowledge(
            compile_module(self.module, config.replace(seed=build_seed + 0x5EED))
        )
        self.monitor = DefenseMonitor()

    # -- execution -------------------------------------------------------------

    def run(
        self,
        attack_fn: Optional[Callable[[AttackerView], None]] = None,
        *,
        attacker_seed: int = 0,
    ) -> MveeResult:
        """Run all variants (optionally under attack) and cross-check."""
        write_log: List[Tuple[int, bytes]] = []
        leader_fired: List[bool] = [False]
        processes = [
            self._load_variant(
                index,
                binary,
                attack_fn,
                write_log,
                leader_fired,
                attacker_seed=attacker_seed,
            )
            for index, binary in enumerate(self.binaries)
        ]
        group = LockstepGroup(
            processes,
            backend=self.backend,
            sync_every=self.sync_every,
            instruction_budget=5_000_000,
            monitor=self.monitor,
            # Diversified variants never match architecturally; only their
            # observable events (output, allocation order, exit) must.
            compare_state=False,
        )
        # Phase 1: the leader runs alone until its hook has fired and the
        # attacker's writes are on record (or the leader stops first).
        group.run_variant_until(0, lambda variant: leader_fired[0])
        # Phase 2: everyone in batched lockstep; followers replay the
        # leader's writes when their own hooks fire.
        lockstep = group.run()

        runs = [
            VariantRun(
                status=variant.status,
                exit_code=(
                    variant.state._exit_code if variant.status == "exit" else None
                ),
                output=tuple(variant.output),
                attacked_success=output_success(variant.output),
            )
            for variant in lockstep.variants
        ]
        result = MveeResult(
            outcome=MveeOutcome.CLEAN,
            variants=runs,
            divergence=lockstep.divergence,
            sync_points=lockstep.sync_points,
        )
        if any(run.status == "detected" for run in runs):
            result.outcome = MveeOutcome.TRAPPED
            result.notes.append("an R2C booby trap fired in at least one variant")
        elif all(run.attacked_success for run in runs):
            result.outcome = MveeOutcome.COMPROMISED
            result.notes.append("every variant reached the attacker goal identically")
        elif lockstep.outcome is MveeOutcome.DIVERGED:
            result.outcome = MveeOutcome.DIVERGED
            result.notes.extend(lockstep.notes)
        return result

    def _load_variant(
        self,
        index: int,
        binary,
        attack_fn,
        write_log: List[Tuple[int, bytes]],
        leader_fired: List[bool],
        *,
        attacker_seed: int,
    ):
        process = load_binary(binary, seed=self.load_seed)
        leader = index == 0

        def hook(proc, running_cpu):
            if leader:
                if attack_fn is not None:
                    view = _RecordingView(
                        proc,
                        running_cpu,
                        self.reference,
                        rng=DiversityRng(attacker_seed).child("attacker"),
                    )
                    try:
                        attack_fn(view)
                    except AttackAborted:
                        pass
                    write_log.extend(view.write_log)
                leader_fired[0] = True
            elif write_log:
                # MVEE input replication: the follower receives the same
                # corrupting bytes at the same addresses.
                for address, data in write_log:
                    try:
                        proc.memory.write(address, data)
                    except MachineError:
                        pass  # landed in an unmapped/protected spot here

        process.register_service("attack_hook", fire_once(hook))
        return process


def mvee_attack_outcome(result: MveeResult) -> AttackOutcome:
    """Map an MVEE cross-check result onto the attack-outcome scale."""
    if result.outcome is MveeOutcome.COMPROMISED:
        return AttackOutcome.SUCCESS
    if result.outcome is MveeOutcome.DIVERGED:
        return AttackOutcome.DIVERGED
    if result.detected:
        return AttackOutcome.DETECTED
    return AttackOutcome.FAILED
