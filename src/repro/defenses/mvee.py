"""Multi-Variant Execution Engine (the Section 7.3 proposal).

The paper: "A way to strengthen R2C's security would be to combine it with
Multi-Variant Execution Engines.  MVEEs and diversification defenses like
R2C naturally complement each other.  Considering that R2C diversifies
along multiple dimensions, an MVEE would detect data corruption or leakage
in one of the variants with high probability."

This module implements that combination.  An :class:`MVEE` compiles the
same source into N *differently diversified* variants (different R2C
seeds), runs them on identical input, and cross-checks their observable
behaviour (output events, exit status, fault class).  Attacker input is
replicated to every variant, as in a real MVEE: the attack logic runs
against the leader, its memory *writes* are recorded and replayed
byte-for-byte at the same addresses in each follower.  Because the
variants' layouts differ, a write that surgically corrupts the leader
lands somewhere else in a follower — and the resulting behavioural
divergence is a detection, even when the attack against a single variant
would have succeeded silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.attacks.monitor import DefenseMonitor
from repro.attacks.outcomes import AttackOutcome
from repro.attacks.scenario import AttackAborted, output_success
from repro.attacks.surface import AttackerView, ReferenceKnowledge
from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import MachineError
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.loader import load_binary
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.workloads.victim import build_victim


class MveeOutcome(enum.Enum):
    #: All variants agreed; no attack effect observed.
    CLEAN = "clean"
    #: Variants diverged (different outputs / statuses) — the MVEE's
    #: detection signal.
    DIVERGED = "diverged"
    #: A variant tripped an R2C booby trap / BTDP (reactive detection
    #: fires even before cross-checking).
    TRAPPED = "trapped"
    #: Every variant reached the attacker's goal identically — the only
    #: way an attack beats an MVEE.
    COMPROMISED = "compromised"


@dataclass
class VariantRun:
    """Observable behaviour of one variant."""

    status: str  # "exit" | "crashed" | "detected"
    exit_code: Optional[int]
    output: Tuple[int, ...]
    attacked_success: bool


@dataclass
class MveeResult:
    outcome: MveeOutcome
    variants: List[VariantRun] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return self.outcome in (MveeOutcome.DIVERGED, MveeOutcome.TRAPPED)


class _RecordingView(AttackerView):
    """AttackerView that logs every write for replay in the followers."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_log: List[Tuple[int, bytes]] = []

    def write_word(self, address: int, value: int) -> None:
        data = (value & (2**64 - 1)).to_bytes(8, "little")
        self.write_log.append((address, data))
        super().write_word(address, value)

    def write_low_bytes(self, address: int, value: int, nbytes: int) -> None:
        data = (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little")
        self.write_log.append((address, data))
        super().write_low_bytes(address, value, nbytes)


class MVEE:
    """Runs N diversified variants of one module under cross-checking."""

    def __init__(
        self,
        config: R2CConfig,
        *,
        module: Optional[Module] = None,
        variants: int = 2,
        build_seed: int = 0,
        load_seed: int = 0xBEEF,
    ):
        if variants < 2:
            raise ValueError("an MVEE needs at least two variants")
        self.module = module if module is not None else build_victim()
        self.configs = [
            config.replace(seed=build_seed + 1000 * index) for index in range(variants)
        ]
        self.binaries = [compile_module(self.module, cfg) for cfg in self.configs]
        self.load_seed = load_seed
        # The attacker's reference: their own build, as in VictimSession.
        self.reference = ReferenceKnowledge(
            compile_module(self.module, config.replace(seed=build_seed + 0x5EED))
        )
        self.monitor = DefenseMonitor()

    # -- execution -------------------------------------------------------------

    def run(
        self,
        attack_fn: Optional[Callable[[AttackerView], None]] = None,
        *,
        attacker_seed: int = 0,
    ) -> MveeResult:
        """Run all variants (optionally under attack) and cross-check."""
        write_log: List[Tuple[int, bytes]] = []
        runs: List[VariantRun] = []
        for index, binary in enumerate(self.binaries):
            is_leader = index == 0
            runs.append(
                self._run_variant(
                    binary,
                    attack_fn if is_leader else None,
                    write_log,
                    leader=is_leader,
                    attacker_seed=attacker_seed,
                )
            )

        result = MveeResult(outcome=MveeOutcome.CLEAN, variants=runs)
        if any(run.status == "detected" for run in runs):
            result.outcome = MveeOutcome.TRAPPED
            result.notes.append("an R2C booby trap fired in at least one variant")
        elif all(run.attacked_success for run in runs):
            result.outcome = MveeOutcome.COMPROMISED
            result.notes.append("every variant reached the attacker goal identically")
        elif len({(run.status, run.exit_code, run.output) for run in runs}) > 1:
            result.outcome = MveeOutcome.DIVERGED
            result.notes.append(
                "variant behaviour diverged: "
                + ", ".join(f"v{i}={run.status}" for i, run in enumerate(runs))
            )
        return result

    def _run_variant(
        self,
        binary,
        attack_fn,
        write_log: List[Tuple[int, bytes]],
        *,
        leader: bool,
        attacker_seed: int,
    ) -> VariantRun:
        process = load_binary(binary, seed=self.load_seed)
        cpu = CPU(process, get_costs("epyc-rome"), instruction_budget=5_000_000)
        fired = {}

        def hook(proc, running_cpu):
            if fired:
                return 0
            fired["yes"] = True
            if leader and attack_fn is not None:
                view = _RecordingView(
                    proc,
                    running_cpu,
                    self.reference,
                    rng=DiversityRng(attacker_seed).child("attacker"),
                )
                try:
                    attack_fn(view)
                except AttackAborted:
                    pass
                write_log.extend(view.write_log)
            elif not leader and write_log:
                # MVEE input replication: the follower receives the same
                # corrupting bytes at the same addresses.
                for address, data in write_log:
                    try:
                        proc.memory.write(address, data)
                    except MachineError:
                        pass  # landed in an unmapped/protected spot here
            return 0

        process.register_service("attack_hook", hook)
        try:
            exec_result = cpu.run()
        except MachineError as exc:
            status = self.monitor.classify(exc)
            return VariantRun(
                status=status,
                exit_code=None,
                output=tuple(process.output),
                attacked_success=output_success(process.output),
            )
        return VariantRun(
            status="exit",
            exit_code=exec_result.exit_code,
            output=tuple(exec_result.output),
            attacked_success=output_success(exec_result.output),
        )


def mvee_attack_outcome(result: MveeResult) -> AttackOutcome:
    """Map an MVEE cross-check result onto the attack-outcome scale."""
    if result.outcome is MveeOutcome.COMPROMISED:
        return AttackOutcome.SUCCESS
    if result.detected:
        return AttackOutcome.DETECTED
    return AttackOutcome.FAILED
