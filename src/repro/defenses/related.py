"""Models of the related diversification defenses compared in Table 3.

Each defense is expressed inside our framework as the subset of
diversification/hardening mechanisms it provides, so the *same attack
implementations* can be run against all of them and the comparison matrix
emerges from experiments rather than assertion.  The mappings:

* **none** — the undiversified baseline with only ASLR and W^X.
* **codearmor** — CodeArmor [19]: the code space is hidden/re-randomized,
  modelled as execute-only text + per-install function shuffling; data
  layout untouched.  Code locators translate like CPH, so AOCR's
  data-section attack path stays open.
* **tasr** — TASR [10]: re-randomization on I/O; also modelled as
  per-install code randomization with execute-only text and undiversified
  data.  (Continuous re-randomization between probes is *not* granted to
  the attacker-facing model — the worker-restart scenario of our harness
  keeps one layout, which is TASR's best case, so this errs in TASR's
  favour for ROP-style attacks and still loses to AOCR.)
* **stackarmor** — StackArmor [20]: binary-level stack protection;
  modelled as stack-slot randomization only (no code diversification, no
  execute-only requirement beyond the W^X baseline).
* **readactor** — Readactor/Readactor++ [23, 25]: execute-only memory,
  fine-grained code randomization (function shuffle, NOP insertion,
  prolog traps, register shuffling) and standalone booby traps — but *no
  data diversification*: return addresses sit at ABI-fixed spots, heap
  pointers are clusterable, and globals (AOCR's default parameters) stay
  at build-constant offsets, which is exactly the gap AOCR exploited.
* **krx** — kR^X [56]: execute-only + a *single* return-address decoy per
  return address (``btras_per_callsite=1``; footnote 3 of Table 3: "single
  decoy; no heap pointer protection").
* **r2c** — this paper, full configuration.

Per-defense ``execute_only`` reflects whether the defense deploys XoM;
attacks read code freely when it is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import R2CConfig


@dataclass(frozen=True)
class DefenseModel:
    """One row of the Table 3 comparison.

    ``shadow_stack`` marks an enforcement-based backward-edge CFI row
    (Section 8.2): the CPU verifies every return against a protected
    shadow stack.
    """

    name: str
    config: R2CConfig
    execute_only: bool
    description: str
    shadow_stack: bool = False
    #: N-variant lockstep deployment (Section 7.3): >1 makes every probe
    #: run that many differently-seeded builds under cross-checking, with
    #: behavioural divergence surfacing as a DIVERGED outcome.
    variants: int = 1

    def victim_config(self, seed: int) -> R2CConfig:
        return self.config.replace(seed=seed)


def _build_models() -> Dict[str, DefenseModel]:
    models = {}

    models["none"] = DefenseModel(
        name="none",
        config=R2CConfig.baseline(),
        execute_only=False,
        description="ASLR + W^X only (the software monoculture)",
    )
    models["codearmor"] = DefenseModel(
        name="codearmor",
        config=R2CConfig(enable_function_shuffle=True, enable_nop_insertion=True),
        execute_only=True,
        description="hidden/re-randomized code space; data layout untouched",
    )
    models["tasr"] = DefenseModel(
        name="tasr",
        config=R2CConfig(enable_function_shuffle=True),
        execute_only=True,
        description="re-randomized code layout; data layout untouched",
    )
    models["stackarmor"] = DefenseModel(
        name="stackarmor",
        config=R2CConfig(enable_stack_slot_shuffle=True, enable_regalloc_shuffle=True),
        execute_only=False,
        description="stack frame/slot randomization only",
    )
    models["readactor"] = DefenseModel(
        name="readactor",
        config=R2CConfig(
            enable_function_shuffle=True,
            enable_nop_insertion=True,
            enable_prolog_traps=True,
            enable_regalloc_shuffle=True,
            booby_traps_standalone=True,
            enable_cph=True,
        ),
        execute_only=True,
        description="XoM + code-pointer hiding + fine-grained code "
        "randomization + booby traps; no data-layout diversification "
        "(AOCR's original target)",
    )
    models["krx"] = DefenseModel(
        name="krx",
        config=R2CConfig(
            enable_btra=True,
            btra_mode="push",
            btras_per_callsite=1,
            btras_for_unprotected_calls=True,
            enable_function_shuffle=True,
        ),
        execute_only=True,
        description="XoM + a single return-address decoy (no heap-pointer protection)",
    )
    models["shadowstack"] = DefenseModel(
        name="shadowstack",
        config=R2CConfig.baseline(),
        execute_only=False,
        shadow_stack=True,
        description="backward-edge CFI (hardware shadow stack, Section 8.2); "
        "returns are enforced, forward edges and data are not",
    )
    models["r2c"] = DefenseModel(
        name="r2c",
        config=R2CConfig.full(),
        execute_only=True,
        description="full R2C: BTRAs + BTDPs + code and data diversification",
    )
    models["r2c-mvee"] = DefenseModel(
        name="r2c-mvee",
        config=R2CConfig.full(),
        execute_only=True,
        variants=2,
        description="full R2C x 2 diversified variants in batched lockstep "
        "(the Section 7.3 MVEE combination)",
    )
    return models


#: Defense name -> model, in Table 3 row order.
DEFENSE_MODELS: Dict[str, DefenseModel] = _build_models()
