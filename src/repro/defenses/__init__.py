"""Related defenses: the Table 3 comparison models and the Section 7.3
MVEE combination."""

from repro.defenses.related import DEFENSE_MODELS, DefenseModel
from repro.defenses.mvee import MVEE, MveeOutcome, MveeResult, mvee_attack_outcome

__all__ = [
    "DEFENSE_MODELS",
    "DefenseModel",
    "MVEE",
    "MveeOutcome",
    "MveeResult",
    "mvee_attack_outcome",
]
