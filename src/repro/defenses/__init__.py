"""Related defenses: the Table 3 comparison models, the N-variant
lockstep substrate, and the Section 7.3 MVEE combination."""

from repro.defenses.related import DEFENSE_MODELS, DefenseModel
from repro.defenses.lockstep import (
    DivergenceReport,
    LockstepGroup,
    LockstepResult,
    LockstepVariant,
    run_bitflip_lockstep,
)
from repro.defenses.mvee import MVEE, MveeOutcome, MveeResult, mvee_attack_outcome

__all__ = [
    "DEFENSE_MODELS",
    "DefenseModel",
    "DivergenceReport",
    "LockstepGroup",
    "LockstepResult",
    "LockstepVariant",
    "MVEE",
    "MveeOutcome",
    "MveeResult",
    "mvee_attack_outcome",
    "run_bitflip_lockstep",
]
