"""Batched N-variant lockstep execution (the Section 7.3 MVEE substrate).

The program/state split (:mod:`repro.machine.state`) makes architectural
state a first-class value: one decoded program can drive any number of
:class:`MachineState`\\ s.  :class:`LockstepGroup` builds on that to run N
variant states in *batches* — one scheduling loop advances every running
variant ``sync_every`` instructions via the backend ``step`` primitive,
then cross-checks observable behaviour at the sync point:

* **output events** — every variant must produce the same output prefix
  (the MVEE I/O-replication model: outputs are the syscalls of this
  machine);
* **heap-allocation ordering** — every variant must issue the identical
  allocation request sequence (sizes, in order).  This is the invariant
  that makes address-based write replay sound: follower heap layouts may
  *differ* (diversified bases), but only because of layout, never because
  of allocator drift;
* **fault classes and exit behaviour** — variants must agree on how they
  end (clean exit with equal codes, or the same fault class);
* **architectural state** — when every variant is the *same* binary under
  the *same* layout (e.g. N replicas guarding against corruption), the
  group compares ``rip`` and all sixteen registers at every sync point,
  naming the first mismatching register in the report.

Fetch/decode is amortized across the group: each distinct (binary,
layout) pays one full ``prepare`` (decode is additionally cached per
binary fingerprint), and identical-layout replicas receive a cheap
*clone* of that prepared program (``Backend.clone_program``) instead of
re-binding — N replicas of one image decode once and bind once, and
differently diversified binaries each decode once, not once per run.

A divergence is surfaced as a :class:`DivergenceReport` — the
crash-report analogue for the MVEE detection signal: which variant, at
which sync point, which rip, and the first mismatching register/output
word — and maps to the first-class
:attr:`repro.attacks.outcomes.AttackOutcome.DIVERGED`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.attacks.monitor import DefenseMonitor
from repro.errors import MachineError
from repro.machine.backends import DEFAULT_BACKEND, get_backend
from repro.machine.costs import MachineCosts, get_costs
from repro.machine.cpu import ExecutionResult
from repro.machine.isa import Reg
from repro.machine.state import MachineState

__all__ = [
    "DivergenceReport",
    "LockstepGroup",
    "LockstepVariant",
    "LockstepResult",
    "MveeOutcome",
    "run_bitflip_lockstep",
]

#: Register names in architectural index order (``state.regs`` order).
REG_NAMES = tuple(Reg(index).name.lower() for index in range(16))


class MveeOutcome(enum.Enum):
    """Cross-check verdict for a variant group (historically the MVEE's)."""

    #: All variants agreed; no attack effect observed.
    CLEAN = "clean"
    #: Variants diverged (outputs / state / allocation order / fault
    #: classes) — the MVEE's detection signal.
    DIVERGED = "diverged"
    #: A variant tripped an R2C booby trap / BTDP (reactive detection
    #: fires even before cross-checking).
    TRAPPED = "trapped"
    #: Every variant reached the attacker's goal identically — the only
    #: way an attack beats an MVEE.  (Assigned by attack-aware callers;
    #: the group itself only knows CLEAN/DIVERGED/TRAPPED.)
    COMPROMISED = "compromised"


@dataclass
class DivergenceReport:
    """Where and how a variant fell out of lockstep (CrashReport-style).

    ``sync_point`` is the 1-based cross-check round that caught the
    mismatch; ``instructions`` the diverging variant's executed-instruction
    count at that round; ``field`` names the first mismatching observable
    (a register name, ``output[j]``, ``alloc[j]``, ``rip``, or
    ``status``); ``expected`` is the leader's value, ``observed`` the
    diverging variant's.
    """

    variant: int
    sync_point: int
    kind: str  # "output" | "register" | "rip" | "alloc" | "status" | "exit"
    rip: int
    instructions: int
    field: str
    expected: object
    observed: object
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-divergence/v1",
            "variant": self.variant,
            "sync_point": self.sync_point,
            "kind": self.kind,
            "rip": self.rip,
            "instructions": self.instructions,
            "field": self.field,
            "expected": repr(self.expected),
            "observed": repr(self.observed),
            "detail": self.detail,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary_line(self) -> str:
        return (
            f"DIVERGED v{self.variant} @sync{self.sync_point} "
            f"rip={self.rip:#x} {self.kind}:{self.field} "
            f"expected={self.expected!r} observed={self.observed!r}"
        )


@dataclass
class LockstepVariant:
    """One variant's state, program, and running bookkeeping."""

    index: int
    process: object
    state: MachineState
    program: object
    result: ExecutionResult
    status: str = "running"  # "running" | "exit" | "detected" | "crashed"
    error: Optional[MachineError] = None
    alloc_log: List[int] = field(default_factory=list)

    @property
    def output(self):
        return self.process.output


@dataclass
class LockstepResult:
    """What a :meth:`LockstepGroup.run` observed."""

    outcome: MveeOutcome
    variants: List[LockstepVariant] = field(default_factory=list)
    divergence: Optional[DivergenceReport] = None
    sync_points: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        return self.outcome in (MveeOutcome.DIVERGED, MveeOutcome.TRAPPED)


class LockstepGroup:
    """Steps N loaded variant processes in batched lockstep.

    ``processes`` are already-loaded :class:`~repro.machine.process.Process`
    images (same module semantics; possibly differently diversified and
    differently laid out).  Variant 0 is the *leader*: cross-checks
    compare every other variant's observables against it.

    ``sync_every`` is the batch size: each scheduling round advances every
    running variant that many instructions, then cross-checks.  Output,
    allocation-order, and end-state checks tolerate step skew (variants
    legitimately execute different instruction counts when their binaries
    differ); the architectural register/rip comparison is only armed when
    every variant shares one binary *and* one layout (``compare_state``
    defaults to exactly that predicate).
    """

    def __init__(
        self,
        processes: Sequence[object],
        *,
        costs: Optional[MachineCosts] = None,
        backend: str = DEFAULT_BACKEND,
        sync_every: int = 256,
        instruction_budget: int = 5_000_000,
        shadow_stack: bool = False,
        monitor: Optional[DefenseMonitor] = None,
        compare_state: Optional[bool] = None,
        record_allocs: bool = True,
    ):
        if len(processes) < 2:
            raise ValueError("lockstep needs at least two variants")
        if sync_every < 1:
            raise ValueError("sync_every must be positive")
        self.backend_name = backend
        self._backend = get_backend(backend)
        self.sync_every = sync_every
        self.monitor = monitor if monitor is not None else DefenseMonitor()
        costs = costs if costs is not None else get_costs("epyc-rome")
        self.variants: List[LockstepVariant] = []
        # Fetch/decode amortization: the first variant of each distinct
        # (binary, layout) pays the full prepare (decode is additionally
        # cached per binary fingerprint); identical-layout replicas get a
        # cheap clone of that program instead of re-binding — every
        # pre-resolved address is layout-derived, so only the memory
        # reference and per-run fetch state change.
        prototypes: Dict[tuple, object] = {}
        for index, process in enumerate(processes):
            state = MachineState(
                process,
                costs,
                instruction_budget=instruction_budget,
                shadow_stack=shadow_stack,
            )
            if process.entry_point is None:
                raise MachineError(f"variant {index} has no entry point")
            state.rip = process.entry_point
            state._halted = False
            key = (
                # Hand-built processes (no binary) never share programs.
                id(process.binary) if process.binary is not None else id(process),
                process.layout.text_base,
                process.layout.data_base,
                process.layout.heap_base,
                process.layout.stack_base,
            )
            prototype = prototypes.get(key)
            if prototype is None:
                program = self._backend.prepare(state)
                prototypes[key] = program
            else:
                program = self._backend.clone_program(prototype, state)
            self.variants.append(
                LockstepVariant(
                    index=index,
                    process=process,
                    state=state,
                    program=program,
                    result=ExecutionResult(),
                )
            )
        if record_allocs:
            for variant in self.variants:
                self._instrument_allocs(variant)
        self.compare_state = (
            compare_state if compare_state is not None else self._replicas()
        )
        self.sync_points = 0
        self.divergence: Optional[DivergenceReport] = None
        self.notes: List[str] = []

    # -- setup helpers -------------------------------------------------------

    def _replicas(self) -> bool:
        """True when every variant is the same binary under the same layout
        — the precondition for per-sync architectural state comparison."""
        first = self.variants[0].process
        anchor = (
            first.binary,
            first.layout.text_base,
            first.layout.data_base,
            first.layout.heap_base,
            first.layout.stack_base,
        )
        for variant in self.variants[1:]:
            process = variant.process
            probe = (
                process.binary,
                process.layout.text_base,
                process.layout.data_base,
                process.layout.heap_base,
                process.layout.stack_base,
            )
            if probe[0] is not anchor[0] or probe[1:] != anchor[1:]:
                return False
        return True

    def _instrument_allocs(self, variant: LockstepVariant) -> None:
        """Log every ``malloc`` request size, preserving service behaviour.

        The logs feed the allocation-ordering cross-check: identical
        request sequences are the invariant that lets the MVEE replay
        leader writes by address and still attribute follower divergence
        to *layout* rather than allocator drift.
        """
        try:
            inner = variant.process.service("malloc")
        except MachineError:
            return  # no allocator mapped; nothing to record
        log = variant.alloc_log

        def recording_malloc(proc, cpu, _inner=inner, _log=log):
            _log.append(cpu.regs[Reg.RDI])
            return _inner(proc, cpu)

        variant.process.register_service("malloc", recording_malloc)

    # -- execution -----------------------------------------------------------

    def _advance(self, variant: LockstepVariant, steps: int) -> None:
        if variant.status != "running":
            return
        try:
            halted = self._backend.step(
                variant.program, variant.state, variant.result, steps
            )
        except MachineError as exc:
            variant.status = self.monitor.classify(exc)
            variant.error = exc
            return
        if halted:
            variant.status = "exit"

    def run_variant_until(
        self, index: int, predicate: Callable[[LockstepVariant], bool]
    ) -> LockstepVariant:
        """Step one variant alone (in ``sync_every`` slices) until
        ``predicate(variant)`` holds or the variant stops running.

        The MVEE uses this to let the leader reach its vulnerability and
        record the attacker's writes before the followers replay them.
        """
        variant = self.variants[index]
        while variant.status == "running" and not predicate(variant):
            self._advance(variant, self.sync_every)
        return variant

    def run(self) -> LockstepResult:
        """Batched lockstep to completion (or to the first divergence)."""
        while self.divergence is None:
            running = [v for v in self.variants if v.status == "running"]
            if not running:
                break
            for variant in running:
                self._advance(variant, self.sync_every)
            self.sync_points += 1
            self._cross_check()
        return self._finish()

    # -- cross-checking ------------------------------------------------------

    def _diverge(
        self,
        variant: LockstepVariant,
        kind: str,
        field_name: str,
        expected,
        observed,
        detail: str = "",
    ) -> None:
        if self.divergence is not None:
            return
        self.divergence = DivergenceReport(
            variant=variant.index,
            sync_point=self.sync_points,
            kind=kind,
            rip=variant.state.rip,
            instructions=variant.result.instructions,
            field=field_name,
            expected=expected,
            observed=observed,
            detail=detail,
        )
        self.monitor.note_divergence()
        self.notes.append(self.divergence.summary_line())

    def _check_prefix(
        self, kind: str, label: str, leader_seq, variant: LockstepVariant, seq
    ) -> bool:
        """Common-prefix agreement between the leader's event sequence and a
        variant's.  Skew-tolerant: only indices both have produced count."""
        common = min(len(leader_seq), len(seq))
        for j in range(common):
            if leader_seq[j] != seq[j]:
                self._diverge(
                    variant,
                    kind,
                    f"{label}[{j}]",
                    leader_seq[j],
                    seq[j],
                    detail=f"first {label} mismatch at index {j}",
                )
                return False
        return True

    def _cross_check(self) -> None:
        leader = self.variants[0]
        for variant in self.variants[1:]:
            if not self._check_prefix(
                "output", "output", leader.output, variant, variant.output
            ):
                return
            if not self._check_prefix(
                "alloc", "alloc", leader.alloc_log, variant, variant.alloc_log
            ):
                return
        if self.compare_state:
            self._cross_check_state(leader)

    def _cross_check_state(self, leader: LockstepVariant) -> None:
        """Replica mode: identical images must march in architectural
        lockstep — compare status, rip, then every register against the
        leader at each sync point."""
        for variant in self.variants[1:]:
            if variant.status != leader.status:
                self._diverge(
                    variant,
                    "status",
                    "status",
                    leader.status,
                    variant.status,
                    detail=str(variant.error) if variant.error else "",
                )
                return
            if variant.status != "running":
                continue
            if variant.state.rip != leader.state.rip:
                self._diverge(
                    variant, "rip", "rip", hex(leader.state.rip), hex(variant.state.rip)
                )
                return
            for index, name in enumerate(REG_NAMES):
                if variant.state.regs[index] != leader.state.regs[index]:
                    self._diverge(
                        variant,
                        "register",
                        name,
                        leader.state.regs[index],
                        variant.state.regs[index],
                    )
                    return

    def _finish(self) -> LockstepResult:
        result = LockstepResult(
            outcome=MveeOutcome.CLEAN,
            variants=self.variants,
            divergence=self.divergence,
            sync_points=self.sync_points,
            notes=self.notes,
        )
        if any(v.status == "detected" for v in self.variants):
            result.outcome = MveeOutcome.TRAPPED
            result.notes.append("an R2C booby trap fired in at least one variant")
            return result
        if self.divergence is not None:
            result.outcome = MveeOutcome.DIVERGED
            return result
        behaviours = {
            (v.status, v.state._exit_code if v.status == "exit" else None, tuple(v.output))
            for v in self.variants
        }
        if len(behaviours) > 1:
            leader = self.variants[0]
            for variant in self.variants[1:]:
                if variant.status != leader.status:
                    self._diverge(
                        variant, "status", "status", leader.status, variant.status
                    )
                    break
                if tuple(variant.output) != tuple(leader.output):
                    self._diverge(
                        variant,
                        "output",
                        f"output[{min(len(leader.output), len(variant.output))}]",
                        len(leader.output),
                        len(variant.output),
                        detail="output lengths differ",
                    )
                    break
                if variant.state._exit_code != leader.state._exit_code:
                    self._diverge(
                        variant,
                        "exit",
                        "exit_code",
                        leader.state._exit_code,
                        variant.state._exit_code,
                    )
                    break
            result.divergence = self.divergence
            result.outcome = MveeOutcome.DIVERGED
            result.notes.append(
                "variant behaviour diverged: "
                + ", ".join(f"v{v.index}={v.status}" for v in self.variants)
            )
        return result

    # -- observability -------------------------------------------------------

    def perf_counters(self):
        """Merged per-variant counters: scalar events summed, tag buckets
        namespaced per variant (``v0/app``, ``v1/btra-setup``, ...)."""
        from repro.obs.counters import PerfCounters, merge_variant_counters

        return merge_variant_counters(
            {
                f"v{v.index}": PerfCounters.from_result(v.result)
                for v in self.variants
            }
        )


def run_bitflip_lockstep(
    *,
    variants: int = 2,
    corrupt_variant: int = 1,
    fault_seed: int = 0,
    flips: int = 24,
    region: str = "data",
    backend: str = DEFAULT_BACKEND,
    sync_every: int = 64,
    load_seed: int = 0x1C0C,
    requests: int = 4,
) -> LockstepResult:
    """Replica lockstep with a seeded bitflip in one follower.

    Loads N replicas of the (undiversified) victim under one layout, then
    corrupts ``corrupt_variant``'s memory with ``flips`` seeded bitflips
    (via :class:`repro.reliability.faults.FaultPlan`, so the corruption is
    deterministic per ``fault_seed``) and runs the group.  Replica mode
    arms the per-sync register/rip comparison, so a flip that perturbs
    execution is pinned to the exact variant, sync point, and register.

    Used by the lockstep divergence tests and the ``python -m repro mvee
    --bitflip-seed`` demo path (the CI divergence artifact).
    """
    from types import SimpleNamespace

    from repro.core.compiler import compile_module
    from repro.core.config import R2CConfig
    from repro.machine.loader import load_binary
    from repro.reliability.faults import FaultPlan, FaultRule
    from repro.workloads.victim import build_victim

    if not 0 < corrupt_variant < variants:
        raise ValueError("corrupt_variant must name a follower (1..variants-1)")
    binary = compile_module(build_victim(requests=requests), R2CConfig.baseline())
    leader = load_binary(binary, seed=load_seed, execute_only=False)
    leader.register_service("attack_hook", lambda proc, cpu: 0)
    # Replicas fork from the loaded leader (identical layout by
    # construction; an order of magnitude cheaper than re-loading).
    processes = [leader] + [leader.clone() for _ in range(variants - 1)]
    plan = FaultPlan(
        seed=fault_seed,
        rules=(
            FaultRule(
                rule_id="lockstep-bitflip", kind="bitflip", count=flips, region=region
            ),
        ),
    )
    plan.apply_process_faults(
        processes[corrupt_variant],
        SimpleNamespace(label="lockstep-bitflip", load_seed=load_seed),
    )
    group = LockstepGroup(processes, backend=backend, sync_every=sync_every)
    return group.run()
