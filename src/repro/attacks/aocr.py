"""Address-Oblivious Code Reuse (Sections 2.3, 7.2).

The attack needs no code-layout knowledge at all.  Its inference chain,
following the AOCR paper's demonstrated attacks (A)-(C):

1. **Profile the stack** (Malicious Thread Blocking): leak two pages of
   stack words and run the statistical value-range analysis to isolate
   the cluster of heap pointers (stack-slot randomization prevents
   locating a *specific* one — so pick any member of the cluster).
2. **Leak heap data**: dereference the chosen heap pointer and walk the
   object looking for a pointer into the image (data section) — the
   victim's request object holds one.  Under R2C the chosen "heap
   pointer" is a BTDP with probability B/(H+B); dereferencing it faults
   into a guard page and the attack is *detected* (Section 4.2).
3. **Corrupt the data section**: derandomize the data base from the
   leaked data pointer using the attacker's reference offsets, then (a)
   read the target function's address out of a function-pointer table,
   (b) overwrite the handler function pointer, and (c) overwrite the
   default-parameter global the handler will be called with.  Global
   shuffling + padding makes all three offsets wrong under R2C; the
   attacker's verification step (the stolen word must look like a code
   pointer) then either aborts or falls back to scanning the data
   section — where R2C's decoy BTDPs (Figure 5) and BTRA arrays mislead
   the scan.

The victim then calls ``handler_ptr(default_param)`` itself: control flow
never leaves the program's legitimate edges — the property that makes
AOCR immune to code randomization alone.
"""

from __future__ import annotations

from repro.attacks.clustering import classify_word, cluster_pointers
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView
from repro.workloads.victim import ATTACK_ARG

WORD = 8
#: Words of a leaked heap object the attacker inspects.
OBJECT_WINDOW = 4
#: Heap pointers the attacker is willing to chase before giving up.
MAX_CHASES = 3


def make_aocr_hook(layout=None):
    """The raw attack function, reusable outside run_attack (e.g. MVEE)."""
    from repro.workloads.victim import VictimLayoutInfo

    if layout is None:
        layout = VictimLayoutInfo()

    def hook(view: AttackerView) -> None:
        reference = view.reference

        # --- Stage 1: profile the stack, cluster by value range -----------
        leak = view.leak_stack()
        clusters = cluster_pointers(leak)
        heap_ptrs = [value for _, value in clusters.heap]
        if not heap_ptrs:
            raise AttackAborted("no heap-pointer cluster on the stack")

        # --- Stage 2: follow heap pointers to find a data-section pointer -
        data_ptr = None
        candidates = view.rng.shuffled(heap_ptrs)
        for heap_ptr in candidates[:MAX_CHASES]:
            # Dereference: a BTDP detonates right here.
            for index in range(OBJECT_WINDOW):
                word = view.read_word(heap_ptr + index * WORD)
                if classify_word(word) == "image":
                    data_ptr = word
                    break
            if data_ptr is not None:
                break
        if data_ptr is None:
            raise AttackAborted("no data-section pointer reachable from heap")

        # --- Stage 3: derandomize the data section and corrupt it --------
        data_base = data_ptr - reference.global_offset(layout.config_global)
        admin_addr = data_base + reference.global_offset(layout.admin_table_global)
        handler_addr = data_base + reference.global_offset(layout.handler_ptr_global)
        param_addr = data_base + reference.global_offset(layout.default_param_global)

        target = view.read_word(admin_addr)
        handler_now = view.read_word(handler_addr)
        if classify_word(target) == "image" and classify_word(handler_now) == "image":
            view.write_word(handler_addr, target)
            view.write_word(param_addr, ATTACK_ARG)
            return

        # Fallback: the reference offsets did not line up (data
        # diversification).  Scan outward from the known-good data pointer
        # for words that look like code pointers and gamble on a pair
        # (table entry -> handler slot).  Heap-band words found here are
        # candidate pointers to *follow* — under R2C these include the
        # decoy BTDPs planted in the data section (Figure 5).
        code_slots = []
        heap_slots = []
        for delta in range(-64, 96):
            addr = data_ptr + delta * WORD
            if addr < data_base:
                continue
            word = view.read_word(addr)
            kind = classify_word(word)
            if kind == "image":
                code_slots.append((addr, word))
            elif kind == "heap":
                heap_slots.append((addr, word))
        if heap_slots:
            # Chase one data-section heap pointer hoping for the handler's
            # backing object (decoy BTDPs detonate here).
            _, pointer = view.rng.choice(heap_slots)
            view.read_word(pointer)
        if len(code_slots) < 2:
            raise AttackAborted("data scan found no usable code pointers")
        (slot_a, value_a) = view.rng.choice(code_slots)
        (slot_b, _) = view.rng.choice(code_slots)
        view.write_word(slot_b, value_a)
        view.write_word(slot_b + WORD, ATTACK_ARG)

    return hook


def aocr_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    hook = make_aocr_hook(session.layout)
    return run_attack(session, hook, "aocr", attacker_seed=attacker_seed)
