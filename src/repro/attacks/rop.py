"""Classic ROP with monoculture layout knowledge (Section 2.1).

The attacker analyzed their own copy of the binary, so they know (a) where
the vulnerable function's return address sits relative to the leaked stack
pointer, and (b) the text offset the leaked return address corresponds to
— enough to compute the ASLR base and redirect the return into the target
function ("the gadget chain" degenerates to the whole-function payload;
locating it is the part every defense in Table 3 fights over).

Against an undiversified victim this succeeds deterministically.  Against
R2C the frame geometry, the call-site offsets, and the function layout of
the attacker's copy are all wrong for the victim, and the word the
attacker takes for the return address is, with probability R/(R+1), a
booby-trapped return address.
"""

from __future__ import annotations

from repro.attacks.clustering import classify_word
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView
from repro.workloads.victim import VictimLayoutInfo


def make_rop_hook(layout: VictimLayoutInfo = VictimLayoutInfo()):
    """The raw attack function, reusable outside run_attack (e.g. MVEE)."""

    def hook(view: AttackerView) -> None:
        reference = view.reference
        frames = reference.stack_map_from_hook(layout.hook_chain)
        inner = frames[0]
        ra_addr = view.rsp + inner.ra_slot

        leaked_ra = view.read_word(ra_addr)
        if classify_word(leaked_ra) != "image":
            raise AttackAborted("value at expected RA slot is not a code pointer")

        # Derandomize: the attacker knows which call site this return
        # address belongs to in *their* copy of the binary.
        site = reference._find_callsite(layout.hook_chain[1], layout.hook_chain[0])
        if site is None:
            raise AttackAborted("no call site record in reference")
        text_base = leaked_ra - site.ret_offset
        target = text_base + reference.function_offset(layout.target_function)
        view.write_word(ra_addr, target)

    return hook


def rop_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    hook = make_rop_hook(session.layout)
    return run_attack(session, hook, "rop", attacker_seed=attacker_seed)
