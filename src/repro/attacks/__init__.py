"""Attack implementations for the security evaluation (Section 7.2).

Every attack runs against a *simulated process* through
:class:`~repro.attacks.surface.AttackerView`, which grants exactly the
threat-model capabilities of Section 3: a memory-corruption read/write
primitive, deterministic stack-frame leakage (Malicious Thread Blocking),
and knowledge of the attacker's *own* copy of the software — never the
victim's defender-side metadata.

* :mod:`repro.attacks.rop` — classic ROP with monoculture layout knowledge.
* :mod:`repro.attacks.jitrop` — direct JIT-ROP (read the code pages).
* :mod:`repro.attacks.indirect_jitrop` — indirect JIT-ROP: derandomize the
  text base from leaked return addresses.
* :mod:`repro.attacks.aocr` — address-oblivious code reuse: statistical
  pointer clustering, heap walk, data-section corruption.
* :mod:`repro.attacks.blindrop` — Blind-ROP-style brute force against
  restarting workers.
* :mod:`repro.attacks.pirop` — position-independent (partial-pointer) reuse.
* :mod:`repro.attacks.mined` — miner-synthesized ROP chain and
  anchor-oblivious AOCR driven by :mod:`repro.analysis.gadgets` instead
  of hand-written geometry.
"""

from repro.attacks.outcomes import AttackOutcome, AttackResult
from repro.attacks.monitor import DefenseMonitor
from repro.attacks.surface import AttackerView, ReferenceKnowledge
from repro.attacks.scenario import VictimSession, run_attack
from repro.attacks.clustering import PointerClusters, cluster_pointers
from repro.attacks.rop import rop_attack
from repro.attacks.jitrop import jitrop_attack
from repro.attacks.indirect_jitrop import indirect_jitrop_attack
from repro.attacks.aocr import aocr_attack
from repro.attacks.blindrop import blindrop_attack
from repro.attacks.pirop import pirop_attack
from repro.attacks.fengshui import fengshui_attack
from repro.attacks.mined import mined_aocr_attack, mined_rop_attack

ALL_ATTACKS = {
    "rop": rop_attack,
    "jitrop": jitrop_attack,
    "indirect-jitrop": indirect_jitrop_attack,
    "aocr": aocr_attack,
    "blindrop": blindrop_attack,
    "pirop": pirop_attack,
    "mined-rop": mined_rop_attack,
    "mined-aocr": mined_aocr_attack,
}

#: The Section 7.2.3 feng-shui refinement is kept out of the Table 3
#: matrix (the paper's table covers the *demonstrated* AOCR attacks) but
#: is part of the public attack suite and its own test/bench coverage.
EXTENDED_ATTACKS = {**ALL_ATTACKS, "aocr-fengshui": fengshui_attack}

__all__ = [
    "AttackOutcome",
    "AttackResult",
    "DefenseMonitor",
    "AttackerView",
    "ReferenceKnowledge",
    "VictimSession",
    "run_attack",
    "PointerClusters",
    "cluster_pointers",
    "rop_attack",
    "jitrop_attack",
    "indirect_jitrop_attack",
    "aocr_attack",
    "blindrop_attack",
    "pirop_attack",
    "fengshui_attack",
    "mined_rop_attack",
    "mined_aocr_attack",
    "ALL_ATTACKS",
    "EXTENDED_ATTACKS",
]
