"""The attacker's capabilities and knowledge.

:class:`AttackerView` is the only interface attack code has to the victim
process.  It grants exactly the Section 3 threat model:

* an arbitrary read/write primitive (the assumed memory-corruption bug) —
  reads go through the MMU, so execute-only text is unreadable and BTDP
  guard pages fault;
* deterministic stack-frame leakage (Malicious Thread Blocking): the
  attacker can read the blocked thread's stack extent, including the
  current stack-pointer value;
* attacker-side randomness, independent of the victim's seeds.

:class:`ReferenceKnowledge` is what the attacker learned from *their own
copy* of the software — offsets of globals and functions, call-site
return offsets, frame geometry.  Against an undiversified victim this
knowledge transfers exactly (the software monoculture); against an R2C
victim the attacker's copy was diversified differently, so the knowledge
is structurally right but numerically wrong — which is the entire point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.machine.isa import Reg
from repro.machine.memory import WORD_BYTES
from repro.machine.process import Process
from repro.rng import DiversityRng
from repro.toolchain.binary import Binary

WORD = WORD_BYTES


@dataclass
class FrameGeometry:
    """Offsets (bytes, relative to rsp at the hook) for one stack frame."""

    function: str
    frame_base: int  # where the frame's slots start
    ra_slot: int  # where the return address of this frame lives
    slots: Dict[str, int]  # absolute-from-rsp offsets of named slots
    pre_words: int  # BTRAs above the RA (from the caller's call site)
    cleanup_words: int


class ReferenceKnowledge:
    """Layout knowledge extracted from the attacker's own build."""

    def __init__(self, binary: Binary):
        self.binary = binary

    # -- data section --------------------------------------------------------

    def global_offset(self, name: str) -> int:
        return self.binary.symbols_data[name]

    def has_global(self, name: str) -> bool:
        return name in self.binary.symbols_data

    # -- text section -----------------------------------------------------------

    def function_offset(self, name: str) -> int:
        return self.binary.symbols_text[name]

    def ret_offsets(self) -> List[int]:
        """Text offsets of all call-site return points (from disassembly)."""
        return sorted(self.binary.callsite_records)

    # -- stack geometry ------------------------------------------------------------

    def stack_map_from_hook(self, chain: Sequence[str]) -> List[FrameGeometry]:
        """Frame geometry at the attack hook, innermost frame first.

        ``chain`` lists the active functions innermost-first (the attacker
        knows the vulnerable code path of their own copy).  Walks the
        frames exactly as they are laid out by this build: frame, BTRA
        post-offset, return address, pre-offset BTRAs, stack-arg cleanup.
        """
        frames: List[FrameGeometry] = []
        cursor = 0  # byte offset from rsp at the hook
        for index, name in enumerate(chain):
            record = self.binary.frame_records[name]
            slots = {
                slot: cursor + offset for slot, offset in record.slot_offsets.items()
            }
            ra_slot = cursor + record.frame_bytes + WORD * record.post_offset
            pre_words = 0
            cleanup_words = 0
            if index + 1 < len(chain):
                caller = chain[index + 1]
                site = self._find_callsite(caller, name)
                if site is not None:
                    pre_words = site.pre_words
                    cleanup_words = site.cleanup_words
            frames.append(
                FrameGeometry(
                    function=name,
                    frame_base=cursor,
                    ra_slot=ra_slot,
                    slots=slots,
                    pre_words=pre_words,
                    cleanup_words=cleanup_words,
                )
            )
            cursor = ra_slot + WORD + WORD * (pre_words + cleanup_words)
        return frames

    def _find_callsite(self, caller: str, callee: str):
        for record in self.binary.callsite_records.values():
            if record.caller == caller and record.callee == callee:
                return record
        # Indirect call: fall back to any indirect site in the caller.
        for record in self.binary.callsite_records.values():
            if record.caller == caller and record.callee is None:
                return record
        return None


class AttackerView:
    """The attacker's runtime interface to a victim process."""

    def __init__(
        self,
        process: Process,
        cpu,
        reference: ReferenceKnowledge,
        *,
        rng: Optional[DiversityRng] = None,
    ):
        self._process = process
        self._memory = process.memory
        self.reference = reference
        self.rng = rng if rng is not None else DiversityRng(0xA77AC8)
        #: The blocked thread's stack pointer (Malicious Thread Blocking).
        self.rsp = cpu.regs[Reg.RSP]
        self._stack_end = process.layout.stack_base + process.layout.stack_size

    # -- read/write primitive (faults propagate: a bad access kills the run) --

    def read_word(self, address: int) -> int:
        return self._memory.read_word(address)

    def read_bytes(self, address: int, size: int) -> bytes:
        return self._memory.read(address, size)

    def write_word(self, address: int, value: int) -> None:
        self._memory.write_word(address, value)

    def write_low_bytes(self, address: int, value: int, nbytes: int) -> None:
        """Partial pointer overwrite (the PIROP primitive, Section 7.2.5)."""
        data = (value & ((1 << (8 * nbytes)) - 1)).to_bytes(nbytes, "little")
        self._memory.write(address, data)

    def disassemble(self, start: int, size: int) -> List[Tuple[int, object]]:
        """Read and decode a code range (the JIT-ROP primitive).

        Goes through the MMU like any data read: execute-only text makes
        this fault, which is the leakage-resilience baseline R2C builds on.
        """
        self._memory.read(start, size)  # permission check + fault semantics
        instructions = self._process.instructions
        found = [
            (address, instructions[address])
            for address in instructions
            if start <= address < start + size
        ]
        found.sort(key=lambda pair: pair[0])
        return found

    # -- threat-model grants ------------------------------------------------------

    def leak_stack(self, max_bytes: int = 2 * 4096) -> List[Tuple[int, int]]:
        """Leak the blocked thread's stack: [rsp, min(rsp+max, stack top)).

        Section 3: "we assume that the attacker can deterministically leak
        stack frames (e.g., with the help of Malicious Thread Blocking)".
        The thread's stack extent is part of that grant; everything else
        still goes through the MMU.
        """
        end = min(self.rsp + max_bytes, self._stack_end)
        words = []
        for address in range(self.rsp, end, WORD):
            words.append((address, self._memory.read_word(address)))
        return words
