"""Blind-ROP-style brute force against restarting workers (Sections 4.1, 7.3).

The scenario: a forked worker pool restarts crashed workers *without*
re-randomizing (nginx/Apache/OpenSSH, per the paper), so the attacker can
spend many probes against one layout.  Two phases:

1. **Locate the return address by the crash side channel** (Section 7.3):
   zero one code-pointer-looking stack slot per probe; the worker crashes
   iff the zeroed slot was a live return address.  Note that this works
   *even against R2C* — the paper concedes exactly this residual attack
   surface ("by overwriting selected return address candidates with zero
   and observing whether the process crashes, the attacker could learn
   the location of the real return address").
2. **Scan for the payload**: per probe, overwrite the located return
   address with a guessed code address (seeded by the code-pointer values
   leaked in phase 1) and observe the outcome.  Here R2C's reactive
   component bites: the guessed addresses land in booby-trap functions
   and prolog traps, each detonation is a *detection*, and the campaign is
   stopped once the defender's detection budget is exhausted — whereas
   against the undiversified baseline the scan only produces anonymous
   crashes until it finds the payload.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.clustering import cluster_pointers
from repro.attacks.outcomes import AttackOutcome, AttackResult
from repro.attacks.scenario import VictimSession
from repro.attacks.surface import AttackerView
from repro.rng import DiversityRng

WORD = 8


def blindrop_attack(
    session: VictimSession,
    *,
    attacker_seed: int = 0,
    max_probes: int = 1200,
    scan_stride: int = 1,
    scan_span: int = 4096,
) -> AttackResult:
    result = AttackResult(attack="blindrop", outcome=AttackOutcome.FAILED)
    rng = DiversityRng(attacker_seed).child("blindrop")

    # --- Phase 0: one clean probe to map the candidate slots -------------
    recon: dict = {}

    def recon_hook(view: AttackerView) -> None:
        clusters = cluster_pointers(view.leak_stack())
        recon["slots"] = [addr - view.rsp for addr, _ in clusters.image]
        recon["values"] = [value for _, value in clusters.image]

    status, _ = session.probe(recon_hook, attacker_seed=attacker_seed)
    result.probes += 1
    if "slots" not in recon or not recon["slots"]:
        result.note("no code-pointer candidates on the stack")
        return result

    # --- Phase 1: find the live return address by zeroing candidates ------
    ra_offset: Optional[int] = None
    for slot_offset in recon["slots"]:
        if result.probes >= max_probes or session.monitor.tripped:
            break

        def zero_hook(view: AttackerView, slot=slot_offset) -> None:
            view.write_word(view.rsp + slot, 0)

        status, _ = session.probe(zero_hook, attacker_seed=attacker_seed)
        result.probes += 1
        if status in ("crashed", "detected"):
            ra_offset = slot_offset
            break
    if ra_offset is None:
        result.note("crash side channel found no live return address")
        result.detections = session.monitor.detections
        result.crashes = session.monitor.crashes
        return result
    result.note(f"return-address slot located at rsp+{ra_offset:#x}")

    # --- Phase 2: scan guessed code addresses through the RA --------------
    # Estimate the image base: leaked code pointers rounded down to a page
    # (ASLR is page-granular), then scan byte-wise upward, as Blind ROP
    # scans for stop gadgets.  Against a small monoculture text the payload
    # sits a few hundred probes in; against R2C the very same scan walks
    # into booby-trap functions scattered through the (much larger,
    # shuffled) text section.
    seeds: List[int] = sorted(set(recon["values"]))
    base_guess = min(seeds) & ~0xFFF
    guesses: List[int] = [base_guess + delta for delta in range(0, scan_span, scan_stride)]

    for guess in guesses:
        if result.probes >= max_probes:
            result.note("probe budget exhausted")
            break
        if session.monitor.tripped:
            result.outcome = AttackOutcome.DETECTED
            result.note("defender detection budget tripped by booby traps")
            break

        def scan_hook(view: AttackerView, target=guess) -> None:
            view.write_word(view.rsp + ra_offset, target)

        status, _ = session.probe(scan_hook, attacker_seed=attacker_seed)
        result.probes += 1
        if status == "success":
            result.outcome = AttackOutcome.SUCCESS
            result.note(f"payload found at guessed address {guess:#x}")
            break

    result.detections = session.monitor.detections
    result.crashes = session.monitor.crashes
    if result.outcome is AttackOutcome.FAILED and session.monitor.tripped:
        result.outcome = AttackOutcome.DETECTED
    return result
