"""Attack outcome classification."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class AttackOutcome(enum.Enum):
    """How an attack run ended."""

    #: The attacker's goal was reached (target_exec ran under attacker control).
    SUCCESS = "success"
    #: A booby trap (BTRA target, prolog trap) or BTDP guard page fired —
    #: the defender *observed* the attack (the reactive component).
    DETECTED = "detected"
    #: The victim crashed without tripping a trap (plain segfault etc.).
    CRASHED = "crashed"
    #: The attack gave up (no usable leak, no consensus, budget exhausted)
    #: and the victim kept running normally.
    FAILED = "failed"
    #: N-variant lockstep execution caught the variants disagreeing on
    #: observable behaviour (Section 7.3's MVEE detection signal) — the
    #: attack perturbed diversified state without reaching its goal in
    #: every variant.
    DIVERGED = "diverged"


@dataclass
class AttackResult:
    """Result of one attack campaign against one victim instance."""

    attack: str
    outcome: AttackOutcome
    probes: int = 0  # processes consumed (1 for single-shot attacks)
    detections: int = 0  # booby-trap / guard-page firings observed
    crashes: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.outcome is AttackOutcome.SUCCESS

    def note(self, message: str) -> None:
        self.notes.append(message)

    def __str__(self) -> str:
        return (
            f"{self.attack}: {self.outcome.value}"
            f" (probes={self.probes}, detections={self.detections}, crashes={self.crashes})"
        )
