"""Heap-feng-shui-assisted AOCR (the Section 7.2.3 refinement).

The paper concedes a smarter adversary than demonstrated AOCR:

    "Alternatively, an attacker could try to identify events where BTDPs
    do not mimic their benign counterparts accurately.  For example, by
    performing heap feng shui an attacker might be able to identify
    benign heap pointers with a known distance to each other.  Note,
    however, that such an attack requires specific prerequisites and goes
    significantly beyond the analysis steps of the demonstrated AOCR
    attacks."

This module implements exactly that refinement.  The victim's request
handler allocates its request object and scratch buffer back to back, so
the two benign heap pointers in one frame sit at a *build-constant
distance* the attacker can read off their own copy's allocation pattern.
BTDPs are random guard-page addresses: the chance that a BTDP pairs with
another heap-cluster word at exactly that distance is negligible.  The
attacker therefore filters the heap cluster down to distance-correlated
pairs — benign with overwhelming probability — and dereferences only
those, dodging the reactive component.

What this buys, and what it does not (demonstrated by the tests): the
feng-shui attacker avoids BTDP *detection* far more often than the
demonstrated AOCR attack, but R2C's *data diversification* (shuffled,
padded globals) still breaks the subsequent corruption step, so the
attack fails quietly instead of succeeding — precisely the paper's
"reduces attack surface considerably" framing rather than a bypass.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Tuple

from repro.attacks.aocr import OBJECT_WINDOW, WORD
from repro.attacks.clustering import classify_word, cluster_pointers
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView
from repro.workloads.victim import ATTACK_ARG

#: Pair distances (bytes) the attacker considers "groomed": derived from
#: the victim's allocation pattern (object then scratch buffer), with the
#: allocator's 16-byte header in between.  The attacker learns these from
#: their own copy, not from the victim.
GROOMED_DISTANCES = tuple(range(32, 129, 16))


def find_groomed_pairs(
    heap_values: List[int], distances: Tuple[int, ...] = GROOMED_DISTANCES
) -> List[Tuple[int, int]]:
    """Pairs of heap-cluster values at a groomed allocation distance."""
    pairs = []
    unique = sorted(set(heap_values))
    for a, b in combinations(unique, 2):
        if b - a in distances:
            pairs.append((a, b))
    return pairs


def make_fengshui_hook(layout=None):
    """AOCR with the feng-shui pointer filter in stage 2."""
    from repro.workloads.victim import VictimLayoutInfo

    if layout is None:
        layout = VictimLayoutInfo()

    def hook(view: AttackerView) -> None:
        reference = view.reference

        # Stage 1: profile and cluster, as in demonstrated AOCR.
        clusters = cluster_pointers(view.leak_stack())
        heap_values = clusters.heap_values()
        if not heap_values:
            raise AttackAborted("no heap-pointer cluster on the stack")

        # Stage 2 (refined): only dereference distance-correlated pairs —
        # BTDPs are random addresses and almost never pair up.
        pairs = find_groomed_pairs(heap_values)
        if not pairs:
            raise AttackAborted("no groomed allocation pairs identified")

        data_ptr: Optional[int] = None
        for low, high in pairs[:4]:
            for pointer in (low, high):
                for index in range(OBJECT_WINDOW):
                    word = view.read_word(pointer + index * WORD)
                    if classify_word(word) == "image":
                        data_ptr = word
                        break
                if data_ptr is not None:
                    break
            if data_ptr is not None:
                break
        if data_ptr is None:
            raise AttackAborted("groomed objects held no data-section pointer")

        # Stage 3: identical to demonstrated AOCR — and still at the mercy
        # of global shuffling + padding.
        data_base = data_ptr - reference.global_offset(layout.config_global)
        admin_addr = data_base + reference.global_offset(layout.admin_table_global)
        handler_addr = data_base + reference.global_offset(layout.handler_ptr_global)
        param_addr = data_base + reference.global_offset(layout.default_param_global)
        target = view.read_word(admin_addr)
        handler_now = view.read_word(handler_addr)
        if classify_word(target) != "image" or classify_word(handler_now) != "image":
            raise AttackAborted("data-section offsets did not line up (diversified)")
        view.write_word(handler_addr, target)
        view.write_word(param_addr, ATTACK_ARG)

    return hook


def fengshui_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    hook = make_fengshui_hook(session.layout)
    return run_attack(session, hook, "aocr-fengshui", attacker_seed=attacker_seed)
