"""Mined code-reuse attacks: payloads synthesized by the gadget miner.

The hand-written probes in :mod:`repro.attacks.rop` / :mod:`~repro.attacks.aocr`
encode the victim's geometry by name (which function to return into, which
global holds the handler pointer).  These two scenarios replace that
hand knowledge with :mod:`repro.analysis.gadgets` output — the systematic
attacker the ROADMAP's adversary zoo asks for:

* **mined-rop** — the miner censuses the attacker's *own copy* of the
  binary, synthesizes an emit-output ROP chain (gadget sequence + exact
  stack layout) from the semantic summaries, then derandomizes the text
  base from one leaked return address (same disclosure the hand-written
  ROP uses) and writes the materialized chain over the stack.  The only
  non-mined knowledge is the vulnerable call path (``hook_chain``) — the
  Section 3 threat model's given.
* **mined-aocr** — the miner extracts the data-section pointer topology
  (:func:`~repro.analysis.gadgets.mine_data_pointers`): which slots hold
  code pointers, which one feeds the indirect call, which argument slot
  rides along, which dormant capability is worth stealing, and which
  globals are *anchors* (their addresses appear in text, so a leaked data
  pointer can be identified against them).  At runtime it profiles the
  stack, chases a heap pointer to a data-section pointer (as AOCR does),
  then tries each anchor hypothesis until the mined slots validate —
  no named globals anywhere.

Against an undiversified victim both succeed deterministically, matching
their hand-written counterparts in Table 3.  Under R2C the mined
knowledge is exactly as wrong as the hand-written kind: chain offsets
miss (booby traps / unmapped text), stack layouts misalign, anchor
hypotheses fail to validate, and BTDPs detonate during the heap walk.
"""

from __future__ import annotations

from repro.analysis.gadgets import (
    EmitOutput,
    mine_data_pointers,
    synthesize,
    take_census,
)
from repro.attacks.clustering import classify_word, cluster_pointers
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView
from repro.workloads.victim import ATTACK_ARG, SUCCESS_TAG, VictimLayoutInfo

WORD = 8
#: Words of a leaked heap object the attacker inspects (as aocr.py).
OBJECT_WINDOW = 4
#: Heap pointers the attacker is willing to chase before giving up.
MAX_CHASES = 3


def make_mined_rop_hook(layout: VictimLayoutInfo = VictimLayoutInfo()):
    """The raw attack function, reusable outside run_attack (e.g. MVEE)."""

    def hook(view: AttackerView) -> None:
        reference = view.reference

        # Offline phase (against the attacker's own copy): census every
        # gadget, synthesize a chain that makes the victim emit the
        # attack token.  No victim-specific knowledge is consulted.
        census = take_census(reference.binary)
        chain = synthesize(census, EmitOutput(SUCCESS_TAG | ATTACK_ARG))
        if chain is None:
            raise AttackAborted("miner synthesized no emit-output chain")

        # Online phase: derandomize the text base from one leaked return
        # address (the same single disclosure classic ROP relies on).
        frames = reference.stack_map_from_hook(layout.hook_chain)
        inner = frames[0]
        ra_addr = view.rsp + inner.ra_slot
        leaked_ra = view.read_word(ra_addr)
        if classify_word(leaked_ra) != "image":
            raise AttackAborted("value at expected RA slot is not a code pointer")
        site = reference._find_callsite(layout.hook_chain[1], layout.hook_chain[0])
        if site is None:
            raise AttackAborted("no call site record in reference")
        text_base = leaked_ra - site.ret_offset

        # Deploy: the materialized chain replaces the return address and
        # everything above it — frame words, loader slots, next-gadget
        # links, exactly as the synthesizer laid them out.
        for index, word in enumerate(chain.materialize(text_base)):
            view.write_word(ra_addr + index * WORD, word)

    return hook


def mined_rop_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    hook = make_mined_rop_hook(session.layout)
    return run_attack(session, hook, "mined-rop", attacker_seed=attacker_seed)


def make_mined_aocr_hook(layout=None):
    """The raw attack function, reusable outside run_attack (e.g. MVEE).

    ``layout`` is accepted for signature uniformity with the other hooks
    and ignored: every offset comes from the miner.
    """
    del layout

    def hook(view: AttackerView) -> None:
        reference = view.reference

        # Offline phase: mine the data-section pointer topology from the
        # attacker's copy — dispatch slot, argument slot, dormant code
        # pointers, and the anchor globals a leaked pointer can be
        # identified against.
        data_map = mine_data_pointers(reference.binary)
        if data_map.handler_slot is None or not data_map.dormant_slots:
            raise AttackAborted("miner found no dispatch surface in reference")
        dormant_offset = data_map.dormant_slots[0][0]

        # --- Stage 1: profile the stack, cluster by value range -----------
        leak = view.leak_stack()
        clusters = cluster_pointers(leak)
        heap_ptrs = [value for _, value in clusters.heap]
        if not heap_ptrs:
            raise AttackAborted("no heap-pointer cluster on the stack")

        # --- Stage 2: follow heap pointers to find a data-section pointer -
        data_ptr = None
        candidates = view.rng.shuffled(heap_ptrs)
        for heap_ptr in candidates[:MAX_CHASES]:
            # Dereference: a BTDP detonates right here.
            for index in range(OBJECT_WINDOW):
                word = view.read_word(heap_ptr + index * WORD)
                if classify_word(word) == "image":
                    data_ptr = word
                    break
            if data_ptr is not None:
                break
        if data_ptr is None:
            raise AttackAborted("no data-section pointer reachable from heap")

        # --- Stage 3: identify the pointer against the mined anchors ------
        # The leaked pointer targets *some* text-anchored global.  For
        # each anchor hypothesis, the mined dispatch and dormant slots
        # must both hold code pointers — the self-validation that makes
        # the payload anchor-oblivious.  Under R2C the victim's layout
        # matches no hypothesis (or a decoy fails the read).
        for anchor in data_map.anchor_offsets:
            data_base = data_ptr - anchor
            handler_now = view.read_word(data_base + data_map.handler_slot)
            stolen = view.read_word(data_base + dormant_offset)
            if classify_word(handler_now) != "image" or classify_word(stolen) != "image":
                continue
            view.write_word(data_base + data_map.handler_slot, stolen)
            if data_map.param_slot is not None:
                view.write_word(data_base + data_map.param_slot, ATTACK_ARG)
            return
        raise AttackAborted("no anchor hypothesis validated against the victim")

    return hook


def mined_aocr_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    hook = make_mined_aocr_hook(session.layout)
    return run_attack(session, hook, "mined-aocr", attacker_seed=attacker_seed)
