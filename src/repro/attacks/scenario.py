"""Victim sessions and the attack execution harness.

A :class:`VictimSession` wraps one deployed victim: a binary compiled under
the defense configuration being evaluated, plus the attacker's *reference*
build of the same source (their own copy of the software).  ``spawn``
starts a worker process; respawns reuse the same ASLR seed, modelling the
fork-server/worker-restart behaviour Blind ROP exploits ("some servers
restart crashed worker processes without reloading their binary code
images", Section 4).

:func:`run_attack` executes a single-shot attack: it arms the victim's
``attack_hook`` vulnerability with the attack function, runs the victim,
and classifies the outcome.  Multi-probe attacks (Blind ROP, PIROP) drive
:meth:`VictimSession.probe` in their own loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.attacks.monitor import DefenseMonitor
from repro.attacks.outcomes import AttackOutcome, AttackResult
from repro.attacks.surface import AttackerView, ReferenceKnowledge
from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import MachineError
from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.costs import get_costs
from repro.machine.loader import load_binary
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.workloads.victim import (
    ATTACK_ARG,
    SUCCESS_TAG,
    VictimLayoutInfo,
    build_victim,
    fire_once,
)

AttackFn = Callable[[AttackerView], None]


class AttackAborted(Exception):
    """Raised by attack code to give up cleanly (no leak, no consensus).

    The victim keeps running normally; the outcome becomes FAILED unless
    the corruption already performed reaches the goal anyway.
    """


def output_success(output, *, require_arg: bool = False) -> bool:
    """Did target_exec run under attacker control?"""
    for word in output:
        if word & 0xFFFF_0000 == SUCCESS_TAG:
            if not require_arg or word == (SUCCESS_TAG | ATTACK_ARG):
                return True
    return False


@dataclass
class ProbeResult:
    """Everything one probe produced, for callers that need more than the
    (status, result) pair — the reactive supervisor builds crash reports
    from the exception and the post-mortem CPU/process state."""

    # "success" | "clean" | "detected" | "crashed" | "diverged" |
    # "timed-out" (supervised probes under a per-probe deadline)
    status: str
    result: Optional[ExecutionResult]
    exception: Optional[MachineError]
    #: The (leader) machine state post-mortem — a CPU for single-variant
    #: probes, the leader's MachineState for N-variant lockstep probes.
    cpu: object
    process: object
    #: True when a per-probe deadline classified this probe as a hang
    #: (:class:`~repro.reliability.supervisor.SupervisedSession` sets it;
    #: plain sessions never do).
    timed_out: bool = False


class VictimSession:
    """One deployed victim + the attacker's reference knowledge."""

    def __init__(
        self,
        config: R2CConfig,
        *,
        module: Optional[Module] = None,
        build_seed: Optional[int] = None,
        load_seed: int = 0xC0FFEE,
        execute_only: bool = True,
        detection_budget: int = 3,
        layout_info: Optional[VictimLayoutInfo] = None,
        rerandomize_on_restart: bool = False,
        shadow_stack: bool = False,
        backend: str = "reference",
        variants: int = 1,
        sync_every: int = 256,
        instruction_budget: int = 5_000_000,
    ):
        if build_seed is not None:
            config = config.replace(seed=build_seed)
        self.config = config
        self.module = module if module is not None else build_victim()
        self.layout = layout_info if layout_info is not None else VictimLayoutInfo()
        self.load_seed = load_seed
        self.execute_only = execute_only
        # Section 7.3's proposed mitigation for the residual brute-force
        # surface: re-randomize at (re)load time, so no two probes see the
        # same layout.
        self.rerandomize_on_restart = rerandomize_on_restart
        self.shadow_stack = shadow_stack
        self.backend = backend
        if variants < 1:
            raise ValueError("a session needs at least one variant")
        #: N-variant mode (Section 7.3): every probe deploys ``variants``
        #: differently-diversified builds in batched lockstep and adds
        #: "diverged" to the probe statuses.
        self.variants = variants
        self.sync_every = sync_every
        #: Per-probe instruction ceiling — the supervised session tightens
        #: it into a virtual-clock probe deadline.
        self.instruction_budget = instruction_budget
        self._spawn_count = 0
        self.binary = compile_module(self.module, config)
        # Follower builds roll different diversification dice (same seed
        # spacing as the MVEE), leaving the leader binary — and therefore
        # every single-variant code path — bit-identical to before.
        self.variant_binaries = [self.binary] + [
            compile_module(self.module, config.replace(seed=config.seed + 1000 * index))
            for index in range(1, variants)
        ]
        # The attacker's own copy: identical software, independently built.
        # Without diversification the builds are bit-identical (the
        # monoculture); with diversification the attacker's copy rolled
        # different dice.
        reference_config = (
            config.replace(seed=config.seed + 0x5EED) if config.any_diversification else config
        )
        self.reference = ReferenceKnowledge(compile_module(self.module, reference_config))
        self.monitor = DefenseMonitor(detection_budget=detection_budget)

    # -- process management ------------------------------------------------------

    def spawn(self) -> Tuple[object, CPU]:
        """Start a worker.

        Default: same image, same ASLR — a forked worker restarting
        "without reloading their binary code images" (Section 4).  With
        ``rerandomize_on_restart`` every spawn re-randomizes the layout
        (the Section 7.3 mitigation), which breaks cross-probe inference.
        """
        seed = self.load_seed
        if self.rerandomize_on_restart:
            seed += self._spawn_count
        self._spawn_count += 1
        process = load_binary(self.binary, seed=seed, execute_only=self.execute_only)
        cpu = CPU(
            process,
            get_costs("epyc-rome"),
            instruction_budget=self.instruction_budget,
            shadow_stack=self.shadow_stack,
            backend=self.backend,
        )
        return process, cpu

    def probe(
        self, hook: AttackFn, *, attacker_seed: int = 0
    ) -> Tuple[str, Optional[ExecutionResult]]:
        """One attack probe: spawn, arm the hook, run to completion.

        Returns (status, result): status is "success", "clean" (ran to
        exit without reaching the goal), "detected", or "crashed".
        """
        probe = self.probe_ex(hook, attacker_seed=attacker_seed)
        return probe.status, probe.result

    def probe_ex(self, hook: AttackFn, *, attacker_seed: int = 0) -> ProbeResult:
        """Like :meth:`probe`, returning the full :class:`ProbeResult`
        (exception + post-mortem CPU/process for crash triage)."""
        if self.variants > 1:
            return self._probe_lockstep(hook, attacker_seed=attacker_seed)
        process, cpu = self.spawn()

        def service(proc, running_cpu):
            view = AttackerView(
                proc,
                running_cpu,
                self.reference,
                rng=DiversityRng(attacker_seed).child("attacker"),
            )
            try:
                hook(view)
            except AttackAborted:
                pass  # the attacker gave up; the victim continues untouched

        process.register_service("attack_hook", fire_once(service))
        try:
            result = cpu.run()
        except MachineError as exc:
            status = self.monitor.classify(exc)
            # Payload-then-crash still counts: the attacker's code ran.
            if output_success(process.output):
                status = "success"
            return ProbeResult(status, None, exc, cpu, process)
        status = "success" if output_success(result.output) else "clean"
        return ProbeResult(status, result, None, cpu, process)

    def _probe_lockstep(self, hook: AttackFn, *, attacker_seed: int = 0) -> ProbeResult:
        """N-variant probe: deploy every variant binary under one layout
        seed, attack the leader (writes recorded), replay into followers,
        and step the group in batched lockstep (Section 7.3).

        Adds "diverged" to the probe statuses: the lockstep cross-check
        caught the variants disagreeing — a detection the Table 3 tallies
        and the reactive supervisor can act on.
        """
        # Imported here: defenses.lockstep/mvee import this module.
        from repro.defenses.lockstep import LockstepGroup, MveeOutcome
        from repro.defenses.mvee import _RecordingView

        seed = self.load_seed
        if self.rerandomize_on_restart:
            seed += self._spawn_count
        self._spawn_count += 1
        write_log = []
        leader_fired = [False]
        processes = []
        for index, binary in enumerate(self.variant_binaries):
            process = load_binary(binary, seed=seed, execute_only=self.execute_only)
            if index == 0:

                def leader_service(proc, running_cpu):
                    view = _RecordingView(
                        proc,
                        running_cpu,
                        self.reference,
                        rng=DiversityRng(attacker_seed).child("attacker"),
                    )
                    try:
                        hook(view)
                    except AttackAborted:
                        pass
                    write_log.extend(view.write_log)
                    leader_fired[0] = True

                process.register_service("attack_hook", fire_once(leader_service))
            else:

                def follower_service(proc, running_cpu):
                    for address, data in write_log:
                        try:
                            proc.memory.write(address, data)
                        except MachineError:
                            pass  # landed in an unmapped/protected spot here

                process.register_service("attack_hook", fire_once(follower_service))
            processes.append(process)

        group = LockstepGroup(
            processes,
            backend=self.backend,
            sync_every=self.sync_every,
            instruction_budget=self.instruction_budget,
            shadow_stack=self.shadow_stack,
            monitor=self.monitor,
            compare_state=False,
        )
        group.run_variant_until(0, lambda variant: leader_fired[0])
        lockstep = group.run()
        leader = group.variants[0]
        if any(variant.status == "detected" for variant in group.variants):
            status = "detected"
        elif all(output_success(variant.output) for variant in group.variants):
            status = "success"
        elif lockstep.outcome is MveeOutcome.DIVERGED:
            status = "diverged"
        elif leader.status == "crashed":
            status = "crashed"
        else:
            status = "clean"
        return ProbeResult(
            status,
            leader.result,
            leader.error,
            leader.state,
            leader.process,
        )


def run_attack(
    session: VictimSession,
    attack_fn: AttackFn,
    name: str,
    *,
    attacker_seed: int = 0,
) -> AttackResult:
    """Run a single-shot attack and classify its outcome."""
    result = AttackResult(attack=name, outcome=AttackOutcome.FAILED, probes=1)
    status, _ = session.probe(attack_fn, attacker_seed=attacker_seed)
    result.detections = session.monitor.detections
    result.crashes = session.monitor.crashes
    if status == "success":
        result.outcome = AttackOutcome.SUCCESS
    elif status == "detected":
        result.outcome = AttackOutcome.DETECTED
    elif status == "diverged":
        result.outcome = AttackOutcome.DIVERGED
    elif status == "crashed":
        result.outcome = AttackOutcome.CRASHED
    else:
        result.outcome = AttackOutcome.FAILED
    return result
