"""Position-Independent code Reuse — partial pointer corruption
(Section 7.2.5, following Goktas et al.).

PIROP needs *no* information leak: ASLR slides regions by whole pages, so
the low 12 bits of every code address are build constants the attacker
read off their own copy.  Overwriting only the low two bytes of a return
address retargets it within the text segment, with a 4-bit guess for the
page nibble above the ASLR-invariant bits (16 restart probes).

Against the monoculture baseline this succeeds.  R2C impedes PIROP on
three independent axes, all exercised here:

* the return address's *location* in the frame is no longer a build
  constant (BTRA pre/post offsets + slot shuffling), so the attacker must
  spray the partial overwrite across every candidate slot — "a PIROP
  attack needs to corrupt all return addresses";
* function shuffling + prolog traps change the low-bit offsets of the
  payload, so the reference's low 16 bits land in diversified code —
  usually a booby trap (detection) or an instruction-boundary fault;
* corrupted BTRAs that the attacker sprays are themselves harmless, but
  any probe that detonates a trap counts against the detection budget.
"""

from __future__ import annotations

from repro.attacks.outcomes import AttackOutcome, AttackResult
from repro.attacks.scenario import VictimSession
from repro.attacks.surface import AttackerView
from repro.attacks.clustering import classify_word

WORD = 8


def pirop_attack(
    session: VictimSession,
    *,
    attacker_seed: int = 0,
    spray_window_words: int = 48,
    max_probes: int = 64,
) -> AttackResult:
    layout = session.layout
    result = AttackResult(attack="pirop", outcome=AttackOutcome.FAILED)
    reference = session.reference

    # Build-constant knowledge from the attacker's own copy: the payload's
    # ASLR-invariant low 12 bits, and the expected RA slot offset.
    target_offset = reference.function_offset(layout.target_function)
    frames = reference.stack_map_from_hook(layout.hook_chain)
    expected_ra = frames[0].ra_slot

    for nibble in range(16):
        if result.probes >= max_probes:
            break
        if session.monitor.tripped:
            result.outcome = AttackOutcome.DETECTED
            result.note("detection budget tripped while spraying")
            break
        low16 = ((target_offset & 0xFFF) | (nibble << 12)) & 0xFFFF

        def spray_hook(view: AttackerView, low=low16) -> None:
            # Corrupt the expected slot and, because diversified victims
            # move the RA, every code-pointer-looking word in a window
            # around it ("corrupt all return addresses").
            view.write_low_bytes(view.rsp + expected_ra, low, 2)
            for addr, word in view.leak_stack(spray_window_words * WORD):
                if classify_word(word) == "image":
                    view.write_low_bytes(addr, low, 2)

        status, _ = session.probe(spray_hook, attacker_seed=attacker_seed)
        result.probes += 1
        if status == "success":
            result.outcome = AttackOutcome.SUCCESS
            result.note(f"page nibble {nibble:#x} hit the payload")
            break

    result.detections = session.monitor.detections
    result.crashes = session.monitor.crashes
    if result.outcome is AttackOutcome.FAILED and session.monitor.tripped:
        result.outcome = AttackOutcome.DETECTED
    return result
