"""AOCR's statistical pointer analysis (Sections 2.3 and 4.2).

The AOCR paper observes that, on x86-64, the values of pointers leaked
from the stack fall into clusters by value range, and that an attacker who
cannot locate a *specific* heap pointer (thanks to stack-slot
randomization) can still pick *any* member of the heap cluster.  Two
classifiers are provided:

* :func:`cluster_by_gaps` — the pure statistical method: sort the leaked
  words and split wherever consecutive values differ by more than a gap
  threshold.  Used to demonstrate that BTDPs land in the same cluster as
  benign heap pointers (they share the value range by construction).
* :func:`cluster_pointers` — the practical attacker's classifier: assign
  words to the OS's well-known region bands (image, heap, stack).  The
  bands are public platform knowledge; ASLR randomizes only the offset
  within a band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.machine.process import HEAP_ANCHOR, STACK_ANCHOR, TEXT_ANCHOR
from repro.machine.memory import PAGE_SIZE
from repro.machine.process import ASLR_SLIDE_PAGES

# Region bands: anchor .. anchor + max slide + generous region size.
_BAND_SLACK = ASLR_SLIDE_PAGES * PAGE_SIZE + (1 << 32)
IMAGE_BAND = (TEXT_ANCHOR, TEXT_ANCHOR + _BAND_SLACK)
HEAP_BAND = (HEAP_ANCHOR, HEAP_ANCHOR + _BAND_SLACK)
STACK_BAND = (STACK_ANCHOR, STACK_ANCHOR + _BAND_SLACK)


@dataclass
class PointerClusters:
    """Leaked words bucketed by apparent region, with source addresses."""

    image: List[Tuple[int, int]] = field(default_factory=list)  # (addr, value)
    heap: List[Tuple[int, int]] = field(default_factory=list)
    stack: List[Tuple[int, int]] = field(default_factory=list)
    other: List[Tuple[int, int]] = field(default_factory=list)

    def heap_values(self) -> List[int]:
        return [value for _, value in self.heap]

    def image_values(self) -> List[int]:
        return [value for _, value in self.image]


def classify_word(value: int) -> str:
    if IMAGE_BAND[0] <= value < IMAGE_BAND[1]:
        return "image"
    if HEAP_BAND[0] <= value < HEAP_BAND[1]:
        return "heap"
    if STACK_BAND[0] <= value < STACK_BAND[1]:
        return "stack"
    return "other"


def cluster_pointers(words: Sequence[Tuple[int, int]]) -> PointerClusters:
    """Bucket leaked ``(address, value)`` pairs by region band."""
    clusters = PointerClusters()
    for addr, value in words:
        getattr(clusters, classify_word(value)).append((addr, value))
    return clusters


def cluster_by_gaps(values: Sequence[int], gap: int = 1 << 32) -> List[List[int]]:
    """Pure value-range clustering: split sorted values at large gaps.

    This is the AOCR paper's "statistical analysis of two pages of stack
    values"; it needs no platform knowledge at all.  Returns clusters in
    ascending value order.
    """
    if not values:
        return []
    arr = np.sort(np.asarray(list(values), dtype=np.uint64))
    diffs = np.diff(arr)
    split_points = np.nonzero(diffs > np.uint64(gap))[0] + 1
    return [chunk.tolist() for chunk in np.split(arr, split_points)]
