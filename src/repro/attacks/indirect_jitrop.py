"""Indirect JIT-ROP: infer the code layout from leaked code pointers
(Section 2.1: "inferring gadget locations from code pointers found on the
stack, which is commonly referred to as indirect information disclosure").

The attack never reads code.  It harvests every image-band word from the
leaked stack window and *votes*: for each (leaked word, known call-site
return offset) pair from the attacker's reference build, it hypothesizes a
text base.  On a monoculture victim the true base collects one vote per
genuine return address and wins decisively; the attacker then relocates
the payload address and overwrites the innermost supporting word.

R2C breaks every leg of this at once: most harvested words are BTRAs
(bogus votes), NOP insertion shifts the victim's return offsets off the
reference's, and function shuffling moves the payload.  With no consensus
the attacker either gives up or (aggressive mode) gambles on a harvested
pointer — which is a booby trap with probability R/(R+1) (Section 7.2.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.attacks.clustering import cluster_pointers
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView

#: Minimum agreeing (word, offset) pairs to accept a base hypothesis.
VOTE_THRESHOLD = 3


def indirect_jitrop_attack(
    session: VictimSession, *, attacker_seed: int = 0, aggressive: bool = True
) -> AttackResult:
    layout = session.layout

    def hook(view: AttackerView) -> None:
        reference = view.reference
        leak = view.leak_stack()
        clusters = cluster_pointers(leak)
        if not clusters.image:
            raise AttackAborted("no code pointers on the stack")

        ret_offsets = reference.ret_offsets()
        votes: Counter = Counter()
        supporters: Dict[int, List[Tuple[int, int]]] = {}
        for addr, value in clusters.image:
            for offset in ret_offsets:
                base = value - offset
                if base <= 0:
                    continue
                votes[base] += 1
                supporters.setdefault(base, []).append((addr, value))

        base, count = votes.most_common(1)[0] if votes else (None, 0)
        if count >= VOTE_THRESHOLD and base is not None:
            target = base + reference.function_offset(layout.target_function)
            ra_addr = min(addr for addr, _ in supporters[base])
            view.write_word(ra_addr, target)
            return

        if not aggressive:
            raise AttackAborted("no text-base consensus from leaked pointers")
        # Desperation: treat a harvested code pointer as a return address
        # into the function containing the payload in the reference layout
        # and retarget relative to it.  Under R2C this picks a BTRA with
        # probability R/(R+1).
        addr, value = view.rng.choice(clusters.image)
        guess_site = reference.ret_offsets()[0]
        target = (value - guess_site) + reference.function_offset(layout.target_function)
        view.write_word(addr, target)

    return run_attack(session, hook, "indirect-jitrop", attacker_seed=attacker_seed)
