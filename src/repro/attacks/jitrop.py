"""Direct JIT-ROP: disclose the code layout at run time (Section 2.1).

The attack follows a code pointer from the stack into the text section,
reads/disassembles that page, and — exactly like the original JIT-ROP —
*recursively* follows the direct call/jump targets it finds in the
disclosed code to map out more pages, until it locates its payload.  Then
it redirects the leaked return address into the payload.

This is the attack execute-only memory exists to stop: against an R2C (or
any XoM) victim the very first code read faults.  Against a victim mapped
readable (``execute_only=False``) it succeeds *even under full code-layout
randomization* — the JIT-ROP observation that randomization without
leakage resilience is ineffective.
"""

from __future__ import annotations

from repro.attacks.clustering import classify_word, cluster_pointers
from repro.attacks.scenario import AttackAborted, AttackResult, VictimSession, run_attack
from repro.attacks.surface import AttackerView
from repro.machine.isa import Imm, Op
from repro.machine.memory import PAGE_SIZE
from repro.workloads.victim import SUCCESS_TAG

_BRANCH_OPS = {Op.CALL, Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE}


def jitrop_attack(session: VictimSession, *, attacker_seed: int = 0) -> AttackResult:
    def hook(view: AttackerView) -> None:
        leak = view.leak_stack()
        clusters = cluster_pointers(leak)
        if not clusters.image:
            raise AttackAborted("no code pointer on the stack")
        # Recursive page harvesting: disclose the pages the leaked image
        # pointers land in (some are data-section pointers — same value
        # band — whose pages simply yield no code), mine the disclosed
        # code for direct branch targets, repeat.
        pending = [value & ~(PAGE_SIZE - 1) for _, value in clusters.image]
        visited = set()
        payload_addr = None
        while pending and payload_addr is None and len(visited) < 64:
            page = pending.pop()
            if page in visited:
                continue
            visited.add(page)
            for addr, instr in view.disassemble(page, PAGE_SIZE):
                for operand in (instr.a, instr.b):
                    if isinstance(operand, Imm):
                        if operand.value == SUCCESS_TAG:
                            payload_addr = addr
                        elif (
                            instr.op in _BRANCH_OPS
                            and classify_word(operand.value) == "image"
                        ):
                            target_page = operand.value & ~(PAGE_SIZE - 1)
                            if target_page not in visited:
                                pending.append(target_page)
        if payload_addr is None:
            raise AttackAborted("payload signature not found in disclosed code")
        # Spray the payload address over every code-pointer-looking stack
        # slot: one of them is the live return address (the others are
        # dead spills — or, under R2C, BTRAs that nothing ever returns to).
        for slot_addr, _ in clusters.image:
            view.write_word(slot_addr, payload_addr)

    return run_attack(session, hook, "jitrop", attacker_seed=attacker_seed)
