"""Defense-side monitor: classifies faults as detections or plain crashes.

The reactive component of R2C (Section 4.2: "Dereferencing a BTDP causes an
immediate fault, giving defenders a way to respond to an ongoing attack")
is modelled here: :class:`GuardPageFault` and :class:`BoobyTrapTriggered`
are *detections* — a monitoring system would alert, ban the source, or
re-randomize — while ordinary memory faults are crashes a restarting
worker pool would paper over (the Blind ROP observation of Section 4.1).

``detection_budget`` models the defender's response threshold: once an
attack campaign has caused that many detections, the campaign is treated
as stopped (outcome DETECTED) even if the attacker had probes left.
"""

from __future__ import annotations

from repro.errors import (
    BoobyTrapTriggered,
    GuardPageFault,
    MachineError,
    MemoryFault,
    ShadowStackViolation,
)


class DefenseMonitor:
    """Counts and classifies defense-relevant events for one campaign."""

    def __init__(self, detection_budget: int = 3):
        self.detection_budget = detection_budget
        self.detections = 0
        self.crashes = 0
        self.btdp_hits = 0
        self.booby_trap_hits = 0
        self.shadow_stack_hits = 0
        self.divergences = 0

    def note_divergence(self) -> None:
        """Record an N-variant lockstep divergence (Section 7.3's MVEE
        signal).  Divergence is a detection: variants disagreeing on
        observable behaviour means an input perturbed diversified state."""
        self.divergences += 1
        self.detections += 1

    def classify(self, exc: MachineError) -> str:
        """Record ``exc``; return "detected" or "crashed"."""
        if isinstance(exc, GuardPageFault):
            self.detections += 1
            self.btdp_hits += 1
            return "detected"
        if isinstance(exc, BoobyTrapTriggered):
            self.detections += 1
            self.booby_trap_hits += 1
            return "detected"
        if isinstance(exc, ShadowStackViolation):
            self.detections += 1
            self.shadow_stack_hits += 1
            return "detected"
        if isinstance(exc, (MemoryFault, MachineError)):
            self.crashes += 1
            return "crashed"
        raise exc  # not a machine-level event; programming error

    @property
    def tripped(self) -> bool:
        """True once the defender's detection threshold has been reached."""
        return self.detections >= self.detection_budget
