"""Zero-dependency structured tracing: spans, a collector, Chrome export.

A *span* covers one named phase of work (``compile/module``,
``engine/run``, ``compile/pass:btra``).  Spans nest: opening a span
inside another records the parent-child edge, so a finished trace is a
forest whose shape documents where time went.  The shape — names,
parentage, sibling order — is deterministic for a given workload and
config; only timestamps and durations vary run to run, which is exactly
what the golden-trace tests pin (and exclude).

Design constraints, in order:

1. **Disabled means free.**  ``span(...)`` costs one module-flag check
   and returns a shared no-op context manager when tracing is off.  The
   instrumented call sites are phase-granular (per compile, per pass,
   per run) — never per instruction — so even enabled tracing is cheap.
2. **Thread-safe.**  Each thread keeps its own open-span stack
   (parentage never crosses threads); the finished-span list is guarded
   by a lock.
3. **Zero dependencies.**  Stdlib only, like the rest of the machine.

Export formats:

* :meth:`TraceCollector.to_json` — the native format: one record per
  span including ``span_id``/``parent_id`` so the tree round-trips.
  :meth:`TraceCollector.from_json` drops unknown keys, matching
  ``RunRecord.from_json`` forward-compatibility semantics.
* :meth:`TraceCollector.chrome_trace` — Chrome ``trace_event`` JSON
  (complete ``"ph": "X"`` events); load the file in ``chrome://tracing``
  or Perfetto.

Worker processes: the experiment engine enables tracing in its pool
workers when the parent has it enabled and ships each request's
captured spans back inside :class:`~repro.eval.engine.RunRecord`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceCollector",
    "enable_tracing",
    "get_collector",
    "recent_span_names",
    "span",
    "span_tree",
    "trace_capture",
    "tracing_enabled",
]

#: Completed-span names retained for crash reports (reliability layer).
RECENT_SPAN_LIMIT = 32


@dataclass
class Span:
    """One finished span.  Timestamps are microseconds since the
    collector's epoch; ``span_id`` order is *start* order."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_us: float
    duration_us: float
    thread: int
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "thread": self.thread,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        # Forward compatibility: traces written by a newer schema may
        # carry fields this build does not know; drop them instead of
        # raising (the RunRecord.from_json convention).
        known = {
            "span_id",
            "parent_id",
            "name",
            "category",
            "start_us",
            "duration_us",
            "thread",
            "args",
        }
        return cls(**{key: value for key, value in data.items() if key in known})


class _OpenSpan:
    """Mutable handle for a span in flight (yielded by ``span(...)``)."""

    __slots__ = ("span_id", "parent_id", "name", "category", "start", "args")

    def __init__(self, span_id, parent_id, name, category, start, args):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.args = args

    def set(self, **args) -> None:
        """Attach args discovered mid-span (e.g. a cache-hit verdict)."""
        self.args.update(args)


class TraceCollector:
    """Thread-safe in-process span collector.

    ``spans`` holds finished spans in *completion* order (children
    before parents); :func:`span_tree` rebuilds start-ordered trees.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._next_thread = 0
        self._thread_ids: Dict[int, int] = {}
        self.spans: List[Span] = []
        self.recent: "deque[str]" = deque(maxlen=RECENT_SPAN_LIMIT)

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _thread_id(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._thread_ids.get(ident)
            if tid is None:
                tid = self._thread_ids[ident] = self._next_thread
                self._next_thread += 1
        return tid

    @contextmanager
    def span(self, name: str, category: str = "repro", **args):
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        handle = _OpenSpan(
            span_id, parent_id, name, category, self._clock(), dict(args)
        )
        stack.append(handle)
        try:
            yield handle
        finally:
            stack.pop()
            end = self._clock()
            finished = Span(
                span_id=handle.span_id,
                parent_id=handle.parent_id,
                name=handle.name,
                category=handle.category,
                start_us=(handle.start - self._epoch) * 1e6,
                duration_us=(end - handle.start) * 1e6,
                thread=self._thread_id(),
                args=handle.args,
            )
            with self._lock:
                self.spans.append(finished)
                self.recent.append(finished.name)

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.recent.clear()
            self._next_id = 0

    def recent_names(self, count: int = 8) -> Tuple[str, ...]:
        """The last ``count`` finished span names, oldest first.

        Names only — no timestamps — so embedding them (crash reports)
        stays byte-identical across execution backends.
        """
        with self._lock:
            names = list(self.recent)
        return tuple(names[-count:])

    # -- export ---------------------------------------------------------------

    def to_json(self, spans: Optional[Iterable[Span]] = None) -> str:
        """Native format: ``{"spans": [...]}`` with the tree edges intact."""
        chosen = self.spans if spans is None else list(spans)
        return json.dumps(
            {"schema": "repro-trace/v1", "spans": [s.to_dict() for s in chosen]},
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> List[Span]:
        """Load spans back from :meth:`to_json` output (unknown keys dropped)."""
        data = json.loads(text)
        return [Span.from_dict(item) for item in data.get("spans", ())]

    def chrome_trace(self, spans: Optional[Iterable[Span]] = None) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON-compatible dict (complete events)."""
        chosen = self.spans if spans is None else list(spans)
        pid = os.getpid()
        events = [
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": round(s.start_us, 3),
                "dur": round(s.duration_us, 3),
                "pid": pid,
                "tid": s.thread,
                "args": s.args,
            }
            for s in sorted(chosen, key=lambda s: s.span_id)
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        """Write the Chrome trace to ``path``; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, sort_keys=True)
        return len(trace["traceEvents"])


def span_tree(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Rebuild the span forest: ``[{"name", "children": [...]}, ...]``.

    Children are ordered by start (``span_id``); durations and args are
    deliberately omitted — this is the *shape* of a trace, the part the
    golden tests pin.
    """
    ordered = sorted(spans, key=lambda s: s.span_id)
    nodes = {s.span_id: {"name": s.name, "children": []} for s in ordered}
    roots: List[Dict[str, object]] = []
    for s in ordered:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


# ---------------------------------------------------------------------------
# Module-level switchboard: one process-wide collector, one enabled flag.
# ---------------------------------------------------------------------------

_COLLECTOR = TraceCollector()
_ENABLED = False


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


def get_collector() -> TraceCollector:
    return _COLLECTOR


def tracing_enabled() -> bool:
    return _ENABLED


def enable_tracing(on: bool = True) -> bool:
    """Turn tracing on/off process-wide; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    return previous


def span(name: str, category: str = "repro", **args):
    """Open a span on the process collector (no-op while disabled)."""
    if not _ENABLED:
        return _NULL_SPAN
    return _COLLECTOR.span(name, category, **args)


def recent_span_names(count: int = 8) -> Tuple[str, ...]:
    """Names of the most recently finished spans (for crash reports)."""
    if not _ENABLED and not _COLLECTOR.spans:
        return ()
    return _COLLECTOR.recent_names(count)


class _Capture:
    """A window over the collector: spans finished since ``mark``."""

    def __init__(self, collector: TraceCollector, mark: int):
        self._collector = collector
        self._mark = mark
        self._end: Optional[int] = None

    def _finish(self) -> None:
        self._end = len(self._collector.spans)

    def spans(self) -> List[Span]:
        end = self._end if self._end is not None else len(self._collector.spans)
        return self._collector.spans[self._mark : end]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [s.to_dict() for s in self.spans()]

    def tree(self) -> List[Dict[str, object]]:
        return span_tree(self.spans())


@contextmanager
def trace_capture():
    """Capture the spans completed inside this block.

    Yields a :class:`_Capture`; when tracing is disabled the capture is
    simply empty.  Used by the engine to ship per-request spans back
    through :class:`~repro.eval.engine.RunRecord`.
    """
    capture = _Capture(_COLLECTOR, len(_COLLECTOR.spans))
    try:
        yield capture
    finally:
        capture._finish()
