"""The benchmark regression harness: ``python -m repro bench``.

Runs a (workload × config) grid through the experiment engine and emits
one schema-versioned JSON artifact per invocation — the repo's benchmark
trajectory.  Each cell records both *simulated* metrics (cycles,
instructions, i-cache behaviour — deterministic, backend-invariant) and
*host* metrics (compile/run wall seconds — environmental), plus the
engine's :class:`~repro.eval.engine.FailureSummary` so a regression in
reliability is as visible as a regression in speed.

Artifact schema (``repro-bench/v1``)::

    {
      "schema": "repro-bench/v1",
      "backend": "reference",
      "machine": "epyc-rome",
      "quick": true,
      "jobs": 1,
      "cells": [
        {"workload": "xz", "config": "full-avx", "outcome": "ok",
         "cycles": ..., "instructions": ..., "icache_hits": ...,
         "icache_misses": ..., "max_rss": ...,
         "compile_seconds": ..., "run_seconds": ...},
        ...
      ],
      "engine": {"executed": ..., "compiles": ...,
                 "compile_seconds": ..., "run_seconds": ...,
                 "failures": ..., "by_outcome": {...}}
    }

:func:`validate` checks an artifact against this schema (CI gates on
it); :meth:`BenchReport.from_json` drops unknown keys, matching the
``RunRecord.from_json`` forward-compatibility semantics.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional

from repro.core.config import R2CConfig
from repro.eval.engine import ExperimentEngine, RequestBatch, RunRequest
from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

__all__ = [
    "BENCH_SCHEMA",
    "BenchCell",
    "BenchReport",
    "run_bench",
    "run_lockstep_bench",
    "validate",
]

BENCH_SCHEMA = "repro-bench/v1"

#: The diversification configs benchmarked per workload, by cell name.
BENCH_CONFIGS = {
    "baseline": lambda: R2CConfig.baseline(),
    "full-avx": lambda: R2CConfig.full(seed=11, btra_mode="avx"),
    "full-push": lambda: R2CConfig.full(seed=12, btra_mode="push"),
}

#: Reduced workload set for ``--quick`` / CI smoke legs.
QUICK_WORKLOADS = ("xz", "mcf", "lbm")


@dataclass
class BenchCell:
    """One (workload × config) measurement."""

    workload: str
    config: str
    outcome: str
    cycles: float
    instructions: int
    icache_hits: int
    icache_misses: int
    max_rss: int
    compile_seconds: float
    run_seconds: float

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchCell":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class BenchReport:
    """One bench invocation's artifact."""

    backend: str
    machine: str
    quick: bool
    jobs: int
    cells: List[BenchCell] = field(default_factory=list)
    engine: Dict[str, object] = field(default_factory=dict)
    #: N-variant lockstep leg (``--lockstep N``): amortized-decode cost of
    #: running N diversified-ASLR variants vs one (empty when not run).
    lockstep: Dict[str, object] = field(default_factory=dict)
    #: Progressive-lowering statistics for the run (``jit`` backend):
    #: blocks compiled, superinstructions fused, deopt count, code-cache
    #: hits — the delta of :data:`repro.machine.jit.JIT_STATS` across the
    #: grid.  Empty for backends that never lower.
    tiers: Dict[str, int] = field(default_factory=dict)
    #: Serving-axis leg (``python -m repro fleet``): p50/p99 latency,
    #: sustained RPS, shed/retry/swap counts, and the attacker window —
    #: the :meth:`repro.fleet.loadgen.FleetReport.serving` section.
    #: Empty when the artifact came from a non-fleet invocation.
    serving: Dict[str, object] = field(default_factory=dict)

    def cell(self, workload: str, config: str) -> BenchCell:
        for cell in self.cells:
            if cell.workload == workload and cell.config == config:
                return cell
        raise KeyError(f"no bench cell ({workload!r}, {config!r})")

    @property
    def ok(self) -> bool:
        return all(cell.outcome == "ok" for cell in self.cells)

    def to_json(self) -> str:
        data = {
            "schema": BENCH_SCHEMA,
            "backend": self.backend,
            "machine": self.machine,
            "quick": self.quick,
            "jobs": self.jobs,
            "cells": [asdict(cell) for cell in self.cells],
            "engine": dict(self.engine),
        }
        if self.lockstep:
            data["lockstep"] = dict(self.lockstep)
        if self.tiers:
            data["tiers"] = dict(self.tiers)
        if self.serving:
            data["serving"] = dict(self.serving)
        return json.dumps(data, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        """Load an artifact; unknown keys dropped at both levels."""
        data = json.loads(text)
        known = {f.name for f in fields(cls)}
        kept = {key: value for key, value in data.items() if key in known}
        kept["cells"] = [BenchCell.from_dict(cell) for cell in data.get("cells", ())]
        return cls(**kept)


#: Per-cell keys every ``repro-bench/v1`` artifact must carry.
_CELL_REQUIRED = (
    "workload",
    "config",
    "outcome",
    "cycles",
    "instructions",
    "icache_hits",
    "icache_misses",
    "compile_seconds",
    "run_seconds",
)


def validate(data: Dict[str, object]) -> List[str]:
    """Check a parsed artifact against ``repro-bench/v1``.

    Returns a list of problems — empty means schema-valid.  CI runs the
    smoke bench on both backends and gates on this.
    """
    problems: List[str] = []
    schema = data.get("schema")
    if schema != BENCH_SCHEMA:
        problems.append(f"schema is {schema!r}, expected {BENCH_SCHEMA!r}")
    for key in ("backend", "machine", "quick", "jobs", "cells", "engine"):
        if key not in data:
            problems.append(f"missing top-level key {key!r}")
    cells = data.get("cells")
    if not isinstance(cells, list) or not cells:
        problems.append("cells must be a non-empty list")
        cells = []
    for position, cell in enumerate(cells):
        if not isinstance(cell, dict):
            problems.append(f"cells[{position}] is not an object")
            continue
        for key in _CELL_REQUIRED:
            if key not in cell:
                problems.append(f"cells[{position}] missing {key!r}")
    return problems


def run_lockstep_bench(
    *,
    variants: int = 4,
    backend: str = "fast",
    machine: str = "epyc-rome",
    requests: int = 2,
    sync_every: int = 4096,
    load_seed: int = 1,
    repeats: int = 5,
) -> Dict[str, object]:
    """Measure the N-variant lockstep leg on the webserver workload.

    Two measurements, each paying its own fixed costs (fresh build seed
    per repetition, so neither leg hits the other's compile/decode
    caches):

    * **single** — compile + load + decode + bind + run one variant,
      start to finish;
    * **lockstep** — compile + decode + bind + load *once*, then fork N
      replicas under one layout (the corruption-detection deployment of
      :class:`~repro.defenses.lockstep.LockstepGroup`, with the per-sync
      register/rip cross-check armed) and run them in one batched
      scheduling loop.  Replicas 2..N are ``Process.clone()`` forks and
      receive a clone of the leader's bound program
      (``Backend.clone_program``), so the fixed
      compile + decode + bind + load pipeline runs exactly once.

    The headline number is ``cost_ratio`` (lockstep wall / single wall),
    taken over the best of ``repeats`` repetitions per leg (host wall
    time is environmental; the minimum is the least-noisy estimator, and
    the collector is paused while a leg is on the clock).  Both legs use
    the same ``heap_size``, so the comparison is apples-to-apples.
    Because one decode+bind serves all N states, N variants cost far
    less than N independent pipelines — the scaling story the
    program/state split buys.  Simulated work (``cycles``,
    ``instructions``) is also recorded per leg; it scales ~linearly in N
    by construction.
    """
    import gc
    import time

    from repro.core.compiler import compile_module
    from repro.defenses.lockstep import LockstepGroup
    from repro.machine.backends import get_backend
    from repro.machine.costs import get_costs
    from repro.machine.cpu import ExecutionResult
    from repro.machine.loader import load_binary
    from repro.machine.state import MachineState
    from repro.workloads.webserver import build_webserver

    module = build_webserver(requests=requests)
    costs = get_costs(machine)
    backend_impl = get_backend(backend)
    # The webserver needs well under a megabyte of heap; the default 8 MiB
    # arena would make page bookkeeping (not the workload) the dominant
    # cost of every load and fork in both legs.
    heap_size = 2 * 1024 * 1024

    single_walls: List[float] = []
    lockstep_walls: List[float] = []
    single_result = ExecutionResult()
    lockstep_result = None
    total_instructions = total_cycles = 0
    gc_was_enabled = gc.isenabled()
    try:
        for rep in range(max(repeats, 1)):
            # -- single-variant leg (fresh compile + decode + load + run) --
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            binary = compile_module(module, R2CConfig.full(seed=0xA5 + 2 * rep))
            process = load_binary(binary, seed=load_seed, heap_size=heap_size)
            state = MachineState(process, costs)
            state.rip = process.entry_point
            state._halted = False
            program = backend_impl.prepare(state)
            single_result = ExecutionResult()
            backend_impl.execute(program, state, single_result)
            single_walls.append(time.perf_counter() - start)
            gc.enable()

            # -- N-replica lockstep leg (one compile+decode+bind+load) -----
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            binary = compile_module(module, R2CConfig.full(seed=0xB6 + 2 * rep))
            leader = load_binary(binary, seed=load_seed, heap_size=heap_size)
            processes = [leader] + [
                leader.clone() for _ in range(variants - 1)
            ]
            group = LockstepGroup(
                processes, costs=costs, backend=backend, sync_every=sync_every
            )
            lockstep_result = group.run()
            lockstep_walls.append(time.perf_counter() - start)
            gc.enable()
            total_instructions = sum(
                v.result.instructions for v in group.variants
            )
            total_cycles = sum(v.result.cycles for v in group.variants)
    finally:
        if gc_was_enabled:
            gc.enable()

    single_wall = min(single_walls)
    lockstep_wall = min(lockstep_walls)
    ratio = lockstep_wall / single_wall if single_wall else float("inf")
    return {
        "workload": "webserver",
        "requests": requests,
        "variants": variants,
        "backend": backend,
        "machine": machine,
        "sync_every": sync_every,
        "repeats": max(repeats, 1),
        "outcome": lockstep_result.outcome.value,
        "sync_points": lockstep_result.sync_points,
        "single": {
            "wall_seconds": round(single_wall, 4),
            "wall_seconds_all": [round(w, 4) for w in single_walls],
            "cycles": single_result.cycles,
            "instructions": single_result.instructions,
        },
        "lockstep": {
            "wall_seconds": round(lockstep_wall, 4),
            "wall_seconds_all": [round(w, 4) for w in lockstep_walls],
            "cycles": total_cycles,
            "instructions": total_instructions,
        },
        "cost_ratio": round(ratio, 3),
        "cost_per_added_variant": round(
            (lockstep_wall - single_wall) / max(variants - 1, 1), 4
        ),
    }


def run_bench(
    *,
    backend: str = "reference",
    machine: str = "epyc-rome",
    jobs: int = 1,
    quick: bool = False,
    workloads: Optional[List[str]] = None,
    load_seed: int = 1,
    engine: Optional[ExperimentEngine] = None,
) -> BenchReport:
    """Run the bench grid; returns the report (caller writes the artifact)."""
    if workloads is None:
        workloads = list(QUICK_WORKLOADS if quick else SPEC_BENCHMARKS)
    from repro.machine.jit import jit_stats_snapshot

    stats_before = jit_stats_snapshot()
    owns_engine = engine is None
    if owns_engine:
        engine = ExperimentEngine(jobs=jobs, backend=backend)
    try:
        batch = RequestBatch(engine)
        for workload in workloads:
            module = build_spec_benchmark(workload)
            for config_name, make_config in BENCH_CONFIGS.items():
                batch.add(
                    (workload, config_name),
                    RunRequest(
                        module=module,
                        config=make_config(),
                        machine=machine,
                        load_seed=load_seed,
                        label=f"bench/{config_name}/{workload}",
                    ),
                )
        results = batch.run()
        cells = []
        for workload in workloads:
            for config_name in BENCH_CONFIGS:
                record = results.record((workload, config_name))
                cells.append(
                    BenchCell(
                        workload=workload,
                        config=config_name,
                        outcome=record.outcome,
                        cycles=record.cycles,
                        instructions=record.instructions,
                        icache_hits=record.icache_hits,
                        icache_misses=record.icache_misses,
                        max_rss=record.max_rss,
                        compile_seconds=record.compile_seconds,
                        run_seconds=record.run_seconds,
                    )
                )
        summary = engine.summary()
        # Tier-lowering delta across the grid (non-zero only when the
        # jit backend actually lowered something; parallel workers lower
        # in their own processes, so with jobs > 1 this reflects the
        # coordinator only and the artifact records what it saw).
        stats_after = jit_stats_snapshot()
        tiers = {
            key: stats_after[key] - stats_before.get(key, 0)
            for key in stats_after
        }
        return BenchReport(
            backend=backend,
            machine=machine,
            quick=quick,
            jobs=engine.jobs,
            cells=cells,
            tiers=tiers if any(tiers.values()) else {},
            engine={
                "executed": summary.executed,
                "compiles": summary.compiles,
                "compile_seconds": round(summary.compile_seconds, 4),
                "run_seconds": round(summary.run_seconds, 4),
                "failures": summary.failures.failures,
                "by_outcome": dict(summary.failures.by_outcome),
            },
        )
    finally:
        if owns_engine:
            engine.close()
