"""Hot-path profiler: per-RIP / per-function cycle attribution.

:class:`CycleProfiler` rides the CPU's per-instruction trace hook
(``cpu.trace_fn``), which every execution backend invokes *before* each
instruction with identical streams.  It recomputes each instruction's
cycle cost exactly as the backends do — per-opcode base cost, i-cache
miss penalties replayed through a private shadow :class:`ICache` fed the
same access sequence, and the memory-operand surcharge — accumulated in
the same exact integer cycle units the backends fold
(:data:`repro.machine.costs.CYCLE_UNIT`), so the profile is
byte-identical across backends and its total equals
``ExecutionResult.cycles`` exactly: both sides sum the same integers and
divide once.

Call stacks are walked from control flow, not from stack memory: a
``CALL`` opens a frame, a ``RET`` closes one.  That is what makes the
stacks correct under R2C's camouflage — BTRA displaces return addresses
on the *stack*, but the executed instruction stream still brackets every
frame with CALL/RET.  Two deliberate resync rules absorb the remaining
diversification shapes:

* An intra-frame transfer into a different symbol (a CPH trampoline
  ``JMP``-ing to its target, fall-through past a function boundary)
  renames the current frame rather than pushing a bogus one.
* A ``RET`` that lands somewhere other than the symbol that called out
  (a detonating booby trap, a mid-unwind fault) re-anchors the top frame
  at the landing symbol.

Output shapes: a per-function table (:meth:`report`), per-RIP buckets
(:attr:`rip_cycles`), and Brendan-Gregg folded stacks
(:meth:`folded_stacks`) ready for ``flamegraph.pl`` or any flamegraph
viewer.  Exposed on the CLI as ``python -m repro profile <workload>``.

The profiler is strictly passive: it reads machine state and never
mutates it, so attaching one cannot change ``ExecutionResult``, faults,
or the final ``rip`` (a property test enforces this).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.machine.costs import CYCLE_UNIT
from repro.machine.icache import ICache
from repro.machine.isa import Mem, Op

__all__ = ["CycleProfiler"]

#: Frame label for instructions outside every known text symbol.
UNKNOWN_FUNCTION = "?"


class CycleProfiler:
    """Attach to a :class:`~repro.machine.cpu.CPU`, run, read the profile.

    Usage::

        cpu = CPU(process, costs, backend="fast")
        profiler = CycleProfiler(cpu)
        cpu.run()
        print(profiler.report())

    The constructor installs itself as ``cpu.trace_fn`` (chaining any
    hook already present — the debugger, a test spy — which keeps firing
    first); :meth:`detach` restores the previous hook.

    ``variant`` optionally names the machine state being profiled (e.g.
    ``"v1"`` in an N-variant lockstep group): it becomes the root frame
    of every folded stack, so N per-variant profiles concatenate into one
    flamegraph with a subtree per variant.  The default (``None``) leaves
    all keys exactly as before.
    """

    def __init__(self, cpu, *, variant: Optional[str] = None):
        self.cpu = cpu
        self.variant = variant
        self._prefix = f"{variant};" if variant else ""
        costs = cpu.costs
        self._op_units = costs.op_unit_costs
        self._mem_extra_units = costs.mem_operand_extra_units
        self._miss_penalty_units = costs.icache_miss_penalty_units
        # Shadow replay: fed the same access stream as the real i-cache
        # (the trace hook fires before the backend's own access), this
        # cache reproduces each instruction's hit/miss outcome exactly.
        self._shadow = ICache(costs.icache_size, costs.icache_line, costs.icache_ways)
        self._starts, self._names = self._symbol_table(cpu.process)
        #: Cycle units / executed-instruction counts keyed by address.
        self.rip_cycle_units: Dict[int, int] = {}
        self.rip_counts: Dict[int, int] = {}
        #: Cycle units keyed by enclosing function symbol.
        self.func_cycle_units: Dict[str, int] = {}
        #: Cycle units keyed by semicolon-joined call stack (folded form).
        self.stack_cycle_units: Dict[str, int] = {}
        #: Exact integer-unit total — ``CYCLE_UNIT`` units per cycle.
        self.total_cycle_units = 0
        self.instructions = 0
        self._stack: List[str] = []
        self._pending: Optional[str] = None
        self._chained = cpu.trace_fn
        # One stable bound-method object: attribute access mints a fresh
        # one each time, which would defeat detach()'s identity check.
        self._hook = self._trace
        cpu.trace_fn = self._hook

    @staticmethod
    def _symbol_table(process) -> Tuple[List[int], List[str]]:
        layout = process.layout
        text_end = layout.text_base + layout.text_size
        pairs = sorted(
            (address, name)
            for name, address in process.symbols.items()
            # Block labels ("fn::.Lbb") would fragment frames into basic
            # blocks; attribution is per function symbol.
            if layout.text_base <= address < text_end and "::" not in name
        )
        return [address for address, _ in pairs], [name for _, name in pairs]

    def _function_at(self, rip: int) -> str:
        index = bisect_right(self._starts, rip) - 1
        return self._names[index] if index >= 0 else UNKNOWN_FUNCTION

    def detach(self) -> None:
        """Restore the trace hook this profiler displaced."""
        if self.cpu.trace_fn is self._hook:
            self.cpu.trace_fn = self._chained

    # -- derived float views (one exact division per value) ------------------

    @property
    def total_cycles(self) -> float:
        """Total cycles — equals ``ExecutionResult.cycles`` exactly."""
        return self.total_cycle_units / CYCLE_UNIT

    @property
    def rip_cycles(self) -> Dict[int, float]:
        return {rip: units / CYCLE_UNIT for rip, units in self.rip_cycle_units.items()}

    @property
    def func_cycles(self) -> Dict[str, float]:
        return {fn: units / CYCLE_UNIT for fn, units in self.func_cycle_units.items()}

    @property
    def stack_cycles(self) -> Dict[str, float]:
        return {key: units / CYCLE_UNIT for key, units in self.stack_cycle_units.items()}

    # -- the hook -----------------------------------------------------------

    def _trace(self, cpu, rip, instr) -> None:
        if self._chained is not None:
            self._chained(cpu, rip, instr)
        op = instr.op
        cost = self._op_units[op]
        misses = self._shadow.access(rip, instr.size)
        if misses:
            cost += misses * self._miss_penalty_units
        if isinstance(instr.a, Mem) or isinstance(instr.b, Mem):
            cost += self._mem_extra_units

        fn = self._function_at(rip)
        stack = self._stack
        pending = self._pending
        if pending == "call":
            stack.append(fn)
        elif pending == "ret":
            if stack:
                stack.pop()
            if not stack:
                stack.append(fn)
            elif stack[-1] != fn:
                # Returned somewhere other than the caller symbol (booby
                # trap detonation path, mid-unwind landing): re-anchor.
                stack[-1] = fn
        else:
            if not stack:
                stack.append(fn)
            elif stack[-1] != fn:
                # Intra-frame transfer into another symbol: a CPH
                # trampoline JMP-ing to its target, or fall-through past
                # a boundary.  Same frame, new name.
                stack[-1] = fn
        self._pending = (
            "call" if op is Op.CALL else ("ret" if op is Op.RET else None)
        )

        self.instructions += 1
        self.total_cycle_units += cost
        units = self.rip_cycle_units
        units[rip] = units.get(rip, 0) + cost
        self.rip_counts[rip] = self.rip_counts.get(rip, 0) + 1
        units = self.func_cycle_units
        units[fn] = units.get(fn, 0) + cost
        key = self._prefix + ";".join(stack)
        units = self.stack_cycle_units
        units[key] = units.get(key, 0) + cost

    # -- output -------------------------------------------------------------

    def folded_stacks(self) -> str:
        """Folded-stack (flamegraph collapse) text: ``a;b;c <cycles>``.

        Deterministic: sorted by stack key, cycle counts formatted
        identically for identical runs — the differential tests compare
        this string byte-for-byte across backends.
        """
        return "\n".join(
            f"{key} {units / CYCLE_UNIT:.3f}"
            for key, units in sorted(self.stack_cycle_units.items())
        )

    def per_function(self) -> List[Tuple[str, float]]:
        """(function, cycles) hottest-first; ties broken by name."""
        ranked = sorted(self.func_cycle_units.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(fn, units / CYCLE_UNIT) for fn, units in ranked]

    def hottest_rips(self, count: int = 10) -> List[Tuple[int, float, int]]:
        """(rip, cycles, executions) for the ``count`` hottest addresses."""
        ranked = sorted(
            self.rip_cycle_units.items(), key=lambda kv: (-kv[1], kv[0])
        )[:count]
        return [(rip, units / CYCLE_UNIT, self.rip_counts[rip]) for rip, units in ranked]

    def report(self, top: int = 15) -> str:
        """Human-readable profile: per-function table + hottest addresses."""
        lines = [
            f"Cycle profile: {self.instructions} instructions, "
            f"{self.total_cycles:.0f} cycles",
            "",
            f"{'function':24s} {'cycles':>12s} {'share':>7s}",
        ]
        total = self.total_cycles or 1.0
        for name, cycles in self.per_function()[:top]:
            lines.append(f"{name:24s} {cycles:12.0f} {100.0 * cycles / total:6.1f}%")
        lines.append("")
        lines.append(f"{'address':>10s} {'cycles':>12s} {'execs':>8s} function")
        for rip, cycles, execs in self.hottest_rips(top):
            lines.append(
                f"{rip:#10x} {cycles:12.0f} {execs:8d} {self._function_at(rip)}"
            )
        return "\n".join(lines)
