"""Observability: structured tracing, machine perf counters, profiling.

R2C's argument is quantitative — compile-time, run-time, and entropy
measurements (Section 6) — so the reproduction carries a first-class
observability layer instead of ad-hoc ``perf_counter`` calls:

* :mod:`repro.obs.tracing` — zero-dependency structured spans with a
  thread-safe in-process collector and Chrome ``trace_event`` export,
  threaded through the compiler pipeline, the toolchain frontend, and
  the experiment engine.
* :mod:`repro.obs.counters` — :class:`PerfCounters`, the machine-level
  counter structure both execution backends fill byte-identically.
* :mod:`repro.obs.profiler` — per-RIP/per-function cycle attribution
  with folded-stack (flamegraph) output, driven off the CPU trace hook
  so it works on either backend and through BTRA-displaced frames.
* :mod:`repro.obs.bench` — the ``python -m repro bench`` regression
  harness producing schema-versioned ``BENCH_*.json`` artifacts.

Everything here is strictly passive: enabling tracing or attaching a
profiler never changes :class:`~repro.machine.cpu.ExecutionResult`,
faults, or final ``rip`` (a property test enforces this), and with
tracing *disabled* the instrumentation costs one flag check per phase.
"""

from repro.obs.counters import PerfCounters, UNTAGGED_TAG
from repro.obs.profiler import CycleProfiler
from repro.obs.tracing import (
    TraceCollector,
    enable_tracing,
    get_collector,
    recent_span_names,
    span,
    trace_capture,
    tracing_enabled,
)

__all__ = [
    "CycleProfiler",
    "PerfCounters",
    "TraceCollector",
    "UNTAGGED_TAG",
    "enable_tracing",
    "get_collector",
    "recent_span_names",
    "span",
    "trace_capture",
    "tracing_enabled",
]
