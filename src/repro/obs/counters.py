"""Machine-level performance counters.

:class:`PerfCounters` is the observability view over one
:class:`~repro.machine.cpu.ExecutionResult`: every architectural event
the simulated machine counts, in one flat, JSON-stable structure.  Every
execution backend — the ``reference`` loop, the ``fast`` micro-op
pipeline, and the block-compiling ``jit`` — fills the underlying
counters **byte-identically**: same integers, same float ``cycles`` (one
exact division of the shared integer cycle units), same per-tag buckets.
A ``PerfCounters`` is therefore backend-invariant by construction and
the differential tests in ``tests/test_backends.py`` compare them
wholesale.  How a backend *got* the numbers (blocks compiled, deopts
taken) is host-side observability, not machine state — the bench
artifact's ``tiers`` section records that instead.

Counter definitions (also in DESIGN.md §3.4):

``instructions``
    Instructions executed, including the one that faulted (the budget
    check and trace hook run before execution, matching the reference
    loop).
``cycles``
    Simulated cycles: per-opcode base cost + i-cache miss penalties +
    the memory-operand surcharge.
``branches`` / ``branches_taken`` / ``branch_mispredicts``
    Branch-family instructions executed (JMP + all Jcc; CALL/RET are
    counted separately), the subset that actually redirected control
    flow, and the mispredict-equivalent under the machine's static
    never-taken model — the simulated frontend always predicts
    fall-through, so every taken branch is a mispredict and
    ``branch_mispredicts == branches_taken``.  A faulting indirect
    branch target is not counted as taken (the fault wins, exactly as
    the reference loop orders it).
``mem_ops``
    Instructions carrying a memory operand — the same predicate that
    charges ``mem_operand_extra`` cycles, so ``mem_ops`` is also "how
    many times the memory surcharge was paid".
``traps``
    Booby traps detonated (executed ``TRAP`` instructions).  Counted
    before the :class:`~repro.errors.BoobyTrapTriggered` fault
    propagates, so a crashed run still reports its trap.
``btra_events`` / ``btdp_events``
    Executed instructions carrying a ``btra-*`` / ``btdp`` tag —
    reactive-camouflage work actually performed at run time.  Derived
    from ``tag_counts``, so they require ``attribute_tags=True``
    (they read 0 otherwise, like ``tag_cycles`` always has).
``tag_cycles`` / ``tag_counts``
    Per-diversification-tag cycle and instruction attribution.  With
    ``attribute_tags=True`` every executed instruction lands in exactly
    one bucket — untagged (application) instructions under
    :data:`UNTAGGED_TAG` — so the buckets decompose the totals:
    ``sum(tag_counts.values()) == instructions`` exactly, and
    ``sum(tag_cycles.values())`` equals ``cycles`` up to float
    re-association (the buckets sum in a different order than the
    sequential total; compare with ``math.isclose``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict

from repro.machine.cpu import UNTAGGED_TAG, ExecutionResult

__all__ = ["PerfCounters", "UNTAGGED_TAG", "merge_variant_counters"]


@dataclass
class PerfCounters:
    """Flat, backend-invariant counter snapshot of one run."""

    instructions: int = 0
    cycles: float = 0.0
    calls: int = 0
    rets: int = 0
    branches: int = 0
    branches_taken: int = 0
    branch_mispredicts: int = 0
    icache_hits: int = 0
    icache_misses: int = 0
    mem_ops: int = 0
    traps: int = 0
    btra_events: int = 0
    btdp_events: int = 0
    tag_cycles: Dict[str, float] = field(default_factory=dict)
    tag_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: ExecutionResult) -> "PerfCounters":
        """Build the counter view over a (possibly partial) run result."""
        tag_counts = dict(result.tag_counts)
        return cls(
            instructions=result.instructions,
            cycles=result.cycles,
            calls=result.calls,
            rets=result.rets,
            branches=result.branches,
            branches_taken=result.branches_taken,
            # Static never-taken frontend: every taken branch mispredicts.
            branch_mispredicts=result.branches_taken,
            icache_hits=result.icache_hits,
            icache_misses=result.icache_misses,
            mem_ops=result.mem_ops,
            traps=result.traps,
            btra_events=sum(
                count for tag, count in tag_counts.items() if tag.startswith("btra")
            ),
            btdp_events=sum(
                count for tag, count in tag_counts.items() if tag.startswith("btdp")
            ),
            tag_cycles=dict(result.tag_cycles),
            tag_counts=tag_counts,
        )

    @property
    def icache_miss_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_misses / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps({"schema": "repro-counters/v1", **asdict(self)}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PerfCounters":
        """Load counters written by :meth:`to_json`; unknown keys dropped
        (the ``RunRecord.from_json`` forward-compatibility convention)."""
        data = json.loads(text)
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


def merge_variant_counters(per_variant: Dict[str, "PerfCounters"]) -> PerfCounters:
    """Merge N variants' counters into one group view with per-variant
    tag attribution.

    Scalar events sum across variants (a lockstep group really executed
    that many instructions / paid that many cycles).  Tag buckets are
    namespaced ``<label>/<tag>`` (e.g. ``v1/btra-setup``, ``v0/app``) so
    the decomposition invariant survives the merge —
    ``sum(tag_counts.values())`` still equals the merged ``instructions``
    when every variant ran with ``attribute_tags=True`` — while keeping
    each variant's diversification overhead individually attributable.
    """
    merged = PerfCounters()
    for label, counters in per_variant.items():
        merged.instructions += counters.instructions
        merged.cycles += counters.cycles
        merged.calls += counters.calls
        merged.rets += counters.rets
        merged.branches += counters.branches
        merged.branches_taken += counters.branches_taken
        merged.branch_mispredicts += counters.branch_mispredicts
        merged.icache_hits += counters.icache_hits
        merged.icache_misses += counters.icache_misses
        merged.mem_ops += counters.mem_ops
        merged.traps += counters.traps
        merged.btra_events += counters.btra_events
        merged.btdp_events += counters.btdp_events
        for tag, cycles in counters.tag_cycles.items():
            merged.tag_cycles[f"{label}/{tag}"] = cycles
        for tag, count in counters.tag_counts.items():
            merged.tag_counts[f"{label}/{tag}"] = count
    return merged
