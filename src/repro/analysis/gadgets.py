"""Static gadget dataflow miner: census, invariants, chain synthesis.

The attack-side counterpart of the binary invariant checker.  Where
:mod:`repro.analysis.binverify` proves defender invariants, this module
computes what a *systematic* code-reuse adversary can prove about a
binary from static analysis alone (their own copy of the software — the
Section 3 threat model's reference knowledge):

* **Gadget census** — every straight-line instruction suffix ending at a
  ``ret`` (ROP) or an indirect ``jmp``/``call`` (JOP) is summarized by
  abstract interpretation over the reference machine semantics
  (:mod:`repro.machine.backends`): registers read/written, final register
  values as symbolic expressions over the gadget's entry state, stack
  delta, memory load/store effects, and the clobber set.  Two gadgets are
  equal **by effect**, not by text — the equivalence *Hiding in the
  Particles* shows real miners exploit.
* **Invariant-gadget search** — censuses of N diversified variants are
  intersected by semantic class, in *position-pinned* mode (same text
  offset and same effect: directly reusable by a fixed payload) and
  *position-independent* mode (same effect anywhere: reusable after one
  pointer disclosure).  :mod:`repro.analysis.entropy` reports the
  resulting survival fractions next to its historical offset+text metric.
* **Chain synthesizer** — given a goal spec (emit-output,
  reg-load-then-call, write-what-where, stack-pivot) it solves for a
  gadget sequence plus exact stack layout using the semantic summaries,
  producing a :class:`Chain` whose words an attack hook can write through
  :class:`repro.attacks.surface.AttackerView` (see
  :mod:`repro.attacks.mined`).

Everything here is *attacker-side* static analysis: it reads only the
position-independent :class:`~repro.toolchain.binary.Binary` image (text
stream, data relocations, symbols) — never frame records, call-site
records, or plan metadata.

``python -m repro mine <workload>`` drives the census over N seed
variants and writes a schema-versioned ``repro-gadgets/v1`` artifact
(:class:`MineReport`, :func:`validate`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding, FindingsReport
from repro.machine.isa import Imm, Instruction, Mem, Op, Reg
from repro.numeric import MASK64, to_signed, truncated_div
from repro.toolchain.binary import Binary
from repro.toolchain.disasm import render_instruction

WORD = 8

#: Census window: longest suffix considered, in instructions including
#: the terminator.  Wider than the entropy auditor's historical window
#: (5) because semantic mining profits from whole epilogues (register
#: restores + stack release + ret is typically 6-9 instructions).
GADGET_WINDOW = 9

#: Ops that end a straight-line run — a gadget suffix never crosses one.
#: ``callrt`` is included: runtime services (malloc, output hooks) have
#: arbitrary effects no summary can carry.
_STOPPERS = frozenset(
    {
        Op.JMP,
        Op.JE,
        Op.JNE,
        Op.JL,
        Op.JLE,
        Op.JG,
        Op.JGE,
        Op.CALL,
        Op.RET,
        Op.TRAP,
        Op.EXIT,
        Op.CALLRT,
    }
)

#: Stack-layout filler word for chain slots the synthesizer leaves free.
FILLER_WORD = 0x0F1D_0F1D_0F1D_0F1D

# ---------------------------------------------------------------------------
# abstract values
# ---------------------------------------------------------------------------
#
# Values are plain tuples, symbolic over the gadget's *entry* state:
#
#   ("ireg", r, off)   entry value of GPR r, plus a constant
#   ("const", v)       known 64-bit constant
#   ("sld", k, off)    word loaded from [entry_rsp + k], plus a constant
#   ("rsp", d)         entry_rsp + d
#   ("glob", sym, off) word loaded from data global sym (+byte offset)
#   ("sym", name, a)   link-time absolute address of a symbol (+addend)
#   ("mem",)           unknown load
#   ("expr",)          any other derived value (top)
#
# Abstract addresses:
#
#   ("stack", k)       entry_rsp + k
#   ("reg", r, off)    entry GPR r + offset
#   ("sval", k, off)   word at [entry_rsp+k] + offset (pointer from stack)
#   ("global", sym, o) data symbol + offset
#   ("abs", a)         absolute constant address
#   ("unknown",)

_EXPR = ("expr",)
_MEM = ("mem",)


def _add_const(value: Tuple, c: int) -> Tuple:
    """Fold ``value + c`` where the domain permits, else top."""
    kind = value[0]
    if kind == "const":
        return ("const", (value[1] + c) & MASK64)
    if kind in ("ireg", "sld"):
        return (kind, value[1], value[2] + c)
    if kind == "rsp":
        return ("rsp", value[1] + c)
    if kind == "sym":
        return ("sym", value[1], value[2] + c)
    return _EXPR


class _AbstractState:
    """One abstract machine state, mirroring ReferenceBackend semantics."""

    def __init__(self) -> None:
        self.regs: Dict[int, Tuple] = {}  # GPR -> abstract value (absent = entry)
        self.sp: Optional[int] = 0  # byte delta of rsp from entry (None = lost)
        self.flags: Tuple = ("init-flags",)
        self.loads: List[Tuple] = []
        self.stores: List[Tuple[Tuple, Tuple]] = []
        self.stack_writes: Dict[int, Tuple] = {}  # entry-relative stores
        self.out_values: List[Tuple] = []
        self.pivot: Optional[Tuple] = None
        self.regs_read: Set[str] = set()
        self.regs_written: Set[str] = set()
        self.reads_flags = False
        self.writes_flags = False
        self.hazards: Set[str] = set()

    # -- register file -------------------------------------------------------

    def read_reg(self, reg: Reg) -> Tuple:
        self.regs_read.add(reg.name.lower())
        if reg is Reg.RSP:
            return ("rsp", self.sp) if self.sp is not None else _EXPR
        if reg >= Reg.YMM0:
            self.hazards.add("vector")
            return _EXPR
        return self.regs.get(int(reg), ("ireg", int(reg), 0))

    def write_reg(self, reg: Reg, value: Tuple) -> None:
        self.regs_written.add(reg.name.lower())
        if reg is Reg.RSP:
            if value[0] == "rsp":
                self.sp = value[1]
            else:
                # The stack pointer now derives from attacker-relevant
                # state: a pivot.  Framing below the pivot is lost.
                self.pivot = value
                self.sp = None
            return
        if reg >= Reg.YMM0:
            self.hazards.add("vector")
            return
        self.regs[int(reg)] = value

    # -- memory --------------------------------------------------------------

    def address_of(self, mem: Mem) -> Tuple:
        if mem.symbol is not None:
            if mem.base is None and mem.index is None:
                return ("global", mem.symbol, mem.offset)
            return ("unknown",)
        offset = mem.offset
        if mem.index is not None:
            index = self.read_reg(mem.index)
            if index[0] != "const":
                return ("unknown",)
            offset += index[1] * mem.scale
        if mem.base is None:
            return ("abs", offset)
        base = self.read_reg(mem.base)
        kind = base[0]
        if kind == "rsp":
            return ("stack", base[1] + offset)
        if kind == "ireg" and base[2] == 0:
            return ("reg", base[1], offset)
        if kind == "ireg":
            return ("reg", base[1], base[2] + offset)
        if kind == "sld":
            return ("sval", base[1], base[2] + offset)
        if kind == "const":
            return ("abs", (base[1] + offset) & MASK64)
        if kind == "sym":
            return ("global", base[1], base[2] + offset)
        return ("unknown",)

    def load(self, address: Tuple) -> Tuple:
        self.loads.append(address)
        if address[0] == "stack":
            # A store earlier in the same gadget shadows the entry word.
            if address[1] in self.stack_writes:
                return self.stack_writes[address[1]]
            return ("sld", address[1], 0)
        if address[0] == "global":
            return ("glob", address[1], address[2])
        self.hazards.add("load:" + address[0])
        return _MEM

    def store(self, address: Tuple, value: Tuple) -> None:
        self.stores.append((address, value))
        if address[0] == "stack":
            self.stack_writes[address[1]] = value
            return
        self.hazards.add("store:" + address[0])

    # -- operands ------------------------------------------------------------

    def read_operand(self, operand) -> Tuple:
        if isinstance(operand, Reg):
            return self.read_reg(operand)
        if isinstance(operand, Imm):
            if operand.symbol is not None:
                return ("sym", operand.symbol, operand.value)
            return ("const", operand.value & MASK64)
        if isinstance(operand, Mem):
            return self.load(self.address_of(operand))
        return _EXPR

    def write_operand(self, operand, value: Tuple) -> None:
        if isinstance(operand, Reg):
            self.write_reg(operand, value)
        elif isinstance(operand, Mem):
            self.store(self.address_of(operand), value)


def _fold_binop(op: Op, va: Tuple, vb: Tuple) -> Tuple:
    """Mirror the reference backend's arithmetic on the abstract domain."""
    if va[0] == "const" and vb[0] == "const":
        a, b = va[1], vb[1]
        if op is Op.ADD:
            return ("const", (a + b) & MASK64)
        if op is Op.SUB:
            return ("const", (a - b) & MASK64)
        if op is Op.AND:
            return ("const", a & b)
        if op is Op.OR:
            return ("const", a | b)
        if op is Op.XOR:
            return ("const", a ^ b)
        if op is Op.SHL:
            return ("const", (a << (b & 63)) & MASK64)
        if op is Op.SHR:
            return ("const", (a & MASK64) >> (b & 63))
        if op is Op.IMUL:
            return ("const", (to_signed(a) * to_signed(b)) & MASK64)
        if op is Op.IDIV:
            if to_signed(b) == 0:
                return _EXPR
            return ("const", truncated_div(to_signed(a), to_signed(b)) & MASK64)
    if op is Op.ADD and vb[0] == "const":
        return _add_const(va, to_signed(vb[1]))
    if op is Op.ADD and va[0] == "const":
        return _add_const(vb, to_signed(va[1]))
    if op is Op.SUB and vb[0] == "const":
        return _add_const(va, -to_signed(vb[1]))
    return _EXPR


# ---------------------------------------------------------------------------
# the semantic summary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GadgetSummary:
    """Effect of executing one gadget suffix, symbolic over entry state."""

    terminator: str  # "ret" | "jop-jmp" | "jop-call"
    length: int
    regs_read: Tuple[str, ...]
    regs_written: Tuple[str, ...]
    #: Final register values expressible over the entry state.
    reg_effects: Tuple[Tuple[str, Tuple], ...]
    #: Registers written with values the domain cannot express.
    clobbered: Tuple[str, ...]
    #: Bytes rsp has moved once control leaves (for ret: including the
    #: RIP pop).  None when the gadget loses static track of rsp.
    stack_delta: Optional[int]
    #: For ret gadgets: entry-relative byte offset of the word that
    #: becomes the next RIP.
    ret_slot: Optional[int]
    #: For indirect transfers: the abstract transfer target.
    target: Optional[Tuple]
    loads: Tuple[Tuple, ...]
    stores: Tuple[Tuple[Tuple, Tuple], ...]
    out_values: Tuple[Tuple, ...]
    reads_flags: bool
    writes_flags: bool
    #: Hazard labels ("callrt" never appears — stopped at census time):
    #: "idiv", "vector", "load:reg", "store:unknown", ...
    hazards: Tuple[str, ...]

    @property
    def pure(self) -> bool:
        """Statically executable: no op whose effect the domain lost."""
        return not self.hazards

    def semantic_key(self) -> str:
        """Position-independent identity: the hash of the effect."""
        payload = repr(
            (
                self.terminator,
                self.reg_effects,
                sorted(self.clobbered),
                self.stack_delta,
                self.ret_slot,
                self.target,
                self.loads,
                self.stores,
                self.out_values,
                self.writes_flags,
                sorted(self.hazards),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def capabilities(self) -> FrozenSet[str]:
        """What an attacker can do with this gadget (the danger classes)."""
        caps = set()
        for reg, value in self.reg_effects:
            if value[0] == "sld":
                caps.add(f"load-reg:{reg}")
        for address, value in self.stores:
            if address[0] in ("reg", "sval") and value[0] in ("ireg", "sld", "const"):
                caps.add("write-mem")
        for value in self.out_values:
            if value[0] in ("ireg", "sld", "const"):
                caps.add("emit-out")
        if self.terminator == "ret" and self.stack_delta is not None and self.stack_delta > WORD:
            caps.add("shift-stack")
        if self.terminator in ("jop-jmp", "jop-call") and self.target is not None:
            if self.target[0] in ("ireg", "sld"):
                caps.add("dispatch")
        if self.stack_delta is None:
            caps.add("stack-pivot")
        return frozenset(caps)


def summarize(instructions: Sequence[Instruction]) -> GadgetSummary:
    """Abstract-interpret one straight-line suffix ending at a terminator.

    Semantics mirror ``ReferenceBackend._drive`` exactly; the hypothesis
    property in ``tests/test_gadgets.py`` holds every pure summary to
    concrete single-step execution on the reference backend.
    """
    state = _AbstractState()
    terminator = "ret"
    target: Optional[Tuple] = None
    ret_slot: Optional[int] = None

    for position, instr in enumerate(instructions):
        op = instr.op
        last = position == len(instructions) - 1
        if op is Op.MOV:
            state.write_operand(instr.a, state.read_operand(instr.b))
        elif op is Op.LEA:
            address = state.address_of(instr.b)
            if address[0] == "stack":
                state.write_operand(instr.a, ("rsp", address[1]))
            elif address[0] == "reg":
                state.write_operand(instr.a, ("ireg", address[1], address[2]))
            elif address[0] == "abs":
                state.write_operand(instr.a, ("const", address[1] & MASK64))
            elif address[0] == "global":
                state.write_operand(instr.a, ("sym", address[1], address[2]))
            else:
                state.write_operand(instr.a, _EXPR)
        elif op is Op.PUSH:
            value = state.read_operand(instr.a)
            if state.sp is not None:
                state.sp -= WORD
                state.store(("stack", state.sp), value)
            else:
                state.hazards.add("store:unknown")
        elif op is Op.POP:
            if state.sp is not None:
                value = state.load(("stack", state.sp))
                state.sp += WORD
            else:
                value = _MEM
                state.hazards.add("load:unknown")
            state.write_operand(instr.a, value)
        elif op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.IMUL):
            state.write_operand(
                instr.a,
                _fold_binop(op, state.read_operand(instr.a), state.read_operand(instr.b)),
            )
        elif op is Op.IDIV:
            divisor = state.read_operand(instr.b)
            if divisor[0] != "const" or to_signed(divisor[1]) == 0:
                state.hazards.add("idiv")
            state.write_operand(
                instr.a, _fold_binop(op, state.read_operand(instr.a), divisor)
            )
        elif op is Op.NEG:
            value = state.read_operand(instr.a)
            if value[0] == "const":
                state.write_operand(instr.a, ("const", (-value[1]) & MASK64))
            else:
                state.write_operand(instr.a, _EXPR)
        elif op is Op.CMP:
            va, vb = state.read_operand(instr.a), state.read_operand(instr.b)
            state.writes_flags = True
            if va[0] == "const" and vb[0] == "const":
                state.flags = ("cmp", to_signed(va[1]) - to_signed(vb[1]))
            else:
                state.flags = ("unknown-flags",)
        elif op is Op.TEST:
            va, vb = state.read_operand(instr.a), state.read_operand(instr.b)
            state.writes_flags = True
            if va[0] == "const" and vb[0] == "const":
                state.flags = ("cmp", to_signed(va[1] & vb[1]))
            else:
                state.flags = ("unknown-flags",)
        elif op in (Op.SETE, Op.SETNE, Op.SETL, Op.SETLE, Op.SETG, Op.SETGE):
            state.reads_flags = True
            if state.flags[0] == "cmp":
                cmp = state.flags[1]
                taken = {
                    Op.SETE: cmp == 0,
                    Op.SETNE: cmp != 0,
                    Op.SETL: cmp < 0,
                    Op.SETLE: cmp <= 0,
                    Op.SETG: cmp > 0,
                    Op.SETGE: cmp >= 0,
                }[op]
                state.write_operand(instr.a, ("const", 1 if taken else 0))
            else:
                state.write_operand(instr.a, _EXPR)
        elif op is Op.NOP or op is Op.VZEROUPPER:
            pass
        elif op in (Op.VLOAD, Op.VLOAD512):
            state.hazards.add("vector")
            if isinstance(instr.b, Mem):
                state.loads.append(state.address_of(instr.b))
        elif op in (Op.VSTORE, Op.VSTORE512):
            state.hazards.add("vector")
            if isinstance(instr.a, Mem):
                state.store(state.address_of(instr.a), _EXPR)
        elif op is Op.OUT:
            state.out_values.append(state.read_operand(instr.a))
        elif op is Op.RET:
            if not last:
                raise ValueError("ret mid-suffix: census window is broken")
            terminator = "ret"
            ret_slot = state.sp
        elif op is Op.JMP or op is Op.CALL:
            if not last:
                raise ValueError("transfer mid-suffix: census window is broken")
            terminator = "jop-jmp" if op is Op.JMP else "jop-call"
            target = state.read_operand(instr.a)
            if op is Op.CALL and state.sp is not None:
                state.sp -= WORD  # the pushed return address
        else:
            # trap/exit/callrt/jcc are stoppers and never reach here.
            raise ValueError(f"unexpected opcode in gadget suffix: {op}")

    stack_delta: Optional[int] = None
    if terminator == "ret":
        if state.sp is not None:
            stack_delta = state.sp + WORD
    elif state.sp is not None:
        stack_delta = state.sp

    reg_effects = []
    clobbered = []
    for reg_index in sorted(state.regs):
        value = state.regs[reg_index]
        name = Reg(reg_index).name.lower()
        if value == ("ireg", reg_index, 0):
            continue  # identity: final == entry
        if value[0] in ("ireg", "const", "sld", "rsp", "glob", "sym"):
            reg_effects.append((name, value))
        else:
            clobbered.append(name)
    for name in sorted(state.regs_written):
        if name in ("rsp",):
            continue
        reg_index = Reg[name.upper()] if name.upper() in Reg.__members__ else None
        if reg_index is not None and int(reg_index) >= int(Reg.YMM0):
            clobbered.append(name)

    return GadgetSummary(
        terminator=terminator,
        length=len(instructions),
        regs_read=tuple(sorted(state.regs_read)),
        regs_written=tuple(sorted(state.regs_written)),
        reg_effects=tuple(reg_effects),
        clobbered=tuple(sorted(set(clobbered))),
        stack_delta=stack_delta,
        ret_slot=ret_slot,
        target=target,
        loads=tuple(state.loads),
        stores=tuple(state.stores),
        out_values=tuple(state.out_values),
        reads_flags=state.reads_flags,
        writes_flags=state.writes_flags,
        hazards=tuple(sorted(state.hazards)),
    )


# ---------------------------------------------------------------------------
# the census
# ---------------------------------------------------------------------------


@dataclass
class GadgetRecord:
    """One censused gadget: a concrete suffix plus its semantic identity."""

    offset: int  # text offset of the suffix's first instruction
    length: int
    kind: str  # "ret" | "jop-jmp" | "jop-call"
    text: Tuple[str, ...]
    summary: GadgetSummary
    key: str  # summary.semantic_key(), cached


@dataclass
class GadgetCensus:
    """Every gadget mined from one binary."""

    seed: Optional[int]
    window: int
    records: List[GadgetRecord] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        tally = {"ret": 0, "jop-jmp": 0, "jop-call": 0}
        for record in self.records:
            tally[record.kind] += 1
        return tally

    def keys(self) -> FrozenSet[str]:
        """Position-independent semantic classes."""
        return frozenset(record.key for record in self.records)

    def pinned(self) -> FrozenSet[Tuple[int, str]]:
        """Position-pinned classes: (text offset, semantic class)."""
        return frozenset((record.offset, record.key) for record in self.records)

    def texts(self) -> FrozenSet[Tuple[int, Tuple[str, ...]]]:
        """The historical offset+rendering identity (entropy continuity)."""
        return frozenset((record.offset, record.text) for record in self.records)


def _is_indirect(operand) -> bool:
    return isinstance(operand, (Reg, Mem))


def take_census(
    binary: Binary, *, window: int = GADGET_WINDOW, seed: Optional[int] = None
) -> GadgetCensus:
    """Mine every gadget suffix from a binary's text stream.

    Walks the decoded instruction stream (the same lossless
    representation :func:`repro.toolchain.disasm.parse_listing` round-trips
    and :func:`repro.machine.blocks.recover_blocks` derives block
    boundaries from): each ``ret`` / indirect transfer terminates the
    suffixes; the backward window stops at control-transfer boundaries
    and at text discontinuities, so every censused suffix is a
    straight-line run an attacker could actually enter mid-stream.
    """
    census = GadgetCensus(seed=seed, window=window)
    text = binary.text
    for index, (offset, instr) in enumerate(text):
        if instr.op is Op.RET:
            kind = "ret"
        elif instr.op is Op.JMP and _is_indirect(instr.a):
            kind = "jop-jmp"
        elif instr.op is Op.CALL and _is_indirect(instr.a):
            kind = "jop-call"
        else:
            continue
        start = index
        while start > index - window + 1 and start > 0:
            prev_offset, prev = text[start - 1]
            if prev.op in _STOPPERS:
                break
            if prev_offset + prev.size != text[start][0]:
                break  # text discontinuity (inter-function padding)
            start -= 1
        for begin in range(start, index + 1):
            suffix = [item[1] for item in text[begin : index + 1]]
            summary = summarize(suffix)
            census.records.append(
                GadgetRecord(
                    offset=text[begin][0],
                    length=len(suffix),
                    kind=kind,
                    text=tuple(render_instruction(item) for item in suffix),
                    summary=summary,
                    key=summary.semantic_key(),
                )
            )
    return census


# ---------------------------------------------------------------------------
# cross-variant invariant search
# ---------------------------------------------------------------------------


def semantic_survival(
    a: GadgetCensus, b: GadgetCensus, *, position_independent: bool = True
) -> float:
    """Fraction of semantic classes shared between two variants.

    Normalized by the smaller census (the attacker mines the variant
    they have and asks what carries over) — same convention as the
    historical offset+text metric in :mod:`repro.analysis.entropy`.
    """
    keys_a = a.keys() if position_independent else a.pinned()
    keys_b = b.keys() if position_independent else b.pinned()
    smaller = min(len(keys_a), len(keys_b)) or 1
    return len(keys_a & keys_b) / smaller


@dataclass
class InvariantReport:
    """Gadget classes that survive across *every* variant in a set."""

    seeds: List[int]
    variant_counts: List[Dict[str, int]]
    #: (offset, semantic class, kind) present in all variants — directly
    #: reusable by a position-dependent payload.
    pinned: List[Tuple[int, str, str]]
    #: (semantic class, kind) present in all variants at *some* offset.
    independent: List[Tuple[str, str]]
    pairwise_pinned: List[Tuple[int, int, float]]
    pairwise_independent: List[Tuple[int, int, float]]


def find_invariants(censuses: Sequence[GadgetCensus], seeds: Sequence[int]) -> InvariantReport:
    """Intersect N censuses by semantic class, both survival modes."""
    if len(censuses) < 2:
        raise ValueError("invariant search needs at least two variants")
    by_key: Dict[str, str] = {}
    by_pinned: Dict[Tuple[int, str], str] = {}
    for census in censuses:
        for record in census.records:
            by_key.setdefault(record.key, record.kind)
            by_pinned.setdefault((record.offset, record.key), record.kind)

    pinned_common = set(censuses[0].pinned())
    key_common = set(censuses[0].keys())
    for census in censuses[1:]:
        pinned_common &= census.pinned()
        key_common &= census.keys()

    pairwise_pinned = []
    pairwise_independent = []
    for i in range(len(censuses)):
        for j in range(i + 1, len(censuses)):
            pairwise_pinned.append(
                (seeds[i], seeds[j], semantic_survival(censuses[i], censuses[j], position_independent=False))
            )
            pairwise_independent.append(
                (seeds[i], seeds[j], semantic_survival(censuses[i], censuses[j], position_independent=True))
            )

    return InvariantReport(
        seeds=list(seeds),
        variant_counts=[census.counts for census in censuses],
        pinned=sorted((off, key, by_pinned[(off, key)]) for off, key in pinned_common),
        independent=sorted((key, by_key[key]) for key in key_common),
        pairwise_pinned=pairwise_pinned,
        pairwise_independent=pairwise_independent,
    )


# ---------------------------------------------------------------------------
# chain synthesis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EmitOutput:
    """Goal: make the victim emit ``value`` on its output stream."""

    value: int


@dataclass(frozen=True)
class RegLoadThenCall:
    """Goal: load ``value`` into ``reg`` (name, or None for any loadable
    register), then transfer to text offset ``target_offset``."""

    reg: Optional[str]
    value: int
    target_offset: int


@dataclass(frozen=True)
class WriteWhatWhere:
    """Goal: write ``value`` to absolute ``address``."""

    address: int
    value: int


@dataclass(frozen=True)
class StackPivot:
    """Goal: repoint rsp at absolute ``new_rsp``."""

    new_rsp: int


GoalSpec = (EmitOutput, RegLoadThenCall, WriteWhatWhere, StackPivot)

#: A chain stack word: ("text", offset) relocates against the leaked
#: text base; ("imm", value) is written verbatim.
WordSpec = Tuple[str, int]


@dataclass
class Chain:
    """A solved gadget sequence plus its exact stack layout."""

    goal: str
    words: List[WordSpec]
    gadgets: List[GadgetRecord]

    def materialize(self, text_base: int) -> List[int]:
        """Resolve the layout against a disclosed text base."""
        resolved = []
        for kind, value in self.words:
            if kind == "text":
                resolved.append((text_base + value) & MASK64)
            else:
                resolved.append(value & MASK64)
        return resolved

    def transfers_to(self, census: GadgetCensus) -> bool:
        """Does every gadget survive position-pinned in another variant?"""
        pinned = census.pinned()
        return all((record.offset, record.key) for record in self.gadgets) and all(
            (record.offset, record.key) in pinned for record in self.gadgets
        )


def _chainable(summary: GadgetSummary) -> bool:
    """Usable as an interior chain link: pure ret gadget, framable."""
    return (
        summary.terminator == "ret"
        and summary.pure
        and summary.stack_delta is not None
        and summary.ret_slot is not None
        and summary.ret_slot >= 0
        and summary.ret_slot % WORD == 0
        and summary.stack_delta % WORD == 0
        and all(address[0] == "stack" and address[1] >= 0 for address in summary.loads)
        and all(address[0] == "stack" for address, _ in summary.stores)
    )


def _loader_index(census: GadgetCensus) -> Dict[str, Tuple[GadgetRecord, int, int]]:
    """Best ``reg := stack slot`` gadget per register.

    Returns reg name -> (record, slot byte offset, value addend): after
    the gadget, reg == word-at-slot + addend.  "Best" = smallest frame.
    """
    best: Dict[str, Tuple[GadgetRecord, int, int]] = {}
    for record in census.records:
        summary = record.summary
        if not _chainable(summary) or summary.stores:
            continue
        for reg, value in summary.reg_effects:
            if value[0] != "sld":
                continue
            slot, addend = value[1], value[2]
            if slot < 0 or slot % WORD or slot == summary.ret_slot:
                continue
            if slot >= summary.stack_delta:
                continue
            current = best.get(reg)
            # Prefer loaders with no side output (a stray ``out`` would
            # pollute the victim's stream), then the smallest frame.
            rank = (bool(summary.out_values), summary.stack_delta)
            if current is None or rank < (
                bool(current[0].summary.out_values),
                current[0].summary.stack_delta,
            ):
                best[reg] = (record, slot, addend)
    return best


def _assemble(goal: str, steps: List[Tuple[GadgetRecord, Dict[int, WordSpec]]], tail: WordSpec) -> Chain:
    """Lay out a ret-to-ret chain: each gadget's frame in sequence, the
    ret slot of one holding the text address of the next."""
    words: List[WordSpec] = [("imm", FILLER_WORD)]
    address_slot = 0
    for record, slot_values in steps:
        words[address_slot] = ("text", record.offset)
        frame_start = len(words)
        frame_words = record.summary.stack_delta // WORD
        words.extend([("imm", FILLER_WORD)] * frame_words)
        for slot, spec in slot_values.items():
            words[frame_start + slot // WORD] = spec
        address_slot = frame_start + record.summary.ret_slot // WORD
    words[address_slot] = tail
    return Chain(goal=goal, words=words, gadgets=[record for record, _ in steps])


def _steps_interfere(steps: List[Tuple[GadgetRecord, Dict[int, WordSpec]]], loaded: List[str]) -> bool:
    """A loaded register must survive the steps *between* its loader and
    the final consuming gadget.  The consumer's own writes are fine: its
    summary expresses effects over entry state, so an epilogue restoring
    the register after the consuming instruction cannot interfere."""
    for position, reg in enumerate(loaded):
        for record, _ in steps[position + 1 : -1]:
            if reg in record.summary.regs_written:
                return True
    return False


def synthesize(census: GadgetCensus, goal) -> Optional[Chain]:
    """Solve a goal spec against one census; None when no chain exists."""
    loaders = _loader_index(census)

    if isinstance(goal, EmitOutput):
        candidates = []
        for record in census.records:
            summary = record.summary
            if not _chainable(summary):
                continue
            for source in summary.out_values:
                candidates.append((record, source))
        # Prefer direct stack-sourced emitters, then single-loader chains.
        for record, source in sorted(candidates, key=lambda c: c[0].summary.length):
            summary = record.summary
            if source[0] == "sld" and 0 <= source[1] < summary.stack_delta and source[1] != summary.ret_slot:
                slot_word = ("imm", (goal.value - source[2]) & MASK64)
                return _assemble("emit-output", [(record, {source[1]: slot_word})], ("imm", FILLER_WORD))
        for record, source in sorted(candidates, key=lambda c: c[0].summary.length):
            if source[0] != "ireg":
                continue
            reg_name = Reg(source[1]).name.lower()
            loader = loaders.get(reg_name)
            if loader is None:
                continue
            loader_record, slot, addend = loader
            want = (goal.value - source[2] - addend) & MASK64
            steps = [(loader_record, {slot: ("imm", want)}), (record, {})]
            if _steps_interfere(steps, [reg_name]):
                continue
            return _assemble("emit-output", steps, ("imm", FILLER_WORD))
        return None

    if isinstance(goal, RegLoadThenCall):
        wanted = [goal.reg] if goal.reg is not None else sorted(loaders)
        for reg_name in wanted:
            loader = loaders.get(reg_name)
            if loader is None:
                continue
            record, slot, addend = loader
            value = (goal.value - addend) & MASK64
            return _assemble(
                "reg-load-then-call",
                [(record, {slot: ("imm", value)})],
                ("text", goal.target_offset),
            )
        return None

    if isinstance(goal, WriteWhatWhere):
        for record in census.records:
            summary = record.summary
            if summary.terminator != "ret" or summary.stack_delta is None:
                continue
            if summary.ret_slot is None or summary.ret_slot < 0 or summary.ret_slot % WORD:
                continue
            # The write itself goes through an attacker-pointed register
            # or a pointer taken from the controlled stack; everything
            # else must stay statically executable.
            if any(not h.startswith("store:reg") and not h.startswith("store:sval") for h in summary.hazards):
                continue
            if any(a[0] not in ("stack",) or a[1] < 0 for a in summary.loads):
                continue
            for address, value in summary.stores:
                if address[0] == "sval" and value[0] == "sld":
                    addr_slot, addr_off = address[1], address[2]
                    val_slot, val_off = value[1], value[2]
                    usable = (
                        0 <= addr_slot < summary.stack_delta
                        and 0 <= val_slot < summary.stack_delta
                        and addr_slot % WORD == 0
                        and val_slot % WORD == 0
                        and len({addr_slot, val_slot, summary.ret_slot}) == 3
                    )
                    if usable:
                        slots = {
                            addr_slot: ("imm", (goal.address - addr_off) & MASK64),
                            val_slot: ("imm", (goal.value - val_off) & MASK64),
                        }
                        return _assemble("write-what-where", [(record, slots)], ("imm", FILLER_WORD))
                if address[0] == "reg" and value[0] == "ireg":
                    addr_reg = Reg(address[1]).name.lower()
                    val_reg = Reg(value[1]).name.lower()
                    if addr_reg == val_reg:
                        continue
                    addr_loader = loaders.get(addr_reg)
                    val_loader = loaders.get(val_reg)
                    if addr_loader is None or val_loader is None:
                        continue
                    steps = [
                        (val_loader[0], {val_loader[1]: ("imm", (goal.value - value[2] - val_loader[2]) & MASK64)}),
                        (addr_loader[0], {addr_loader[1]: ("imm", (goal.address - address[2] - addr_loader[2]) & MASK64)}),
                        (record, {}),
                    ]
                    if _steps_interfere(steps, [val_reg, addr_reg]):
                        continue
                    return _assemble("write-what-where", steps, ("imm", FILLER_WORD))
        return None

    if isinstance(goal, StackPivot):
        for record in census.records:
            summary = record.summary
            # A pivot gadget lost rsp tracking by construction; require
            # the pivot source to be attacker-settable.
            if summary.stack_delta is not None:
                continue
            pivot_sources = [
                value
                for reg, value in summary.reg_effects
                if reg == "rsp"
            ]
            # rsp effects are not in reg_effects (tracked separately), so
            # look at the recorded pivot via hazards-free heuristic: any
            # ret gadget with unknown delta whose regs_written includes
            # rsp and whose reads include a loadable register.
            if "rsp" not in summary.regs_written:
                continue
            del pivot_sources
            for reg_name in summary.regs_read:
                loader = loaders.get(reg_name)
                if loader is None or reg_name == "rsp":
                    continue
                loader_record, slot, addend = loader
                steps = [(loader_record, {slot: ("imm", (goal.new_rsp - addend) & MASK64)})]
                return _assemble("stack-pivot", steps, ("text", record.offset))
        return None

    raise TypeError(f"unknown goal spec {goal!r}")


# ---------------------------------------------------------------------------
# mined data-pointer map (the AOCR side of the census)
# ---------------------------------------------------------------------------


@dataclass
class DataPointerMap:
    """Statically mined data-section attack surface of one binary.

    All offsets are data-section offsets from the attacker's own copy;
    deriving them needs only the position-independent image (data
    relocations + a text scan) — no defender metadata.
    """

    #: Data slots initialized with code pointers: (data offset, target fn).
    code_pointer_slots: List[Tuple[int, str]]
    #: The slot whose content flows into an indirect call (live handler).
    handler_slot: Optional[int]
    #: Data slot loaded into an argument register at the same call (the
    #: parameter the handler will be invoked with).
    param_slot: Optional[int]
    #: Code-pointer slots whose targets are never directly called —
    #: dormant capabilities worth stealing (data offset, target fn).
    dormant_slots: List[Tuple[int, str]]
    #: Data symbols whose addresses are materialized in text: candidate
    #: identities for a data pointer leaked from the heap (offsets).
    anchor_offsets: List[int]


def mine_data_pointers(binary: Binary) -> DataPointerMap:
    """Mine the data-section pointer topology from a reference binary."""
    from repro.toolchain.callconv import ARG_REGS

    code_pointer_slots = [
        (offset, symbol)
        for offset, symbol, _ in binary.data_relocs
        if symbol in binary.symbols_text
    ]
    direct_targets = set()
    anchors = set()
    for _, instr in binary.text:
        if instr.op is Op.CALL and isinstance(instr.a, Imm) and instr.a.symbol:
            direct_targets.add(instr.a.symbol)
        for operand in (instr.a, instr.b):
            if isinstance(operand, Imm) and operand.symbol in binary.symbols_data:
                anchors.add(binary.symbols_data[operand.symbol])
            if isinstance(operand, Mem) and operand.symbol in binary.symbols_data:
                # Globals addressed directly also anchor the section.
                anchors.add(binary.symbols_data[operand.symbol])

    handler_slot: Optional[int] = None
    param_slot: Optional[int] = None
    arg_names = {reg.name.lower() for reg in ARG_REGS}
    text = binary.text
    for index, (_, instr) in enumerate(text):
        if instr.op is not Op.CALL or not isinstance(instr.a, Reg):
            continue
        # Forward mini-dataflow over the preceding straight-line window:
        # which data symbol flows into the called register, and which
        # into an argument register?
        provenance: Dict[str, Optional[str]] = {}
        start = max(0, index - 16)
        for _, prior in text[start:index]:
            if prior.op in _STOPPERS:
                provenance.clear()
                continue
            if prior.op is Op.MOV and isinstance(prior.a, Reg):
                dest = prior.a.name.lower()
                if isinstance(prior.b, Mem) and prior.b.symbol in binary.symbols_data:
                    provenance[dest] = prior.b.symbol
                elif isinstance(prior.b, Reg):
                    provenance[dest] = provenance.get(prior.b.name.lower())
                else:
                    provenance[dest] = None
        called = provenance.get(instr.a.name.lower())
        if called is not None:
            handler_slot = binary.symbols_data[called]
            for name in arg_names:
                symbol = provenance.get(name)
                if symbol is not None and binary.symbols_data[symbol] != handler_slot:
                    param_slot = binary.symbols_data[symbol]
                    break
            break

    dormant = [
        (offset, symbol)
        for offset, symbol in code_pointer_slots
        if symbol not in direct_targets and offset != handler_slot
    ]
    return DataPointerMap(
        code_pointer_slots=sorted(code_pointer_slots),
        handler_slot=handler_slot,
        param_slot=param_slot,
        dormant_slots=sorted(dormant),
        anchor_offsets=sorted(anchors),
    )


# ---------------------------------------------------------------------------
# concrete validation (the GADGET004 self-check)
# ---------------------------------------------------------------------------


def executable(record: GadgetRecord) -> bool:
    """Can the summary be validated by concrete execution?  Pure ret
    gadgets whose memory effects stay on the (attacker-seeded) stack."""
    summary = record.summary
    if record.kind != "ret" or not summary.pure or summary.stack_delta is None:
        return False
    slots = [address[1] for address in summary.loads]
    slots += [address[1] for address, _ in summary.stores]
    if summary.ret_slot is not None:
        slots.append(summary.ret_slot)
    return all(abs(slot) < 4096 for slot in slots)


def concrete_check(
    binary: Binary, record: GadgetRecord, *, load_seed: int = 0xC0FFEE, rng_seed: int = 0
) -> Optional[str]:
    """Execute the suffix on the reference backend and compare against
    the summary's predictions.  Returns a mismatch description or None.

    The machine stack is seeded with pseudo-random words, every GPR with
    a pseudo-random value, and the gadget entered mid-stream at its text
    offset — exactly how a hijacked return would land on it.
    """
    import random

    from repro.machine.cpu import CPU, ExecutionResult
    from repro.machine.costs import get_costs
    from repro.machine.loader import load_binary

    if not executable(record):
        return "record is not statically executable"
    summary = record.summary
    process = load_binary(binary, seed=load_seed, execute_only=False)
    cpu = CPU(process, get_costs("epyc-rome"), backend="reference")
    layout = process.layout

    rng = random.Random((rng_seed << 16) ^ record.offset ^ record.length)
    entry_rsp = layout.stack_base + (layout.stack_size // 2 & ~0xF)
    init_regs: Dict[int, int] = {}
    for reg in range(16):
        if reg == int(Reg.RSP):
            continue
        value = rng.getrandbits(64)
        cpu.regs[reg] = value
        init_regs[reg] = value
    cpu.regs[Reg.RSP] = entry_rsp

    low = entry_rsp - 8 * 1024
    high = entry_rsp + 8 * 1024
    stack_words: Dict[int, int] = {}
    for address in range(low, high, WORD):
        word = rng.getrandbits(64)
        process.memory.write_word(address, word)
        stack_words[address] = word

    def evaluate(value: Tuple) -> Optional[int]:
        kind = value[0]
        if kind == "const":
            return value[1] & MASK64
        if kind == "ireg":
            return (init_regs[value[1]] + value[2]) & MASK64
        if kind == "sld":
            return (stack_words[entry_rsp + value[1]] + value[2]) & MASK64
        if kind == "rsp":
            return (entry_rsp + value[1]) & MASK64
        return None  # glob/sym need the image map; skip

    cpu.rip = layout.text_base + record.offset
    result = ExecutionResult()
    output_before = len(process.output)
    cpu.step(result, max_steps=record.length)

    if summary.stack_delta is not None:
        want_rsp = (entry_rsp + summary.stack_delta) & MASK64
        if cpu.regs[Reg.RSP] != want_rsp:
            return f"rsp: predicted {want_rsp:#x}, got {cpu.regs[Reg.RSP]:#x}"
    if summary.ret_slot is not None:
        want_rip = stack_words[entry_rsp + summary.ret_slot]
        if cpu.rip != want_rip:
            return f"rip: predicted {want_rip:#x}, got {cpu.rip:#x}"
    for reg_name, value in summary.reg_effects:
        predicted = evaluate(value)
        if predicted is None:
            continue
        got = cpu.regs[Reg[reg_name.upper()]]
        if got != predicted:
            return f"{reg_name}: predicted {predicted:#x}, got {got:#x}"
    emitted = process.output[output_before:]
    predicted_out = [evaluate(value) for value in summary.out_values]
    if len(emitted) != len(predicted_out):
        return f"out: predicted {len(predicted_out)} words, got {len(emitted)}"
    for index, (want, got) in enumerate(zip(predicted_out, emitted)):
        if want is not None and want != got:
            return f"out[{index}]: predicted {want:#x}, got {got:#x}"
    return None


# ---------------------------------------------------------------------------
# findings (GADGET rule family)
# ---------------------------------------------------------------------------

#: Capabilities that make a surviving gadget *dangerous* — directly
#: usable by the synthesizer rather than mere chaff.
DANGEROUS_CAPABILITIES = frozenset(
    {"write-mem", "emit-out", "stack-pivot", "dispatch"}
)


def _is_dangerous(summary: GadgetSummary) -> bool:
    caps = summary.capabilities()
    if caps & DANGEROUS_CAPABILITIES:
        return True
    return any(cap.startswith("load-reg:") for cap in caps)


def gadget_findings(
    censuses: Sequence[GadgetCensus],
    seeds: Sequence[int],
    *,
    diversified: bool,
    chains: Sequence[Chain] = (),
) -> FindingsReport:
    """Report invariant dangerous gadgets and transferring chains.

    Only *diversified* variant sets produce findings: surviving gadgets
    across identical builds are expected, not a defect.
    """
    report = FindingsReport()
    if not diversified or len(censuses) < 2:
        return report
    invariants = find_invariants(censuses, seeds)
    by_pinned: Dict[Tuple[int, str], GadgetRecord] = {}
    for census in censuses:
        for record in census.records:
            by_pinned.setdefault((record.offset, record.key), record)
    for offset, key, kind in invariants.pinned:
        record = by_pinned[(offset, key)]
        if not _is_dangerous(record.summary):
            continue
        rule = "GADGET001" if kind == "ret" else "GADGET002"
        report.add(
            rule,
            where=f"text+{offset:#x}",
            message=f"{kind} gadget survives position-pinned across seeds {list(seeds)}",
            detail="; ".join(record.text),
        )
    for chain in chains:
        for index, census in enumerate(censuses[1:], start=1):
            if chain.transfers_to(census):
                report.add(
                    "GADGET003",
                    where=f"chain:{chain.goal}",
                    message=(
                        f"synthesized {chain.goal} chain from seed {seeds[0]} "
                        f"transfers position-pinned to seed {seeds[index]}"
                    ),
                    detail=f"{len(chain.gadgets)} gadgets, {len(chain.words)} stack words",
                )
    return report


def selfcheck(
    binary: Binary, census: GadgetCensus, *, sample: int = 24, rng_seed: int = 0
) -> Tuple[int, FindingsReport]:
    """Concretely validate a deterministic sample of executable records.

    Returns (records checked, findings) — any mismatch is a GADGET004.
    """
    report = FindingsReport()
    candidates = [record for record in census.records if executable(record)]
    # Deterministic spread across the census, longest suffixes first so
    # multi-effect summaries get covered.
    candidates.sort(key=lambda record: (-record.length, record.offset))
    step = max(1, len(candidates) // sample) if candidates else 1
    chosen = candidates[::step][:sample]
    for record in chosen:
        mismatch = concrete_check(binary, record, rng_seed=rng_seed)
        if mismatch is not None:
            report.add(
                "GADGET004",
                where=f"text+{record.offset:#x}+{record.length}",
                message="semantic summary failed concrete re-execution",
                detail=mismatch,
            )
    return len(chosen), report


# ---------------------------------------------------------------------------
# the repro-gadgets/v1 artifact
# ---------------------------------------------------------------------------

SCHEMA = "repro-gadgets/v1"


@dataclass
class MineReport:
    """Everything one ``python -m repro mine`` invocation measured."""

    workload: str
    config: str
    seeds: List[int]
    window: int
    variants: List[Dict[str, object]] = field(default_factory=list)
    survival: Dict[str, Dict[str, object]] = field(default_factory=dict)
    invariants: Dict[str, object] = field(default_factory=dict)
    synthesis: List[Dict[str, object]] = field(default_factory=list)
    data_map: Dict[str, object] = field(default_factory=dict)
    selfcheck: Dict[str, int] = field(default_factory=dict)
    findings: List[Dict[str, object]] = field(default_factory=list)
    ok: bool = True

    def to_json(self) -> str:
        payload = {
            "schema": SCHEMA,
            "workload": self.workload,
            "config": self.config,
            "seeds": self.seeds,
            "window": self.window,
            "variants": self.variants,
            "survival": self.survival,
            "invariants": self.invariants,
            "synthesis": self.synthesis,
            "data_map": self.data_map,
            "selfcheck": self.selfcheck,
            "findings": self.findings,
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"gadget census: {self.workload} under {self.config}, "
            f"{len(self.seeds)} variants (seeds {self.seeds}), window {self.window}"
        ]
        for variant in self.variants:
            counts = variant["counts"]
            lines.append(
                f"  seed {variant['seed']:>4}: {variant['total']:5d} gadgets "
                f"(ret {counts['ret']}, jop-jmp {counts['jop-jmp']}, "
                f"jop-call {counts['jop-call']}), "
                f"{variant['semantic_classes']} semantic classes"
            )
        for mode in ("text_pinned", "semantic_pinned", "semantic_independent"):
            if mode in self.survival:
                row = self.survival[mode]
                lines.append(
                    f"  survival [{mode:>20}]: mean {row['mean']:.4f}, max {row['max']:.4f}"
                )
        if self.invariants:
            lines.append(
                f"  invariant classes: {self.invariants['position_pinned']} pinned, "
                f"{self.invariants['position_independent']} position-independent "
                f"({self.invariants['dangerous_pinned']} dangerous pinned)"
            )
        for row in self.synthesis:
            status = "solved" if row["solved"] else "unsolved"
            extra = (
                f": {row['gadgets']} gadgets, {row['words']} stack words"
                if row["solved"]
                else ""
            )
            lines.append(f"  synthesize [{row['goal']:>18}]: {status}{extra}")
        if self.selfcheck:
            lines.append(
                f"  selfcheck: {self.selfcheck['checked']} summaries re-executed, "
                f"{self.selfcheck['mismatches']} mismatches"
            )
        lines.append(f"  findings: {len(self.findings)}")
        return "\n".join(lines)


def validate(payload: Dict[str, object]) -> List[str]:
    """Schema check for a parsed repro-gadgets/v1 artifact."""
    problems = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, want {SCHEMA!r}")
        return problems
    for field_name in ("workload", "config", "seeds", "window", "variants", "survival", "synthesis"):
        if field_name not in payload:
            problems.append(f"missing field {field_name!r}")
    seeds = payload.get("seeds")
    if not isinstance(seeds, list) or len(seeds) < 2:
        problems.append("seeds must list at least two variants")
    variants = payload.get("variants", [])
    if isinstance(variants, list):
        if isinstance(seeds, list) and len(variants) != len(seeds):
            problems.append("one variants row per seed required")
        for row in variants:
            counts = row.get("counts", {}) if isinstance(row, dict) else {}
            for kind in ("ret", "jop-jmp", "jop-call"):
                if kind not in counts:
                    problems.append(f"variant row missing count {kind!r}")
                    break
            if isinstance(row, dict) and row.get("total", -1) != sum(counts.values()):
                problems.append("variant total does not equal the kind counts")
    else:
        problems.append("variants must be a list")
    survival = payload.get("survival", {})
    if isinstance(survival, dict):
        for mode in ("text_pinned", "semantic_pinned", "semantic_independent"):
            row = survival.get(mode)
            if not isinstance(row, dict) or "mean" not in row or "max" not in row:
                problems.append(f"survival missing mode {mode!r}")
            else:
                for stat in ("mean", "max"):
                    value = row[stat]
                    if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                        problems.append(f"survival {mode}.{stat} out of [0,1]")
    else:
        problems.append("survival must be a mapping")
    for row in payload.get("synthesis", []) or []:
        if not isinstance(row, dict) or "goal" not in row or "solved" not in row:
            problems.append("synthesis rows need goal and solved")
            break
    return problems


def mine(
    module,
    config,
    seeds: Sequence[int],
    *,
    workload: str = "module",
    config_name: str = "config",
    entry: str = "main",
    window: int = GADGET_WINDOW,
    check_sample: int = 24,
) -> MineReport:
    """Compile N variants, census them, intersect, synthesize, self-check."""
    from repro.core.compiler import compile_module  # deferred: avoids cycle

    seeds = list(seeds)
    if len(seeds) < 2:
        raise ValueError("mining needs at least two seed variants")
    binaries = []
    censuses = []
    for seed in seeds:
        variant_config = config.replace(seed=seed, verify=False)
        binary = compile_module(module, variant_config, entry=entry)
        binaries.append(binary)
        censuses.append(take_census(binary, window=window, seed=seed))

    report = MineReport(
        workload=workload, config=config_name, seeds=seeds, window=window
    )
    for seed, census in zip(seeds, censuses):
        report.variants.append(
            {
                "seed": seed,
                "counts": census.counts,
                "total": len(census.records),
                "semantic_classes": len(census.keys()),
            }
        )

    def survival_stats(pairs: List[Tuple[int, int, float]]) -> Dict[str, object]:
        fractions = [fraction for _, _, fraction in pairs]
        return {
            "pairs": [[a, b, round(fraction, 6)] for a, b, fraction in pairs],
            "mean": sum(fractions) / len(fractions) if fractions else 0.0,
            "max": max(fractions, default=0.0),
        }

    text_pairs = []
    for i in range(len(censuses)):
        for j in range(i + 1, len(censuses)):
            texts_i, texts_j = censuses[i].texts(), censuses[j].texts()
            smaller = min(len(texts_i), len(texts_j)) or 1
            text_pairs.append((seeds[i], seeds[j], len(texts_i & texts_j) / smaller))
    invariants = find_invariants(censuses, seeds)
    report.survival = {
        "text_pinned": survival_stats(text_pairs),
        "semantic_pinned": survival_stats(invariants.pairwise_pinned),
        "semantic_independent": survival_stats(invariants.pairwise_independent),
    }
    dangerous_pinned = 0
    by_pinned: Dict[Tuple[int, str], GadgetRecord] = {}
    for census in censuses:
        for record in census.records:
            by_pinned.setdefault((record.offset, record.key), record)
    for offset, key, _ in invariants.pinned:
        if _is_dangerous(by_pinned[(offset, key)].summary):
            dangerous_pinned += 1
    report.invariants = {
        "position_pinned": len(invariants.pinned),
        "position_independent": len(invariants.independent),
        "dangerous_pinned": dangerous_pinned,
    }

    # Synthesis against the first variant (the attacker's copy).
    first = censuses[0]
    entry_offset = min(
        (record.entry_offset for record in binaries[0].frame_records.values()),
        default=0,
    )
    goals = [
        ("emit-output", EmitOutput(0xDEAD_5CA7)),
        ("reg-load-then-call", RegLoadThenCall(None, 0x5CA7, entry_offset)),
        ("write-what-where", WriteWhatWhere(0xD47A_0000, 0x5CA7)),
        ("stack-pivot", StackPivot(0x57AC_0000)),
    ]
    chains = []
    for name, goal in goals:
        chain = synthesize(first, goal)
        row: Dict[str, object] = {"goal": name, "solved": chain is not None}
        if chain is not None:
            chains.append(chain)
            row["gadgets"] = len(chain.gadgets)
            row["words"] = len(chain.words)
            row["transfers"] = {
                str(seeds[index]): chain.transfers_to(censuses[index])
                for index in range(1, len(censuses))
            }
        report.synthesis.append(row)

    data_map = mine_data_pointers(binaries[0])
    report.data_map = {
        "code_pointer_slots": [[offset, symbol] for offset, symbol in data_map.code_pointer_slots],
        "handler_slot": data_map.handler_slot,
        "param_slot": data_map.param_slot,
        "dormant_slots": [[offset, symbol] for offset, symbol in data_map.dormant_slots],
        "anchor_offsets": data_map.anchor_offsets,
    }

    checked, check_report = selfcheck(binaries[0], first, sample=check_sample)
    report.selfcheck = {"checked": checked, "mismatches": len(check_report.findings)}

    findings = gadget_findings(
        censuses, seeds, diversified=config.any_diversification, chains=chains
    )
    findings.extend(check_report)
    report.findings = [
        {
            "rule": finding.rule,
            "where": finding.where,
            "message": finding.message,
            "detail": finding.detail,
        }
        for finding in findings
    ]
    report.ok = not check_report.findings
    return report
