"""IR verifier: structural and dataflow checks over toolchain IR modules.

A superset of :meth:`Module.validate` that *reports* instead of raising:
CFG well-formedness (termination, label resolution), symbol resolution,
call-signature arity, and a dominance-lite def-before-use analysis over
virtual registers — a forward must-analysis computing, per block, the set
of vregs defined on *every* path from entry; a use outside that set is a
path that can read garbage (IR006).

The verifier is a pure function of the module: it never mutates, and it
accepts exactly the IR the rest of the toolchain accepts (every pass must
map verifier-clean IR to verifier-clean IR; the property tests enforce
this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import FindingsReport
from repro.toolchain.ir import (
    BIN_OPS,
    CMP_PREDS,
    Function,
    IRInstr,
    Module,
    OPCODES,
    TERMINATORS,
)

#: Expected argument counts per opcode (None = variable, checked ad hoc).
_ARITY: Dict[str, Optional[int]] = {
    "const": 2,
    "bin": 4,
    "cmp": 4,
    "load": 3,
    "store": 3,
    "local_load": 3,
    "local_store": 3,
    "addr_local": 2,
    "global_load": 3,
    "global_store": 3,
    "addr_global": 2,
    "func_addr": 2,
    "call": 3,
    "icall": 3,
    "rtcall": 3,
    "br": 1,
    "cbr": 3,
    "ret": 1,
    "out": 1,
}

#: Max register-passed arguments for runtime-service calls (callconv).
_MAX_RTCALL_ARGS = 6


def instr_def(instr: IRInstr) -> Optional[str]:
    """The virtual register ``instr`` defines, if any."""
    op = instr.op
    if op in ("const", "load", "local_load", "addr_local", "global_load",
              "addr_global", "func_addr"):
        return instr.args[0]
    if op in ("bin", "cmp"):
        return instr.args[1]
    if op in ("call", "icall", "rtcall"):
        return instr.args[0]  # may be None for void calls
    return None


def instr_uses(instr: IRInstr) -> List[str]:
    """Virtual registers ``instr`` reads (constants filtered out)."""
    op = instr.op
    a = instr.args
    raw: List[object] = []
    if op == "bin" or op == "cmp":
        raw = [a[2], a[3]]
    elif op == "load":
        raw = [a[1]]
    elif op == "store":
        raw = [a[0], a[2]]
    elif op == "local_load" or op == "global_load":
        raw = [a[2]]
    elif op == "local_store" or op == "global_store":
        raw = [a[1], a[2]]
    elif op == "call" or op == "rtcall":
        raw = list(a[2])
    elif op == "icall":
        raw = [a[1]] + list(a[2])
    elif op == "cbr":
        raw = [a[0]]
    elif op == "ret":
        raw = [a[0]] if a and a[0] is not None else []
    elif op == "out":
        raw = [a[0]]
    return [v for v in raw if isinstance(v, str)]


def verify_module(module: Module, *, target: Optional[str] = None) -> FindingsReport:
    """Verify ``module``; returns a (possibly empty) findings report."""
    report = FindingsReport(target=target or f"ir:{module.name}")
    global_names = {g.name for g in module.globals}
    seen_globals: Set[str] = set()
    for gv in module.globals:
        if gv.name in seen_globals:
            report.add("IR004", f"{module.name}/{gv.name}", "duplicate global")
        seen_globals.add(gv.name)

    for fn in module.functions.values():
        _verify_function(module, fn, global_names, report)
    return report


def _verify_function(
    module: Module, fn: Function, global_names: Set[str], report: FindingsReport
) -> None:
    if not fn.blocks:
        report.add("IR007", fn.name, "function has no basic blocks")
        return

    labels: Set[str] = set()
    for block in fn.blocks:
        if block.label in labels:
            report.add("IR003", f"{fn.name}/{block.label}", "duplicate block label")
        labels.add(block.label)

    structurally_ok = True
    for block in fn.blocks:
        where = f"{fn.name}/{block.label}"
        if block.terminator is None:
            report.add("IR002", where, "block does not end in a terminator")
            structurally_ok = False
        for index, instr in enumerate(block.instrs):
            if instr.op in TERMINATORS and index != len(block.instrs) - 1:
                report.add("IR002", where, f"terminator {instr.op!r} mid-block")
                structurally_ok = False
            if not _verify_instr(module, fn, where, instr, labels, global_names, report):
                structurally_ok = False

    # Dataflow only makes sense over a structurally sound CFG.
    if structurally_ok:
        _verify_def_before_use(fn, report)


def _verify_instr(
    module: Module,
    fn: Function,
    where: str,
    instr: IRInstr,
    labels: Set[str],
    global_names: Set[str],
    report: FindingsReport,
) -> bool:
    op = instr.op

    def site() -> str:  # lazy: repr(instr) only pays off when a finding fires
        return f"{where}: {instr}"

    if op not in OPCODES:
        report.add("IR001", site(), f"unknown opcode {op!r}")
        return False
    expected = _ARITY[op]
    if expected is not None and len(instr.args) != expected:
        report.add("IR001", site(), f"{op} expects {expected} args, got {len(instr.args)}")
        return False

    ok = True
    if op == "bin" and instr.args[0] not in BIN_OPS:
        report.add("IR001", site(), f"unknown binary op {instr.args[0]!r}")
        ok = False
    if op == "cmp" and instr.args[0] not in CMP_PREDS:
        report.add("IR001", site(), f"unknown predicate {instr.args[0]!r}")
        ok = False
    if op in ("local_load", "local_store", "addr_local"):
        local = instr.args[1] if op != "local_store" else instr.args[0]
        if local not in fn.locals and local not in fn.params:
            report.add("IR004", site(), f"unknown local {local!r}")
            ok = False
    if op in ("global_load", "global_store", "addr_global"):
        gname = instr.args[1] if op != "global_store" else instr.args[0]
        if gname not in global_names:
            report.add("IR004", site(), f"unknown global {gname!r}")
            ok = False
    if op in ("call", "func_addr"):
        fname = instr.args[1]
        callee = module.functions.get(fname)
        if callee is None:
            report.add("IR004", site(), f"unknown function {fname!r}")
            ok = False
        elif op == "call" and len(instr.args[2]) != len(callee.params):
            report.add(
                "IR005",
                site(),
                f"call passes {len(instr.args[2])} args, "
                f"{fname} takes {len(callee.params)}",
                expected=len(callee.params),
                actual=len(instr.args[2]),
            )
            ok = False
    if op == "rtcall" and len(instr.args[2]) > _MAX_RTCALL_ARGS:
        report.add(
            "IR005",
            site(),
            f"rtcall passes {len(instr.args[2])} args, "
            f"runtime services take at most {_MAX_RTCALL_ARGS}",
        )
        ok = False
    if op == "br" and instr.args[0] not in labels:
        report.add("IR003", site(), f"unknown label {instr.args[0]!r}")
        ok = False
    if op == "cbr":
        for label in instr.args[1:3]:
            if label not in labels:
                report.add("IR003", site(), f"unknown label {label!r}")
                ok = False
    return ok


def _successors(block_instrs: List[IRInstr]) -> List[str]:
    terminator = block_instrs[-1]
    if terminator.op == "br":
        return [terminator.args[0]]
    if terminator.op == "cbr":
        return list(terminator.args[1:3])
    return []


def _verify_def_before_use(fn: Function, report: FindingsReport) -> None:
    """Dominance-lite must-analysis: every use is defined on all paths.

    ``in[B]`` = intersection of ``out[P]`` over predecessors P (TOP for
    unvisited); walking a block, each use must be in the running defined
    set.  Reported once per (block, vreg) to keep the noise bounded.
    """
    index: Dict[str, int] = {b.label: i for i, b in enumerate(fn.blocks)}
    preds: Dict[str, List[str]] = {b.label: [] for b in fn.blocks}
    for block in fn.blocks:
        for succ in _successors(block.instrs):
            preds[succ].append(block.label)

    TOP = None  # lattice top: "not yet reached"
    in_sets: Dict[str, Optional[frozenset]] = {b.label: TOP for b in fn.blocks}
    in_sets[fn.blocks[0].label] = frozenset()

    # Iterate to fixpoint; sets only shrink (or leave TOP), so this
    # terminates quickly on the small functions the toolchain emits.
    changed = True
    while changed:
        changed = False
        for block in fn.blocks:
            label = block.label
            if label != fn.blocks[0].label:
                merged: Optional[frozenset] = TOP
                for pred in preds[label]:
                    pred_out = _block_out(fn, index[pred], in_sets[pred])
                    if pred_out is TOP:
                        continue
                    merged = pred_out if merged is TOP else (merged & pred_out)
                if merged is not TOP and merged != in_sets[label]:
                    if in_sets[label] is TOP or merged != in_sets[label]:
                        in_sets[label] = merged
                        changed = True

    for block in fn.blocks:
        live = in_sets[block.label]
        if live is TOP:
            continue  # unreachable block: no path, nothing to prove
        defined: Set[str] = set(live)
        flagged: Set[str] = set()
        for instr in block.instrs:
            for use in instr_uses(instr):
                if use not in defined and use not in flagged:
                    report.add(
                        "IR006",
                        f"{fn.name}/{block.label}: {instr}",
                        f"vreg {use!r} may be used before definition",
                        vreg=use,
                    )
                    flagged.add(use)
            dst = instr_def(instr)
            if dst is not None:
                defined.add(dst)


def _block_out(
    fn: Function, block_index: int, in_set: Optional[frozenset]
) -> Optional[frozenset]:
    if in_set is None:
        return None
    defs = set(in_set)
    for instr in fn.blocks[block_index].instrs:
        dst = instr_def(instr)
        if dst is not None:
            defs.add(dst)
    return frozenset(defs)
