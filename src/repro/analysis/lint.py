"""The lint driver behind ``python -m repro lint``.

Sweeps a corpus (the SPEC-like suite, the webserver modules, or a
generated browser-scale corpus) through the full verification stack —
IR verifier, compile, binary invariant checker, loader, guard-page check
— once per seed, aggregates every finding, and (with at least two seeds)
reuses the per-seed binaries for a diversification-entropy audit at zero
extra compiles.  CI gates on an empty findings list.

``--run`` additionally executes each (module, seed) cell through the
session :class:`~repro.eval.engine.ExperimentEngine` with
``RunRequest.verify`` set, so dynamic faults surface as ``LINT001``
findings next to the static ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import entropy as entropy_mod
from repro.analysis.findings import Finding, FindingsReport
from repro.core.config import R2CConfig
from repro.toolchain.ir import Module

CORPORA = ("spec", "webserver", "browser")

#: Named configs lint can sweep (default: the paper's full configuration).
CONFIGS: Dict[str, Callable[..., R2CConfig]] = {
    "full": lambda seed: R2CConfig.full(seed=seed),
    "full-push": lambda seed: R2CConfig.full(seed=seed, btra_mode="push"),
    "push": R2CConfig.btra_push_only,
    "avx": R2CConfig.btra_avx_only,
    "btdp": R2CConfig.btdp_only,
    "prolog": R2CConfig.prolog_only,
    "layout": R2CConfig.layout_only,
    "oia": R2CConfig.oia_only,
    "baseline": R2CConfig.baseline,
}


def build_corpus(corpus: str, *, quick: bool = False) -> List[Tuple[str, Module]]:
    """Materialize the named corpus as (name, module) pairs."""
    if corpus == "spec":
        from repro.workloads.spec import SPEC_BENCHMARKS, build_spec_benchmark

        return [(name, build_spec_benchmark(name, scale=1)) for name in SPEC_BENCHMARKS]
    if corpus == "webserver":
        from repro.workloads.webserver import SERVERS, build_webserver

        requests = 30 if quick else 150
        return [
            (server, build_webserver(server, requests=requests)) for server in SERVERS
        ]
    if corpus == "browser":
        from repro.workloads.browser import generate_browser_corpus

        functions = 60 if quick else 300
        return [("browser", generate_browser_corpus(functions=functions, seed=0))]
    raise ValueError(f"unknown corpus {corpus!r}; choose from {CORPORA}")


@dataclass
class LintTargetResult:
    """Verification outcome for one module across the seed sweep."""

    name: str
    seeds: List[int]
    findings: List[Finding] = field(default_factory=list)
    audit: Optional[entropy_mod.EntropyAudit] = None

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class LintReport:
    """The full lint sweep: corpus x config x seeds."""

    corpus: str
    config_name: str
    seeds: List[int]
    targets: List[LintTargetResult] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        return [finding for target in self.targets for finding in target.findings]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps(
            {
                "corpus": self.corpus,
                "config": self.config_name,
                "seeds": self.seeds,
                "ok": self.ok,
                "findings": [
                    {
                        "target": target.name,
                        "rule": finding.rule,
                        "where": finding.where,
                        "message": finding.message,
                    }
                    for target in self.targets
                    for finding in target.findings
                ],
            },
            sort_keys=True,
            indent=2,
        )


def lint_module(
    name: str,
    module: Module,
    config_for_seed: Callable[[int], R2CConfig],
    seeds: List[int],
    *,
    run: bool = False,
) -> LintTargetResult:
    """Run the full verification stack over one module."""
    from repro.core.compiler import compile_module
    from repro.machine.loader import load_binary

    result = LintTargetResult(name=name, seeds=list(seeds))

    report = FindingsReport(target=f"ir:{name}")
    from repro.analysis import verify_binary, verify_loaded, verify_module

    report.extend(verify_module(module, target=f"ir:{name}"))
    result.findings.extend(report)
    if not report.ok:
        return result  # broken IR: downstream reports would be noise

    binaries = []
    for seed in seeds:
        # Verification hooks are forced off for lint's own compiles: lint
        # *collects* findings per seed rather than dying on the first one.
        config = config_for_seed(seed).replace(verify=False)
        binary = compile_module(module, config)
        binaries.append(binary)
        bin_report = verify_binary(binary, target=f"{name}/seed{seed}")
        result.findings.extend(bin_report)
        if bin_report.ok:
            process = load_binary(binary, seed=seed)
            result.findings.extend(verify_loaded(process, target=f"{name}/seed{seed}"))

    if len(binaries) >= 2:
        result.audit = entropy_mod.audit_binaries(binaries, list(seeds))

    if run and result.ok:
        _lint_run(name, module, config_for_seed, seeds, result)
    return result


def _lint_run(
    name: str,
    module: Module,
    config_for_seed: Callable[[int], R2CConfig],
    seeds: List[int],
    result: LintTargetResult,
) -> None:
    """Execute each cell under ``RunRequest.verify``; faults become findings."""
    from repro.analysis.findings import VerificationError
    from repro.eval.engine import RunRequest, get_session_engine

    engine = get_session_engine()
    for seed in seeds:
        request = RunRequest(
            module=module,
            config=config_for_seed(seed).replace(verify=False),
            load_seed=seed,
            verify=True,
            label=f"lint/{name}/seed{seed}",
        )
        try:
            record = engine.run(request)
        except VerificationError as error:
            result.findings.extend(error.report)
            continue
        if record.exit_code != 0:
            result.findings.append(
                Finding(
                    rule="LINT001",
                    where=f"{name}/seed{seed}",
                    message=f"workload exited {record.exit_code} under verification",
                    detail={"exit_code": record.exit_code},
                )
            )


def run_lint(
    corpus: str = "spec",
    *,
    seeds: int = 3,
    config: str = "full",
    quick: bool = False,
    run: bool = False,
) -> LintReport:
    """Lint ``corpus`` under the named config across ``seeds`` seeds."""
    if config not in CONFIGS:
        raise ValueError(f"unknown config {config!r}; choose from {sorted(CONFIGS)}")
    config_for_seed = CONFIGS[config]
    seed_list = list(range(1, seeds + 1))
    report = LintReport(corpus=corpus, config_name=config, seeds=seed_list)
    for name, module in build_corpus(corpus, quick=quick):
        report.targets.append(
            lint_module(name, module, config_for_seed, seed_list, run=run)
        )
    return report
