"""Diagnostics model for the static verification layer.

Every check in :mod:`repro.analysis` reports through this module: a
:class:`Finding` is one violation of a structural invariant, carrying a
*stable rule ID* (``BTRA001``, ``STACK002``, ...) so CI can gate on rule
sets and tests can pin a mutation to the exact rule it must trip.  The
registry below is the taxonomy; adding a rule means adding a row here
first, and IDs are never reused or renumbered.

The model is deliberately dependency-free (only :mod:`repro.errors`) so
that the toolchain and pass layers can raise through it without import
cycles — the ad-hoc sanity asserts that used to live in
``toolchain/lower.py`` and ``core/passes/btra.py`` now funnel through
:func:`fail`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ToolchainError

#: Rule ID -> one-line description.  Stable: IDs are append-only.
RULES: Dict[str, str] = {
    # -- IR verifier (irverify.py) -----------------------------------------
    "IR001": "unknown opcode or malformed operand list",
    "IR002": "basic block missing a terminator, or terminator mid-block",
    "IR003": "branch to an unknown or duplicate block label",
    "IR004": "reference to an unknown local, global, or function symbol",
    "IR005": "call arity disagrees with the callee signature",
    "IR006": "virtual register used on a path that may not define it",
    "IR007": "function has no basic blocks",
    # -- binary invariant checker (binverify.py) ---------------------------
    "CFG001": "control transfer leaves the function or hits no instruction",
    "CFG002": "statically unanalyzable control transfer",
    "STACK001": "stack depth non-zero at return",
    "STACK002": "rsp not 16-byte aligned at a call instruction",
    "STACK003": "inconsistent stack depth at a control-flow join",
    "STACK004": "non-constant or non-word rsp adjustment",
    "CALL001": "direct call target is not a known function entry",
    "CALL002": "call instruction has no call-site record",
    "UNWIND001": "frame record disagrees with the computed prologue depth",
    "UNWIND002": "call-site record disagrees with the computed call depth",
    "UNWIND003": "call-site record does not follow a call instruction",
    "BTRA001": "return-address slot does not target the real return site",
    "BTRA002": "BTRA does not land on a trap inside a booby-trap body",
    "BTRA003": "BTRA pre/post counts do not bracket the return address",
    "BTRA004": "malformed BTRA setup sequence",
    "TRAP001": "prolog trap block disagrees with the diversification plan",
    "TRAP002": "booby-trap function body contains a non-trap instruction",
    "NOP001": "call-site NOP sled disagrees with the diversification plan",
    "BTDP001": "BTDP index outside the runtime pointer array",
    "BTDP002": "BTDP slot does not reference a guard page",
    "BTDP003": "BTDP prologue writes disagree with the plan or source symbol",
    # -- pass/lowering preconditions (raised via fail()) -------------------
    "PLAN001": "BTRA planning requires booby-trap functions in the plan",
    "PLAN002": "call site carries an odd pre-BTRA count",
    "PLAN003": "racy BTRA variant cannot carry post-BTRAs",
    "PLAN004": "unbalanced push depth after lowering an instruction",
    "PLAN005": "BTDP count set but module has no BTDP source symbol",
    # -- lint driver (lint.py) ---------------------------------------------
    "LINT001": "workload faulted while executing under verification",
    # -- gadget miner (gadgets.py) -----------------------------------------
    "GADGET001": "dangerous ret gadget survives position-pinned across variants",
    "GADGET002": "dangerous JOP gadget survives position-pinned across variants",
    "GADGET003": "synthesized chain transfers position-pinned to another variant",
    "GADGET004": "gadget semantic summary failed concrete re-execution",
}


@dataclass(frozen=True)
class Finding:
    """One violated invariant.

    ``where`` names the site (``"mcf/main"``, ``"nginx/handle_request+0x40"``);
    ``detail`` is free-form supporting data kept JSON-serializable.
    """

    rule: str
    where: str
    message: str
    detail: Dict[str, object] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unregistered rule ID {self.rule!r}")

    def __str__(self) -> str:
        return f"{self.rule} {self.where}: {self.message}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "rule": self.rule,
                "where": self.where,
                "message": self.message,
                "detail": self.detail,
            },
            sort_keys=True,
        )


class FindingsReport:
    """An ordered collection of findings from one verification target."""

    def __init__(self, target: str = "", findings: Optional[Iterable[Finding]] = None):
        self.target = target
        self.findings: List[Finding] = list(findings or ())

    def add(self, rule: str, where: str, message: str, **detail: object) -> Finding:
        finding = Finding(rule=rule, where=where, message=message, detail=detail)
        self.findings.append(finding)
        return finding

    def extend(self, other: "FindingsReport") -> None:
        self.findings.extend(other.findings)

    @property
    def ok(self) -> bool:
        return not self.findings

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def rules(self) -> List[str]:
        """The distinct rule IDs present, in first-seen order."""
        seen: List[str] = []
        for finding in self.findings:
            if finding.rule not in seen:
                seen.append(finding.rule)
        return seen

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def render(self, *, limit: int = 25) -> str:
        header = self.target or "verification"
        if self.ok:
            return f"{header}: clean"
        lines = [f"{header}: {len(self.findings)} finding(s)"]
        for finding in self.findings[:limit]:
            lines.append(f"  {finding}")
        if len(self.findings) > limit:
            lines.append(f"  ... and {len(self.findings) - limit} more")
        return "\n".join(lines)

    def raise_if_findings(self) -> None:
        if self.findings:
            raise VerificationError(self)


class VerificationError(ToolchainError):
    """A verification pass found (or a precondition violated) an invariant.

    Subclasses :class:`ToolchainError` so call sites that previously caught
    toolchain failures from the deduped lowering asserts keep working.
    """

    def __init__(self, report: FindingsReport):
        self.report = report
        super().__init__(report.render())

    @property
    def rules(self) -> List[str]:
        return self.report.rules()


def fail(rule: str, where: str, message: str, **detail: object) -> None:
    """Raise a single-finding :class:`VerificationError`.

    The funnel for in-toolchain precondition checks: call sites that used
    to ``raise ToolchainError(...)`` ad hoc now carry a stable rule ID.
    """
    report = FindingsReport(target=where)
    report.add(rule, where, message, **detail)
    raise VerificationError(report)
