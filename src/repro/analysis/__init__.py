"""Static verification layer: IR verifier, binary checker, entropy audit.

The subsystem has three provers and one knob:

* :func:`verify_module` — IR well-formedness + def-before-use dataflow;
* :func:`verify_binary` / :func:`verify_loaded` — the binary invariant
  checker (stack-depth abstract interpretation, unwind cross-checks, and
  the R2C-specific BTRA/BTDP/trap proofs);
* :mod:`repro.analysis.entropy` — does diversification diversify;
* :mod:`repro.analysis.gadgets` — the attack-side miner: semantic gadget
  census, cross-variant invariant search, and chain synthesis
  (``python -m repro mine``);
* the *session verify default* — whether the compiler runs the checkers
  as a post-condition hook after every build.  Off in normal use (lint
  and the engine verify explicitly), on across the test suite via
  ``conftest``, and overridable per-compilation with ``R2CConfig.verify``
  or globally with the ``R2C_VERIFY`` environment variable.
"""

from __future__ import annotations

import os

from repro.analysis.binverify import verify_binary, verify_loaded
from repro.analysis.findings import (
    RULES,
    Finding,
    FindingsReport,
    VerificationError,
    fail,
)
from repro.analysis.gadgets import (
    GadgetCensus,
    GadgetSummary,
    MineReport,
    mine,
    synthesize,
    take_census,
)
from repro.analysis.irverify import verify_module

__all__ = [
    "RULES",
    "Finding",
    "FindingsReport",
    "VerificationError",
    "fail",
    "verify_module",
    "verify_binary",
    "verify_loaded",
    "default_verify",
    "set_default_verify",
    "GadgetCensus",
    "GadgetSummary",
    "MineReport",
    "mine",
    "synthesize",
    "take_census",
]

_default_verify: bool = os.environ.get("R2C_VERIFY", "") not in ("", "0")


def default_verify() -> bool:
    """Whether compilations verify when ``R2CConfig.verify`` is ``None``."""
    return _default_verify


def set_default_verify(value: bool) -> bool:
    """Set the session verify default; returns the previous value."""
    global _default_verify
    previous = _default_verify
    _default_verify = bool(value)
    return previous
