"""Binary invariant checker: abstract interpretation over linked binaries.

Recovers each function's CFG from the text stream (the same decoding
:mod:`repro.toolchain.disasm` renders) and runs a symbolic stack-depth
abstract interpreter over every path:

* **push/pop/rsp balance** — depth returns to zero at every ``ret``, never
  goes negative, and agrees at every control-flow join (STACK001/003);
* **calling-convention conformance** — rsp is 16-byte aligned at every
  call (STACK002, mirroring the CPU's dynamic check), and direct call
  targets are real function entries (CALL001) with call-site records
  (CALL002), matching :mod:`repro.toolchain.callconv`;
* **.eh_frame cross-check** — the frame record's ``frame_bytes`` and
  ``post_offset`` must equal the computed prologue depth, and every
  call-site record's ``pre_words``/``cleanup_words`` must equal the
  computed depth at its call (UNWIND001/002/003), proving the metadata
  :mod:`repro.toolchain.unwind` consumes is sufficient to unwind;
* **the R2C-specific core** — per call site, the BTRA setup writes the
  *real* return address into the slot ``ret`` will consume (BTRA001),
  every booby-trapped return address lands on a trap instruction inside a
  booby-trap body (BTRA002), the recorded pre/post counts actually
  bracket the return address (BTRA003), prolog traps and NOP sleds land
  where the plan says (TRAP001/NOP001), and BTDP prologue writes draw
  from in-bounds array indices (BTDP001/003).

:func:`verify_loaded` adds the one invariant that only exists after the
runtime constructor ran: every BTDP array entry (and data-section decoy)
points into a guard page (BTDP002).

The checker reads only defender-side artifacts — the binary, its frame
and call-site records, and the plan stamped into ``binary.metadata`` —
never the RNG streams that produced them.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import FindingsReport
from repro.machine.isa import (
    Imm,
    Instruction,
    JCC_OPS,
    Mem,
    Op,
    Reg,
    WORD,
)
from repro.toolchain.binary import Binary, CallSiteRecord, FrameRecord
from repro.toolchain.plan import ModulePlan

_START = "_start"

#: {id(binary): reloc map} memo — Binary is an unhashable dataclass, so
#: the key is its id, kept honest by a weakref finalizer on the binary.
_RELOC_MAPS: Dict[int, Dict[int, Tuple[str, int]]] = {}


def _reloc_map(binary: Binary) -> Dict[int, Tuple[str, int]]:
    """{data offset: (symbol, addend)} — shared by every AVX call-site
    check in one binary."""
    key = id(binary)
    cached = _RELOC_MAPS.get(key)
    if cached is None:
        cached = {off: (sym, addend) for off, sym, addend in binary.data_relocs}
        _RELOC_MAPS[key] = cached
        weakref.finalize(binary, _RELOC_MAPS.pop, key, None)
    return cached

#: Vector load width in words, per opcode.
_VLOAD_WORDS = {Op.VLOAD: 4, Op.VLOAD512: 8}


class _FunctionCode:
    """One function's instructions, indexed for CFG recovery."""

    def __init__(self, record: FrameRecord, items: List[Tuple[int, Instruction]]):
        self.record = record
        self.items = items
        self._index_by_offset: Optional[Dict[int, int]] = None
        self._call_ordinals: Optional[Dict[int, int]] = None

    @property
    def index_by_offset(self) -> Dict[int, int]:
        # Lazy: only functions with resolved branches or call-site records
        # need the offset index (booby-trap bodies, for one, never do).
        if self._index_by_offset is None:
            self._index_by_offset = {
                offset: i for i, (offset, _) in enumerate(self.items)
            }
        return self._index_by_offset

    def at(self, index: int) -> Tuple[int, Instruction]:
        return self.items[index]

    def call_ordinal(self, index: int) -> int:
        """Which lowered call site (0-based, text order) ``index`` is."""
        if self._call_ordinals is None:
            self._call_ordinals = {}
            count = 0
            for i, (_, instr) in enumerate(self.items):
                if instr.op is Op.CALL:
                    self._call_ordinals[i] = count
                    count += 1
        return self._call_ordinals[index]


def _partition_text(binary: Binary) -> Dict[str, _FunctionCode]:
    """Split the text stream into per-function codes in one pass.

    Functions are laid out contiguously and non-overlapping, and
    ``binary.text`` is offset-sorted, so a single cursor suffices.
    """
    text = binary.text
    total = len(text)
    records = sorted(binary.frame_records.values(), key=lambda r: r.entry_offset)
    code: Dict[str, _FunctionCode] = {}
    cursor = 0
    for record in records:
        while cursor < total and text[cursor][0] < record.entry_offset:
            cursor += 1
        start = cursor
        end_offset = record.end_offset
        while cursor < total and text[cursor][0] < end_offset:
            cursor += 1
        code[record.name] = _FunctionCode(record, text[start:cursor])
    return code


def verify_binary(binary: Binary, *, target: Optional[str] = None) -> FindingsReport:
    """Statically verify ``binary``; returns a findings report."""
    report = FindingsReport(target=target or f"bin:{binary.name}")
    plan: Optional[ModulePlan] = binary.metadata.get("plan")
    booby_traps = set(binary.metadata.get("booby_trap_functions", ()))
    trampolines = {name for name, _ in plan.trampolines} if plan else set()

    code = _partition_text(binary)

    for name, fn_code in code.items():
        if name in booby_traps:
            _verify_booby_trap(name, fn_code, report)
        elif name in trampolines or name == _START:
            continue  # single-jump stubs / the synthesized entry shim
        else:
            _verify_function(binary, name, fn_code, plan, booby_traps, report)

    _verify_callsite_records(binary, code, report)
    return report


# ---------------------------------------------------------------------------
# booby traps
# ---------------------------------------------------------------------------


def _verify_booby_trap(name: str, fn_code: _FunctionCode, report: FindingsReport) -> None:
    for offset, instr in fn_code.items:
        if instr.op is not Op.TRAP:
            report.add(
                "TRAP002",
                f"{name}+{offset - fn_code.record.entry_offset:#x}",
                f"booby-trap body contains {instr.op.value}",
            )


# ---------------------------------------------------------------------------
# per-function abstract interpretation
# ---------------------------------------------------------------------------


def _rsp_delta_words(instr: Instruction, report: FindingsReport, where: str) -> int:
    """Stack-depth change in words for a sub/add-rsp instruction."""
    op = instr.op
    if not isinstance(instr.b, Imm) or instr.b.symbol is not None:
        report.add("STACK004", where, "rsp adjusted by a non-constant amount")
        return 0
    value = instr.b.value
    if value % WORD != 0:
        report.add("STACK004", where, f"rsp adjusted by {value} (not word-sized)")
        return 0
    return value // WORD if op is Op.SUB else -(value // WORD)


def _branch_target(binary: Binary, operand) -> Optional[int]:
    if isinstance(operand, Imm) and operand.symbol is not None:
        base = binary.symbols_text.get(operand.symbol)
        if base is not None:
            return base + operand.value
    return None


def _verify_function(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    plan: Optional[ModulePlan],
    booby_traps: set,
    report: FindingsReport,
) -> None:
    record = fn_code.record
    items = fn_code.items
    if not items:
        report.add("CFG001", name, "function covers no instructions")
        return
    entry = record.entry_offset

    def where(offset: int) -> str:
        return f"{name}+{offset - entry:#x}"

    fplan = plan.function_plan(name) if plan is not None else None

    # -- plan cross-checks: prolog traps, NOP sleds, BTDP writes ------------
    if fplan is not None:
        _verify_prolog_traps(binary, name, fn_code, fplan.prolog_traps, report)
        nops, source_reads = _count_plan_markers(
            fn_code,
            plan.btdp_source_symbol if fplan.btdp_count > 0 else None,
        )
        _verify_nop_sled(name, nops, fplan, report)
        _verify_btdp_prologue(binary, name, source_reads, plan, fplan, report)

    # -- worklist depth analysis -------------------------------------------
    depths: List[Optional[int]] = [None] * len(items)
    depths[0] = 0
    worklist = [0]
    body_depth_expected = record.frame_bytes // WORD + record.post_offset

    # The loop below visits each instruction (typically) once; it is on
    # the hot path of every verified compile, so the rsp-delta fast paths
    # are inlined, opcode tests are identity chains on local bindings (an
    # Op-keyed set lookup pays a Python-level enum __hash__ per
    # instruction), and site strings are only built when a finding fires.
    op_push, op_pop, op_sub, op_add, reg_rsp = Op.PUSH, Op.POP, Op.SUB, Op.ADD, Reg.RSP
    op_cmp, op_test, op_ret, op_exit, op_trap = Op.CMP, Op.TEST, Op.RET, Op.EXIT, Op.TRAP
    op_jmp, op_call = Op.JMP, Op.CALL
    op_je, op_jne, op_jl, op_jle, op_jg, op_jge = JCC_OPS
    total = len(items)

    while worklist:
        i = worklist.pop()
        offset, instr = items[i]
        depth = depths[i]
        op = instr.op

        if op is op_push:
            new_depth = depth + 1
        elif op is op_pop:
            new_depth = depth - 1
        elif (op is op_sub or op is op_add) and instr.a is reg_rsp:
            new_depth = depth + _rsp_delta_words(instr, report, where(offset))
        else:
            if instr.a is reg_rsp and op is not op_cmp and op is not op_test:
                # mov/lea/... into rsp: not emitted by this code generator.
                report.add("STACK004", where(offset), f"unanalyzable rsp write via {op.value}")
            new_depth = depth
        if new_depth < 0:
            report.add(
                "STACK001",
                where(offset),
                f"stack depth {new_depth} underflows the frame",
                depth=new_depth,
            )
            continue

        if op is op_ret:
            if depth != 0:
                report.add(
                    "STACK001",
                    where(offset),
                    f"stack depth {depth} at ret (expected 0)",
                    depth=depth,
                )
            continue
        if op is op_exit or op is op_trap:
            continue
        succs: List[int] = []
        if op is op_jmp:
            target = _branch_target(binary, instr.a)
            if target is None:
                report.add("CFG002", where(offset), "indirect jump in function body")
                continue
            index = fn_code.index_by_offset.get(target)
            if index is None:
                report.add(
                    "CFG001", where(offset), f"jump target {target:#x} leaves the function"
                )
                continue
            succs.append(index)
        elif (op is op_je or op is op_jne or op is op_jl
              or op is op_jle or op is op_jg or op is op_jge):
            target = _branch_target(binary, instr.a)
            index = fn_code.index_by_offset.get(target) if target is not None else None
            if index is None:
                report.add("CFG001", where(offset), "conditional branch target unresolved")
            else:
                succs.append(index)
            if i + 1 < total:
                succs.append(i + 1)
        else:
            if op is op_call:
                _check_call_site(binary, name, fn_code, i, depth,
                                 body_depth_expected, booby_traps, plan, report)
            if i + 1 >= total:
                report.add("CFG001", where(offset), "control falls off the function end")
                continue
            # Fall-through fast path: no successor list needed.
            known = depths[i + 1]
            if known is None:
                depths[i + 1] = new_depth
                worklist.append(i + 1)
            elif known != new_depth:
                report.add(
                    "STACK003",
                    where(items[i + 1][0]),
                    f"join reached with depths {known} and {new_depth}",
                    depths=[known, new_depth],
                )
            continue

        for index in succs:
            known = depths[index]
            if known is None:
                depths[index] = new_depth
                worklist.append(index)
            elif known != new_depth:
                report.add(
                    "STACK003",
                    where(items[index][0]),
                    f"join reached with depths {known} and {new_depth}",
                    depths=[known, new_depth],
                )

    # -- .eh_frame frame-size cross-check ----------------------------------
    _verify_frame_record(binary, name, fn_code, depths, report)


def _prologue_span(fn_code: _FunctionCode) -> int:
    """Index of the first instruction after the jump-over-traps prelude."""
    i = 0
    items = fn_code.items
    if items and items[0][1].op is Op.JMP:
        i = 1
        while i < len(items) and items[i][1].op is Op.TRAP:
            i += 1
    return i


def _verify_frame_record(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    depths: List[Optional[int]],
    report: FindingsReport,
) -> None:
    """The prologue's rsp decrement must equal frame_bytes + 8*post_offset.

    This is the invariant :func:`repro.toolchain.unwind.unwind` relies on
    to locate the return-address slot from any body rsp — checking it here
    is the static audit of the ``.eh_frame`` analogue.
    """
    record = fn_code.record
    items = fn_code.items
    i = _prologue_span(fn_code)
    computed_post: Optional[int] = None
    total_words = 0
    first = True
    while i < len(items):
        instr = items[i][1]
        if instr.op is Op.SUB and instr.a is Reg.RSP and isinstance(instr.b, Imm):
            words = instr.b.value // WORD
            if first and record.post_offset > 0:
                computed_post = words
            total_words += words
            first = False
            i += 1
        else:
            break
    expected = record.frame_bytes // WORD + record.post_offset
    if total_words != expected:
        report.add(
            "UNWIND001",
            name,
            f"prologue allocates {total_words} words, frame record says "
            f"{record.frame_bytes}B + post {record.post_offset}",
            computed=total_words,
            recorded=expected,
        )
    if record.post_offset > 0 and computed_post != record.post_offset:
        report.add(
            "UNWIND001",
            name,
            f"callee-side BTRA sub is {computed_post} words, "
            f"frame record says post_offset={record.post_offset}",
            computed=computed_post,
            recorded=record.post_offset,
        )
    # The 16-byte call-alignment parity rule from toolchain.frame.
    if (record.frame_bytes // WORD + record.post_offset + 1) % 2 != 0:
        report.add(
            "STACK002",
            name,
            "frame words + post_offset violate the call-alignment parity rule",
        )


# ---------------------------------------------------------------------------
# call sites
# ---------------------------------------------------------------------------


def _check_call_site(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    call_index: int,
    depth: int,
    body_depth: int,
    booby_traps: set,
    plan: Optional[ModulePlan],
    report: FindingsReport,
) -> None:
    offset, instr = fn_code.at(call_index)
    where = f"{name}+{offset - fn_code.record.entry_offset:#x}"

    # Calling convention: rsp ≡ 0 (mod 16) at the call.  Entry rsp ≡ 8,
    # so the pushed word count must be odd.
    if (depth + 1) % 2 != 0:
        report.add(
            "STACK002",
            where,
            f"call at stack depth {depth} leaves rsp misaligned",
            depth=depth,
        )

    # Direct call targets must be function entries.
    if isinstance(instr.a, Imm) and instr.a.symbol is not None:
        callee = instr.a.symbol
        callee_record = binary.frame_records.get(callee)
        if callee_record is None or instr.a.value != 0:
            report.add("CALL001", where, f"call target {callee!r} is not a function")
        elif binary.symbols_text.get(callee) != callee_record.entry_offset:
            report.add("CALL001", where, f"call target {callee!r} is mid-function")

    ret_offset = offset + instr.size
    site = binary.callsite_records.get(ret_offset)
    if site is None:
        report.add("CALL002", where, "call has no call-site record")
        return
    if site.caller != name:
        report.add("CALL002", where, f"call-site record names caller {site.caller!r}")

    # .eh_frame cross-check: unwinding from the callee reconstructs the
    # caller's body rsp via pre_words + cleanup_words; the computed depth
    # at the call must therefore equal body + pre + cleanup.
    expected_depth = body_depth + site.pre_words + site.cleanup_words
    if depth != expected_depth:
        report.add(
            "UNWIND002",
            where,
            f"call executes at depth {depth}, call-site record implies "
            f"{expected_depth} (body {body_depth} + pre {site.pre_words} "
            f"+ cleanup {site.cleanup_words})",
            computed=depth,
            recorded=expected_depth,
        )

    if site.uses_btra:
        racy = _site_is_racy(plan, name, fn_code, call_index)
        if site.use_avx:
            _check_btra_avx(binary, name, fn_code, call_index, site, booby_traps, report)
        elif not racy:
            _check_btra_push(binary, name, fn_code, call_index, site, booby_traps, report)


def _site_is_racy(
    plan: Optional[ModulePlan], name: str, fn_code: _FunctionCode, call_index: int
) -> bool:
    """Is this call site the deliberate ``unsafe_racy_btras`` ablation?

    Racy sites skip the pre-written return address by design, so the
    BTRA001 proof does not apply to them.  Identified via the plan: count
    which lowered call site this is (calls in text order match lowering
    order) and read its plan entry.
    """
    if plan is None:
        return False
    fplan = plan.function_plan(name)
    return fplan.call_site(fn_code.call_ordinal(call_index)).racy


def _resolve_text(binary: Binary, symbol: str, addend: int) -> Optional[int]:
    base = binary.symbols_text.get(symbol)
    return None if base is None else base + addend


def _check_trap_target(
    binary: Binary,
    where: str,
    symbol: Optional[str],
    addend: int,
    booby_traps: set,
    report: FindingsReport,
) -> None:
    """A BTRA value must hit a trap instruction inside a booby-trap body."""
    resolved = _resolve_text(binary, symbol, addend) if symbol else None
    if resolved is None:
        report.add("BTRA002", where, f"BTRA symbol {symbol!r} does not resolve to text")
        return
    owner = binary.function_at_offset(resolved)
    if owner not in booby_traps:
        report.add(
            "BTRA002",
            where,
            f"BTRA {symbol}+{addend:#x} lands in {owner!r}, not a booby trap",
            target=owner,
        )
        return
    record = binary.frame_records[owner]
    index = resolved - record.entry_offset  # trap bodies are 1-byte TRAPs
    if index >= record.end_offset - record.entry_offset:
        report.add("BTRA002", where, f"BTRA {symbol}+{addend:#x} overruns the trap body")


def _check_btra_push(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    call_index: int,
    site: CallSiteRecord,
    booby_traps: set,
    report: FindingsReport,
) -> None:
    """Validate the push-based setup (Figure 3) ending at ``call_index``.

    Expected suffix, innermost last::

        push <pre BTRA> * pre_words
        push <caller::.LretK>          ; the real return address
        push <post BTRA> * post_words
        add rsp, 8*(post_words+1)      ; reposition above the RA slot
        call ...
    """
    offset, _ = fn_code.at(call_index)
    where = f"{name}+{offset - fn_code.record.entry_offset:#x}"
    items = fn_code.items
    i = call_index - 1

    def malformed(reason: str) -> None:
        report.add("BTRA004", where, f"push-mode BTRA setup: {reason}")

    if i < 0 or items[i][1].op is not Op.ADD or items[i][1].a is not Reg.RSP:
        return malformed("missing rsp repositioning before the call")
    reposition = items[i][1].b
    if not isinstance(reposition, Imm) or reposition.value != WORD * (site.post_words + 1):
        return malformed(
            f"rsp repositioned by {getattr(reposition, 'value', reposition)}, "
            f"expected {WORD * (site.post_words + 1)}"
        )
    i -= 1

    pushes: List[Imm] = []
    needed = site.pre_words + 1 + site.post_words
    while i >= 0 and len(pushes) < needed and items[i][1].op is Op.PUSH:
        operand = items[i][1].a
        if not isinstance(operand, Imm) or operand.symbol is None:
            break
        pushes.append(operand)
        i -= 1
    if len(pushes) != needed:
        report.add(
            "BTRA003",
            where,
            f"found {len(pushes)} BTRA pushes, record implies "
            f"{site.pre_words} pre + RA + {site.post_words} post",
            found=len(pushes),
        )
        return

    # pushes[] is innermost-first: post (reversed), RA, pre (reversed).
    ra_imm = pushes[site.post_words]
    ra_resolved = _resolve_text(binary, ra_imm.symbol, ra_imm.value)
    if ra_resolved != site.ret_offset:
        report.add(
            "BTRA001",
            where,
            f"pre-written return address resolves to "
            f"{ra_resolved if ra_resolved is not None else '<nowhere>'}, "
            f"call returns to {site.ret_offset:#x}",
            resolved=ra_resolved,
            ret_offset=site.ret_offset,
        )
    for position, imm in enumerate(pushes):
        if position == site.post_words:
            continue
        _check_trap_target(binary, where, imm.symbol, imm.value, booby_traps, report)


def _check_btra_avx(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    call_index: int,
    site: CallSiteRecord,
    booby_traps: set,
    report: FindingsReport,
) -> None:
    """Validate the vector-batched setup (Figure 4) ending at ``call_index``.

    Expected suffix::

        (vload ymm, [__btra_arr_*+k] ; vstore [rsp-…], ymm) * batches
        vzeroupper
        sub rsp, 8*pre_words
        call ...

    The BTRA/RA image lives in the call-site's data array; its relocation
    entries are read back and checked against the record.
    """
    offset, _ = fn_code.at(call_index)
    where = f"{name}+{offset - fn_code.record.entry_offset:#x}"
    items = fn_code.items
    i = call_index - 1

    def malformed(reason: str) -> None:
        report.add("BTRA004", where, f"avx-mode BTRA setup: {reason}")

    if i < 0 or items[i][1].op is not Op.SUB or items[i][1].a is not Reg.RSP:
        return malformed("missing rsp repositioning before the call")
    reposition = items[i][1].b
    if not isinstance(reposition, Imm) or reposition.value != WORD * site.pre_words:
        return malformed(
            f"rsp repositioned by {getattr(reposition, 'value', reposition)}, "
            f"expected {WORD * site.pre_words}"
        )
    i -= 1
    if i < 0 or items[i][1].op is not Op.VZEROUPPER:
        return malformed("missing vzeroupper after the vector batch")
    i -= 1

    batches = 0
    width: Optional[int] = None
    array_symbol: Optional[str] = None
    while i >= 1 and items[i][1].op in (Op.VSTORE, Op.VSTORE512):
        load = items[i - 1][1]
        if load.op not in _VLOAD_WORDS:
            break
        width = _VLOAD_WORDS[load.op]
        mem = load.b
        if isinstance(mem, Mem) and mem.symbol is not None:
            array_symbol = mem.symbol
        batches += 1
        i -= 2
    if batches == 0 or array_symbol is None or width is None:
        return malformed("no vector load/store batch found before the call")

    padded = batches * width
    real_words = site.pre_words + 1 + site.post_words
    if padded < real_words or padded - real_words >= width:
        report.add(
            "BTRA003",
            where,
            f"vector batch covers {padded} words for {real_words} "
            f"(pre {site.pre_words} + RA + post {site.post_words})",
            padded=padded,
        )
        return

    base = binary.symbols_data.get(array_symbol)
    if base is None:
        return malformed(f"BTRA array {array_symbol!r} missing from the data section")
    relocs = _reloc_map(binary)
    entries: List[Optional[Tuple[str, int]]] = [
        relocs.get(base + WORD * k) for k in range(padded)
    ]
    if any(entry is None for entry in entries):
        report.add(
            "BTRA003",
            where,
            "BTRA array has unrelocated (non-pointer) entries",
            array=array_symbol,
        )
        return

    # Ascending image: [padding][post reversed][RA][pre reversed].
    pad_count = padded - real_words
    ra_symbol, ra_addend = entries[pad_count + site.post_words]
    ra_resolved = _resolve_text(binary, ra_symbol, ra_addend)
    if ra_resolved != site.ret_offset:
        report.add(
            "BTRA001",
            where,
            f"BTRA array return address resolves to "
            f"{ra_resolved if ra_resolved is not None else '<nowhere>'}, "
            f"call returns to {site.ret_offset:#x}",
            resolved=ra_resolved,
            ret_offset=site.ret_offset,
        )
    for position, (symbol, addend) in enumerate(entries):
        if position == pad_count + site.post_words:
            continue
        _check_trap_target(binary, where, symbol, addend, booby_traps, report)


def _verify_callsite_records(
    binary: Binary, code: Dict[str, _FunctionCode], report: FindingsReport
) -> None:
    """Every call-site record's ret_offset must directly follow a call."""
    for ret_offset, site in binary.callsite_records.items():
        fn_code = code.get(site.caller)
        if fn_code is None:
            report.add(
                "UNWIND003", f"ret+{ret_offset:#x}", f"record names unknown caller {site.caller!r}"
            )
            continue
        index = fn_code.index_by_offset.get(ret_offset)
        prev = index - 1 if index is not None else None
        # ret_offset may equal the function end (call as last instruction).
        if index is None:
            if ret_offset == fn_code.record.end_offset:
                prev = len(fn_code.items) - 1
            else:
                report.add(
                    "UNWIND003",
                    f"{site.caller}@{ret_offset:#x}",
                    "ret_offset hits no instruction boundary",
                )
                continue
        if prev is None or prev < 0 or fn_code.items[prev][1].op is not Op.CALL:
            report.add(
                "UNWIND003",
                f"{site.caller}@{ret_offset:#x}",
                "call-site record does not follow a call instruction",
            )


# ---------------------------------------------------------------------------
# plan cross-checks: prolog traps, NOP sleds, BTDP prologue
# ---------------------------------------------------------------------------


def _verify_prolog_traps(
    binary: Binary,
    name: str,
    fn_code: _FunctionCode,
    expected: int,
    report: FindingsReport,
) -> None:
    items = fn_code.items
    if expected <= 0:
        if items and items[0][1].tag == "prolog-trap-skip":
            report.add("TRAP001", name, "prolog trap block present but plan says none")
        return
    if not items or items[0][1].op is not Op.JMP:
        report.add("TRAP001", name, "plan expects prolog traps but entry is not a jump")
        return
    traps = 0
    i = 1
    while i < len(items) and items[i][1].op is Op.TRAP:
        traps += 1
        i += 1
    if traps != expected:
        report.add(
            "TRAP001",
            name,
            f"prolog holds {traps} traps, plan says {expected}",
            found=traps,
            planned=expected,
        )
        return
    target = _branch_target(binary, items[0][1].a)
    body_offset = items[i][0] if i < len(items) else fn_code.record.end_offset
    if target != body_offset:
        report.add(
            "TRAP001",
            name,
            f"prolog skip-jump targets {target}, body starts at {body_offset:#x}",
        )


def _count_plan_markers(
    fn_code: _FunctionCode, source: Optional[str]
) -> Tuple[int, int]:
    """One pass over the function: (NOP count, loads through ``source``)."""
    nops = 0
    source_reads = 0
    op_nop, op_mov = Op.NOP, Op.MOV
    for _, instr in fn_code.items:
        op = instr.op
        if op is op_nop:
            nops += 1
        elif op is op_mov and source is not None:
            b = instr.b
            if type(b) is Mem and b.symbol == source:
                source_reads += 1
    return nops, source_reads


def _verify_nop_sled(
    name: str, found: int, fplan, report: FindingsReport
) -> None:
    planned = sum(cs.nops_before for cs in fplan.call_sites)
    if found != planned:
        report.add(
            "NOP001",
            name,
            f"function holds {found} NOPs, plan says {planned}",
            found=found,
            planned=planned,
        )


def _verify_btdp_prologue(
    binary: Binary,
    name: str,
    source_reads: int,
    plan: ModulePlan,
    fplan,
    report: FindingsReport,
) -> None:
    if fplan.btdp_count <= 0:
        return
    source = plan.btdp_source_symbol
    if source is None or source not in binary.symbols_data:
        report.add("BTDP003", name, f"BTDP source symbol {source!r} missing from data")
        return
    for index in fplan.btdp_indices:
        if not (0 <= index < plan.btdp_array_len):
            report.add(
                "BTDP001",
                name,
                f"BTDP index {index} outside array of {plan.btdp_array_len}",
                index=index,
            )
    # Each planned BTDP produces exactly one load through the source symbol.
    if source_reads != fplan.btdp_count:
        report.add(
            "BTDP003",
            name,
            f"prologue reads BTDP source {source_reads} times, plan says "
            f"{fplan.btdp_count}",
            found=source_reads,
            planned=fplan.btdp_count,
        )


# ---------------------------------------------------------------------------
# loaded-process checks (the runtime half of the BTDP invariant)
# ---------------------------------------------------------------------------


def verify_loaded(process, *, target: Optional[str] = None) -> FindingsReport:
    """Verify invariants that only exist after the runtime constructor ran.

    Proves every BTDP pointer — the heap (or data-section) array entries
    and the data-section decoys — references a guard page, so any
    dereference during an AOCR-style heap walk detonates (Section 4.2).
    Reads only the process image through its symbols, never the
    ``r2c_runtime`` ground-truth record.
    """
    from repro.core.passes.btdp import (
        DECOY_PREFIX,
        HARDENED_PTR_SYMBOL,
        NAIVE_ARRAY_SYMBOL,
    )

    binary = process.binary
    report = FindingsReport(target=target or f"proc:{binary.name if binary else '?'}")
    plan: Optional[ModulePlan] = binary.metadata.get("plan") if binary else None
    if plan is None or plan.btdp_source_symbol is None:
        return report  # no BTDPs in this binary

    memory = process.memory
    array_len = plan.btdp_array_len

    if plan.btdp_source_is_pointer:
        ptr_slot = process.symbols.get(HARDENED_PTR_SYMBOL)
        if ptr_slot is None:
            report.add("BTDP003", HARDENED_PTR_SYMBOL, "hardened BTDP pointer missing")
            return report
        array_addr = memory.load_word_raw(ptr_slot)
    else:
        array_addr = process.symbols.get(NAIVE_ARRAY_SYMBOL)
        if array_addr is None:
            report.add("BTDP003", NAIVE_ARRAY_SYMBOL, "naive BTDP array missing")
            return report

    for index in range(array_len):
        value = memory.load_word_raw(array_addr + index * WORD)
        if not memory.is_guard(value):
            report.add(
                "BTDP002",
                f"btdp[{index}]",
                f"array entry {value:#x} does not point into a guard page",
                value=value,
            )

    index = 0
    while f"{DECOY_PREFIX}{index}" in process.symbols:
        value = memory.load_word_raw(process.symbols[f"{DECOY_PREFIX}{index}"])
        if not memory.is_guard(value):
            report.add(
                "BTDP002",
                f"{DECOY_PREFIX}{index}",
                f"decoy {value:#x} does not point into a guard page",
                value=value,
            )
        index += 1
    return report
