"""Diversification-entropy auditor: does diversification diversify?

Given N variants of one module compiled under the same config with
different seeds, this module quantifies what an AOCR adversary who
disassembled *one* variant still knows about the others (Section 3's
threat model):

* **surviving gadgets** — instruction suffixes ending at ``ret`` that
  appear at the same text offset with the same rendering in two variants;
  the pairwise survival fraction is what code-reuse payloads can count on;
* **semantic survival** — the same question asked the way a real miner
  asks it (:mod:`repro.analysis.gadgets`): gadget classes equal *by
  effect* (abstract-interpretation summary) surviving at **any** offset
  — position-independent reuse after one pointer disclosure.  The
  offset+text metric above undercounts this attack surface, which is why
  both are reported: the old one for artifact continuity, the new one as
  the number diversification must actually drive down;
* **layout entropy** — Shannon entropy (bits) of each function's entry
  offset across the variant set (function shuffle + NOP/trap insertion);
* **regalloc divergence** — fraction of variant pairs in which a
  function's register-usage signature differs (regalloc shuffle);
* **stack-slot divergence** — same, over the frame records' slot layouts
  (stack-slot shuffle).

Tests assert floors on these numbers so a future pass refactor that
silently stops randomizing fails loudly instead of shipping a
deterministic "diversified" build.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from math import log2
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.machine.isa import Op, Reg
from repro.toolchain.binary import Binary
from repro.toolchain.disasm import render_instruction

#: Longest gadget suffix considered, in instructions (typical ROP chains
#: use 2-5 instruction gadgets).
GADGET_WINDOW = 5

Gadget = Tuple[int, Tuple[str, ...]]  # (start offset, rendered suffix)


def extract_gadgets(binary: Binary, *, window: int = GADGET_WINDOW) -> FrozenSet[Gadget]:
    """All ret-terminated instruction suffixes of length 1..window."""
    gadgets = set()
    text = binary.text
    for i, (_, instr) in enumerate(text):
        if instr.op is not Op.RET:
            continue
        for length in range(1, min(window, i + 1) + 1):
            start = i - length + 1
            rendered = tuple(
                render_instruction(item[1]) for item in text[start : i + 1]
            )
            gadgets.add((text[start][0], rendered))
    return frozenset(gadgets)


def _register_signature(binary: Binary, name: str) -> Tuple[int, ...]:
    """Registers in first-appearance order — sensitive to regalloc
    permutations that leave the register *set* unchanged."""
    record = binary.frame_records[name]
    order: List[int] = []
    seen = set()
    for offset, instr in binary.text:
        if not (record.entry_offset <= offset < record.end_offset):
            continue
        for operand in (instr.a, instr.b):
            if isinstance(operand, Reg) and operand.value not in seen:
                seen.add(operand.value)
                order.append(operand.value)
    return tuple(order)


def _shannon_bits(values: List[object]) -> float:
    counts = Counter(values)
    total = len(values)
    return -sum((c / total) * log2(c / total) for c in counts.values())


@dataclass
class EntropyAudit:
    """The auditor's verdict over one variant set."""

    seeds: List[int]
    gadget_counts: List[int]
    pairwise_survival: List[Tuple[int, int, float]] = field(default_factory=list)
    #: Distinct semantic gadget classes per variant (the miner's census).
    semantic_class_counts: List[int] = field(default_factory=list)
    #: Position-independent semantic survival per variant pair — the
    #: fraction an offset-oblivious miner can still reuse.
    pairwise_semantic_survival: List[Tuple[int, int, float]] = field(default_factory=list)
    layout_entropy_bits: float = 0.0
    max_layout_entropy_bits: float = 0.0
    regalloc_divergence: float = 0.0
    slot_divergence: float = 0.0

    @property
    def mean_survival(self) -> float:
        if not self.pairwise_survival:
            return 0.0
        return sum(s for _, _, s in self.pairwise_survival) / len(self.pairwise_survival)

    @property
    def max_survival(self) -> float:
        return max((s for _, _, s in self.pairwise_survival), default=0.0)

    @property
    def mean_semantic_survival(self) -> float:
        if not self.pairwise_semantic_survival:
            return 0.0
        return sum(s for _, _, s in self.pairwise_semantic_survival) / len(
            self.pairwise_semantic_survival
        )

    @property
    def max_semantic_survival(self) -> float:
        return max((s for _, _, s in self.pairwise_semantic_survival), default=0.0)

    def render(self) -> str:
        lines = [
            f"entropy audit over {len(self.seeds)} variants (seeds {self.seeds})",
            f"  gadgets per variant: {self.gadget_counts}",
            f"  surviving-gadget fraction: mean {self.mean_survival:.4f}, "
            f"max {self.max_survival:.4f}",
            f"  semantic survival (position-independent): "
            f"mean {self.mean_semantic_survival:.4f}, "
            f"max {self.max_semantic_survival:.4f}",
            f"  layout entropy: {self.layout_entropy_bits:.2f} / "
            f"{self.max_layout_entropy_bits:.2f} bits",
            f"  regalloc divergence: {self.regalloc_divergence:.2%}",
            f"  stack-slot divergence: {self.slot_divergence:.2%}",
        ]
        return "\n".join(lines)


def audit_binaries(binaries: List[Binary], seeds: List[int]) -> EntropyAudit:
    """Measure diversification across an already-compiled variant set."""
    if len(binaries) < 2:
        raise ValueError("entropy audit needs at least two variants")

    from repro.analysis.gadgets import semantic_survival, take_census

    gadget_sets = [extract_gadgets(b) for b in binaries]
    censuses = [take_census(b) for b in binaries]
    audit = EntropyAudit(
        seeds=list(seeds),
        gadget_counts=[len(g) for g in gadget_sets],
        semantic_class_counts=[len(c.keys()) for c in censuses],
    )

    for i in range(len(binaries)):
        for j in range(i + 1, len(binaries)):
            smaller = min(len(gadget_sets[i]), len(gadget_sets[j])) or 1
            shared = len(gadget_sets[i] & gadget_sets[j])
            audit.pairwise_survival.append((seeds[i], seeds[j], shared / smaller))
            audit.pairwise_semantic_survival.append(
                (seeds[i], seeds[j], semantic_survival(censuses[i], censuses[j]))
            )

    # Layout entropy: mean per-function entry-offset entropy.  Booby-trap
    # function sets differ per seed, so only functions common to every
    # variant participate.
    common = set(binaries[0].frame_records)
    for binary in binaries[1:]:
        common &= set(binary.frame_records)
    per_function = [
        _shannon_bits([b.frame_records[name].entry_offset for b in binaries])
        for name in sorted(common)
    ]
    audit.layout_entropy_bits = (
        sum(per_function) / len(per_function) if per_function else 0.0
    )
    audit.max_layout_entropy_bits = log2(len(binaries))

    # Regalloc / slot divergence: fraction of (function, pair) samples
    # where the two variants disagree.
    reg_diff = reg_total = slot_diff = slot_total = 0
    for name in sorted(common):
        signatures = [_register_signature(b, name) for b in binaries]
        slots = [tuple(sorted(b.frame_records[name].slot_offsets.items())) for b in binaries]
        for i in range(len(binaries)):
            for j in range(i + 1, len(binaries)):
                reg_total += 1
                slot_total += 1
                if signatures[i] != signatures[j]:
                    reg_diff += 1
                if slots[i] != slots[j]:
                    slot_diff += 1
    audit.regalloc_divergence = reg_diff / reg_total if reg_total else 0.0
    audit.slot_divergence = slot_diff / slot_total if slot_total else 0.0
    return audit


def audit(module, config, seeds, *, entry: str = "main") -> EntropyAudit:
    """Compile ``module`` once per seed under ``config`` and audit the set.

    Verification is forced off for these compiles — the auditor measures
    diversity, the checkers prove invariants; keeping them independent
    lets lint run both without recursion.
    """
    from repro.core.compiler import compile_module  # deferred: avoids cycle

    binaries = []
    seeds = list(seeds)
    for seed in seeds:
        variant_config = config.replace(seed=seed, verify=False)
        binaries.append(compile_module(module, variant_config, entry=entry))
    return audit_binaries(binaries, seeds)
