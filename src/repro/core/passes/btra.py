"""BTRA planning: booby-trapped return addresses per call site (Section 5.1).

Per protected function the pass draws a callee-side *post-offset*; per
call site it splits the configured BTRA budget into pre (above the return
address) and post (below), bounded for direct calls by the callee's
post-offset, and picks concrete booby-trap targets.  The return-address
properties of Section 4.1 are preserved by construction:

* (A) each target is used at most once within a call site;
* (B) the chosen set is fixed at compile time — nothing re-randomizes at
  run time;
* (C) each call site draws independently, so different call sites get
  different sets (occasional value reuse across sites is tolerated, as in
  the paper).

The pass also enforces the interoperability rules of Section 7.4: call
sites whose callee is unprotected get no BTRAs unless the worst-case
measurement flag is set, and never when the unprotected callee takes stack
arguments; protected stack-argument functions reachable from unprotected
callers get R2C disabled entirely (the WebKit/Chromium patches of
Section 7.4.2).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.analysis.findings import fail
from repro.core.config import R2CConfig
from repro.core.passes import call_sites, count_call_sites, ensure_call_site_plans
from repro.core.passes.booby_traps import draw_btra_target
from repro.rng import DiversityRng
from repro.toolchain.callconv import MAX_REG_ARGS
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def find_oia_incompatible(module: Module) -> Set[str]:
    """Protected stack-argument functions directly called by unprotected code.

    These are the Section 7.4.2 cases: the unprotected caller will not
    prepare the offset-invariant frame pointer, so R2C must be disabled
    for the callee.
    """
    incompatible: Set[str] = set()
    for fn in module.functions.values():
        if fn.protected:
            continue
        for instr in call_sites(fn):
            if instr.op != "call":
                continue
            callee = module.functions[instr.args[1]]
            if callee.protected and len(callee.params) > MAX_REG_ARGS:
                incompatible.add(callee.name)
    return incompatible


def plan_btras(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    """Fill per-function post-offsets and per-call-site BTRA choices."""
    traps = plan.booby_trap_functions
    if not traps:
        fail(
            "PLAN001",
            module.name,
            "BTRA pass requires booby-trap functions in the plan",
        )

    def is_r2c(name: str) -> bool:
        fn = module.functions.get(name)
        return fn is not None and fn.protected and name not in disabled

    # Callee-side post-offsets first: direct call sites need them as bounds.
    for name, fn in module.functions.items():
        if not is_r2c(name):
            continue
        stream = rng.child(f"btra-post:{name}")
        plan.functions[name].post_offset = stream.randint(1, config.max_post_offset)

    # Ablation (unsafe_callee_btras): one BTRA set per callee, shared by
    # every call site to it — deliberately violating property (C).
    per_callee_sets = {}

    for name, fn in module.functions.items():
        if not is_r2c(name):
            continue
        fplan = plan.functions[name]
        plans = ensure_call_site_plans(fplan, count_call_sites(fn))
        stream = rng.child(f"btra-sites:{name}")
        for index, instr in enumerate(call_sites(fn)):
            csplan = plans[index]
            if instr.op == "call":
                callee_name = instr.args[1]
                callee = module.functions[callee_name]
                callee_is_r2c = is_r2c(callee_name)
                if not callee_is_r2c:
                    if not config.btras_for_unprotected_calls:
                        continue  # default: no BTRAs toward unprotected code
                    if len(callee.params) > MAX_REG_ARGS:
                        # The unprotected callee reads its stack arguments
                        # rsp-relatively; a pre-offset would break it.
                        continue
                    post_bound = 0  # post BTRAs would be clobbered anyway
                else:
                    post_bound = plan.functions[callee_name].post_offset
            else:  # icall: callee unknown at compile time (Section 5.1)
                callee_name = "__indirect__"
                post_bound = config.max_post_offset
            if config.unsafe_racy_btras:
                post_bound = 0

            total = config.btras_per_callsite
            if config.unsafe_callee_btras:
                # Keep the shared set's shape identical across call sites.
                post = 0
            else:
                post = stream.randint(0, min(total, post_bound)) if post_bound else 0
            pre = total - post
            if pre % 2 != 0:
                pre += 1  # the extra alignment BTRA of Section 5.1

            if config.unsafe_callee_btras:
                if callee_name not in per_callee_sets:
                    shared_stream = rng.child(f"btra-callee:{callee_name}")
                    per_callee_sets[callee_name] = (
                        _draw_distinct(traps, shared_stream, pre),
                        _draw_distinct(traps, shared_stream, post),
                    )
                shared_pre, shared_post = per_callee_sets[callee_name]
                csplan.pre_btras = list(shared_pre[:pre])
                csplan.post_btras = list(shared_post[:post])
            else:
                csplan.pre_btras = _draw_distinct(traps, stream, pre)
                csplan.post_btras = _draw_distinct(traps, stream, post)
            csplan.use_avx = config.btra_mode == "avx" and not config.unsafe_racy_btras
            csplan.racy = config.unsafe_racy_btras
            if config.btra_integrity_check and csplan.pre_btras:
                csplan.check_index = stream.randint(0, len(csplan.pre_btras) - 1)


def _draw_distinct(
    traps, stream: DiversityRng, count: int
) -> List[Tuple[str, int]]:
    """Draw ``count`` targets, distinct within this call site (property A)."""
    chosen: List[Tuple[str, int]] = []
    seen = set()
    attempts = 0
    while len(chosen) < count:
        target = draw_btra_target(traps, stream)
        attempts += 1
        if target in seen and attempts < count * 20:
            continue
        seen.add(target)
        chosen.append(target)
    return chosen
