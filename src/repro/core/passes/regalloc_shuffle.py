"""Register-allocation randomization (Section 4.3).

Shuffling the allocator's register pool changes which values live in which
registers — and therefore which callee-saved registers get spilled where,
further diversifying the observable stack image between builds.
"""

from __future__ import annotations

from typing import Set

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def plan_regalloc_shuffle(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    for name, fn in module.functions.items():
        if not fn.protected or name in disabled:
            continue
        fplan = plan.functions[name]
        fplan.shuffle_regs = True
        fplan.reg_rng = rng.child(f"regs:{name}")
