"""Stack-slot randomization (Section 4.2).

Permuting the frame slots (parameter homes, locals, spills, BTDP slots,
register save slots) invalidates any a-priori knowledge of the relative
position of stack objects — including where heap pointers sit relative to
other values, which is what forces AOCR into the statistical value-range
analysis that BTDPs then poison.
"""

from __future__ import annotations

from typing import Set

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def plan_slot_shuffle(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    for name, fn in module.functions.items():
        if not fn.protected or name in disabled:
            continue
        fplan = plan.functions[name]
        fplan.shuffle_slots = True
        fplan.slot_rng = rng.child(f"slots:{name}")
