"""BTDP planning: booby-trapped data pointers (Section 5.2).

The pass decides, per function, how many BTDPs to write into the frame and
which entries of the runtime-filled BTDP array they come from.  It also
creates the module-level data artifacts of Figure 5:

* **hardened** (the R2C default): a single data-section word
  (``__btdp_arr_ptr``) that the runtime constructor points at a
  heap-allocated pointer array, plus a handful of *decoy* BTDPs in the
  data section (``__btdp_decoyN``) that never appear on any stack — so an
  attacker comparing data-section pointers against stack pointers learns
  nothing;
* **naive** (for the Figure 5 ablation): the array itself lives in the
  data section (``__btdp_array``), where an attacker who can read the data
  section can subtract its entries from the stack's heap-pointer cluster.

Functions without stack objects are skipped when
``btdp_skip_stackless`` is set — the Section 5.2 optimization ("such
functions are guaranteed to not write benign heap pointers to the stack
either").
"""

from __future__ import annotations

from typing import Set

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import GlobalVar, Module
from repro.toolchain.plan import ModulePlan

HARDENED_PTR_SYMBOL = "__btdp_arr_ptr"
NAIVE_ARRAY_SYMBOL = "__btdp_array"
DECOY_PREFIX = "__btdp_decoy"


def plan_btdps(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    if config.btdp_hardened:
        module.add_global(GlobalVar(HARDENED_PTR_SYMBOL, size_words=1))
        for index in range(config.btdp_decoys_in_data):
            module.add_global(GlobalVar(f"{DECOY_PREFIX}{index}", size_words=1))
        plan.btdp_source_symbol = HARDENED_PTR_SYMBOL
        plan.btdp_source_is_pointer = True
    else:
        module.add_global(GlobalVar(NAIVE_ARRAY_SYMBOL, size_words=config.btdp_array_len))
        plan.btdp_source_symbol = NAIVE_ARRAY_SYMBOL
        plan.btdp_source_is_pointer = False
    plan.btdp_array_len = config.btdp_array_len

    for name, fn in module.functions.items():
        if not fn.protected or name in disabled:
            continue
        if config.btdp_skip_stackless and not fn.has_stack_objects():
            continue
        stream = rng.child(f"btdp:{name}")
        count = stream.randint(config.btdp_min_per_function, config.btdp_max_per_function)
        fplan = plan.functions[name]
        fplan.btdp_count = count
        fplan.btdp_indices = [
            stream.randint(0, config.btdp_array_len - 1) for _ in range(count)
        ]
