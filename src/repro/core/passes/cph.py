"""Code-Pointer Hiding (Section 2.2 — the Readactor mechanism).

CPH redirects every *observable* code pointer through a trampoline: GOT
entries and data-section function-pointer initializers point at one-jump
stubs instead of function entries, and the stubs live in execute-only
memory.  A leaked function pointer then reveals a trampoline address; the
function's real location — and everything at known offsets from it — stays
hidden.

This is a *related-work* mechanism, not part of R2C: we implement it so
the Readactor row of Table 3 is faithful, and so the AOCR observation of
Section 2.2 can be demonstrated: CPH does not stop whole-function reuse,
because calling the trampoline still calls the function.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import GlobalVar, Module
from repro.toolchain.lower import collect_got
from repro.toolchain.plan import ModulePlan

TRAMPOLINE_PREFIX = "__cph_"


def plan_cph(
    module: Module, config: R2CConfig, rng: DiversityRng, plan: ModulePlan
) -> Dict[str, str]:
    """Create trampolines for every observable function pointer.

    Rewrites data-section function-pointer initializers in place and
    registers trampolines in the plan (the linker points GOT entries at
    them too).  Returns the function -> trampoline map.
    """
    targets = set(collect_got(module))
    for gv in module.globals:
        for entry in gv.init:
            if isinstance(entry, tuple) and entry[0] in module.functions:
                targets.add(entry[0])

    mapping = {name: f"{TRAMPOLINE_PREFIX}{name}" for name in sorted(targets)}
    plan.trampolines = [(tramp, fn) for fn, tramp in mapping.items()]

    # Rewrite observable data-section code pointers to the trampolines.
    for gv in module.globals:
        new_init = []
        for entry in gv.init:
            if isinstance(entry, tuple) and entry[0] in mapping:
                new_init.append((mapping[entry[0]], entry[1]))
            else:
                new_init.append(entry)
        gv.init = tuple(new_init)
    return mapping
