"""NOP insertion at call sites (Section 4.3).

The NOPs change the offset between a return address and the calling
function's entry, so a leaked return address no longer reveals the caller's
address — restricting leaked return addresses to gadget localization,
which BTRAs then make probabilistically expensive (Section 7.2.1).
"""

from __future__ import annotations

from typing import Set

from repro.core.config import R2CConfig
from repro.core.passes import count_call_sites, ensure_call_site_plans
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def plan_nops(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    for name, fn in module.functions.items():
        if not fn.protected or name in disabled:
            continue
        stream = rng.child(f"nops:{name}")
        plans = ensure_call_site_plans(plan.functions[name], count_call_sites(fn))
        for csplan in plans:
            csplan.nops_before = stream.randint(config.nops_min, config.nops_max)
