"""Function shuffling: randomize the text-section layout (Section 4).

With shuffling enabled, application functions and booby-trap functions are
permuted together, so booby traps end up "randomly distributed in the text
section" (Section 4.1).  When only BTRAs are enabled (the Table 1
component measurements), the application order is preserved but booby
traps are still spliced in at random positions — BTRAs are meaningless
without traps in the text range.
"""

from __future__ import annotations

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def plan_function_order(
    module: Module, config: R2CConfig, rng: DiversityRng, plan: ModulePlan
) -> None:
    stream = rng.child("function-shuffle")
    app_functions = list(module.functions)
    trap_names = [name for name, _ in plan.booby_trap_functions]
    trampoline_names = [name for name, _ in plan.trampolines]

    if config.enable_function_shuffle:
        order = app_functions + trap_names + trampoline_names
        stream.shuffle(order)
        plan.function_order = order
    elif trap_names or trampoline_names:
        # Keep application order, splice synthesized functions in at
        # random positions.
        order = list(app_functions)
        for name in trap_names + trampoline_names:
            order.insert(stream.randint(0, len(order)), name)
        plan.function_order = order
    # else: leave function_order as None (linker default order).
