"""R2C diversification passes.

Each pass inspects the module and records decisions in the
:class:`~repro.toolchain.plan.ModulePlan` (or adds module-level artifacts
such as padding globals and the BTDP source global).  Passes draw their
randomness from labelled child streams of the build seed, so they are
independent of each other and of pass order.

Shared helper: :func:`call_sites` enumerates the diversifiable call sites
of a function in exactly the order the code generator lowers them.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.toolchain.ir import Function, IRInstr
from repro.toolchain.plan import CallSitePlan, FunctionPlan


def call_sites(fn: Function) -> Iterator[IRInstr]:
    """Yield the ``call``/``icall`` instructions of ``fn`` in lowering order."""
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.op in ("call", "icall"):
                yield instr


def count_call_sites(fn: Function) -> int:
    return sum(1 for _ in call_sites(fn))


def ensure_call_site_plans(fplan: FunctionPlan, count: int) -> List[CallSitePlan]:
    """Grow the function plan's call-site list to ``count`` entries."""
    while len(fplan.call_sites) < count:
        fplan.call_sites.append(CallSitePlan())
    return fplan.call_sites
