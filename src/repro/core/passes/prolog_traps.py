"""Trap insertion in function prologs (Section 4.3).

The traps change the offset from a function's entry to any gadget inside
it, so a leaked function pointer no longer locates gadgets — the attacker
is restricted to whole-function reuse (Section 7.2.2).  Normal control
flow jumps over the trap block; anything landing *inside* the prolog
(a mislocated gadget) detonates.
"""

from __future__ import annotations

from typing import Set

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.ir import Module
from repro.toolchain.plan import ModulePlan


def plan_prolog_traps(
    module: Module,
    config: R2CConfig,
    rng: DiversityRng,
    plan: ModulePlan,
    disabled: Set[str],
) -> None:
    for name, fn in module.functions.items():
        if not fn.protected or name in disabled:
            continue
        stream = rng.child(f"prolog:{name}")
        plan.functions[name].prolog_traps = stream.randint(
            config.prolog_traps_min, config.prolog_traps_max
        )
