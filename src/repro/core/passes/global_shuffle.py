"""Global-variable shuffling with random padding (Section 4).

AOCR's attack (C) corrupts function default parameters at predictable
data-section offsets.  Like Readactor++, R2C randomizes the order of
globals and inserts random padding between them, so an attacker who knows
the data-section base still cannot address a specific global.
"""

from __future__ import annotations

from repro.core.config import R2CConfig
from repro.numeric import MASK64
from repro.rng import DiversityRng
from repro.toolchain.ir import GlobalVar, Module
from repro.toolchain.plan import ModulePlan


def plan_global_order(
    module: Module, config: R2CConfig, rng: DiversityRng, plan: ModulePlan
) -> None:
    if not config.enable_global_shuffle:
        return
    stream = rng.child("global-shuffle")
    names = [g.name for g in module.globals]
    stream.shuffle(names)

    # Insert random padding globals between the shuffled application
    # globals.  Padding is filled with random *data-looking* values (small
    # integers), not pointers, so it does not perturb AOCR's pointer
    # clusters by itself.
    order = []
    for index, name in enumerate(names):
        order.append(name)
        pad_words = stream.randint(config.global_padding_min, config.global_padding_max)
        if pad_words > 0:
            pad_name = f"__gpad{index}"
            module.add_global(
                GlobalVar(
                    pad_name,
                    size_words=pad_words,
                    init=tuple(stream.randint(0, 0xFFFF) for _ in range(pad_words)),
                    is_padding=True,
                )
            )
            order.append(pad_name)
    plan.global_order = order
