"""Booby-trap function generation (Sections 4.1 and 5.1).

Booby-trap functions are all-TRAP bodies of random size.  They serve two
purposes: BTRAs point into them (so BTRA values share the text section's
value range with benign return addresses), and their presence in the text
section punishes blind gadget probing (Section 7.2: "the booby trap
functions distributed in the text section deter attempts to blindly locate
gadgets with brute force").
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.config import R2CConfig
from repro.rng import DiversityRng
from repro.toolchain.plan import ModulePlan

BtTarget = Tuple[str, int]


def inject_booby_traps(config: R2CConfig, rng: DiversityRng, plan: ModulePlan) -> List[Tuple[str, int]]:
    """Register booby-trap functions in the plan; return (name, size) list."""
    stream = rng.child("booby-traps")
    traps: List[Tuple[str, int]] = []
    for index in range(config.booby_trap_count):
        size = stream.randint(config.booby_trap_min_size, config.booby_trap_max_size)
        traps.append((f"__bt{index}", size))
    plan.booby_trap_functions = traps
    return traps


def draw_btra_target(traps: List[Tuple[str, int]], stream: DiversityRng) -> BtTarget:
    """Pick a random booby-trap function and a random offset into its body.

    Every offset lands on a 1-byte TRAP instruction, so any control
    transfer to the resulting address detonates.  Offsets spread BTRA
    values across the whole trap body, which keeps reuse of identical
    values between call sites rare (the property-C concern of Section 4.1).
    """
    name, size = stream.choice(traps)
    return name, stream.randint(0, size - 1)
