"""The diversification pipeline: config + module -> ModulePlan.

Pass order matters only where a pass consumes another's output (BTRA needs
the booby-trap pool; global shuffle must see the BTDP globals).  Random
decisions are order-independent by construction: every pass draws from its
own labelled child stream of the build seed.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core.config import R2CConfig
from repro.core.passes.booby_traps import inject_booby_traps
from repro.core.passes.btdp import plan_btdps
from repro.core.passes.btra import find_oia_incompatible, plan_btras
from repro.core.passes.cph import plan_cph
from repro.core.passes.function_shuffle import plan_function_order
from repro.core.passes.global_shuffle import plan_global_order
from repro.core.passes.nop_insertion import plan_nops
from repro.core.passes.prolog_traps import plan_prolog_traps
from repro.core.passes.regalloc_shuffle import plan_regalloc_shuffle
from repro.core.passes.stack_slot_shuffle import plan_slot_shuffle
from repro.obs.tracing import span
from repro.rng import DiversityRng
from repro.toolchain.binary import Binary
from repro.toolchain.ir import Module
from repro.toolchain.plan import FunctionPlan, ModulePlan


def verification_enabled(config: R2CConfig) -> bool:
    """Should this compilation run the post-condition verifiers?"""
    if config.verify is not None:
        return config.verify
    from repro.analysis import default_verify

    return default_verify()


def verify_module(module: Module, config: R2CConfig) -> None:
    """Pre-pipeline hook: the IR entering the pipeline must be clean.

    Raises :class:`~repro.analysis.findings.VerificationError` with the
    full findings report on any violation.
    """
    from repro.analysis import irverify

    irverify.verify_module(module, target=f"ir:{module.name}").raise_if_findings()


def verify_binary(binary: Binary, config: R2CConfig) -> None:
    """Post-pipeline hook: the linked binary must satisfy every invariant
    the plan promised — stack balance, unwindability, BTRA/BTDP/trap
    placement.  Raises on any finding."""
    from repro.analysis import binverify

    binverify.verify_binary(binary).raise_if_findings()


def build_plan(module: Module, config: R2CConfig) -> Tuple[ModulePlan, Set[str]]:
    """Run all enabled passes; return (plan, r2c-disabled function names).

    ``module`` may be mutated (padding globals, BTDP globals are added);
    the compiler facade works on a copy of the caller's module.
    """
    rng = DiversityRng(config.seed)
    plan = ModulePlan()
    plan.btras_for_unprotected_calls = config.btras_for_unprotected_calls
    plan.oia_enabled = config.oia_in_force
    plan.vector_words = config.btra_vector_words
    for name in module.functions:
        plan.functions[name] = FunctionPlan()

    # Section 7.4.2: protected stack-arg functions with unprotected direct
    # callers cannot use offset-invariant addressing — R2C is disabled for
    # them, exactly as the paper patched WebKit and Chromium.
    disabled: Set[str] = set()
    if config.oia_in_force:
        with span("compile/pass:oia", "compile"):
            disabled = find_oia_incompatible(module)
            for name, fn in module.functions.items():
                if fn.protected and name not in disabled:
                    plan.functions[name].offset_invariant_args = True

    if config.enable_btra or config.booby_traps_standalone:
        with span("compile/pass:booby-traps", "compile"):
            inject_booby_traps(config, rng, plan)
    if config.enable_btra:
        with span("compile/pass:btra", "compile"):
            plan_btras(module, config, rng, plan, disabled)
    if config.enable_nop_insertion:
        with span("compile/pass:nop-insertion", "compile"):
            plan_nops(module, config, rng, plan, disabled)
    if config.enable_prolog_traps:
        with span("compile/pass:prolog-traps", "compile"):
            plan_prolog_traps(module, config, rng, plan, disabled)
    if config.enable_stack_slot_shuffle:
        with span("compile/pass:stack-slot-shuffle", "compile"):
            plan_slot_shuffle(module, config, rng, plan, disabled)
    if config.enable_regalloc_shuffle:
        with span("compile/pass:regalloc-shuffle", "compile"):
            plan_regalloc_shuffle(module, config, rng, plan, disabled)
    if config.enable_btdp:
        with span("compile/pass:btdp", "compile"):
            plan_btdps(module, config, rng, plan, disabled)
    if config.enable_cph:
        with span("compile/pass:cph", "compile"):
            plan_cph(module, config, rng, plan)
    if config.enable_global_shuffle:
        with span("compile/pass:global-shuffle", "compile"):
            plan_global_order(module, config, rng, plan)
    with span("compile/pass:function-shuffle", "compile"):
        plan_function_order(module, config, rng, plan)

    return plan, disabled
