"""R2C configuration: every diversification knob of the paper.

The named constructors mirror the configurations of the evaluation:

* :meth:`R2CConfig.baseline` — same compiler, R2C disabled (Section 6.2).
* :meth:`R2CConfig.full` — all protections on (Figure 6).
* :meth:`R2CConfig.btra_push_only` / :meth:`R2CConfig.btra_avx_only` —
  the BTRA component rows of Table 1 ("10 BTRAs and between 1 and 9
  NOPs", Section 6.2.1).
* :meth:`R2CConfig.btdp_only` — the BTDP row ("between zero and five
  BTDPs per function", Section 6.2.2).
* :meth:`R2CConfig.prolog_only` / :meth:`R2CConfig.layout_only` — the
  Prolog and Layout rows (Section 6.2.3).
* :meth:`R2CConfig.oia_only` — offset-invariant addressing in isolation
  (Section 6.2.1: 0.79% geomean / 3.61% max).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class R2CConfig:
    """Immutable diversification configuration for one compilation."""

    seed: int = 0

    #: IR optimization level (0 = none, 1 = fold/DCE pipeline).  Applied
    #: identically to baseline and protected builds, like the paper's -O3.
    opt_level: int = 0

    #: Run the :mod:`repro.analysis` verifiers as a post-condition of every
    #: compilation (raising :class:`~repro.analysis.findings.VerificationError`
    #: on any finding).  ``None`` defers to the session default
    #: (:func:`repro.analysis.default_verify` — on across the test suite,
    #: off otherwise); ``True``/``False`` force it per-compilation.
    verify: Optional[bool] = None

    # ---- BTRAs (Sections 4.1, 5.1) ----
    enable_btra: bool = False
    btra_mode: str = "avx"  # "push" | "avx"
    #: 4 = 256-bit AVX2 batches; 8 = 512-bit AVX-512 batches (Section 7.1:
    #: "we could either half the BTRA performance impact, or use twice as
    #: many BTRAs").
    btra_vector_words: int = 4
    btras_per_callsite: int = 10  # total booby-trapped return addresses per site
    max_post_offset: int = 3  # callee-side post-offset is drawn from 1..max
    btras_for_unprotected_calls: bool = False  # the worst-case measurement mode

    # ---- BTDPs (Sections 4.2, 5.2) ----
    enable_btdp: bool = False
    btdp_min_per_function: int = 0
    btdp_max_per_function: int = 5
    btdp_guard_pages: int = 16  # pages kept protected on the heap
    btdp_overallocate_factor: int = 3  # chunks allocated before the random keep
    btdp_array_len: int = 64  # entries in the BTDP pointer array
    btdp_hardened: bool = True  # Figure 5: array on heap behind one pointer
    btdp_decoys_in_data: int = 4  # extra BTDPs placed in the data section
    btdp_skip_stackless: bool = True  # skip functions without stack objects

    # ---- code randomization (Section 4.3) ----
    enable_nop_insertion: bool = False
    nops_min: int = 1
    nops_max: int = 9
    enable_prolog_traps: bool = False
    prolog_traps_min: int = 1
    prolog_traps_max: int = 5
    enable_stack_slot_shuffle: bool = False
    enable_regalloc_shuffle: bool = False

    # ---- layout randomization ----
    enable_function_shuffle: bool = False
    #: Inject booby-trap functions even without BTRAs (Readactor-style
    #: reactive traps, used by the Table 3 defense models).
    booby_traps_standalone: bool = False
    #: Code-pointer hiding (Section 2.2, the Readactor mechanism): route
    #: observable function pointers through execute-only trampolines.  A
    #: related-work feature used by the Table 3 defense models; R2C itself
    #: does not need it (and AOCR bypasses it, which Table 3 demonstrates).
    enable_cph: bool = False
    booby_trap_count: int = 32  # booby-trap functions scattered in text
    booby_trap_min_size: int = 8
    booby_trap_max_size: int = 48
    enable_global_shuffle: bool = False
    global_padding_min: int = 0
    global_padding_max: int = 4  # words of random padding between globals

    # ---- stack arguments ----
    # None = automatic (OIA in force exactly when BTRAs are on); True
    # forces it on for the isolated OIA measurement of Section 6.2.1.
    offset_invariant_addressing: Optional[bool] = None

    # ---- deliberately weakened variants (ablation studies ONLY) ----
    #: Draw one BTRA set per *callee* and reuse it at every call site —
    #: violating return-address property (C) of Section 4.1.  Two leaked
    #: call sites to the same callee then differ only in the return
    #: address, which a differencing attack isolates.
    unsafe_callee_btras: bool = False
    #: Push only the pre-BTRAs and let the call instruction append the
    #: return address afterwards, re-opening the race window Section 5.1
    #: closes ("the attacker could learn the return address by observing
    #: the stack right before and after the call instruction").
    unsafe_racy_btras: bool = False
    #: Point BTDPs at ordinary readable heap pages instead of guard pages
    #: — dereferencing one is then silent, and AOCR's heap walk proceeds
    #: (ablating the reactive component of Section 4.2).
    unsafe_btdp_no_guard: bool = False
    #: Verify a random BTRA for consistency after each call returns and
    #: detonate on mismatch — the hardening proposed in Section 7.3
    #: against return-address corruption ("R2C could also deter the
    #: corruption of BTRAs by checking a random subset of BTRAs for
    #: consistency after the return").
    btra_integrity_check: bool = False

    def replace(self, **changes) -> "R2CConfig":
        return dataclasses.replace(self, **changes)

    def digest(self) -> str:
        """Short stable hash over every knob (including the seed).

        The config half of the compile-cache key in
        :mod:`repro.eval.engine`: two configs share a digest iff every
        field — and therefore the diversified output — is identical.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:16]

    @property
    def oia_in_force(self) -> bool:
        if self.offset_invariant_addressing is not None:
            return self.offset_invariant_addressing
        return self.enable_btra

    @property
    def any_diversification(self) -> bool:
        return (
            self.enable_btra
            or self.enable_btdp
            or self.enable_nop_insertion
            or self.enable_prolog_traps
            or self.enable_stack_slot_shuffle
            or self.enable_regalloc_shuffle
            or self.enable_function_shuffle
            or self.enable_global_shuffle
            or self.oia_in_force
        )

    # ---- named configurations of the evaluation -------------------------------

    @classmethod
    def baseline(cls, seed: int = 0) -> "R2CConfig":
        return cls(seed=seed)

    @classmethod
    def full(cls, seed: int = 0, *, btra_mode: str = "avx") -> "R2CConfig":
        """All R2C protections enabled (the Figure 6 configuration)."""
        return cls(
            seed=seed,
            enable_btra=True,
            btra_mode=btra_mode,
            btras_for_unprotected_calls=True,
            enable_btdp=True,
            enable_nop_insertion=True,
            enable_prolog_traps=True,
            enable_stack_slot_shuffle=True,
            enable_regalloc_shuffle=True,
            enable_function_shuffle=True,
            enable_global_shuffle=True,
        )

    @classmethod
    def btra_push_only(cls, seed: int = 0) -> "R2CConfig":
        """Table 1 'Push' row: BTRAs + call-site NOPs, push setup sequence."""
        return cls(
            seed=seed,
            enable_btra=True,
            btra_mode="push",
            btras_for_unprotected_calls=True,
            enable_nop_insertion=True,
        )

    @classmethod
    def btra_avx_only(cls, seed: int = 0) -> "R2CConfig":
        """Table 1 'AVX' row: BTRAs + call-site NOPs, AVX2 setup sequence."""
        return cls(
            seed=seed,
            enable_btra=True,
            btra_mode="avx",
            btras_for_unprotected_calls=True,
            enable_nop_insertion=True,
        )

    @classmethod
    def btdp_only(cls, seed: int = 0) -> "R2CConfig":
        """Table 1 'BTDP' row."""
        return cls(seed=seed, enable_btdp=True)

    @classmethod
    def prolog_only(cls, seed: int = 0) -> "R2CConfig":
        """Table 1 'Prolog' row: trap insertion in function prologs."""
        return cls(seed=seed, enable_prolog_traps=True)

    @classmethod
    def layout_only(cls, seed: int = 0) -> "R2CConfig":
        """Table 1 'Layout' row: stack slot, global and register shuffling
        plus function reordering."""
        return cls(
            seed=seed,
            enable_stack_slot_shuffle=True,
            enable_regalloc_shuffle=True,
            enable_function_shuffle=True,
            enable_global_shuffle=True,
        )

    @classmethod
    def oia_only(cls, seed: int = 0) -> "R2CConfig":
        """Offset-invariant addressing alone (Section 6.2.1)."""
        return cls(seed=seed, offset_invariant_addressing=True)
