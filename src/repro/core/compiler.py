"""The R2C compiler facade: module + config -> linked binary.

This is the package's main entry point, standing in for the modified
LLVM of Section 5::

    from repro import R2CConfig, compile_module
    binary = compile_module(module, R2CConfig.full(seed=42))

The input module is never mutated; each compilation works on a deep copy
(padding globals, BTDP globals and booby-trap functions are build
artifacts, not source).  Recompiling with a different seed produces a
differently diversified binary from identical source — the paper's
per-run recompilation methodology (Section 6.2).
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.core.config import R2CConfig
from repro.core.pass_manager import (
    build_plan,
    verification_enabled,
    verify_binary,
    verify_module,
)
from repro.core.runtime import make_btdp_constructor
from repro.obs.tracing import span
from repro.toolchain.binary import Binary
from repro.toolchain.ir import Module
from repro.toolchain.linker import link_module
from repro.toolchain.opt import optimize_module


#: (source fingerprint, opt_level) pairs whose optimized IR verified clean.
_CLEAN_IR: set = set()


class R2CCompiler:
    """Compiles IR modules under a fixed :class:`R2CConfig`."""

    def __init__(self, config: Optional[R2CConfig] = None):
        self.config = config if config is not None else R2CConfig.baseline()

    def compile(
        self, module: Module, *, entry: str = "main", name: Optional[str] = None
    ) -> Binary:
        with span("compile/module", "compile", module=module.name, seed=self.config.seed):
            working = copy.deepcopy(module)
            verifying = verification_enabled(self.config)
            if self.config.opt_level:
                with span("compile/opt", "compile", level=self.config.opt_level):
                    optimize_module(working, self.config.opt_level)
            if verifying:
                # The optimized IR is a function of (source, opt_level), so a
                # clean verdict is memoized under that key — re-verifying the
                # same module across seeds/configs would re-prove a proof.
                ir_key = (module.fingerprint(), self.config.opt_level)
                if ir_key not in _CLEAN_IR:
                    with span("compile/verify-ir", "compile"):
                        verify_module(working, self.config)
                    _CLEAN_IR.add(ir_key)
            with span("compile/plan", "compile"):
                plan, disabled = build_plan(working, self.config)
            with span("compile/link", "compile"):
                binary = link_module(working, plan, entry=entry, name=name or module.name)
            if self.config.enable_btdp:
                binary.constructors.append(make_btdp_constructor(self.config))
            binary.metadata["config"] = self.config
            binary.metadata["r2c_disabled_functions"] = sorted(disabled)
            # Cache identity: fingerprint of the *source* module (not the
            # diversified working copy) plus the config digest.  Together they
            # content-address this binary for repro.eval.engine's compile cache.
            binary.metadata["module_fingerprint"] = module.fingerprint()
            binary.metadata["config_digest"] = self.config.digest()
            if verifying:
                with span("compile/verify-binary", "compile"):
                    verify_binary(binary, self.config)
            return binary

    def with_seed(self, seed: int) -> "R2CCompiler":
        """A compiler identical to this one but reseeded."""
        return R2CCompiler(self.config.replace(seed=seed))


def compile_module(
    module: Module,
    config: Optional[R2CConfig] = None,
    *,
    entry: str = "main",
    name: Optional[str] = None,
) -> Binary:
    """One-shot convenience wrapper around :class:`R2CCompiler`."""
    return R2CCompiler(config).compile(module, entry=entry, name=name)
