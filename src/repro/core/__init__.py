"""The R2C defense: configuration, diversification passes, runtime, compiler."""

from repro.core.config import R2CConfig
from repro.core.compiler import R2CCompiler, compile_module
from repro.core.pass_manager import build_plan
from repro.core.runtime import make_btdp_constructor

__all__ = [
    "R2CConfig",
    "R2CCompiler",
    "compile_module",
    "build_plan",
    "make_btdp_constructor",
]
