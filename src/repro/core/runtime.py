"""The R2C runtime constructor (Section 5.2).

The real R2C registers an ELF constructor that runs at program start; our
loader runs the callable returned by :func:`make_btdp_constructor` before
transferring control to ``_start``.  The constructor:

1. allocates ``btdp_overallocate_factor * btdp_guard_pages`` page-aligned,
   page-sized chunks from the heap allocator;
2. frees all but a randomly chosen subset of ``btdp_guard_pages`` chunks —
   the survivors are scattered across the heap, and because they are never
   freed, the allocator will never hand the protected pages to another
   allocation;
3. revokes all permissions on the surviving pages (guard pages) so any
   dereference faults as a :class:`~repro.errors.GuardPageFault`;
4. fills the BTDP pointer array with pointers to random offsets inside the
   guard pages — values indistinguishable by range from benign heap
   pointers;
5. in hardened mode, places that array *on the heap* and stores only a
   pointer to it in the data section, then fills the data-section decoy
   BTDPs with fresh guard-page pointers that never appear on any stack
   (Figure 5); in naive mode, writes the array straight into the data
   section.

Ground truth (guard-page ranges, array values) is recorded on the process
as ``process.r2c_runtime`` for the attack monitor and the tests; attack
code never reads it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import R2CConfig
from repro.core.passes.btdp import DECOY_PREFIX, HARDENED_PTR_SYMBOL, NAIVE_ARRAY_SYMBOL
from repro.machine.memory import PAGE_SIZE, Perm
from repro.machine.process import Process
from repro.rng import DiversityRng

WORD = 8


class BtdpConstructor:
    """The BTDP runtime constructor for one ``config``.

    A class (not a closure) so :class:`~repro.toolchain.binary.Binary`
    stays picklable — binaries cross process boundaries in the engine's
    worker pool and rest on disk in the fleet's shared compile cache.
    """

    def __init__(self, config: R2CConfig):
        self.config = config

    def __call__(self, process: Process, rng: DiversityRng) -> None:
        config = self.config
        allocator = process.allocator
        if allocator is None:
            raise RuntimeError("BTDP constructor needs a process heap allocator")

        total = max(config.btdp_guard_pages * config.btdp_overallocate_factor, 1)
        chunks = [allocator.malloc_aligned(PAGE_SIZE, PAGE_SIZE) for _ in range(total)]
        keep = rng.sample(chunks, min(config.btdp_guard_pages, total))
        keep_set = set(keep)
        for chunk in chunks:
            if chunk not in keep_set:
                allocator.free(chunk)

        if not config.unsafe_btdp_no_guard:
            for page in keep:
                process.memory.protect(page, PAGE_SIZE, Perm.NONE, guard=True)

        def draw_btdp() -> int:
            page = rng.choice(keep)
            return page + rng.randint(0, PAGE_SIZE - WORD)

        values = [draw_btdp() for _ in range(config.btdp_array_len)]

        info: Dict[str, object] = {
            "guard_pages": list(keep),
            "btdp_values": list(values),
            "hardened": config.btdp_hardened,
            "guarded": not config.unsafe_btdp_no_guard,
        }

        if config.btdp_hardened:
            array_addr = allocator.malloc(config.btdp_array_len * WORD)
            for index, value in enumerate(values):
                process.memory.store_word_raw(array_addr + index * WORD, value)
            ptr_slot = process.symbols[HARDENED_PTR_SYMBOL]
            process.memory.store_word_raw(ptr_slot, array_addr)
            info["array_addr"] = array_addr
            decoys: List[int] = []
            index = 0
            while f"{DECOY_PREFIX}{index}" in process.symbols:
                decoy_value = draw_btdp()
                process.memory.store_word_raw(
                    process.symbols[f"{DECOY_PREFIX}{index}"], decoy_value
                )
                decoys.append(decoy_value)
                index += 1
            info["decoy_values"] = decoys
        else:
            array_addr = process.symbols[NAIVE_ARRAY_SYMBOL]
            for index, value in enumerate(values):
                process.memory.store_word_raw(array_addr + index * WORD, value)
            info["array_addr"] = array_addr

        process.r2c_runtime = info
        process.note_resident()


def make_btdp_constructor(config: R2CConfig) -> Callable[[Process, DiversityRng], None]:
    """Build the BTDP runtime constructor for ``config``."""
    return BtdpConstructor(config)
