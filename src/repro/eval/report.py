"""Text renderers that print experiment results in the paper's shapes."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.workloads.victim import ATTACK_ARG  # noqa: F401  (re-export convenience)


def render_table1(rows: Dict[str, Dict[str, object]]) -> str:
    """Render the Table 1 component-overhead summary (max / geomean)."""
    lines = ["Component overheads (ratio to baseline)", ""]
    lines.append(f"{'':8s} {'max':>6s} {'geomean':>8s}")
    for label, row in rows.items():
        lines.append(f"{label:8s} {row['max']:6.2f} {row['geomean']:8.2f}")
    return "\n".join(lines)


def render_table2(counts: Dict[str, int]) -> str:
    lines = ["Median call frequencies (simulated runs)", ""]
    lines.append(f"{'Benchmark':12s} {'Call Frequency':>14s}")
    for name, value in counts.items():
        lines.append(f"{name:12s} {value:14,d}")
    return "\n".join(lines)


def render_figure6(data: Dict[str, Dict[str, float]]) -> str:
    machines = sorted(next(iter(data.values())).keys())
    lines = ["Full R2C overhead (%) per benchmark and machine", ""]
    header = f"{'benchmark':12s}" + "".join(f"{m:>11s}" for m in machines)
    lines.append(header)
    for name, per_machine in data.items():
        row = f"{name:12s}" + "".join(f"{per_machine[m]:11.1f}" for m in machines)
        lines.append(row)
    return "\n".join(lines)


def render_webserver(data: Dict[str, Dict[str, float]]) -> str:
    lines = ["Webserver throughput decrease (%)", ""]
    machines = sorted(next(iter(data.values())).keys())
    lines.append(f"{'server':8s}" + "".join(f"{m:>11s}" for m in machines))
    for server, per_machine in data.items():
        lines.append(f"{server:8s}" + "".join(f"{per_machine[m]:11.1f}" for m in machines))
    return "\n".join(lines)


def render_memory(data: Dict[str, object]) -> str:
    lines = ["Memory (maxrss) overhead (%)", ""]
    for name, pct in data["spec"].items():
        lines.append(f"  SPEC {name:12s} {pct:6.1f}%")
    for server, pct in data["webserver"].items():
        share = data["btdp_share"][server]
        lines.append(f"  {server:17s} {pct:6.1f}%   ({share:.0f}% of overhead from BTDP pages)")
    return "\n".join(lines)


def render_scalability(rows: List[Dict[str, object]]) -> str:
    lines = ["Scalability: browser-scale corpora under full R2C", ""]
    lines.append(
        f"{'functions':>10s} {'instrs':>9s} {'text KiB':>9s} {'compile s':>10s} {'verified':>9s}"
    )
    for row in rows:
        lines.append(
            f"{row['functions']:>10d} {row['instructions']:>9d} "
            f"{row['text_bytes'] / 1024:>9.1f} {row['compile_seconds']:>10.2f} "
            f"{str(row['verified']):>9s}"
        )
    return "\n".join(lines)


def render_table3(matrix: Dict[str, Dict[str, Dict[str, int]]]) -> str:
    """Render the defense-comparison matrix with the paper's circles:
    a defense gets ● for an attack class when no trial succeeded."""
    attacks = list(next(iter(matrix.values())).keys())
    lines = ["Defense comparison (● = attack never succeeded, ◐ = mixed, ○ = attack succeeds)", ""]
    lines.append(f"{'defense':12s}" + "".join(f"{a:>17s}" for a in attacks))
    for defense, row in matrix.items():
        cells = []
        for attack in attacks:
            tallies = row[attack]
            total = sum(tallies.values())
            successes = tallies["success"]
            if successes == 0:
                mark = "●"
            elif successes == total:
                mark = "○"
            else:
                mark = "◐"
            cells.append(f"{mark} ({successes}/{total})".rjust(17))
        lines.append(f"{defense:12s}" + "".join(cells))
    return "\n".join(lines)


def render_security_probabilities(data: Dict[str, object]) -> str:
    lines = ["BTRA guessing probability: closed form vs Monte Carlo", ""]
    for n, closed in data["btra_closed_form"].items():
        measured = data["btra_measured"][n]
        lines.append(f"  n={n}: closed={closed:.7f}  measured={measured:.7f}")
    frac = data["heap_benign_fraction"]
    if frac is not None:
        lines.append("")
        lines.append(
            f"Heap-pointer cluster: benign fraction H/(H+B) measured = {frac:.3f}"
        )
    return "\n".join(lines)


def render_btra_sweep(data) -> str:
    lines = ["BTRA count sweep (overhead vs guessing probability)", ""]
    lines.append(f"{'BTRAs':>6s} {'overhead %':>11s} {'P(guess RA)':>12s}")
    for count, row in data.items():
        lines.append(
            f"{count:6d} {row['overhead_pct']:11.1f} {row['guess_probability']:12.4f}"
        )
    return "\n".join(lines)


def render_btdp_sweep(data) -> str:
    lines = ["BTDP density sweep (overhead vs benign heap-pointer fraction)", ""]
    lines.append(f"{'max/fn':>6s} {'overhead %':>11s} {'H/(H+B)':>9s}")
    for maximum, row in data.items():
        lines.append(
            f"{maximum:6d} {row['overhead_pct']:11.1f} {row['benign_fraction']:9.2f}"
        )
    return "\n".join(lines)


def render_opt_levels(data) -> str:
    lines = ["Full-R2C overhead by optimization level", ""]
    lines.append(f"{'benchmark':12s} {'-O0 %':>8s} {'-O1 %':>8s}")
    for name, row in data.items():
        lines.append(f"{name:12s} {row['O0']:8.1f} {row['O1']:8.1f}")
    return "\n".join(lines)


def render_engine_summary(summary) -> str:
    """Render an :class:`repro.eval.engine.EngineSummary`: cache behavior,
    compile/run wall time, and per-worker utilization."""
    lines = [
        f"Engine: {summary.executed} runs executed "
        f"({summary.requested} requested, {summary.run_cache_hits} run-cache hits) "
        f"across {summary.batches} batches, jobs={summary.jobs}, "
        f"backend={getattr(summary, 'backend', 'reference')}",
        f"  compiles: {summary.compiles} "
        f"(+{summary.compile_cache_hits} compile-cache hits, "
        f"{summary.distinct_binaries} distinct binaries)",
        f"  wall time: compile {summary.compile_seconds:.2f}s, "
        f"run {summary.run_seconds:.2f}s",
    ]
    if summary.worker_runs:
        utilization = ", ".join(
            f"{worker}:{count}" for worker, count in sorted(summary.worker_runs.items())
        )
        lines.append(f"  workers ({summary.workers}): {utilization}")
    failures = getattr(summary, "failures", None)
    if failures is not None and not failures.clean:
        outcomes = ", ".join(
            f"{outcome}:{count}" for outcome, count in sorted(failures.by_outcome.items())
        )
        lines.append(f"  failures: {failures.failures} ({outcomes})")
        if failures.by_rule:
            rules = ", ".join(
                f"{rule}:{count}" for rule, count in sorted(failures.by_rule.items())
            )
            lines.append(f"  injected by rule: {rules}")
        if failures.pool_rebuilds or failures.quarantined or failures.serial_fallbacks:
            lines.append(
                f"  recovery: {failures.pool_rebuilds} pool rebuilds, "
                f"{failures.quarantined} quarantined, "
                f"{failures.serial_fallbacks} serial fallbacks"
            )
    return "\n".join(lines)


def render_supervised(rows: Dict[object, Dict[str, object]]) -> str:
    """Render the supervised-restart experiment: per (victim, policy)
    attack tallies plus the supervisor's detection/restart counters."""
    lines = [
        "Supervised restart policies vs crash-probing attack "
        "(medians across trials; latency = probes until first trap trip "
        "or crash storm)",
        "",
        f"{'victim':10s} {'policy':20s} {'success':>8s} {'probes':>7s} "
        f"{'crashes':>8s} {'restarts':>9s} {'denials':>8s} "
        f"{'backoff s':>10s} {'latency':>8s}",
    ]
    for (victim, policy), row in rows.items():
        tallies = row["tallies"]
        total = sum(tallies.values())
        latency = row["detection_latency"]
        lines.append(
            f"{victim:10s} {policy:20s} "
            f"{tallies.get('success', 0):>4d}/{total:<3d} "
            f"{row['probes']:>7.0f} {row['crashes']:>8.0f} "
            f"{row['restarts']:>9.0f} {row['denials']:>8.0f} "
            f"{row['backoff_seconds']:>10.1f} "
            f"{'-' if latency is None else format(latency, '.0f'):>8s}"
        )
    return "\n".join(lines)


def render_chaos(report) -> str:
    """Render a :class:`repro.reliability.chaos.ChaosReport`: the injected
    matrix cell-by-cell, then the verdict."""
    lines = [
        f"Chaos matrix: jobs={report.jobs} backend={report.backend} "
        f"seed={report.seed} timeout={report.timeout:g}s",
        "",
        f"{'cell':32s} {'outcome':8s} {'class':18s} {'rule':16s} ok",
    ]
    for cell in report.cells:
        lines.append(
            f"{cell.label:32s} {cell.outcome:8s} {cell.fault_class:18s} "
            f"{cell.rule:16s} {'yes' if cell.ok else 'NO'}"
        )
    lines.append("")
    if report.summary is not None:
        lines.append(render_engine_summary(report.summary))
        lines.append("")
    if report.ok:
        lines.append("chaos: OK — every injected fault surfaced as its expected outcome")
    else:
        lines.append(f"chaos: {len(report.violations)} violation(s):")
        for violation in report.violations:
            lines.append(f"  {violation}")
    return "\n".join(lines)


def render_fleet(report) -> str:
    """Render a :class:`repro.fleet.loadgen.FleetReport`: outcome tallies,
    latency percentiles, and the robustness counters."""
    outcomes = " ".join(
        f"{name}={count}" for name, count in sorted(report.outcomes.items())
    )
    lines = [
        f"Fleet: workers={report.workers} backend={report.backend} "
        f"seed={report.seed} offered={report.rps:g}rps "
        f"duration={report.duration_seconds:g}s "
        f"rerand={report.rerand_interval if report.rerand_interval else 'off'}"
        f"{' chaos' if report.chaos else ''}",
        "",
        f"  arrivals {report.arrivals}  ({outcomes})",
        f"  latency p50 {report.p50_ms:.2f}ms  p99 {report.p99_ms:.2f}ms  "
        f"sustained {report.sustained_rps:.1f} rps",
        f"  shed {report.shed}  retries {report.retries}  hedges {report.hedges}  "
        f"restarts {report.restarts}  quarantines {report.quarantines}  "
        f"spares {report.spare_activations}",
        f"  chaos: kills {report.kills}  hangs {report.hangs} "
        f"(detected {report.hang_detections})  compile faults {report.compile_faults}",
        f"  re-randomization: swaps {report.swaps}  layout changes "
        f"{report.layout_changes}  attacker window "
        f"{report.attacker_window_seconds:.3f}s  throughput dip "
        f"{report.throughput_dip_pct:.1f}% "
        f"({report.swap_window_rps:.1f} rps in swap windows vs "
        f"{report.steady_rps:.1f} steady)",
    ]
    cache = report.cache
    if cache:
        disk = (
            f"  disk hits {cache['disk_hits']}  writes {cache['disk_writes']}  "
            f"flight waits {cache['singleflight_waits']}"
            if "disk_hits" in cache
            else ""
        )
        lines.append(
            f"  compile cache: hits {cache.get('hits', 0)}  "
            f"misses {cache.get('misses', 0)}{disk}"
        )
    lines.append("")
    if report.zero_lost:
        lines.append(
            "fleet: OK — every request resolved to a typed outcome "
            "(zero silent drops)"
        )
    else:
        lines.append("fleet: LOST REQUESTS — arrivals do not match outcomes")
    return "\n".join(lines)


def render_decomposition(data: Dict[str, float]) -> str:
    total = data.get("total_overhead_pct", 0.0)
    lines = [f"Overhead decomposition by emitted-instruction tag "
             f"(total overhead {total:.1f}%)", ""]
    for tag, share in data.items():
        if tag == "total_overhead_pct":
            continue
        lines.append(f"  {tag:24s} {share:6.1f}% of added cycles")
    return "\n".join(lines)


def render_bench(report) -> str:
    """Render an :class:`repro.obs.bench.BenchReport`: one row per
    (workload × config) cell with simulated cycles, the overhead ratio
    against that workload's baseline cell, i-cache miss rate, and host
    wall seconds, followed by the engine counters."""
    lines = [
        f"Bench: backend={report.backend} machine={report.machine} "
        f"quick={report.quick} jobs={report.jobs}",
        "",
        f"{'benchmark':12s} {'config':10s} {'outcome':8s} {'cycles':>14s} "
        f"{'vs base':>8s} {'imiss%':>7s} {'compile s':>10s} {'run s':>7s}",
    ]
    baselines = {
        cell.workload: cell.cycles
        for cell in report.cells
        if cell.config == "baseline" and cell.outcome == "ok" and cell.cycles
    }
    for cell in report.cells:
        base = baselines.get(cell.workload)
        if cell.config != "baseline" and cell.outcome == "ok" and base:
            versus = f"{100.0 * (cell.cycles / base - 1.0):+7.1f}%"
        else:
            versus = f"{'-':>8s}"
        lines.append(
            f"{cell.workload:12s} {cell.config:10s} {cell.outcome:8s} "
            f"{cell.cycles:14.0f} {versus} {100.0 * cell.icache_miss_rate:6.2f}% "
            f"{cell.compile_seconds:10.3f} {cell.run_seconds:7.3f}"
        )
    engine = report.engine
    if engine:
        lines.append("")
        lines.append(
            f"engine: {engine.get('executed', 0)} runs, "
            f"{engine.get('compiles', 0)} compiles, "
            f"compile {engine.get('compile_seconds', 0.0):.2f}s, "
            f"run {engine.get('run_seconds', 0.0):.2f}s, "
            f"failures {engine.get('failures', 0)}"
        )
    tiers = getattr(report, "tiers", None)
    if tiers:
        lines.append(
            f"tiers:  {tiers.get('blocks_compiled', 0)} blocks compiled, "
            f"{tiers.get('superinstructions_fused', 0)} superinstructions fused, "
            f"{tiers.get('deopts', 0)} deopts, "
            f"{tiers.get('code_cache_hits', 0)} code-cache hits"
        )
        if tiers.get("traces_compiled"):
            lines.append(
                f"tier 3: {tiers.get('traces_compiled', 0)} traces compiled "
                f"({tiers.get('loop_traces', 0)} loop, "
                f"{tiers.get('superblocks', 0)} superblock), "
                f"{tiers.get('trace_side_exits', 0)} side exits, "
                f"{tiers.get('trace_guard_failures', 0)} guard failures, "
                f"{tiers.get('traces_blacklisted', 0)} blacklisted"
            )
    return "\n".join(lines)


def render_lint(report) -> str:
    """Render an :class:`repro.analysis.lint.LintReport`: one row per
    target with its findings count and entropy-audit headline, followed by
    every finding's rule ID, site, and message."""
    lines = [
        f"Lint: corpus={report.corpus} config={report.config_name} "
        f"seeds={report.seeds}",
        "",
        f"{'target':12s} {'findings':>9s} {'gadget surv':>12s} "
        f"{'layout bits':>12s} {'regalloc div':>13s}",
    ]
    for target in report.targets:
        if target.audit is not None:
            survival = f"{target.audit.mean_survival:12.4f}"
            layout = f"{target.audit.layout_entropy_bits:12.2f}"
            regalloc = f"{target.audit.regalloc_divergence:>13.1%}"
        else:
            survival = f"{'-':>12s}"
            layout = f"{'-':>12s}"
            regalloc = f"{'-':>13s}"
        lines.append(
            f"{target.name:12s} {len(target.findings):>9d} {survival} {layout} {regalloc}"
        )
    lines.append("")
    if report.ok:
        lines.append("0 findings — corpus is clean.")
    else:
        lines.append(f"{len(report.findings)} finding(s):")
        for target in report.targets:
            for finding in target.findings:
                lines.append(f"  [{finding.rule}] {finding.where}: {finding.message}")
    return "\n".join(lines)
