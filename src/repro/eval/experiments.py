"""Experiment drivers: one function per table/figure of the paper.

Index (see DESIGN.md section 4):

==========================  ==========================================
:func:`experiment_table1`   Table 1 — component overheads (Push / AVX /
                            BTDP / Prolog / Layout / OIA)
:func:`experiment_table2`   Table 2 — median call frequencies
:func:`experiment_figure6`  Figure 6 — full R2C overhead per benchmark
                            on four machines
:func:`experiment_webserver`    §6.2.4 — nginx/Apache throughput
:func:`experiment_memory`       §6.2.5 — maxrss overheads + BTDP share
:func:`experiment_scalability`  §6.3 — browser-scale compilation
:func:`experiment_table3`       Table 3 / §7.2 — attacks vs. defenses
:func:`experiment_security_probabilities`
                            §7.2.1 / §7.2.3 — guessing probabilities,
                            closed form vs. measured
==========================  ==========================================

Every driver returns plain data structures; :mod:`repro.eval.report`
renders them in the paper's table shapes.

The compile/run-shaped drivers do no execution of their own: they build
one keyed :class:`~repro.eval.engine.RequestBatch` spanning every
(benchmark × machine × config × seed) cell and submit it to the
:class:`~repro.eval.engine.ExperimentEngine` (serial by default,
process-pool parallel under ``--jobs N``), then read results back by
key.  Baselines are ordinary cells — the engine's caches, not driver
code, guarantee each one is compiled and run once per session.  The
attack-shaped drivers (Table 3, §7.2) drive victim sessions instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import ALL_ATTACKS
from repro.attacks.clustering import cluster_pointers
from repro.attacks.scenario import VictimSession
from repro.core.config import R2CConfig
from repro.defenses.related import DEFENSE_MODELS
from repro.eval.engine import (
    ExperimentEngine,
    RequestBatch,
    RunRequest,
    get_session_engine,
)
from repro.eval.stats import geomean, median, overhead_percent
from repro.machine.costs import MACHINE_PRESETS
from repro.machine.cpu import UNTAGGED_TAG
from repro.rng import DiversityRng
from repro.toolchain.interp import interpret_module
from repro.workloads.browser import generate_browser_corpus
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_FOOTPRINT_PAGES, build_spec_benchmark
from repro.workloads.webserver import SERVERS, build_webserver

DEFAULT_SEEDS = (1, 2, 3)

#: Table 1 rows: label -> configuration factory.
COMPONENT_CONFIGS: Dict[str, Callable[[int], R2CConfig]] = {
    "Push": R2CConfig.btra_push_only,
    "AVX": R2CConfig.btra_avx_only,
    "BTDP": R2CConfig.btdp_only,
    "Prolog": R2CConfig.prolog_only,
    "Layout": R2CConfig.layout_only,
    "OIA": R2CConfig.oia_only,
}


def _benchmarks(subset: Optional[Sequence[str]]) -> List[str]:
    return list(subset) if subset else list(SPEC_BENCHMARKS)


def _engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    return engine if engine is not None else get_session_engine()


# ---------------------------------------------------------------------------
# Table 1: component overheads
# ---------------------------------------------------------------------------

def experiment_table1(
    *,
    scale: int = 1,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machine: str = "epyc-rome",
    benchmarks: Optional[Sequence[str]] = None,
    components: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, object]]:
    """Per-component overhead ratios across the SPEC suite.

    Returns {component: {"per_benchmark": {name: ratio}, "max": r, "geomean": r}}.
    """
    engine = _engine(engine)
    names = _benchmarks(benchmarks)
    labels = list(components) if components else list(COMPONENT_CONFIGS)
    modules = {name: build_spec_benchmark(name, scale) for name in names}

    batch = RequestBatch(engine)
    for name in names:
        batch.add(
            ("baseline", name),
            RunRequest(
                module=modules[name],
                config=R2CConfig.baseline().replace(seed=seeds[0]),
                machine=machine,
                load_seed=seeds[0],
                label=f"table1/baseline/{name}",
            ),
        )
    for label in labels:
        config = COMPONENT_CONFIGS[label](0)
        for name in names:
            for seed in seeds:
                batch.add(
                    (label, name),
                    RunRequest(
                        module=modules[name],
                        config=config.replace(seed=seed),
                        machine=machine,
                        load_seed=seed,
                        label=f"table1/{label}/{name}",
                    ),
                )
    results = batch.run()

    rows: Dict[str, Dict[str, object]] = {}
    baselines = {name: results.median(("baseline", name)) for name in names}
    for label in labels:
        ratios = {
            name: results.median((label, name)) / baselines[name] for name in names
        }
        rows[label] = {
            "per_benchmark": ratios,
            "max": max(ratios.values()),
            "geomean": geomean(ratios.values()),
        }
    return rows


# ---------------------------------------------------------------------------
# Table 2: call frequencies
# ---------------------------------------------------------------------------

def experiment_table2(
    *,
    inputs: Sequence[int] = (1, 2, 3),
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, int]:
    """Median executed-call counts per benchmark across input scales.

    Mirrors the paper's instrumentation ("we instrumented the SPEC CPU
    benchmark programs to count the number of executed call instructions
    ... For each benchmark we took the median call frequencies across all
    inputs").  Our ``call`` counter, like theirs, excludes tail calls by
    construction (the codegen never emits them).
    """
    engine = _engine(engine)
    names = _benchmarks(benchmarks)
    batch = RequestBatch(engine)
    for name in names:
        for scale in inputs:
            batch.add(
                name,
                RunRequest(
                    module=build_spec_benchmark(name, scale),
                    config=R2CConfig.baseline(),
                    label=f"table2/{name}/scale{scale}",
                ),
            )
    results = batch.run()
    return {name: int(results.median(name, "calls")) for name in names}


# ---------------------------------------------------------------------------
# Figure 6: full R2C on four machines
# ---------------------------------------------------------------------------

def experiment_figure6(
    *,
    scale: int = 1,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machines: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Full-protection overhead (%) per benchmark per machine, plus the
    per-machine geomean under key ``"geomean"``."""
    engine = _engine(engine)
    machine_names = list(machines) if machines else list(MACHINE_PRESETS)
    names = _benchmarks(benchmarks)
    modules = {name: build_spec_benchmark(name, scale) for name in names}

    batch = RequestBatch(engine)
    for machine in machine_names:
        for name in names:
            batch.add(
                ("baseline", machine, name),
                RunRequest(
                    module=modules[name],
                    config=R2CConfig.baseline().replace(seed=seeds[0]),
                    machine=machine,
                    load_seed=seeds[0],
                    label=f"figure6/baseline/{machine}/{name}",
                ),
            )
            for seed in seeds:
                batch.add(
                    ("full", machine, name),
                    RunRequest(
                        module=modules[name],
                        config=R2CConfig.full().replace(seed=seed),
                        machine=machine,
                        load_seed=seed,
                        label=f"figure6/full/{machine}/{name}",
                    ),
                )
    results = batch.run()

    result: Dict[str, Dict[str, float]] = {name: {} for name in names}
    per_machine_ratios: Dict[str, List[float]] = {m: [] for m in machine_names}
    for machine in machine_names:
        for name in names:
            baseline = results.median(("baseline", machine, name))
            protected = results.median(("full", machine, name))
            result[name][machine] = overhead_percent(protected, baseline)
            per_machine_ratios[machine].append(protected / baseline)
    result["geomean"] = {
        machine: 100.0 * (geomean(ratios) - 1.0)
        for machine, ratios in per_machine_ratios.items()
    }
    return result


# ---------------------------------------------------------------------------
# §6.2.4: webserver throughput
# ---------------------------------------------------------------------------

def experiment_webserver(
    *,
    requests: int = 150,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machines: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Throughput decrease (%) per server per machine.

    Throughput = requests/cycle, so the throughput decrease equals
    1 - baseline_cycles/protected_cycles.
    """
    engine = _engine(engine)
    machine_names = list(machines) if machines else list(MACHINE_PRESETS)
    modules = {server: build_webserver(server, requests) for server in SERVERS}

    batch = RequestBatch(engine)
    for server in SERVERS:
        for machine in machine_names:
            batch.add(
                ("baseline", server, machine),
                RunRequest(
                    module=modules[server],
                    config=R2CConfig.baseline().replace(seed=seeds[0]),
                    machine=machine,
                    load_seed=seeds[0],
                    label=f"webserver/baseline/{server}/{machine}",
                ),
            )
            for seed in seeds:
                batch.add(
                    ("full", server, machine),
                    RunRequest(
                        module=modules[server],
                        config=R2CConfig.full().replace(seed=seed),
                        machine=machine,
                        load_seed=seed,
                        label=f"webserver/full/{server}/{machine}",
                    ),
                )
    results = batch.run()

    result: Dict[str, Dict[str, float]] = {}
    for server in SERVERS:
        result[server] = {}
        for machine in machine_names:
            baseline = results.median(("baseline", server, machine))
            protected = results.median(("full", server, machine))
            result[server][machine] = 100.0 * (1.0 - baseline / protected)
    return result


# ---------------------------------------------------------------------------
# §6.2.5: memory overhead
# ---------------------------------------------------------------------------

def experiment_memory(
    *,
    scale: int = 1,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, object]:
    """maxrss overheads: SPEC (with realistic working sets), webservers,
    and the share of webserver overhead attributable to BTDP pages."""
    engine = _engine(engine)
    names = _benchmarks(benchmarks)

    batch = RequestBatch(engine)
    for name in names:
        module = build_spec_benchmark(
            name, scale, footprint_pages=SPEC_FOOTPRINT_PAGES[name]
        )
        for tag, config in (
            ("base", R2CConfig.baseline()),
            ("full", R2CConfig.full(seed=seed)),
        ):
            batch.add(
                ("spec", tag, name),
                RunRequest(
                    module=module,
                    config=config,
                    load_seed=seed,
                    heap_size=32 << 20,
                    label=f"memory/spec-{tag}/{name}",
                ),
            )
    for server in SERVERS:
        module = build_webserver(server)
        for tag, config in (
            ("base", R2CConfig.baseline()),
            ("full", R2CConfig.full(seed=seed)),
            ("no_btdp", R2CConfig.full(seed=seed).replace(enable_btdp=False)),
        ):
            batch.add(
                ("web", tag, server),
                RunRequest(
                    module=module,
                    config=config,
                    load_seed=seed,
                    label=f"memory/web-{tag}/{server}",
                ),
            )
    results = batch.run()

    spec = {
        name: overhead_percent(
            results.record(("spec", "full", name)).max_rss,
            results.record(("spec", "base", name)).max_rss,
        )
        for name in names
    }
    web: Dict[str, float] = {}
    btdp_share: Dict[str, float] = {}
    for server in SERVERS:
        base = results.record(("web", "base", server)).max_rss
        full = results.record(("web", "full", server)).max_rss
        no_btdp = results.record(("web", "no_btdp", server)).max_rss
        web[server] = overhead_percent(full, base)
        total_extra = full - base
        btdp_extra = full - no_btdp
        btdp_share[server] = 100.0 * btdp_extra / total_extra if total_extra else 0.0

    return {"spec": spec, "webserver": web, "btdp_share": btdp_share}


# ---------------------------------------------------------------------------
# §6.3: scalability
# ---------------------------------------------------------------------------

def experiment_scalability(
    *,
    sizes: Sequence[int] = (200, 600, 1500),
    seed: int = 0,
    engine: Optional[ExperimentEngine] = None,
) -> List[Dict[str, object]]:
    """Compile browser-scale corpora under full R2C; verify correctness.

    Reports corpus size, generated function count, compile wall time, and
    whether the diversified binary matches the reference interpreter.
    """
    engine = _engine(engine)
    modules = {size: generate_browser_corpus(size, seed=seed) for size in sizes}
    expected = {size: interpret_module(modules[size]) for size in sizes}

    batch = RequestBatch(engine)
    for size in sizes:
        batch.add(
            size,
            RunRequest(
                module=modules[size],
                config=R2CConfig.full(seed=seed),
                load_seed=seed + 1,
                label=f"scalability/{size}",
            ),
        )
    results = batch.run()

    rows: List[Dict[str, object]] = []
    for size in sizes:
        record = results.record(size)
        rows.append(
            {
                "functions": size,
                "instructions": record.instruction_count,
                "text_bytes": record.text_bytes,
                "compile_seconds": record.compile_seconds,
                "verified": (record.exit_code, list(record.output))
                == (expected[size][0], expected[size][1]),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3 / §7.2: attacks vs defenses
# ---------------------------------------------------------------------------

def experiment_table3(
    *,
    trials: int = 3,
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    base_seed: int = 100,
) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Run every attack against every defense model.

    Returns {defense: {attack: {"success": n, "detected": n, "diverged": n,
    "crashed": n, "failed": n}}} over ``trials`` independently diversified
    victims.  N-variant defense rows (``model.variants > 1``, e.g.
    ``r2c-mvee``) run every probe in batched lockstep, so the ``diverged``
    tally counts cross-check catches.
    """
    attack_names = list(attacks) if attacks else list(ALL_ATTACKS)
    defense_names = list(defenses) if defenses else list(DEFENSE_MODELS)
    matrix: Dict[str, Dict[str, Dict[str, int]]] = {}
    for defense_name in defense_names:
        model = DEFENSE_MODELS[defense_name]
        matrix[defense_name] = {}
        for attack_name in attack_names:
            tallies = {
                "success": 0,
                "detected": 0,
                "diverged": 0,
                "crashed": 0,
                "failed": 0,
            }
            for trial in range(trials):
                session = VictimSession(
                    model.victim_config(seed=base_seed + trial),
                    execute_only=model.execute_only,
                    shadow_stack=model.shadow_stack,
                    variants=model.variants,
                    load_seed=base_seed + 17 * trial,
                )
                result = ALL_ATTACKS[attack_name](
                    session, attacker_seed=base_seed + 31 * trial
                )
                tallies[result.outcome.value] += 1
            matrix[defense_name][attack_name] = tallies
    return matrix


# ---------------------------------------------------------------------------
# §7.2.1 / §7.2.3: probabilistic security guarantees
# ---------------------------------------------------------------------------

def btra_guess_probability(btras: int, leaks: int) -> float:
    """Closed form of Section 7.2.1: (1/(R+1))**n."""
    return (1.0 / (btras + 1)) ** leaks


def _probe_benign_heap_picks(
    config: R2CConfig, *, load_seed: int, attacker_seed: int
) -> Tuple[int, int]:
    """One heap-pointer-picking trial against a freshly diversified victim.

    Leaks the stack at the vulnerability, clusters the pointers, and
    checks every heap-cluster member against the R2C runtime's ground
    truth.  Returns (benign picks, total picks) — (0, 0) if the leak
    surfaced no heap pointers.  Shared by the §7.2.3 measurement and the
    BTDP density sweep.
    """
    session = VictimSession(config, load_seed=load_seed)
    picked: Dict[str, List[int]] = {}

    def hook(view):
        picked["heap"] = cluster_pointers(view.leak_stack()).heap_values()

    session.probe(hook, attacker_seed=attacker_seed)
    heap_values = picked.get("heap", [])
    if not heap_values:
        return 0, 0
    # Ground truth from the R2C runtime: which values are BTDPs?
    process, _ = session.spawn()
    btdp_values = set(process.r2c_runtime["btdp_values"])
    benign = sum(1 for value in heap_values if value not in btdp_values)
    return benign, len(heap_values)


def experiment_security_probabilities(
    *,
    btras: int = 10,
    leaks: Sequence[int] = (1, 2, 3, 4),
    mc_trials: int = 20000,
    stack_samples: int = 30,
) -> Dict[str, object]:
    """Compare measured guessing odds against the paper's closed forms.

    * **BTRA guessing** (§7.2.1): Monte-Carlo draws of one candidate among
      R BTRAs + 1 return address, needing ``n`` independent hits.
    * **Heap-pointer picking** (§7.2.3): against real compiled victims,
      leak the stack at the vulnerability, cluster, pick a random member
      of the heap cluster, and check (against runtime ground truth)
      whether it was benign — the measured H/(H+B).
    """
    rng = DiversityRng(7).child("security-mc")
    closed = {n: btra_guess_probability(btras, n) for n in leaks}
    measured = {}
    for n in leaks:
        hits = 0
        for _ in range(mc_trials):
            if all(rng.randint(0, btras) == 0 for _ in range(n)):
                hits += 1
        measured[n] = hits / mc_trials

    # Empirical heap-pointer odds against real victims.
    benign_picks = 0
    total_picks = 0
    per_sample_ratio = []
    for index in range(stack_samples):
        benign, total = _probe_benign_heap_picks(
            R2CConfig.full(seed=500 + index),
            load_seed=900 + index,
            attacker_seed=index,
        )
        if not total:
            continue
        benign_picks += benign
        total_picks += total
        per_sample_ratio.append(benign / total)

    return {
        "btra_closed_form": closed,
        "btra_measured": measured,
        "heap_benign_fraction": (benign_picks / total_picks) if total_picks else None,
        "heap_benign_fraction_samples": per_sample_ratio,
    }


# ---------------------------------------------------------------------------
# Parameter sweeps: the security/performance trade-offs behind the knobs
# ---------------------------------------------------------------------------

def experiment_btra_sweep(
    *,
    counts: Sequence[int] = (2, 5, 10, 15, 20),
    benchmark: str = "omnetpp",
    seeds: Sequence[int] = (1,),
    engine: Optional[ExperimentEngine] = None,
) -> Dict[int, Dict[str, float]]:
    """Overhead vs. BTRA count per call site, with the Section 7.2.1
    guessing probability each count buys.

    Section 4.1 parameterizes the maximum number of BTRAs; this sweep is
    the trade-off curve behind picking 10 — and behind the Section 7.1
    AVX-512 option of doubling the count.
    """
    engine = _engine(engine)
    module = build_spec_benchmark(benchmark)

    batch = RequestBatch(engine)
    batch.add(
        "baseline",
        RunRequest(
            module=module,
            config=R2CConfig.baseline().replace(seed=seeds[0]),
            load_seed=seeds[0],
            label=f"btra-sweep/baseline/{benchmark}",
        ),
    )
    for count in counts:
        config = R2CConfig.btra_avx_only().replace(btras_per_callsite=count)
        for seed in seeds:
            batch.add(
                count,
                RunRequest(
                    module=module,
                    config=config.replace(seed=seed),
                    load_seed=seed,
                    label=f"btra-sweep/{count}/{benchmark}",
                ),
            )
    results = batch.run()

    baseline = results.median("baseline")
    return {
        count: {
            "overhead_pct": overhead_percent(results.median(count), baseline),
            "guess_probability": 1.0 / (count + 1),
        }
        for count in counts
    }


def experiment_btdp_sweep(
    *,
    maxima: Sequence[int] = (0, 2, 5, 8),
    benchmark: str = "xalancbmk",
    seeds: Sequence[int] = (1,),
    stack_samples: int = 8,
    engine: Optional[ExperimentEngine] = None,
) -> Dict[int, Dict[str, float]]:
    """Overhead vs. BTDP density, with the measured benign heap-pointer
    fraction H/(H+B) each density buys (Section 7.2.3)."""
    engine = _engine(engine)
    module = build_spec_benchmark(benchmark)

    batch = RequestBatch(engine)
    batch.add(
        "baseline",
        RunRequest(
            module=module,
            config=R2CConfig.baseline().replace(seed=seeds[0]),
            load_seed=seeds[0],
            label=f"btdp-sweep/baseline/{benchmark}",
        ),
    )
    for maximum in maxima:
        config = R2CConfig.btdp_only().replace(btdp_max_per_function=maximum)
        for seed in seeds:
            batch.add(
                maximum,
                RunRequest(
                    module=module,
                    config=config.replace(seed=seed),
                    load_seed=seed,
                    label=f"btdp-sweep/{maximum}/{benchmark}",
                ),
            )
    results = batch.run()
    baseline = results.median("baseline")

    out: Dict[int, Dict[str, float]] = {}
    for maximum in maxima:
        benign, total = 0, 0
        if maximum > 0:
            full = R2CConfig.full().replace(btdp_max_per_function=maximum)
            for index in range(stack_samples):
                picks = _probe_benign_heap_picks(
                    full.replace(seed=700 + index),
                    load_seed=300 + index,
                    attacker_seed=index,
                )
                benign += picks[0]
                total += picks[1]
        out[maximum] = {
            "overhead_pct": overhead_percent(results.median(maximum), baseline),
            "benign_fraction": (benign / total) if total else 1.0,
        }
    return out


def _redundant_call_workload(calls: int = 400, redundancy: int = 10):
    """A call loop whose body carries foldable constant arithmetic — the
    shape unoptimized C has and our hand-tuned SPEC stand-ins lack."""
    from repro.toolchain.builder import IRBuilder
    from repro.workloads.programs import add_leaf_workers

    ir = IRBuilder("redundant")
    leaves = add_leaf_workers(ir, "w", 2, work=4)
    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    ivar = fb.counted_loop(calls, "body", "done")
    i = fb.load_local(ivar)
    # Redundant, optimizer-removable constant computation per iteration.
    dead = fb.const(7)
    for step in range(redundancy):
        dead = fb.add(fb.mul(dead, 3), step)  # constant-foldable chain
    live = fb.band(dead, 0xFF)  # folds to a constant
    result = fb.call(leaves[0], [fb.add(i, live)])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    fb.loop_backedge(ivar, "body")
    fb.new_block("done")
    fb.out(fb.band(fb.load_local("acc"), 0xFFFF_FFFF))
    fb.ret(0)
    return ir.finish()


def experiment_opt_levels(
    *,
    seeds: Sequence[int] = (1,),
    redundancies: Sequence[int] = (0, 10, 25),
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, Dict[str, float]]:
    """Full-R2C overhead at -O0 vs -O1 on redundancy-laden code.

    Optimization deletes the foldable arithmetic around every call while
    the BTRA cost per call stays fixed, so the *relative* overhead rises
    with the optimization level — context for the paper's choice to
    report -O3 numbers as the (honest) worst case.
    """
    engine = _engine(engine)
    modules = {r: _redundant_call_workload(redundancy=r) for r in redundancies}

    batch = RequestBatch(engine)
    for redundancy in redundancies:
        for level in (0, 1):
            batch.add(
                ("baseline", redundancy, level),
                RunRequest(
                    module=modules[redundancy],
                    config=R2CConfig.baseline().replace(
                        opt_level=level, seed=seeds[0]
                    ),
                    load_seed=seeds[0],
                    label=f"opt-levels/baseline/r{redundancy}/O{level}",
                ),
            )
            for seed in seeds:
                batch.add(
                    ("full", redundancy, level),
                    RunRequest(
                        module=modules[redundancy],
                        config=R2CConfig.full().replace(opt_level=level, seed=seed),
                        load_seed=seed,
                        label=f"opt-levels/full/r{redundancy}/O{level}",
                    ),
                )
    results = batch.run()

    out: Dict[str, Dict[str, float]] = {}
    for redundancy in redundancies:
        label = f"redundancy={redundancy}"
        out[label] = {
            f"O{level}": overhead_percent(
                results.median(("full", redundancy, level)),
                results.median(("baseline", redundancy, level)),
            )
            for level in (0, 1)
        }
    return out


# ---------------------------------------------------------------------------
# Overhead decomposition by emitted-instruction tag
# ---------------------------------------------------------------------------

def experiment_overhead_decomposition(
    *,
    benchmark: str = "omnetpp",
    seed: int = 1,
    btra_mode: str = "avx",
    engine: Optional[ExperimentEngine] = None,
) -> Dict[str, float]:
    """Attribute full-R2C overhead to the instructions each feature emits.

    Runs the protected binary with per-tag cycle attribution and reports
    each diversification tag's share of the *added* cycles (plus the
    residual: i-cache pressure on untagged code, frame growth, etc.).
    A direct, measured version of the component analysis of Section 6.2.
    """
    engine = _engine(engine)
    module = build_spec_benchmark(benchmark)

    batch = RequestBatch(engine)
    batch.add(
        "base",
        RunRequest(
            module=module,
            config=R2CConfig.baseline(),
            load_seed=seed,
            label=f"decomposition/base/{benchmark}",
        ),
    )
    batch.add(
        "full",
        RunRequest(
            module=module,
            config=R2CConfig.full(seed=seed, btra_mode=btra_mode),
            load_seed=seed,
            attribute_tags=True,
            label=f"decomposition/full/{benchmark}",
        ),
    )
    results = batch.run()
    base = results.record("base")
    full = results.record("full")

    added = full.cycles - base.cycles
    decomposition: Dict[str, float] = {}
    tagged_total = 0.0
    for tag, cycles in sorted((full.tag_cycles or {}).items()):
        if tag == UNTAGGED_TAG:
            # The application bucket is not overhead; untagged *added*
            # cycles (i-cache pressure, frame growth) are the residual.
            continue
        decomposition[tag] = 100.0 * cycles / added if added else 0.0
        tagged_total += cycles
    decomposition["(untagged residual)"] = (
        100.0 * (added - tagged_total) / added if added else 0.0
    )
    decomposition["total_overhead_pct"] = 100.0 * added / base.cycles
    return decomposition


# ---------------------------------------------------------------------------
# §7.2 reactive: attacks against a *supervised* service
# ---------------------------------------------------------------------------

#: Victim configurations for the supervised bench: the undefended
#: monoculture (where restart policy is the only defense) and full R2C
#: (where booby traps detect the very first corrupted probe).
SUPERVISED_VICTIMS = ("baseline", "r2c")


def experiment_supervised(
    *,
    policies: Sequence[str] = ("none", "restart-same", "restart-rerandomize"),
    victims: Sequence[str] = SUPERVISED_VICTIMS,
    attack: str = "blindrop",
    trials: int = 3,
    base_seed: int = 300,
) -> Dict[Tuple[str, str], Dict[str, object]]:
    """Measure attack success and detection latency per restart policy.

    Runs ``attack`` (a multi-probe campaign from ``ALL_ATTACKS``) against a
    :class:`~repro.reliability.supervisor.SupervisedSession` for every
    (victim config, restart policy) pair.  Returns ``{(victim, policy):
    {"tallies", "probes", "crashes", "restarts", "denials",
    "detection_latency", "backoff_seconds"}}`` with medians over
    ``trials`` independently seeded campaigns.

    The paper-shaped result (Sections 4, 7.3; MARDU): against the
    monoculture victim, ``restart-same`` reproduces the Blind-ROP success
    while ``restart-rerandomize`` breaks the cross-probe inference and
    drives success to zero; full R2C detects the probing within a few
    probes under any policy.
    """
    from repro.eval.stats import median as _median
    from repro.reliability.supervisor import SupervisedSession

    attack_fn = ALL_ATTACKS[attack]
    configs = {
        "baseline": lambda seed: R2CConfig.baseline(),
        "r2c": lambda seed: R2CConfig.full(seed=seed),
    }
    rows: Dict[Tuple[str, str], Dict[str, object]] = {}
    for victim_name in victims:
        make_config = configs[victim_name]
        for policy in policies:
            tallies = {"success": 0, "detected": 0, "crashed": 0, "failed": 0}
            probes: List[float] = []
            crashes: List[float] = []
            restarts: List[float] = []
            denials: List[float] = []
            backoffs: List[float] = []
            latencies: List[int] = []
            for trial in range(trials):
                session = SupervisedSession(
                    make_config(base_seed + trial),
                    policy=policy,
                    execute_only=victim_name != "baseline",
                    load_seed=base_seed + 17 * trial,
                )
                result = attack_fn(session, attacker_seed=base_seed + 31 * trial)
                tallies[result.outcome.value] += 1
                probes.append(session.stats.probes)
                crashes.append(session.stats.crashes)
                restarts.append(session.stats.restarts)
                denials.append(session.stats.denials)
                backoffs.append(session.stats.backoff_seconds)
                if session.stats.detection_latency is not None:
                    latencies.append(session.stats.detection_latency)
            rows[(victim_name, policy)] = {
                "tallies": tallies,
                "probes": _median(probes),
                "crashes": _median(crashes),
                "restarts": _median(restarts),
                "denials": _median(denials),
                "backoff_seconds": _median(backoffs),
                "detection_latency": (
                    _median([float(v) for v in latencies]) if latencies else None
                ),
            }
    return rows
