"""Experiment drivers: one function per table/figure of the paper.

Index (see DESIGN.md section 4):

==========================  ==========================================
:func:`experiment_table1`   Table 1 — component overheads (Push / AVX /
                            BTDP / Prolog / Layout / OIA)
:func:`experiment_table2`   Table 2 — median call frequencies
:func:`experiment_figure6`  Figure 6 — full R2C overhead per benchmark
                            on four machines
:func:`experiment_webserver`    §6.2.4 — nginx/Apache throughput
:func:`experiment_memory`       §6.2.5 — maxrss overheads + BTDP share
:func:`experiment_scalability`  §6.3 — browser-scale compilation
:func:`experiment_table3`       Table 3 / §7.2 — attacks vs. defenses
:func:`experiment_security_probabilities`
                            §7.2.1 / §7.2.3 — guessing probabilities,
                            closed form vs. measured
==========================  ==========================================

Every driver returns plain data structures; :mod:`repro.eval.report`
renders them in the paper's table shapes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks import ALL_ATTACKS
from repro.attacks.clustering import cluster_pointers
from repro.attacks.scenario import VictimSession
from repro.core.config import R2CConfig
from repro.core.compiler import compile_module
from repro.defenses.related import DEFENSE_MODELS
from repro.eval.harness import measure_config, run_module
from repro.eval.stats import geomean, median, overhead_percent
from repro.machine.costs import MACHINE_PRESETS
from repro.rng import DiversityRng
from repro.toolchain.interp import interpret_module
from repro.workloads.browser import generate_browser_corpus
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_FOOTPRINT_PAGES, build_spec_benchmark
from repro.workloads.webserver import SERVERS, build_webserver

DEFAULT_SEEDS = (1, 2, 3)

#: Table 1 rows: label -> configuration factory.
COMPONENT_CONFIGS: Dict[str, Callable[[int], R2CConfig]] = {
    "Push": R2CConfig.btra_push_only,
    "AVX": R2CConfig.btra_avx_only,
    "BTDP": R2CConfig.btdp_only,
    "Prolog": R2CConfig.prolog_only,
    "Layout": R2CConfig.layout_only,
    "OIA": R2CConfig.oia_only,
}


def _benchmarks(subset: Optional[Sequence[str]]) -> List[str]:
    return list(subset) if subset else list(SPEC_BENCHMARKS)


# ---------------------------------------------------------------------------
# Table 1: component overheads
# ---------------------------------------------------------------------------

def experiment_table1(
    *,
    scale: int = 1,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machine: str = "epyc-rome",
    benchmarks: Optional[Sequence[str]] = None,
    components: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, object]]:
    """Per-component overhead ratios across the SPEC suite.

    Returns {component: {"per_benchmark": {name: ratio}, "max": r, "geomean": r}}.
    """
    names = _benchmarks(benchmarks)
    rows: Dict[str, Dict[str, object]] = {}
    baselines = {
        name: measure_config(
            lambda n=name: build_spec_benchmark(n, scale),
            R2CConfig.baseline(),
            machine=machine,
            seeds=seeds[:1],
        )
        for name in names
    }
    for label in components or COMPONENT_CONFIGS:
        factory = COMPONENT_CONFIGS[label]
        ratios = {}
        for name in names:
            protected = measure_config(
                lambda n=name: build_spec_benchmark(n, scale),
                factory(0),
                machine=machine,
                seeds=seeds,
            )
            ratios[name] = protected / baselines[name]
        rows[label] = {
            "per_benchmark": ratios,
            "max": max(ratios.values()),
            "geomean": geomean(ratios.values()),
        }
    return rows


# ---------------------------------------------------------------------------
# Table 2: call frequencies
# ---------------------------------------------------------------------------

def experiment_table2(
    *, inputs: Sequence[int] = (1, 2, 3), benchmarks: Optional[Sequence[str]] = None
) -> Dict[str, int]:
    """Median executed-call counts per benchmark across input scales.

    Mirrors the paper's instrumentation ("we instrumented the SPEC CPU
    benchmark programs to count the number of executed call instructions
    ... For each benchmark we took the median call frequencies across all
    inputs").  Our ``call`` counter, like theirs, excludes tail calls by
    construction (the codegen never emits them).
    """
    counts: Dict[str, int] = {}
    for name in _benchmarks(benchmarks):
        per_input = []
        for scale in inputs:
            stats = run_module(build_spec_benchmark(name, scale), R2CConfig.baseline())
            per_input.append(stats.calls)
        counts[name] = int(median(per_input))
    return counts


# ---------------------------------------------------------------------------
# Figure 6: full R2C on four machines
# ---------------------------------------------------------------------------

def experiment_figure6(
    *,
    scale: int = 1,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machines: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Full-protection overhead (%) per benchmark per machine, plus the
    per-machine geomean under key ``"geomean"``."""
    machine_names = list(machines) if machines else list(MACHINE_PRESETS)
    names = _benchmarks(benchmarks)
    result: Dict[str, Dict[str, float]] = {name: {} for name in names}
    per_machine_ratios: Dict[str, List[float]] = {m: [] for m in machine_names}
    for machine in machine_names:
        for name in names:
            source = lambda n=name: build_spec_benchmark(n, scale)
            baseline = measure_config(
                source, R2CConfig.baseline(), machine=machine, seeds=seeds[:1]
            )
            protected = measure_config(
                source, R2CConfig.full(), machine=machine, seeds=seeds
            )
            ratio = protected / baseline
            result[name][machine] = overhead_percent(protected, baseline)
            per_machine_ratios[machine].append(ratio)
    result["geomean"] = {
        machine: 100.0 * (geomean(ratios) - 1.0)
        for machine, ratios in per_machine_ratios.items()
    }
    return result


# ---------------------------------------------------------------------------
# §6.2.4: webserver throughput
# ---------------------------------------------------------------------------

def experiment_webserver(
    *,
    requests: int = 150,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    machines: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Throughput decrease (%) per server per machine.

    Throughput = requests/cycle, so the throughput decrease equals
    1 - baseline_cycles/protected_cycles.
    """
    machine_names = list(machines) if machines else list(MACHINE_PRESETS)
    result: Dict[str, Dict[str, float]] = {}
    for server in SERVERS:
        result[server] = {}
        for machine in machine_names:
            source = lambda s=server: build_webserver(s, requests)
            baseline = measure_config(
                source, R2CConfig.baseline(), machine=machine, seeds=seeds[:1]
            )
            protected = measure_config(
                source, R2CConfig.full(), machine=machine, seeds=seeds
            )
            result[server][machine] = 100.0 * (1.0 - baseline / protected)
    return result


# ---------------------------------------------------------------------------
# §6.2.5: memory overhead
# ---------------------------------------------------------------------------

def experiment_memory(
    *,
    scale: int = 1,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """maxrss overheads: SPEC (with realistic working sets), webservers,
    and the share of webserver overhead attributable to BTDP pages."""
    spec: Dict[str, float] = {}
    for name in _benchmarks(benchmarks):
        pages = SPEC_FOOTPRINT_PAGES[name]
        module = build_spec_benchmark(name, scale, footprint_pages=pages)
        base = run_module(module, R2CConfig.baseline(), load_seed=seed, heap_size=32 << 20)
        full = run_module(
            module, R2CConfig.full(seed=seed), load_seed=seed, heap_size=32 << 20
        )
        spec[name] = overhead_percent(full.max_rss, base.max_rss)

    web: Dict[str, float] = {}
    btdp_share: Dict[str, float] = {}
    for server in SERVERS:
        module = build_webserver(server)
        base = run_module(module, R2CConfig.baseline(), load_seed=seed)
        full = run_module(module, R2CConfig.full(seed=seed), load_seed=seed)
        no_btdp = run_module(
            module,
            R2CConfig.full(seed=seed).replace(enable_btdp=False),
            load_seed=seed,
        )
        web[server] = overhead_percent(full.max_rss, base.max_rss)
        total_extra = full.max_rss - base.max_rss
        btdp_extra = full.max_rss - no_btdp.max_rss
        btdp_share[server] = 100.0 * btdp_extra / total_extra if total_extra else 0.0

    return {"spec": spec, "webserver": web, "btdp_share": btdp_share}


# ---------------------------------------------------------------------------
# §6.3: scalability
# ---------------------------------------------------------------------------

def experiment_scalability(
    *, sizes: Sequence[int] = (200, 600, 1500), seed: int = 0
) -> List[Dict[str, object]]:
    """Compile browser-scale corpora under full R2C; verify correctness.

    Reports corpus size, generated function count, compile wall time, and
    whether the diversified binary matches the reference interpreter.
    """
    rows: List[Dict[str, object]] = []
    for size in sizes:
        module = generate_browser_corpus(size, seed=seed)
        expected = interpret_module(module)
        started = time.perf_counter()
        binary = compile_module(module, R2CConfig.full(seed=seed))
        compile_seconds = time.perf_counter() - started
        stats = run_module(module, R2CConfig.full(seed=seed), load_seed=seed + 1)
        rows.append(
            {
                "functions": size,
                "instructions": binary.instruction_count(),
                "text_bytes": binary.text_size,
                "compile_seconds": compile_seconds,
                "verified": (stats.exit_code, list(stats.output))
                == (expected[0], expected[1]),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 3 / §7.2: attacks vs defenses
# ---------------------------------------------------------------------------

def experiment_table3(
    *,
    trials: int = 3,
    attacks: Optional[Sequence[str]] = None,
    defenses: Optional[Sequence[str]] = None,
    base_seed: int = 100,
) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Run every attack against every defense model.

    Returns {defense: {attack: {"success": n, "detected": n, "crashed": n,
    "failed": n}}} over ``trials`` independently diversified victims.
    """
    attack_names = list(attacks) if attacks else list(ALL_ATTACKS)
    defense_names = list(defenses) if defenses else list(DEFENSE_MODELS)
    matrix: Dict[str, Dict[str, Dict[str, int]]] = {}
    for defense_name in defense_names:
        model = DEFENSE_MODELS[defense_name]
        matrix[defense_name] = {}
        for attack_name in attack_names:
            tallies = {"success": 0, "detected": 0, "crashed": 0, "failed": 0}
            for trial in range(trials):
                session = VictimSession(
                    model.victim_config(seed=base_seed + trial),
                    execute_only=model.execute_only,
                    shadow_stack=model.shadow_stack,
                    load_seed=base_seed + 17 * trial,
                )
                result = ALL_ATTACKS[attack_name](
                    session, attacker_seed=base_seed + 31 * trial
                )
                tallies[result.outcome.value] += 1
            matrix[defense_name][attack_name] = tallies
    return matrix


# ---------------------------------------------------------------------------
# §7.2.1 / §7.2.3: probabilistic security guarantees
# ---------------------------------------------------------------------------

def btra_guess_probability(btras: int, leaks: int) -> float:
    """Closed form of Section 7.2.1: (1/(R+1))**n."""
    return (1.0 / (btras + 1)) ** leaks


def experiment_security_probabilities(
    *,
    btras: int = 10,
    leaks: Sequence[int] = (1, 2, 3, 4),
    mc_trials: int = 20000,
    stack_samples: int = 30,
) -> Dict[str, object]:
    """Compare measured guessing odds against the paper's closed forms.

    * **BTRA guessing** (§7.2.1): Monte-Carlo draws of one candidate among
      R BTRAs + 1 return address, needing ``n`` independent hits.
    * **Heap-pointer picking** (§7.2.3): against real compiled victims,
      leak the stack at the vulnerability, cluster, pick a random member
      of the heap cluster, and check (against runtime ground truth)
      whether it was benign — the measured H/(H+B).
    """
    rng = DiversityRng(7).child("security-mc")
    closed = {n: btra_guess_probability(btras, n) for n in leaks}
    measured = {}
    for n in leaks:
        hits = 0
        for _ in range(mc_trials):
            if all(rng.randint(0, btras) == 0 for _ in range(n)):
                hits += 1
        measured[n] = hits / mc_trials

    # Empirical heap-pointer odds against real victims.
    benign_picks = 0
    total_picks = 0
    per_sample_ratio = []
    for index in range(stack_samples):
        session = VictimSession(R2CConfig.full(seed=500 + index), load_seed=900 + index)
        picked = {}

        def hook(view):
            clusters = cluster_pointers(view.leak_stack())
            picked["heap_values"] = clusters.heap_values()

        session.probe(hook, attacker_seed=index)
        heap_values = picked.get("heap_values", [])
        if not heap_values:
            continue
        # Ground truth from the R2C runtime: which values are BTDPs?
        process, _ = session.spawn()
        btdp_values = set(process.r2c_runtime["btdp_values"])
        benign = sum(1 for value in heap_values if value not in btdp_values)
        benign_picks += benign
        total_picks += len(heap_values)
        per_sample_ratio.append(benign / len(heap_values))

    return {
        "btra_closed_form": closed,
        "btra_measured": measured,
        "heap_benign_fraction": (benign_picks / total_picks) if total_picks else None,
        "heap_benign_fraction_samples": per_sample_ratio,
    }


# ---------------------------------------------------------------------------
# Parameter sweeps: the security/performance trade-offs behind the knobs
# ---------------------------------------------------------------------------

def experiment_btra_sweep(
    *,
    counts: Sequence[int] = (2, 5, 10, 15, 20),
    benchmark: str = "omnetpp",
    seeds: Sequence[int] = (1,),
) -> Dict[int, Dict[str, float]]:
    """Overhead vs. BTRA count per call site, with the Section 7.2.1
    guessing probability each count buys.

    Section 4.1 parameterizes the maximum number of BTRAs; this sweep is
    the trade-off curve behind picking 10 — and behind the Section 7.1
    AVX-512 option of doubling the count.
    """
    source = lambda: build_spec_benchmark(benchmark)
    baseline = measure_config(source, R2CConfig.baseline(), seeds=seeds[:1])
    out: Dict[int, Dict[str, float]] = {}
    for count in counts:
        config = R2CConfig.btra_avx_only().replace(btras_per_callsite=count)
        protected = measure_config(source, config, seeds=seeds)
        out[count] = {
            "overhead_pct": overhead_percent(protected, baseline),
            "guess_probability": 1.0 / (count + 1),
        }
    return out


def experiment_btdp_sweep(
    *,
    maxima: Sequence[int] = (0, 2, 5, 8),
    benchmark: str = "xalancbmk",
    seeds: Sequence[int] = (1,),
    stack_samples: int = 8,
) -> Dict[int, Dict[str, float]]:
    """Overhead vs. BTDP density, with the measured benign heap-pointer
    fraction H/(H+B) each density buys (Section 7.2.3)."""
    source = lambda: build_spec_benchmark(benchmark)
    baseline = measure_config(source, R2CConfig.baseline(), seeds=seeds[:1])
    out: Dict[int, Dict[str, float]] = {}
    for maximum in maxima:
        config = R2CConfig.btdp_only().replace(btdp_max_per_function=maximum)
        protected = measure_config(source, config, seeds=seeds)
        benign, total = 0, 0
        if maximum > 0:
            full = R2CConfig.full().replace(btdp_max_per_function=maximum)
            for index in range(stack_samples):
                session = VictimSession(
                    full.replace(seed=700 + index), load_seed=300 + index
                )
                picked: Dict[str, List[int]] = {}

                def hook(view):
                    picked["heap"] = cluster_pointers(view.leak_stack()).heap_values()

                session.probe(hook, attacker_seed=index)
                process, _ = session.spawn()
                btdps = set(process.r2c_runtime["btdp_values"])
                values = picked.get("heap", [])
                benign += sum(1 for v in values if v not in btdps)
                total += len(values)
        out[maximum] = {
            "overhead_pct": overhead_percent(protected, baseline),
            "benign_fraction": (benign / total) if total else 1.0,
        }
    return out


def _redundant_call_workload(calls: int = 400, redundancy: int = 10):
    """A call loop whose body carries foldable constant arithmetic — the
    shape unoptimized C has and our hand-tuned SPEC stand-ins lack."""
    from repro.toolchain.builder import IRBuilder
    from repro.workloads.programs import add_leaf_workers

    ir = IRBuilder("redundant")
    leaves = add_leaf_workers(ir, "w", 2, work=4)
    fb = ir.function("main")
    fb.local("acc")
    fb.store_local("acc", 0)
    ivar = fb.counted_loop(calls, "body", "done")
    i = fb.load_local(ivar)
    # Redundant, optimizer-removable constant computation per iteration.
    dead = fb.const(7)
    for step in range(redundancy):
        dead = fb.add(fb.mul(dead, 3), step)  # constant-foldable chain
    live = fb.band(dead, 0xFF)  # folds to a constant
    result = fb.call(leaves[0], [fb.add(i, live)])
    fb.store_local("acc", fb.add(fb.load_local("acc"), result))
    fb.loop_backedge(ivar, "body")
    fb.new_block("done")
    fb.out(fb.band(fb.load_local("acc"), 0xFFFF_FFFF))
    fb.ret(0)
    return ir.finish()


def experiment_opt_levels(
    *,
    seeds: Sequence[int] = (1,),
    redundancies: Sequence[int] = (0, 10, 25),
) -> Dict[str, Dict[str, float]]:
    """Full-R2C overhead at -O0 vs -O1 on redundancy-laden code.

    Optimization deletes the foldable arithmetic around every call while
    the BTRA cost per call stays fixed, so the *relative* overhead rises
    with the optimization level — context for the paper's choice to
    report -O3 numbers as the (honest) worst case.
    """
    out: Dict[str, Dict[str, float]] = {}
    for redundancy in redundancies:
        label = f"redundancy={redundancy}"
        out[label] = {}
        for level in (0, 1):
            source = lambda r=redundancy: _redundant_call_workload(redundancy=r)
            baseline = measure_config(
                source, R2CConfig.baseline().replace(opt_level=level), seeds=seeds[:1]
            )
            protected = measure_config(
                source, R2CConfig.full().replace(opt_level=level), seeds=seeds
            )
            out[label][f"O{level}"] = overhead_percent(protected, baseline)
    return out


# ---------------------------------------------------------------------------
# Overhead decomposition by emitted-instruction tag
# ---------------------------------------------------------------------------

def experiment_overhead_decomposition(
    *, benchmark: str = "omnetpp", seed: int = 1, btra_mode: str = "avx"
) -> Dict[str, float]:
    """Attribute full-R2C overhead to the instructions each feature emits.

    Runs the protected binary with per-tag cycle attribution and reports
    each diversification tag's share of the *added* cycles (plus the
    residual: i-cache pressure on untagged code, frame growth, etc.).
    A direct, measured version of the component analysis of Section 6.2.
    """
    from repro.machine.cpu import CPU
    from repro.machine.costs import get_costs
    from repro.machine.loader import load_binary

    module = build_spec_benchmark(benchmark)
    base_binary = compile_module(module, R2CConfig.baseline())
    base_process = load_binary(base_binary, seed=seed)
    base_process.register_service("attack_hook", lambda p, c: 0)
    base = CPU(base_process, get_costs("epyc-rome")).run()

    full_binary = compile_module(module, R2CConfig.full(seed=seed, btra_mode=btra_mode))
    full_process = load_binary(full_binary, seed=seed)
    full_process.register_service("attack_hook", lambda p, c: 0)
    full = CPU(full_process, get_costs("epyc-rome"), attribute_tags=True).run()

    added = full.cycles - base.cycles
    decomposition: Dict[str, float] = {}
    tagged_total = 0.0
    for tag, cycles in sorted(full.tag_cycles.items()):
        decomposition[tag] = 100.0 * cycles / added if added else 0.0
        tagged_total += cycles
    decomposition["(untagged residual)"] = (
        100.0 * (added - tagged_total) / added if added else 0.0
    )
    decomposition["total_overhead_pct"] = 100.0 * added / base.cycles
    return decomposition
