"""Statistics helpers for the evaluation."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for SPEC overheads)."""
    items = [float(v) for v in values]
    if not items:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in items):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def median(values: Sequence[float]) -> float:
    items = sorted(float(v) for v in values)
    if not items:
        raise ValueError("median of empty sequence")
    mid = len(items) // 2
    if len(items) % 2:
        return items[mid]
    return (items[mid - 1] + items[mid]) / 2.0


def overhead_percent(protected: float, baseline: float) -> float:
    """Relative overhead in percent: 100 * (protected/baseline - 1)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (protected / baseline - 1.0)


def ratio_summary(ratios: Dict[str, float]) -> Dict[str, float]:
    """max and geomean of a name->ratio map (the Table 1 row format)."""
    values: List[float] = list(ratios.values())
    return {"max": max(values), "geomean": geomean(values)}
