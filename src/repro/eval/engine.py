"""The experiment-execution engine: cached, parallel compile/load/run.

The paper's methodology (Section 6.2) multiplies out to thousands of
(benchmark × machine × config × seed) cells, each one "recompile with a
fresh seed, load, run, collect metrics".  Every experiment driver used to
hand-roll that loop serially — recompiling even the unchanged baseline for
every overhead measurement.  This module centralizes the loop:

* :class:`RunRequest` / :class:`RunRecord` — typed request/result pairs.
  A request is fully keyed by (module fingerprint, config digest, machine,
  load seed, budget, heap size); because the simulator is deterministic,
  that key *determines* the record.
* :class:`CompileCache` — content-addressed: a given (module, config) is
  compiled exactly once per session, however many drivers ask for it.
* Executors — a serial in-process path and a ``ProcessPoolExecutor``
  fan-out (``jobs > 1``) over independent cells, with deterministic result
  ordering regardless of completion order.  Requests sharing a compile key
  are grouped onto one worker so no binary is built twice in one batch.
* Observability — every executed run yields a :class:`RunRecord` (JSONL-
  serializable, with wall/compile-time split out from the deterministic
  payload) and the engine aggregates an :class:`EngineSummary` (cache
  hits, compile counts, worker utilization) rendered by
  :mod:`repro.eval.report`.

Identical requests are also deduplicated at the *run* level: the engine
memoizes records by run key, so e.g. the baseline run of a (benchmark,
machine) pair is executed once per session no matter how many overhead
measurements reference it.
"""

from __future__ import annotations

import json
import os
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.loader import load_binary
from repro.toolchain.binary import Binary
from repro.toolchain.ir import Module

ModuleSource = Union[Module, Callable[[], Module]]

#: (module fingerprint, config digest) — identifies one compilation.
CompileKey = Tuple[str, str]
#: Compile key + (machine, load seed, budget, heap size, attribute_tags,
#: backend) — identifies one deterministic run.  The execution backend is
#: part of the key (two backends are two distinct executions) even though
#: the canonical payload is backend-invariant by construction.
RunKey = Tuple[str, str, str, int, int, int, bool, str]

DEFAULT_INSTRUCTION_BUDGET = 50_000_000
DEFAULT_HEAP_SIZE = 8 * 1024 * 1024


@dataclass
class RunStats:
    """Metrics from one run (the classic harness-facing subset)."""

    cycles: float
    instructions: int
    calls: int
    max_rss: int
    icache_misses: int
    exit_code: int
    output: Tuple[int, ...]


@dataclass
class RunRequest:
    """One cell of an experiment: run ``module`` under ``config``.

    ``label`` is free-form provenance (e.g. ``"figure6/full/mcf"``) carried
    into the record; it does not participate in any cache key.

    ``backend`` selects the machine's execution backend
    (:mod:`repro.machine.backends`).  ``None`` defers to the engine's
    session default; both backends produce identical counters, so the
    choice only affects wall-clock time — but it still participates in the
    run key so measurements from different backends are never conflated.

    ``verify`` runs the :mod:`repro.analysis` checkers over the compiled
    binary and the loaded process before execution, raising
    :class:`~repro.analysis.findings.VerificationError` on any finding.
    Verification is a pure assertion — it cannot change the deterministic
    payload — so, like wall-clock timing, it is *excluded* from the run
    key: a verified record satisfies later unverified requests for the
    same cell.
    """

    module: Module
    config: R2CConfig
    machine: str = "epyc-rome"
    load_seed: int = 1
    instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET
    heap_size: int = DEFAULT_HEAP_SIZE
    attribute_tags: bool = False
    backend: Optional[str] = None
    verify: bool = False
    label: str = ""

    @property
    def compile_key(self) -> CompileKey:
        return (self.module.fingerprint(), self.config.digest())

    @property
    def run_key(self) -> RunKey:
        fingerprint, digest = self.compile_key
        return (
            fingerprint,
            digest,
            self.machine,
            self.load_seed,
            self.instruction_budget,
            self.heap_size,
            self.attribute_tags,
            self.backend or DEFAULT_EXECUTION_BACKEND,
        )


#: Backend assumed when a request does not name one and no engine default
#: intervenes (mirrors the CPU's own default).
DEFAULT_EXECUTION_BACKEND = "reference"

#: RunRecord fields that depend on the execution environment, not the
#: (deterministic) request — excluded from canonical comparisons.  The
#: backend belongs here: backends are required to produce identical
#: counters, so canonical payloads compare equal across backends (the
#: differential tests rely on exactly that).
ENVIRONMENT_FIELDS = (
    "compile_seconds",
    "run_seconds",
    "cache_hit",
    "worker",
    "backend",
    "verified",
)


@dataclass
class RunRecord:
    """The full, JSONL-serializable result of one executed request."""

    label: str
    module_fingerprint: str
    config_digest: str
    machine: str
    seed: int
    load_seed: int
    instruction_budget: int
    heap_size: int
    cycles: float
    instructions: int
    calls: int
    max_rss: int
    icache_misses: int
    exit_code: int
    output: Tuple[int, ...]
    text_bytes: int
    instruction_count: int
    tag_cycles: Optional[Dict[str, float]] = None
    backend: str = DEFAULT_EXECUTION_BACKEND
    verified: bool = False
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    cache_hit: bool = False
    worker: int = 0

    def canonical(self) -> Dict[str, object]:
        """The deterministic payload: everything except timing/worker."""
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ENVIRONMENT_FIELDS
        }
        data["output"] = list(self.output)
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    def to_json(self) -> str:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["output"] = list(self.output)
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        data["output"] = tuple(data["output"])
        return cls(**data)

    def stats(self) -> RunStats:
        return RunStats(
            cycles=self.cycles,
            instructions=self.instructions,
            calls=self.calls,
            max_rss=self.max_rss,
            icache_misses=self.icache_misses,
            exit_code=self.exit_code,
            output=self.output,
        )


def write_records(records: Iterable[RunRecord], path: str) -> int:
    """Append ``records`` to ``path`` as JSON Lines; returns the count."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_json() + "\n")
            count += 1
    return count


def read_records(path: str) -> List[RunRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        return [RunRecord.from_json(line) for line in handle if line.strip()]


class CompileCache:
    """Content-addressed (module fingerprint, config digest) -> Binary."""

    def __init__(self) -> None:
        self._entries: Dict[CompileKey, Binary] = {}
        self.hits = 0
        self.misses = 0
        self.compile_seconds = 0.0
        #: How many times each key was actually compiled (always 1 per key
        #: in a given process — the session-level compile counter).
        self.compile_counts: Dict[CompileKey, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(self, module: Module, config: R2CConfig) -> Tuple[Binary, float, bool]:
        """Return (binary, compile_seconds, was_cache_hit)."""
        key = (module.fingerprint(), config.digest())
        binary = self._entries.get(key)
        if binary is not None:
            self.hits += 1
            return binary, 0.0, True
        started = time.perf_counter()
        binary = compile_module(module, config)
        elapsed = time.perf_counter() - started
        self._entries[key] = binary
        self.misses += 1
        self.compile_seconds += elapsed
        self.compile_counts[key] = self.compile_counts.get(key, 0) + 1
        return binary, elapsed, False


def _execute_request(cache: CompileCache, request: RunRequest) -> RunRecord:
    """Compile (through ``cache``), load, run; collect the full record."""
    binary, compile_seconds, cache_hit = cache.get_or_compile(
        request.module, request.config
    )
    backend = request.backend or DEFAULT_EXECUTION_BACKEND
    if request.verify:
        from repro.analysis import verify_binary

        verify_binary(binary, target=request.label or None).raise_if_findings()
    started = time.perf_counter()
    process = load_binary(binary, seed=request.load_seed, heap_size=request.heap_size)
    if request.verify:
        from repro.analysis import verify_loaded

        verify_loaded(process, target=request.label or None).raise_if_findings()
    process.register_service("attack_hook", lambda proc, cpu: 0)
    cpu = CPU(
        process,
        get_costs(request.machine),
        instruction_budget=request.instruction_budget,
        attribute_tags=request.attribute_tags,
        backend=backend,
    )
    result = cpu.run()
    process.note_resident()
    run_seconds = time.perf_counter() - started
    fingerprint, digest = request.compile_key
    return RunRecord(
        label=request.label,
        module_fingerprint=fingerprint,
        config_digest=digest,
        machine=request.machine,
        seed=request.config.seed,
        load_seed=request.load_seed,
        instruction_budget=request.instruction_budget,
        heap_size=request.heap_size,
        cycles=result.cycles,
        instructions=result.instructions,
        calls=result.calls,
        max_rss=process.max_rss,
        icache_misses=result.icache_misses,
        exit_code=result.exit_code,
        output=tuple(result.output),
        text_bytes=binary.text_size,
        instruction_count=binary.instruction_count(),
        tag_cycles=dict(result.tag_cycles) if request.attribute_tags else None,
        backend=backend,
        verified=request.verify,
        compile_seconds=compile_seconds,
        run_seconds=run_seconds,
        cache_hit=cache_hit,
        worker=os.getpid(),
    )


#: Per-worker-process compile cache (workers are long-lived, so binaries
#: built for one batch are reused by later batches dispatched to them).
_WORKER_CACHE: Optional[CompileCache] = None


def _worker_execute_group(group: List[Tuple[int, RunRequest]]) -> List[Tuple[int, RunRecord]]:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = CompileCache()
    return [(index, _execute_request(_WORKER_CACHE, request)) for index, request in group]


@dataclass
class EngineSummary:
    """Session-level engine counters, rendered by ``report.render_engine_summary``."""

    jobs: int
    batches: int
    requested: int
    executed: int
    run_cache_hits: int
    compile_cache_hits: int
    compiles: int
    distinct_binaries: int
    compile_seconds: float
    run_seconds: float
    worker_runs: Dict[int, int] = field(default_factory=dict)
    backend: str = DEFAULT_EXECUTION_BACKEND

    @property
    def workers(self) -> int:
        return len(self.worker_runs)


class ExperimentEngine:
    """Executes batches of :class:`RunRequest` with caching and fan-out.

    ``jobs == 1`` runs everything in-process; ``jobs > 1`` fans
    independent cells out over a persistent ``ProcessPoolExecutor``.
    Results always come back in request order.

    ``backend`` is the session default execution backend, applied to every
    request that does not name one itself (``RunRequest.backend=None``).
    """

    def __init__(self, jobs: int = 1, backend: str = DEFAULT_EXECUTION_BACKEND):
        from repro.machine.backends import get_backend

        get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.jobs = max(1, int(jobs))
        self.cache = CompileCache()
        self.records: List[RunRecord] = []
        self._run_cache: Dict[RunKey, RunRecord] = {}
        self._run_cache_hits = 0
        self._requested = 0
        self._batches = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._sources: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sources ------------------------------------------------------------

    def materialize(self, source: ModuleSource) -> Module:
        """Resolve a module-or-builder to a module, invoking builders once.

        Builder callables are memoized (weakly, per callable object) so a
        builder reused across seeds/configs is materialized exactly once.
        """
        if isinstance(source, Module) or not callable(source):
            return source
        try:
            cached = self._sources.get(source)
        except TypeError:  # unhashable/unweakrefable callable
            return source()
        if cached is None:
            cached = source()
            self._sources[source] = cached
        return cached

    # -- execution ----------------------------------------------------------

    def run(self, request: RunRequest) -> RunRecord:
        return self.submit([request])[0]

    def submit(self, requests: Sequence[RunRequest]) -> List[RunRecord]:
        """Execute a batch; returns records in request order.

        Requests whose run key was already executed this session (or that
        appear more than once in the batch) are served from the run cache.
        """
        self._batches += 1
        self._requested += len(requests)
        if self.backend != DEFAULT_EXECUTION_BACKEND:
            requests = [
                request
                if request.backend is not None
                else replace(request, backend=self.backend)
                for request in requests
            ]
        results: List[Optional[RunRecord]] = [None] * len(requests)
        pending: Dict[RunKey, List[int]] = {}
        order: List[RunKey] = []
        for position, request in enumerate(requests):
            key = request.run_key
            cached = self._run_cache.get(key)
            if cached is not None:
                self._run_cache_hits += 1
                results[position] = cached
            else:
                if key not in pending:
                    order.append(key)
                pending.setdefault(key, []).append(position)
        # Duplicates inside the batch count as run-cache hits too.
        self._run_cache_hits += sum(len(p) - 1 for p in pending.values())

        unique = [(key, requests[pending[key][0]]) for key in order]
        if self.jobs == 1 or len(unique) <= 1:
            executed = [
                (key, _execute_request(self.cache, request)) for key, request in unique
            ]
        else:
            executed = self._submit_parallel(unique)

        for key, record in executed:
            self._run_cache[key] = record
            self.records.append(record)
            for position in pending[key]:
                results[position] = record
        assert all(record is not None for record in results)
        return results  # type: ignore[return-value]

    def _submit_parallel(
        self, unique: List[Tuple[RunKey, RunRequest]]
    ) -> List[Tuple[RunKey, RunRecord]]:
        """Fan unique requests out to worker processes.

        Requests sharing a compile key form one work item, so each binary
        is compiled at most once per batch, by the worker that runs it.
        """
        groups: Dict[CompileKey, List[Tuple[int, RunRequest]]] = {}
        for index, (_, request) in enumerate(unique):
            groups.setdefault(request.compile_key, []).append((index, request))
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        futures = [
            self._pool.submit(_worker_execute_group, group)
            for group in groups.values()
        ]
        indexed: List[Tuple[int, RunRecord]] = []
        for future in futures:
            indexed.extend(future.result())
        indexed.sort(key=lambda pair: pair[0])
        return [(unique[index][0], record) for index, record in indexed]

    # -- observability ------------------------------------------------------

    def write_records(self, path: str) -> int:
        """Write every record executed so far to ``path`` as JSONL."""
        return write_records(self.records, path)

    def compile_count(self, module: Module, config: R2CConfig) -> int:
        """How many times this exact (module, config) was compiled in-process."""
        return self.cache.compile_counts.get(
            (module.fingerprint(), config.digest()), 0
        )

    def summary(self) -> EngineSummary:
        worker_runs: Dict[int, int] = {}
        compile_hits = 0
        compiles = 0
        compile_seconds = 0.0
        run_seconds = 0.0
        for record in self.records:
            worker_runs[record.worker] = worker_runs.get(record.worker, 0) + 1
            if record.cache_hit:
                compile_hits += 1
            else:
                compiles += 1
            compile_seconds += record.compile_seconds
            run_seconds += record.run_seconds
        return EngineSummary(
            jobs=self.jobs,
            batches=self._batches,
            requested=self._requested,
            executed=len(self.records),
            run_cache_hits=self._run_cache_hits,
            compile_cache_hits=compile_hits,
            compiles=compiles,
            distinct_binaries=len(self.cache) if self.jobs == 1 else compiles,
            compile_seconds=compile_seconds,
            run_seconds=run_seconds,
            worker_runs=worker_runs,
            backend=self.backend,
        )


class RequestBatch:
    """Build a keyed batch, submit once, read results back by key.

    The drivers' idiom::

        batch = RequestBatch(engine)
        batch.add(("full", name, seed), RunRequest(...))
        results = batch.run()
        results.median(("full", name, seed), "cycles")
    """

    def __init__(self, engine: ExperimentEngine):
        self.engine = engine
        self.requests: List[RunRequest] = []
        self._slots: Dict[object, List[int]] = {}

    def add(self, key: object, request: RunRequest) -> None:
        self._slots.setdefault(key, []).append(len(self.requests))
        self.requests.append(request)

    def run(self) -> "BatchResults":
        return BatchResults(self.engine.submit(self.requests), self._slots)


class BatchResults:
    def __init__(self, records: List[RunRecord], slots: Dict[object, List[int]]):
        self._records = records
        self._slots = slots

    def records(self, key: object) -> List[RunRecord]:
        return [self._records[position] for position in self._slots[key]]

    def record(self, key: object) -> RunRecord:
        positions = self._slots[key]
        if len(positions) != 1:
            raise KeyError(f"{key!r} has {len(positions)} records, expected 1")
        return self._records[positions[0]]

    def median(self, key: object, metric: str = "cycles") -> float:
        from repro.eval.stats import median

        return median([getattr(record, metric) for record in self.records(key)])


# ---------------------------------------------------------------------------
# The session engine: one shared cache/pool per process by default.
# ---------------------------------------------------------------------------

_SESSION_ENGINE: Optional[ExperimentEngine] = None


def get_session_engine() -> ExperimentEngine:
    """The process-wide default engine (serial unless reconfigured)."""
    global _SESSION_ENGINE
    if _SESSION_ENGINE is None:
        _SESSION_ENGINE = ExperimentEngine(jobs=1)
    return _SESSION_ENGINE


def set_session_engine(engine: ExperimentEngine) -> ExperimentEngine:
    """Install ``engine`` as the process-wide default; returns it."""
    global _SESSION_ENGINE
    _SESSION_ENGINE = engine
    return engine
