"""The experiment-execution engine: cached, parallel compile/load/run.

The paper's methodology (Section 6.2) multiplies out to thousands of
(benchmark × machine × config × seed) cells, each one "recompile with a
fresh seed, load, run, collect metrics".  Every experiment driver used to
hand-roll that loop serially — recompiling even the unchanged baseline for
every overhead measurement.  This module centralizes the loop:

* :class:`RunRequest` / :class:`RunRecord` — typed request/result pairs.
  A request is fully keyed by (module fingerprint, config digest, machine,
  load seed, budget, heap size); because the simulator is deterministic,
  that key *determines* the record.
* :class:`CompileCache` — content-addressed: a given (module, config) is
  compiled exactly once per session, however many drivers ask for it.
* Executors — a serial in-process path and a ``ProcessPoolExecutor``
  fan-out (``jobs > 1``) over independent cells, with deterministic result
  ordering regardless of completion order.  Requests sharing a compile key
  are grouped onto one worker so no binary is built twice in one batch.
* Observability — every executed run yields a :class:`RunRecord` (JSONL-
  serializable, with wall/compile-time split out from the deterministic
  payload) and the engine aggregates an :class:`EngineSummary` (cache
  hits, compile counts, worker utilization) rendered by
  :mod:`repro.eval.report`.

Identical requests are also deduplicated at the *run* level: the engine
memoizes records by run key, so e.g. the baseline run of a (benchmark,
machine) pair is executed once per session no matter how many overhead
measurements reference it.

Failure tolerance: ``submit`` *always* returns a full, request-ordered
record list.  Every record carries an ``outcome`` — ``ok``, ``fault``
(deterministic guest fault: memory fault, booby trap, allocator OOM,
budget exhaustion), ``timeout`` (wall clock exceeded), or ``error``
(compile failure, worker death, any host-side exception) — with a
``failure`` detail dict instead of an exception crossing the batch
boundary.  The parallel path drains futures as they complete under a
per-future deadline, survives ``BrokenProcessPool`` by rebuilding the pool
with capped exponential backoff and retrying surviving requests one per
future (so a poison request quarantines *itself*, not its batch), and
falls back to serial in-process execution after repeated breakage.  The
:mod:`repro.reliability.faults` plan threads through here to inject every
one of those failure modes on demand (``python -m repro chaos``).
"""

from __future__ import annotations

import atexit
import json
import os
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.errors import AllocatorError, InjectedFault, MachineError, ReproError
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU, ExecutionResult
from repro.machine.loader import load_binary
from repro.obs.tracing import enable_tracing, span, trace_capture, tracing_enabled
from repro.toolchain.binary import Binary
from repro.toolchain.ir import Module

if TYPE_CHECKING:  # avoid an import cycle: reliability imports nothing from eval
    from repro.reliability.faults import FaultPlan

ModuleSource = Union[Module, Callable[[], Module]]

#: (module fingerprint, config digest) — identifies one compilation.
CompileKey = Tuple[str, str]
#: Compile key + (machine, load seed, budget, heap size, attribute_tags,
#: backend) — identifies one deterministic run.  The execution backend is
#: part of the key (two backends are two distinct executions) even though
#: the canonical payload is backend-invariant by construction.
RunKey = Tuple[str, str, str, int, int, int, bool, str]

DEFAULT_INSTRUCTION_BUDGET = 50_000_000
DEFAULT_HEAP_SIZE = 8 * 1024 * 1024


@dataclass
class RunStats:
    """Metrics from one run (the classic harness-facing subset)."""

    cycles: float
    instructions: int
    calls: int
    max_rss: int
    icache_misses: int
    exit_code: int
    output: Tuple[int, ...]


@dataclass
class RunRequest:
    """One cell of an experiment: run ``module`` under ``config``.

    ``label`` is free-form provenance (e.g. ``"figure6/full/mcf"``) carried
    into the record; it does not participate in any cache key.

    ``backend`` selects the machine's execution backend
    (:mod:`repro.machine.backends`).  ``None`` defers to the engine's
    session default; both backends produce identical counters, so the
    choice only affects wall-clock time — but it still participates in the
    run key so measurements from different backends are never conflated.

    ``verify`` runs the :mod:`repro.analysis` checkers over the compiled
    binary and the loaded process before execution, raising
    :class:`~repro.analysis.findings.VerificationError` on any finding.
    Verification is a pure assertion — it cannot change the deterministic
    payload — so, like wall-clock timing, it is *excluded* from the run
    key: a verified record satisfies later unverified requests for the
    same cell.
    """

    module: Module
    config: R2CConfig
    machine: str = "epyc-rome"
    load_seed: int = 1
    instruction_budget: int = DEFAULT_INSTRUCTION_BUDGET
    heap_size: int = DEFAULT_HEAP_SIZE
    attribute_tags: bool = False
    backend: Optional[str] = None
    verify: bool = False
    label: str = ""

    @property
    def compile_key(self) -> CompileKey:
        return (self.module.fingerprint(), self.config.digest())

    @property
    def run_key(self) -> RunKey:
        fingerprint, digest = self.compile_key
        return (
            fingerprint,
            digest,
            self.machine,
            self.load_seed,
            self.instruction_budget,
            self.heap_size,
            self.attribute_tags,
            self.backend or DEFAULT_EXECUTION_BACKEND,
        )


#: Backend assumed when a request does not name one and no engine default
#: intervenes (mirrors the CPU's own default).
DEFAULT_EXECUTION_BACKEND = "reference"

#: RunRecord fields that depend on the execution environment, not the
#: (deterministic) request — excluded from canonical comparisons.  The
#: backend belongs here: backends are required to produce identical
#: counters, so canonical payloads compare equal across backends (the
#: differential tests rely on exactly that).
ENVIRONMENT_FIELDS = (
    "compile_seconds",
    "run_seconds",
    "cache_hit",
    "worker",
    "backend",
    "verified",
    # Trace spans carry wall-clock durations, so they are environmental by
    # definition even though the span *tree* is deterministic.
    "spans",
)


#: Valid RunRecord.outcome states.  ``ok`` and ``fault`` are deterministic
#: (a guest fault replays identically on both backends, so fault records
#: are cached and compared canonically); ``timeout`` and ``error`` are
#: environmental and never enter the run cache.
OUTCOMES = ("ok", "fault", "timeout", "error")

#: Outcomes the engine may serve from the run cache.
CACHEABLE_OUTCOMES = ("ok", "fault")


@dataclass
class RunRecord:
    """The full, JSONL-serializable result of one executed request."""

    label: str
    module_fingerprint: str
    config_digest: str
    machine: str
    seed: int
    load_seed: int
    instruction_budget: int
    heap_size: int
    cycles: float
    instructions: int
    calls: int
    max_rss: int
    icache_misses: int
    exit_code: int
    output: Tuple[int, ...]
    text_bytes: int
    instruction_count: int
    tag_cycles: Optional[Dict[str, float]] = None
    #: Canonical and backend-invariant like ``icache_misses``; defaulted so
    #: JSONL written before this field existed still loads.
    icache_hits: int = 0
    #: ``ok | fault | timeout | error`` — see :data:`OUTCOMES`.
    outcome: str = "ok"
    #: Failure detail for non-ok outcomes: ``{"class", "rule", "message"}``
    #: (``rule`` names the FaultPlan rule when injection caused it).
    failure: Optional[Dict[str, str]] = None
    backend: str = DEFAULT_EXECUTION_BACKEND
    verified: bool = False
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    cache_hit: bool = False
    worker: int = 0
    #: Trace spans captured while executing this request (exported
    #: :class:`repro.obs.tracing.Span` dicts), shipped back from pool
    #: workers; ``None`` unless tracing was enabled.
    spans: Optional[List[Dict[str, object]]] = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def canonical(self) -> Dict[str, object]:
        """The deterministic payload: everything except timing/worker."""
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ENVIRONMENT_FIELDS
        }
        data["output"] = list(self.output)
        return data

    def canonical_json(self) -> str:
        return json.dumps(self.canonical(), sort_keys=True)

    def to_json(self) -> str:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["output"] = list(self.output)
        return json.dumps(data, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        # Forward compatibility: JSONL written by a newer schema may carry
        # fields this build does not know; drop them instead of raising
        # TypeError so old readers keep working across schema growth.
        known = {f.name for f in fields(cls)}
        data = {key: value for key, value in data.items() if key in known}
        data["output"] = tuple(data.get("output", ()))
        return cls(**data)

    def stats(self) -> RunStats:
        return RunStats(
            cycles=self.cycles,
            instructions=self.instructions,
            calls=self.calls,
            max_rss=self.max_rss,
            icache_misses=self.icache_misses,
            exit_code=self.exit_code,
            output=self.output,
        )


def write_records(records: Iterable[RunRecord], path: str) -> int:
    """Append ``records`` to ``path`` as JSON Lines; returns the count."""
    count = 0
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(record.to_json() + "\n")
            count += 1
    return count


def read_records(path: str) -> List[RunRecord]:
    with open(path, "r", encoding="utf-8") as handle:
        return [RunRecord.from_json(line) for line in handle if line.strip()]


class CompileCache:
    """Content-addressed (module fingerprint, config digest) -> Binary."""

    def __init__(self) -> None:
        self._entries: Dict[CompileKey, Binary] = {}
        self.hits = 0
        self.misses = 0
        self.compile_seconds = 0.0
        #: How many times each key was actually compiled (always 1 per key
        #: in a given process — the session-level compile counter).
        self.compile_counts: Dict[CompileKey, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(self, module: Module, config: R2CConfig) -> Tuple[Binary, float, bool]:
        """Return (binary, compile_seconds, was_cache_hit)."""
        key = (module.fingerprint(), config.digest())
        binary = self._entries.get(key)
        if binary is not None:
            self.hits += 1
            return binary, 0.0, True
        started = time.perf_counter()
        binary = compile_module(module, config)
        elapsed = time.perf_counter() - started
        self._entries[key] = binary
        self.misses += 1
        self.compile_seconds += elapsed
        self.compile_counts[key] = self.compile_counts.get(key, 0) + 1
        return binary, elapsed, False


def _failure_record(
    request: RunRequest,
    *,
    outcome: str,
    fault_class: str,
    rule: str = "",
    message: str = "",
) -> RunRecord:
    """A zero-counter record for a request that never produced a result."""
    fingerprint, digest = request.compile_key
    return RunRecord(
        label=request.label,
        module_fingerprint=fingerprint,
        config_digest=digest,
        machine=request.machine,
        seed=request.config.seed,
        load_seed=request.load_seed,
        instruction_budget=request.instruction_budget,
        heap_size=request.heap_size,
        cycles=0.0,
        instructions=0,
        calls=0,
        max_rss=0,
        icache_misses=0,
        exit_code=-1,
        output=(),
        text_bytes=0,
        instruction_count=0,
        tag_cycles=None,
        outcome=outcome,
        failure={"class": fault_class, "rule": rule, "message": message},
        backend=request.backend or DEFAULT_EXECUTION_BACKEND,
        verified=False,
        worker=os.getpid(),
    )


def _execute_request(
    cache: CompileCache, request: RunRequest, plan: Optional["FaultPlan"] = None
) -> RunRecord:
    """Compile (through ``cache``), load, run; collect the full record.

    With tracing enabled, the spans completed while executing this
    request (cache probe, compile, load, verify, run) are captured and
    attached to the record — pool workers ship them back this way.
    """
    with trace_capture() as capture:
        record = _execute_request_phases(cache, request, plan)
    if tracing_enabled():
        record.spans = capture.to_dicts()
    return record


def _execute_request_phases(
    cache: CompileCache, request: RunRequest, plan: Optional["FaultPlan"] = None
) -> RunRecord:
    """The phase sequence of one request, each behind a trace span.

    Guest faults (memory faults, booby traps, allocator OOM, budget
    exhaustion) are deterministic outcomes of the request, not host
    errors: they are captured into an ``outcome="fault"`` record that
    keeps the partial counters accumulated up to the faulting
    instruction.  Host-side failures still raise — the guarded wrapper
    turns those into ``error`` records.
    """
    label = request.label
    if plan is not None:
        compile_rule = plan.rule_of_kind(label, "compile-error")
        if compile_rule is not None:
            raise InjectedFault("compile-error", compile_rule.rule_id)
    with span("engine/cache-probe", "engine", label=label) as probe:
        binary, compile_seconds, cache_hit = cache.get_or_compile(
            request.module, request.config
        )
        probe.set(hit=cache_hit)
    backend = request.backend or DEFAULT_EXECUTION_BACKEND
    if request.verify:
        from repro.analysis import verify_binary

        with span("engine/verify-binary", "engine"):
            verify_binary(binary, target=request.label or None).raise_if_findings()
    started = time.perf_counter()
    with span("engine/load", "engine", seed=request.load_seed):
        process = load_binary(
            binary, seed=request.load_seed, heap_size=request.heap_size
        )
    if request.verify:
        from repro.analysis import verify_loaded

        with span("engine/verify-process", "engine"):
            verify_loaded(process, target=request.label or None).raise_if_findings()
    process.register_service("attack_hook", lambda proc, cpu: 0)
    if plan is not None:
        plan.apply_process_faults(process, request)
    cpu = CPU(
        process,
        get_costs(request.machine),
        instruction_budget=request.instruction_budget,
        attribute_tags=request.attribute_tags,
        backend=backend,
    )
    result = ExecutionResult()
    outcome = "ok"
    failure: Optional[Dict[str, str]] = None
    with span("engine/run", "engine", backend=backend):
        try:
            # Passing the result in keeps the partial counters on a fault.
            cpu.run(result=result)
        except (MachineError, AllocatorError) as exc:
            outcome = "fault"
            rule_id = ""
            if plan is not None:
                kind = "alloc-oom" if isinstance(exc, AllocatorError) else "bitflip"
                matched = plan.rule_of_kind(label, kind)
                rule_id = matched.rule_id if matched is not None else ""
            failure = {"class": type(exc).__name__, "rule": rule_id, "message": str(exc)}
    process.note_resident()
    run_seconds = time.perf_counter() - started
    fingerprint, digest = request.compile_key
    return RunRecord(
        label=request.label,
        module_fingerprint=fingerprint,
        config_digest=digest,
        machine=request.machine,
        seed=request.config.seed,
        load_seed=request.load_seed,
        instruction_budget=request.instruction_budget,
        heap_size=request.heap_size,
        cycles=result.cycles,
        instructions=result.instructions,
        calls=result.calls,
        max_rss=process.max_rss,
        icache_misses=result.icache_misses,
        icache_hits=result.icache_hits,
        exit_code=result.exit_code if outcome == "ok" else -1,
        output=tuple(result.output),
        text_bytes=binary.text_size,
        instruction_count=binary.instruction_count(),
        tag_cycles=dict(result.tag_cycles) if request.attribute_tags else None,
        outcome=outcome,
        failure=failure,
        backend=backend,
        verified=request.verify,
        compile_seconds=compile_seconds,
        run_seconds=run_seconds,
        cache_hit=cache_hit,
        worker=os.getpid(),
    )


#: True inside pool worker processes (set by the pool initializer) — the
#: worker-crash/hang injections only take real effect where killing or
#: stalling the process cannot take the host session down with it.
_IN_POOL_WORKER = False

#: Directory for the shared on-disk compile cache inside pool workers
#: (set by the pool initializer when the engine was given ``cache_dir``).
_WORKER_CACHE_DIR: Optional[str] = None


def _mark_pool_worker(cache_dir: Optional[str] = None) -> None:
    global _IN_POOL_WORKER, _WORKER_CACHE_DIR
    _IN_POOL_WORKER = True
    _WORKER_CACHE_DIR = cache_dir


def _make_compile_cache(cache_dir: Optional[str]) -> CompileCache:
    """The in-memory cache, disk-backed when a directory is configured.

    Imported lazily: :mod:`repro.fleet.cache` subclasses
    :class:`CompileCache`, so a top-level import would be circular.
    """
    if cache_dir is None:
        return CompileCache()
    from repro.fleet.cache import DiskCompileCache

    return DiskCompileCache(cache_dir)


def _execute_request_guarded(
    cache: CompileCache, request: RunRequest, plan: Optional["FaultPlan"] = None
) -> RunRecord:
    """Execute one request; *never* raises.

    Injected worker faults are handled first: a ``worker-crash`` rule
    hard-kills a pool worker (the engine's BrokenProcessPool recovery is
    what is under test) but records an ``error`` in-process; a
    ``worker-hang`` rule sleeps in a pool worker (the engine's deadline
    fires) but records a ``timeout`` in-process.  Everything else funnels
    through :func:`_execute_request`, with host-side exceptions converted
    to ``error`` records.
    """
    if plan is not None:
        label = request.label
        crash = plan.rule_of_kind(label, "worker-crash")
        if crash is not None:
            if _IN_POOL_WORKER:
                os._exit(17)
            return _failure_record(
                request,
                outcome="error",
                fault_class="worker-crash",
                rule=crash.rule_id,
                message="injected worker crash (recorded in-process)",
            )
        hang = plan.rule_of_kind(label, "worker-hang")
        if hang is not None:
            if _IN_POOL_WORKER:
                time.sleep(hang.hang_seconds)
            else:
                return _failure_record(
                    request,
                    outcome="timeout",
                    fault_class="worker-hang",
                    rule=hang.rule_id,
                    message=f"injected {hang.hang_seconds:g}s hang (serial mode: "
                    "recorded as timeout)",
                )
    try:
        return _execute_request(cache, request, plan)
    except InjectedFault as exc:
        return _failure_record(
            request,
            outcome="error",
            fault_class=exc.kind,
            rule=exc.rule_id,
            message=str(exc),
        )
    except ReproError as exc:
        return _failure_record(
            request, outcome="error", fault_class=type(exc).__name__, message=str(exc)
        )


#: Per-worker-process compile cache (workers are long-lived, so binaries
#: built for one batch are reused by later batches dispatched to them).
_WORKER_CACHE: Optional[CompileCache] = None


def _worker_execute_group(
    group: List[Tuple[int, RunRequest]],
    plan: Optional["FaultPlan"] = None,
    trace: bool = False,
) -> List[Tuple[int, RunRecord]]:
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = _make_compile_cache(_WORKER_CACHE_DIR)
    if trace and not tracing_enabled():
        # The parent enabled tracing after this worker was forked (or the
        # pool spawned fresh): mirror the flag so the request spans exist
        # to ship back through RunRecord.spans.
        enable_tracing(True)
    return [
        (index, _execute_request_guarded(_WORKER_CACHE, request, plan))
        for index, request in group
    ]


@dataclass
class FailureSummary:
    """Counts of everything that did not go to plan, by taxonomy level."""

    #: Records with ``outcome != "ok"``.
    failures: int = 0
    by_outcome: Dict[str, int] = field(default_factory=dict)
    #: Exception / fault class (``GuardPageFault``, ``worker-crash``, ...).
    by_class: Dict[str, int] = field(default_factory=dict)
    #: FaultPlan rule IDs, for injected failures.
    by_rule: Dict[str, int] = field(default_factory=dict)
    pool_rebuilds: int = 0
    quarantined: int = 0
    serial_fallbacks: int = 0

    @property
    def clean(self) -> bool:
        return self.failures == 0 and self.pool_rebuilds == 0

    def count(self, record: "RunRecord") -> None:
        if record.outcome == "ok":
            return
        self.failures += 1
        self.by_outcome[record.outcome] = self.by_outcome.get(record.outcome, 0) + 1
        detail = record.failure or {}
        klass = detail.get("class", "unknown")
        self.by_class[klass] = self.by_class.get(klass, 0) + 1
        rule = detail.get("rule", "")
        if rule:
            self.by_rule[rule] = self.by_rule.get(rule, 0) + 1


@dataclass
class EngineSummary:
    """Session-level engine counters, rendered by ``report.render_engine_summary``."""

    jobs: int
    batches: int
    requested: int
    executed: int
    run_cache_hits: int
    compile_cache_hits: int
    compiles: int
    distinct_binaries: int
    compile_seconds: float
    run_seconds: float
    worker_runs: Dict[int, int] = field(default_factory=dict)
    backend: str = DEFAULT_EXECUTION_BACKEND
    failures: FailureSummary = field(default_factory=FailureSummary)

    @property
    def workers(self) -> int:
        return len(self.worker_runs)


class ExperimentEngine:
    """Executes batches of :class:`RunRequest` with caching and fan-out.

    ``jobs == 1`` runs everything in-process; ``jobs > 1`` fans
    independent cells out over a persistent ``ProcessPoolExecutor``.
    Results always come back in request order.

    ``backend`` is the session default execution backend, applied to every
    request that does not name one itself (``RunRequest.backend=None``).

    ``fault_plan`` threads a :class:`repro.reliability.faults.FaultPlan`
    through every execution (serial and worker-side); ``timeout`` is the
    per-future wall-clock deadline in seconds (``None`` = wait forever).
    Pool breakage is retried with capped exponential backoff at most
    ``max_pool_rebuilds`` times before the engine falls back to serial
    in-process execution; a request that breaks the pool more than
    ``max_request_retries`` times is quarantined with an ``error`` record.
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str = DEFAULT_EXECUTION_BACKEND,
        *,
        fault_plan: Optional["FaultPlan"] = None,
        timeout: Optional[float] = None,
        max_pool_rebuilds: int = 3,
        max_request_retries: int = 2,
        pool_backoff_base: float = 0.05,
        pool_backoff_cap: float = 1.0,
        cache_dir: Optional[str] = None,
    ):
        from repro.machine.backends import get_backend

        get_backend(backend)  # fail fast on unknown names
        self.backend = backend
        self.jobs = max(1, int(jobs))
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self.max_request_retries = max(0, int(max_request_retries))
        self.pool_backoff_base = pool_backoff_base
        self.pool_backoff_cap = pool_backoff_cap
        #: When set, compiles persist to (and are shared through) this
        #: directory — the serial path, every pool worker, and the fleet
        #: all read and write the same single-flight store.
        self.cache_dir = cache_dir
        self.cache = _make_compile_cache(cache_dir)
        self.records: List[RunRecord] = []
        self._run_cache: Dict[RunKey, RunRecord] = {}
        self._run_cache_hits = 0
        self._requested = 0
        self._batches = 0
        self._pool_rebuilds = 0
        self._quarantined = 0
        self._serial_fallbacks = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._sources: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown()
            except Exception:  # a broken pool may refuse a clean shutdown
                pass
            self._pool = None

    def _discard_pool(self, *, terminate: bool) -> None:
        """Drop the worker pool (broken or holding hung workers).

        ``terminate=True`` additionally kills the worker processes — after
        a timeout they may be stuck in an injected (or real) hang and
        would never drain a cooperative shutdown.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sources ------------------------------------------------------------

    def materialize(self, source: ModuleSource) -> Module:
        """Resolve a module-or-builder to a module, invoking builders once.

        Builder callables are memoized (weakly, per callable object) so a
        builder reused across seeds/configs is materialized exactly once.
        """
        if isinstance(source, Module) or not callable(source):
            return source
        try:
            cached = self._sources.get(source)
        except TypeError:  # unhashable/unweakrefable callable
            return source()
        if cached is None:
            cached = source()
            self._sources[source] = cached
        return cached

    # -- execution ----------------------------------------------------------

    def run(self, request: RunRequest) -> RunRecord:
        return self.submit([request])[0]

    def submit(self, requests: Sequence[RunRequest]) -> List[RunRecord]:
        """Execute a batch; returns records in request order.

        Requests whose run key was already executed this session (or that
        appear more than once in the batch) are served from the run cache.
        """
        self._batches += 1
        self._requested += len(requests)
        if self.backend != DEFAULT_EXECUTION_BACKEND:
            requests = [
                request
                if request.backend is not None
                else replace(request, backend=self.backend)
                for request in requests
            ]
        results: List[Optional[RunRecord]] = [None] * len(requests)
        pending: Dict[RunKey, List[int]] = {}
        order: List[RunKey] = []
        for position, request in enumerate(requests):
            key = self._effective_run_key(request)
            cached = self._run_cache.get(key)
            if cached is not None:
                self._run_cache_hits += 1
                results[position] = cached
            else:
                if key not in pending:
                    order.append(key)
                pending.setdefault(key, []).append(position)
        # Duplicates inside the batch count as run-cache hits too.
        self._run_cache_hits += sum(len(p) - 1 for p in pending.values())

        unique = [(key, requests[pending[key][0]]) for key in order]
        if self.jobs == 1 or len(unique) <= 1:
            executed = [
                (key, _execute_request_guarded(self.cache, request, self.fault_plan))
                for key, request in unique
            ]
        else:
            executed = self._submit_parallel(unique)

        for key, record in executed:
            # Timeouts and host errors are environmental — rerunning the
            # same key may well succeed, so only deterministic outcomes
            # enter the run cache.
            if record.outcome in CACHEABLE_OUTCOMES:
                self._run_cache[key] = record
            self.records.append(record)
            for position in pending[key]:
                results[position] = record
        assert all(record is not None for record in results)
        return results  # type: ignore[return-value]

    def _effective_run_key(self, request: RunRequest) -> RunKey:
        """The run key, extended with the fault-injection signature.

        Labels do not participate in the plain run key, but fault rules
        match on labels — without the extension, a clean request and a
        fault-injected request for the same cell would alias in the run
        cache.
        """
        key = request.run_key
        if self.fault_plan is not None:
            signature = self.fault_plan.injection_signature(request.label)
            if signature is not None:
                return key + signature  # type: ignore[return-value]
        return key

    def _submit_parallel(
        self, unique: List[Tuple[RunKey, RunRequest]]
    ) -> List[Tuple[RunKey, RunRecord]]:
        """Fan unique requests out to worker processes; never raises.

        Requests sharing a compile key form one work item, so each binary
        is compiled at most once per batch, by the worker that runs it.
        Futures are drained as they complete (one slow compile group no
        longer serializes the rest) under a per-future wall-clock
        deadline.  A ``BrokenProcessPool`` rebuilds the pool with capped
        exponential backoff and re-submits the surviving requests one per
        future, so a poison request ends up quarantined alone; repeated
        breakage falls back to serial in-process execution.  Request
        order is restored by the final index sort regardless of
        completion order.
        """
        plan = self.fault_plan
        groups: Dict[CompileKey, List[Tuple[int, RunRequest]]] = {}
        solo: List[List[Tuple[int, RunRequest]]] = []
        for index, (_, request) in enumerate(unique):
            if plan is not None and (
                plan.rule_of_kind(request.label, "worker-crash") is not None
                or plan.rule_of_kind(request.label, "worker-hang") is not None
            ):
                # A request armed to kill or stall its worker gets a future
                # of its own, so the blast radius excludes its compile
                # group (groupmates would otherwise starve behind it).
                solo.append([(index, request)])
            else:
                groups.setdefault(request.compile_key, []).append((index, request))
        records: Dict[int, RunRecord] = {}
        attempts: Dict[int, int] = {}
        items: List[List[Tuple[int, RunRequest]]] = list(groups.values()) + solo
        rebuilds = 0
        while items:
            if rebuilds > self.max_pool_rebuilds:
                # The pool keeps dying: run what is left in-process.  The
                # guarded executor records injected worker crashes instead
                # of honouring them, so this path always terminates.
                self._serial_fallbacks += 1
                for item in items:
                    for index, request in item:
                        records[index] = _execute_request_guarded(
                            self.cache, request, plan
                        )
                break
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_mark_pool_worker,
                    initargs=(self.cache_dir,),
                )
            try:
                fmap = {
                    self._pool.submit(
                        _worker_execute_group, item, plan, tracing_enabled()
                    ): item
                    for item in items
                }
            except BrokenProcessPool:
                rebuilds += 1
                self._pool_rebuilds += 1
                self._discard_pool(terminate=False)
                self._backoff(rebuilds)
                continue
            items = []
            deadline = None if self.timeout is None else time.monotonic() + self.timeout
            broke = False
            outstanding = set(fmap)
            while outstanding:
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                done, outstanding = wait(
                    outstanding, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    item = fmap[future]
                    try:
                        for index, record in future.result():
                            records[index] = record
                    except BrokenProcessPool:
                        broke = True
                    except Exception as exc:  # pragma: no cover — defensive
                        for index, request in item:
                            records[index] = _failure_record(
                                request,
                                outcome="error",
                                fault_class=type(exc).__name__,
                                message=str(exc),
                            )
                if broke:
                    break
                if not done and outstanding:
                    # Deadline expired: everything unfinished is hung (or
                    # starved behind a hang).  Record timeouts, kill the
                    # workers, and let the next batch start a fresh pool.
                    for future in outstanding:
                        for index, request in fmap[future]:
                            records[index] = self._timeout_record(request)
                    self._discard_pool(terminate=True)
                    outstanding = set()
            if broke:
                rebuilds += 1
                self._pool_rebuilds += 1
                self._discard_pool(terminate=False)
                self._backoff(rebuilds)
                # Retry survivors one request per future: the next breakage
                # then identifies poison requests individually.  A pool
                # break takes down every in-flight future, so strikes must
                # be attributed: if a known worker-killer (a request armed
                # with a worker-crash fault) was still unfinished, the
                # break is its fault and bystanders are requeued without a
                # strike; only with no known suspect does everyone
                # unfinished take one (the organic-crash case, where the
                # culprit is unknowable from outside the dead worker).
                unfinished = [
                    (index, request)
                    for item in fmap.values()
                    for index, request in item
                    if index not in records
                ]
                suspects = {
                    index
                    for index, request in unfinished
                    if plan is not None
                    and plan.rule_of_kind(request.label, "worker-crash") is not None
                }
                for index, request in unfinished:
                    if suspects and index not in suspects:
                        items.append([(index, request)])
                        continue
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] > self.max_request_retries:
                        self._quarantined += 1
                        records[index] = self._quarantine_record(request)
                    else:
                        items.append([(index, request)])
        ordered = sorted(records.items())
        return [(unique[index][0], record) for index, record in ordered]

    def _backoff(self, rebuilds: int) -> None:
        delay = min(self.pool_backoff_cap, self.pool_backoff_base * (2 ** (rebuilds - 1)))
        if delay > 0:
            time.sleep(delay)

    def _timeout_record(self, request: RunRequest) -> RunRecord:
        hang = (
            self.fault_plan.rule_of_kind(request.label, "worker-hang")
            if self.fault_plan is not None
            else None
        )
        return _failure_record(
            request,
            outcome="timeout",
            fault_class="worker-hang" if hang is not None else "timeout",
            rule=hang.rule_id if hang is not None else "",
            message=f"exceeded {self.timeout:g}s wall-clock deadline",
        )

    def _quarantine_record(self, request: RunRequest) -> RunRecord:
        crash = (
            self.fault_plan.rule_of_kind(request.label, "worker-crash")
            if self.fault_plan is not None
            else None
        )
        return _failure_record(
            request,
            outcome="error",
            fault_class="worker-crash" if crash is not None else "worker-lost",
            rule=crash.rule_id if crash is not None else "",
            message="worker died repeatedly running this request; quarantined",
        )

    # -- observability ------------------------------------------------------

    def write_records(self, path: str) -> int:
        """Write every record executed so far to ``path`` as JSONL."""
        return write_records(self.records, path)

    def compile_count(self, module: Module, config: R2CConfig) -> int:
        """How many times this exact (module, config) was compiled in-process."""
        return self.cache.compile_counts.get(
            (module.fingerprint(), config.digest()), 0
        )

    def summary(self) -> EngineSummary:
        worker_runs: Dict[int, int] = {}
        compile_hits = 0
        compiles = 0
        compile_seconds = 0.0
        run_seconds = 0.0
        failures = FailureSummary(
            pool_rebuilds=self._pool_rebuilds,
            quarantined=self._quarantined,
            serial_fallbacks=self._serial_fallbacks,
        )
        for record in self.records:
            worker_runs[record.worker] = worker_runs.get(record.worker, 0) + 1
            if record.cache_hit:
                compile_hits += 1
            else:
                compiles += 1
            compile_seconds += record.compile_seconds
            run_seconds += record.run_seconds
            failures.count(record)
        return EngineSummary(
            jobs=self.jobs,
            batches=self._batches,
            requested=self._requested,
            executed=len(self.records),
            run_cache_hits=self._run_cache_hits,
            compile_cache_hits=compile_hits,
            compiles=compiles,
            distinct_binaries=len(self.cache) if self.jobs == 1 else compiles,
            compile_seconds=compile_seconds,
            run_seconds=run_seconds,
            worker_runs=worker_runs,
            backend=self.backend,
            failures=failures,
        )


class RequestBatch:
    """Build a keyed batch, submit once, read results back by key.

    The drivers' idiom::

        batch = RequestBatch(engine)
        batch.add(("full", name, seed), RunRequest(...))
        results = batch.run()
        results.median(("full", name, seed), "cycles")
    """

    def __init__(self, engine: ExperimentEngine):
        self.engine = engine
        self.requests: List[RunRequest] = []
        self._slots: Dict[object, List[int]] = {}

    def add(self, key: object, request: RunRequest) -> None:
        self._slots.setdefault(key, []).append(len(self.requests))
        self.requests.append(request)

    def run(self) -> "BatchResults":
        return BatchResults(self.engine.submit(self.requests), self._slots)


class BatchResults:
    def __init__(self, records: List[RunRecord], slots: Dict[object, List[int]]):
        self._records = records
        self._slots = slots

    def records(self, key: object) -> List[RunRecord]:
        return [self._records[position] for position in self._slots[key]]

    def record(self, key: object) -> RunRecord:
        positions = self._slots[key]
        if len(positions) != 1:
            raise KeyError(f"{key!r} has {len(positions)} records, expected 1")
        return self._records[positions[0]]

    def median(self, key: object, metric: str = "cycles") -> float:
        from repro.eval.stats import median

        return median([getattr(record, metric) for record in self.records(key)])


# ---------------------------------------------------------------------------
# The session engine: one shared cache/pool per process by default.
# ---------------------------------------------------------------------------

_SESSION_ENGINE: Optional[ExperimentEngine] = None


def get_session_engine() -> ExperimentEngine:
    """The process-wide default engine (serial unless reconfigured)."""
    global _SESSION_ENGINE
    if _SESSION_ENGINE is None:
        _SESSION_ENGINE = ExperimentEngine(jobs=1)
    return _SESSION_ENGINE


def set_session_engine(engine: ExperimentEngine) -> ExperimentEngine:
    """Install ``engine`` as the process-wide default; returns it.

    The engine it replaces is closed — its worker pool, if any, would
    otherwise leak until interpreter exit.
    """
    global _SESSION_ENGINE
    previous = _SESSION_ENGINE
    if previous is not None and previous is not engine:
        previous.close()
    _SESSION_ENGINE = engine
    return engine


@atexit.register
def _close_session_engine() -> None:
    """Last-resort cleanup for the session engine's worker pool."""
    if _SESSION_ENGINE is not None:
        _SESSION_ENGINE.close()
