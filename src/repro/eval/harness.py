"""Compile/load/run plumbing for the performance experiments.

Methodology mirrors Section 6.2 of the paper:

* protected binaries are **recompiled with a different seed for every
  run** ("since the location of return addresses and the distribution of
  BTDPs is random, we recompiled the benchmarks with a different seed for
  each of the executions");
* the reported number is the **median** across runs;
* the baseline is the same compiler with R2C disabled.

Because the simulator is deterministic, a (build seed, load seed) pair
fully determines a run; varying seeds plays the role of run-to-run noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.eval.stats import median
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.loader import load_binary
from repro.toolchain.ir import Module

ModuleSource = Union[Module, Callable[[], Module]]


@dataclass
class RunStats:
    """Metrics from one run."""

    cycles: float
    instructions: int
    calls: int
    max_rss: int
    icache_misses: int
    exit_code: int
    output: Tuple[int, ...]


def _materialize(source: ModuleSource) -> Module:
    return source() if callable(source) else source


def run_module(
    module: Module,
    config: Optional[R2CConfig] = None,
    *,
    machine: str = "epyc-rome",
    load_seed: int = 1,
    instruction_budget: int = 50_000_000,
    heap_size: int = 8 * 1024 * 1024,
) -> RunStats:
    """Compile under ``config``, load, run to completion, collect metrics."""
    binary = compile_module(module, config)
    process = load_binary(binary, seed=load_seed, heap_size=heap_size)
    process.register_service("attack_hook", lambda proc, cpu: 0)
    cpu = CPU(process, get_costs(machine), instruction_budget=instruction_budget)
    result = cpu.run()
    process.note_resident()
    return RunStats(
        cycles=result.cycles,
        instructions=result.instructions,
        calls=result.calls,
        max_rss=process.max_rss,
        icache_misses=result.icache_misses,
        exit_code=result.exit_code,
        output=tuple(result.output),
    )


def measure_config(
    source: ModuleSource,
    config: R2CConfig,
    *,
    machine: str = "epyc-rome",
    seeds: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
) -> float:
    """Median metric across per-seed recompilations of ``source``."""
    values = []
    for seed in seeds:
        stats = run_module(
            _materialize(source),
            config.replace(seed=seed),
            machine=machine,
            load_seed=seed,
        )
        values.append(getattr(stats, metric))
    return median(values)


def measure_overhead(
    source: ModuleSource,
    config: R2CConfig,
    *,
    machine: str = "epyc-rome",
    seeds: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
) -> float:
    """Protected/baseline metric ratio (1.0 = no overhead)."""
    protected = measure_config(source, config, machine=machine, seeds=seeds, metric=metric)
    baseline = measure_config(
        source, R2CConfig.baseline(), machine=machine, seeds=seeds[:1], metric=metric
    )
    return protected / baseline


def verify_equivalence(
    module: Module, config: R2CConfig, *, load_seed: int = 1
) -> bool:
    """Check the diversified binary computes what the baseline computes."""
    base = run_module(module, R2CConfig.baseline(), load_seed=load_seed)
    protected = run_module(module, config, load_seed=load_seed)
    return (base.exit_code, base.output) == (protected.exit_code, protected.output)
