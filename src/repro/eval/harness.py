"""Compile/load/run plumbing for the performance experiments.

Methodology mirrors Section 6.2 of the paper:

* protected binaries are **recompiled with a different seed for every
  run** ("since the location of return addresses and the distribution of
  BTDPs is random, we recompiled the benchmarks with a different seed for
  each of the executions");
* the reported number is the **median** across runs;
* the baseline is the same compiler with R2C disabled.

Because the simulator is deterministic, a (build seed, load seed) pair
fully determines a run; varying seeds plays the role of run-to-run noise.

This module is a thin facade over :mod:`repro.eval.engine`, which owns
the actual execution: content-addressed compile caching (each (module,
config, seed) is compiled exactly once per session — in particular the
baseline of :func:`measure_overhead` is compiled and run once per
(module, machine), not once per protected config), builder memoization
(a builder callable is materialized once, not once per seed), and the
optional process-pool fan-out behind ``--jobs``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import R2CConfig
from repro.eval.engine import (
    ExperimentEngine,
    ModuleSource,
    RunRequest,
    RunStats,
    get_session_engine,
)
from repro.eval.stats import median
from repro.toolchain.ir import Module

__all__ = [
    "RunStats",
    "ModuleSource",
    "run_module",
    "measure_config",
    "measure_overhead",
    "verify_equivalence",
]


def _materialize(source: ModuleSource, engine: Optional[ExperimentEngine] = None) -> Module:
    return (engine or get_session_engine()).materialize(source)


def run_module(
    module: Module,
    config: Optional[R2CConfig] = None,
    *,
    machine: str = "epyc-rome",
    load_seed: int = 1,
    instruction_budget: int = 50_000_000,
    heap_size: int = 8 * 1024 * 1024,
    backend: Optional[str] = None,
    engine: Optional[ExperimentEngine] = None,
) -> RunStats:
    """Compile under ``config``, load, run to completion, collect metrics.

    ``backend`` picks the execution backend; ``None`` defers to the
    engine's session default.
    """
    engine = engine or get_session_engine()
    record = engine.run(
        RunRequest(
            module=module,
            config=config if config is not None else R2CConfig.baseline(),
            machine=machine,
            load_seed=load_seed,
            instruction_budget=instruction_budget,
            heap_size=heap_size,
            backend=backend,
        )
    )
    return record.stats()


def measure_config(
    source: ModuleSource,
    config: R2CConfig,
    *,
    machine: str = "epyc-rome",
    seeds: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
    backend: Optional[str] = None,
    engine: Optional[ExperimentEngine] = None,
) -> float:
    """Median metric across per-seed recompilations of ``source``."""
    engine = engine or get_session_engine()
    module = engine.materialize(source)
    records = engine.submit(
        [
            RunRequest(
                module=module,
                config=config.replace(seed=seed),
                machine=machine,
                load_seed=seed,
                backend=backend,
            )
            for seed in seeds
        ]
    )
    return median([getattr(record, metric) for record in records])


def measure_overhead(
    source: ModuleSource,
    config: R2CConfig,
    *,
    machine: str = "epyc-rome",
    seeds: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
    backend: Optional[str] = None,
    engine: Optional[ExperimentEngine] = None,
) -> float:
    """Protected/baseline metric ratio (1.0 = no overhead).

    Protected and baseline cells go out as one batch (so ``--jobs`` can
    overlap them); the baseline is served from the engine's caches after
    its first computation for a given (module, machine).
    """
    engine = engine or get_session_engine()
    module = engine.materialize(source)
    baseline_seeds = list(seeds[:1])
    requests = [
        RunRequest(
            module=module,
            config=config.replace(seed=seed),
            machine=machine,
            load_seed=seed,
            backend=backend,
        )
        for seed in seeds
    ] + [
        RunRequest(
            module=module,
            config=R2CConfig.baseline().replace(seed=seed),
            machine=machine,
            load_seed=seed,
            backend=backend,
        )
        for seed in baseline_seeds
    ]
    records = engine.submit(requests)
    protected = median([getattr(r, metric) for r in records[: len(seeds)]])
    baseline = median([getattr(r, metric) for r in records[len(seeds):]])
    return protected / baseline


def verify_equivalence(
    module: Module,
    config: R2CConfig,
    *,
    load_seed: int = 1,
    engine: Optional[ExperimentEngine] = None,
) -> bool:
    """Check the diversified binary computes what the baseline computes."""
    base = run_module(module, R2CConfig.baseline(), load_seed=load_seed, engine=engine)
    protected = run_module(module, config, load_seed=load_seed, engine=engine)
    return (base.exit_code, base.output) == (protected.exit_code, protected.output)
