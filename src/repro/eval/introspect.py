"""Defender-side introspection utilities for experiments and examples.

These helpers read ground truth (frame records, call-site records, the
R2C runtime info) that *defenders* own.  Attack code never uses them; the
ablation benches and examples use them to verify what attacks could or
could not have learned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.compiler import compile_module
from repro.core.config import R2CConfig
from repro.machine.costs import get_costs
from repro.machine.cpu import CPU
from repro.machine.isa import Reg
from repro.machine.loader import load_binary
from repro.toolchain.builder import IRBuilder
from repro.toolchain.ir import Module

WORD = 8


def build_two_site_module(loop_calls: int = 3) -> Module:
    """main calls ``callee`` from two distinct call sites (A in a loop, B
    once); ``callee`` fires the attack hook."""
    ir = IRBuilder("two-site")
    callee = ir.function("callee", params=["x"])
    callee.local("t")
    callee.store_local("t", callee.add(callee.param("x"), 1))
    callee.rtcall("attack_hook", [], void=True)
    callee.ret(callee.load_local("t"))

    m = ir.function("main")
    m.local("acc")
    m.store_local("acc", 0)
    ivar = m.counted_loop(loop_calls, "body", "done")
    i = m.load_local(ivar)
    r = m.call("callee", [i])  # site A
    m.store_local("acc", m.add(m.load_local("acc"), r))
    m.loop_backedge(ivar, "body")
    m.new_block("done")
    r2 = m.call("callee", [7])  # site B
    m.out(m.add(m.load_local("acc"), r2))
    m.ret(0)
    return ir.finish()


@dataclass
class HookSnapshot:
    """Ground-truth view of the innermost BTRA site at one hook firing."""

    rsp: int
    ra_slot: int
    ra: int
    pre: List[int]
    post: List[int]


@dataclass
class HookProbe:
    """Compiles a module, runs it, and snapshots every hook firing."""

    config: R2CConfig
    module: Optional[Module] = None
    hook_function: str = "callee"
    load_seed: int = 5
    snapshots: List[HookSnapshot] = field(default_factory=list)

    def run(self) -> "HookProbe":
        module = self.module if self.module is not None else build_two_site_module()
        self.binary = compile_module(module, self.config)
        self.process = load_binary(self.binary, seed=self.load_seed)
        record = self.binary.frame_records[self.hook_function]
        text_base = self.process.text_base

        def hook(process, cpu):
            rsp = cpu.regs[Reg.RSP]
            ra_slot = rsp + record.frame_bytes + WORD * record.post_offset
            ra = process.memory.load_word_raw(ra_slot)
            site = self.binary.callsite_records.get(ra - text_base)
            pre = [
                process.memory.load_word_raw(ra_slot + WORD * (k + 1))
                for k in range(site.pre_words if site else 0)
            ]
            post = [
                process.memory.load_word_raw(ra_slot - WORD * (k + 1))
                for k in range(site.post_words if site else 0)
            ]
            self.snapshots.append(HookSnapshot(rsp, ra_slot, ra, pre, post))
            return 0

        self.process.register_service("attack_hook", hook)
        self.result = CPU(self.process, get_costs("epyc-rome")).run()
        return self


class CallRaceObserver:
    """Observes the stack right before and right after each BTRA call —
    the MTB race of Section 5.1 / the kR^X comparison of Section 8."""

    def __init__(self, binary, text_base, window_words: int = 16):
        self.binary = binary
        self.text_base = text_base
        self.window_words = window_words
        self.observations: List[Dict] = []
        self._pending = None

    def __call__(self, cpu, rip, instr) -> None:
        from repro.machine.isa import Op

        if self._pending is not None:
            before, base = self._pending
            self._pending = None
            after = self._window(cpu, base)
            changed = [
                base + WORD * k
                for k in range(len(before))
                if before[k] != after[k]
            ]
            self.observations.append(
                {"changed_slots": changed, "after": after, "base": base}
            )
        if instr.op is Op.CALL:
            ret_offset = rip + instr.size - self.text_base
            record = self.binary.callsite_records.get(ret_offset)
            if record is not None and record.uses_btra:
                base = cpu.regs[Reg.RSP] - WORD * self.window_words
                self._pending = (self._window(cpu, base), base)

    def _window(self, cpu, base) -> List[int]:
        memory = cpu.process.memory
        return [
            memory.load_word_raw(base + WORD * k)
            for k in range(2 * self.window_words)
        ]


def observe_call_races(config: R2CConfig, *, load_seed: int = 5) -> List[Dict]:
    """Run the two-site module under ``config`` with a race observer."""
    module = build_two_site_module()
    binary = compile_module(module, config)
    process = load_binary(binary, seed=load_seed)
    process.register_service("attack_hook", lambda proc, cpu: 0)
    observer = CallRaceObserver(binary, process.text_base)
    CPU(process, get_costs("epyc-rome"), trace_fn=observer).run()
    return observer.observations
