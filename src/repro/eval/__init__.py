"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.stats` — geometric means, medians, overhead ratios.
* :mod:`repro.eval.engine` — the run-execution engine: typed
  request/record pairs, content-addressed compile cache, serial and
  process-pool executors, JSONL run records (Section 6.2 methodology at
  scale).
* :mod:`repro.eval.harness` — thin compile/load/run facade over the
  engine with per-seed recompilation semantics.
* :mod:`repro.eval.experiments` — one driver per table/figure, each
  submitting request batches to the engine; see DESIGN.md section 4 for
  the experiment index.
* :mod:`repro.eval.report` — text renderers mirroring the paper's tables.
"""

from repro.eval.engine import (
    ExperimentEngine,
    RunRecord,
    RunRequest,
    get_session_engine,
    set_session_engine,
)
from repro.eval.harness import RunStats, run_module, measure_config, measure_overhead
from repro.eval.stats import geomean, median, overhead_percent

__all__ = [
    "ExperimentEngine",
    "RunRequest",
    "RunRecord",
    "RunStats",
    "get_session_engine",
    "set_session_engine",
    "run_module",
    "measure_config",
    "measure_overhead",
    "geomean",
    "median",
    "overhead_percent",
]
