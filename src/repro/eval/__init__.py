"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.stats` — geometric means, medians, overhead ratios.
* :mod:`repro.eval.harness` — compile/load/run plumbing with per-seed
  recompilation (the paper's methodology, Section 6.2).
* :mod:`repro.eval.experiments` — one driver per table/figure; see
  DESIGN.md section 4 for the experiment index.
* :mod:`repro.eval.report` — text renderers mirroring the paper's tables.
"""

from repro.eval.harness import RunStats, run_module, measure_config, measure_overhead
from repro.eval.stats import geomean, median, overhead_percent

__all__ = [
    "RunStats",
    "run_module",
    "measure_config",
    "measure_overhead",
    "geomean",
    "median",
    "overhead_percent",
]
