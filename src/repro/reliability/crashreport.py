"""Structured defender-side crash reports (Section 4.2 triage).

When a worker faults, the defender gets one shot at telemetry before the
process is reaped.  :class:`CrashReport` snapshots everything a real crash
handler would: the exception, the faulting address, the architectural
registers, a window of stack memory around ``rsp``, and a backtrace
recovered through the ``.eh_frame`` analogue (:mod:`repro.toolchain.
unwind`) — which, per Section 7.2.4, must work through any number of
BTRAs.

Triage classifies the fault the way R2C's reactive story needs:

* ``btra-trip`` — control flow reached a booby-trap function: a BTRA was
  consumed, i.e. a ROP chain executed.
* ``btdp-trip`` — a guard page was dereferenced: a booby-trapped data
  pointer was followed.
* ``cfi-violation`` — the shadow stack (Section 8.2 comparison point)
  disagreed with a return.
* ``benign-fault`` — everything else (wild access, budget exhaustion):
  possibly an attack side effect, but not a trap detection.

Reports are deterministic: both execution backends leave identical
architectural state at a fault (the differential tests compare serialized
reports byte-for-byte across backends).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    BoobyTrapTriggered,
    GuardPageFault,
    MachineError,
    MemoryFault,
    ShadowStackViolation,
)
from repro.machine.isa import Reg
from repro.machine.memory import WORD_BYTES
from repro.toolchain.unwind import UnwindError, backtrace

TRIAGE_BTRA = "btra-trip"
TRIAGE_BTDP = "btdp-trip"
TRIAGE_CFI = "cfi-violation"
TRIAGE_BENIGN = "benign-fault"

#: Triage states that count as *detections* (a trap fired, not just a crash).
DETECTION_TRIAGES = (TRIAGE_BTRA, TRIAGE_BTDP, TRIAGE_CFI)

#: Words of stack captured on each side of rsp.
STACK_WINDOW_WORDS = 16

_REG_NAMES = [reg.name.lower() for reg in Reg if reg < 16]


def triage_fault(exc: MachineError) -> str:
    """Map a machine fault to its reactive-defense meaning."""
    if isinstance(exc, BoobyTrapTriggered):
        return TRIAGE_BTRA
    if isinstance(exc, GuardPageFault):
        return TRIAGE_BTDP
    if isinstance(exc, ShadowStackViolation):
        return TRIAGE_CFI
    return TRIAGE_BENIGN


@dataclass
class CrashReport:
    """Post-mortem snapshot of one faulted worker."""

    #: Supervisor-assigned sequence number (probe index); 0 if standalone.
    sequence: int
    fault_class: str
    message: str
    triage: str
    rip: int
    #: The faulting data address, for memory faults; None otherwise.
    faulting_address: Optional[int]
    #: Region ("text"/"data"/"heap"/"stack"/None) of the faulting address.
    faulting_region: Optional[str]
    registers: Dict[str, int]
    #: (address, value) pairs around rsp; unmapped words are skipped.
    stack_window: Tuple[Tuple[int, int], ...]
    #: Function names innermost-first, via the .eh_frame analogue.
    backtrace: Tuple[str, ...] = ()
    #: Why the backtrace stops short, when the stack is too corrupt to walk.
    backtrace_error: Optional[str] = None
    #: Most-recent trace span *names* (oldest first) when tracing was on.
    #: Names only — durations differ between backends, and serialized
    #: reports are compared byte-for-byte across them.
    recent_spans: Tuple[str, ...] = ()

    @property
    def detected(self) -> bool:
        return self.triage in DETECTION_TRIAGES

    @classmethod
    def from_fault(
        cls, exc: MachineError, cpu, process, *, sequence: int = 0
    ) -> "CrashReport":
        """Build a report from a fault plus the post-mortem machine state."""
        rip = cpu.rip
        rsp = cpu.regs[Reg.RSP]
        registers = {
            name: cpu.regs[index] for index, name in enumerate(_REG_NAMES)
        }
        faulting_address = getattr(exc, "address", None)
        faulting_region = (
            process.layout.region_of(faulting_address)
            if faulting_address is not None
            else None
        )
        window: List[Tuple[int, int]] = []
        for offset in range(-STACK_WINDOW_WORDS, STACK_WINDOW_WORDS):
            address = rsp + offset * WORD_BYTES
            try:
                window.append((address, process.memory.load_word_raw(address)))
            except MemoryFault:
                continue
        trace: Tuple[str, ...] = ()
        trace_error: Optional[str] = None
        try:
            trace = tuple(backtrace(process, rip, rsp))
        except UnwindError as unwind_exc:
            # A smashed stack is exactly when unwinding fails loudly; the
            # failure itself is forensic signal.
            trace_error = str(unwind_exc)
        from repro.obs.tracing import recent_span_names

        return cls(
            sequence=sequence,
            fault_class=type(exc).__name__,
            message=str(exc),
            triage=triage_fault(exc),
            rip=rip,
            faulting_address=faulting_address,
            faulting_region=faulting_region,
            registers=registers,
            stack_window=tuple(window),
            backtrace=trace,
            backtrace_error=trace_error,
            recent_spans=tuple(recent_span_names()),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "sequence": self.sequence,
            "fault_class": self.fault_class,
            "message": self.message,
            "triage": self.triage,
            "rip": self.rip,
            "faulting_address": self.faulting_address,
            "faulting_region": self.faulting_region,
            "registers": dict(self.registers),
            "stack_window": [list(pair) for pair in self.stack_window],
            "backtrace": list(self.backtrace),
            "backtrace_error": self.backtrace_error,
            "recent_spans": list(self.recent_spans),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def summary_line(self) -> str:
        """One-line triage summary (the supervisor's log format)."""
        where = (
            f" at {self.faulting_address:#x} ({self.faulting_region or 'unmapped'})"
            if self.faulting_address is not None
            else ""
        )
        frames = "/".join(self.backtrace[:4]) if self.backtrace else "<no unwind>"
        return (
            f"#{self.sequence} {self.triage}: {self.fault_class}{where}"
            f" rip={self.rip:#x} bt={frames}"
        )
