"""``python -m repro chaos``: the fault-injection matrix.

Chaos runs are the reliability layer's own acceptance test: build a batch
that injects every fault kind into real workloads, submit it through a
fault-armed :class:`~repro.eval.engine.ExperimentEngine`, and assert the
engine's contract held — a full, request-ordered record list with every
injected fault surfaced as the *expected* ``outcome`` (no unhandled
exception, no lost cell).  CI runs this matrix on both execution backends
with ``--jobs 4``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import R2CConfig
from repro.eval.engine import ExperimentEngine, RunRequest
from repro.reliability.faults import FaultPlan, FaultRule
from repro.workloads.victim import build_victim
from repro.workloads.webserver import build_webserver

#: Expected record outcomes per injected kind.  A bitflip may land in dead
#: padding (``ok``) or corrupt live state (``fault``); both prove the
#: engine survived — what chaos rejects is a bitflip escalating to a
#: host-side ``error`` or hanging the batch.
EXPECTED_OUTCOMES: Dict[str, Tuple[str, ...]] = {
    "control": ("ok",),
    "bitflip": ("ok", "fault"),
    "alloc-oom": ("fault",),
    "compile-error": ("error",),
    "worker-crash": ("error",),
    "worker-hang": ("timeout",),
}


def chaos_plan(seed: int = 0) -> FaultPlan:
    """The standard chaos-matrix plan: one rule per fault kind, matched by
    the ``chaos/<kind>/...`` label convention."""
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule("CHAOS-FLIP", "bitflip", match="chaos/bitflip/*", count=16),
            # The victim churns the heap, so its OOM fires mid-run; the
            # webserver makes one ballast allocation, so its OOM must fire
            # on the first malloc.
            FaultRule(
                "CHAOS-OOM", "alloc-oom", match="chaos/alloc-oom/victim", after_allocs=3
            ),
            FaultRule(
                "CHAOS-OOM-FIRST", "alloc-oom", match="chaos/alloc-oom/nginx"
            ),
            FaultRule("CHAOS-COMPILE", "compile-error", match="chaos/compile-error/*"),
            FaultRule("CHAOS-CRASH", "worker-crash", match="chaos/worker-crash/*"),
            FaultRule("CHAOS-HANG", "worker-hang", match="chaos/worker-hang/*", hang_seconds=60.0),
        ),
    )


@dataclass
class ChaosCell:
    """One matrix cell: what was injected and what came back."""

    kind: str
    label: str
    workload: str
    outcome: str
    fault_class: str = ""
    rule: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome in EXPECTED_OUTCOMES[self.kind]


@dataclass
class ChaosReport:
    """The chaos run's verdict, serializable for the CI artifact."""

    jobs: int
    backend: str
    seed: int
    timeout: float
    cells: List[ChaosCell] = field(default_factory=list)
    #: Contract violations: misordered batches, wrong outcomes, missing
    #: rule attributions.  Empty means the run is green.
    violations: List[str] = field(default_factory=list)
    summary: Optional[object] = None  # EngineSummary

    @property
    def ok(self) -> bool:
        return not self.violations

    def outcomes_by_kind(self) -> Dict[str, Dict[str, int]]:
        tallies: Dict[str, Dict[str, int]] = {}
        for cell in self.cells:
            row = tallies.setdefault(cell.kind, {})
            row[cell.outcome] = row.get(cell.outcome, 0) + 1
        return tallies

    def to_json(self) -> str:
        failures = self.summary.failures if self.summary is not None else None
        return json.dumps(
            {
                "jobs": self.jobs,
                "backend": self.backend,
                "seed": self.seed,
                "timeout": self.timeout,
                "ok": self.ok,
                "violations": list(self.violations),
                "cells": [
                    {
                        "kind": cell.kind,
                        "label": cell.label,
                        "workload": cell.workload,
                        "outcome": cell.outcome,
                        "fault_class": cell.fault_class,
                        "rule": cell.rule,
                        "ok": cell.ok,
                    }
                    for cell in self.cells
                ],
                "failure_summary": (
                    None
                    if failures is None
                    else {
                        "failures": failures.failures,
                        "by_outcome": dict(failures.by_outcome),
                        "by_class": dict(failures.by_class),
                        "by_rule": dict(failures.by_rule),
                        "pool_rebuilds": failures.pool_rebuilds,
                        "quarantined": failures.quarantined,
                        "serial_fallbacks": failures.serial_fallbacks,
                    }
                ),
            },
            sort_keys=True,
        )


@dataclass
class FleetChaosReport:
    """The fleet chaos leg's verdict (``python -m repro chaos --fleet``)."""

    backend: str
    seed: int
    workers: int
    #: The surviving run's serving section (outcome tallies, swap/retry
    #: counts, latency percentiles).
    serving: Dict[str, object] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> str:
        return json.dumps(
            {
                "backend": self.backend,
                "seed": self.seed,
                "workers": self.workers,
                "ok": self.ok,
                "violations": list(self.violations),
                "serving": dict(self.serving),
            },
            sort_keys=True,
        )


def run_fleet_chaos(
    *,
    backend: str = "fast",
    seed: int = 0,
    workers: int = 4,
    rps: float = 300.0,
    duration_seconds: float = 2.0,
) -> FleetChaosReport:
    """Chaos the serving layer: seeded kills, hangs, attack probes, and
    compile faults against a live fleet, asserting the robustness
    contract — zero lost requests, every outcome typed, re-randomization
    still completing, and the whole run bit-deterministic (same seed, two
    runs, identical serving metrics).
    """
    # Imported here: the fleet sits above the reliability layer.
    from repro.fleet.core import ChaosSpec
    from repro.fleet.loadgen import run_fleet

    report = FleetChaosReport(backend=backend, seed=seed, workers=workers)
    spec = ChaosSpec(
        kill_fraction=0.5,
        hang_fraction=0.25,
        attack_fraction=0.05,
        compile_fault_every=2,
        kill_waves=4,
        hang_waves=2,
    )

    def one_run():
        return run_fleet(
            workers=workers,
            rps=rps,
            duration_seconds=duration_seconds,
            backend=backend,
            seed=seed,
            chaos_spec=spec,
        )

    try:
        first = one_run()
    except RuntimeError as exc:
        # The scheduler's own zero-drop contract fired.
        report.violations.append(f"fleet lost requests under chaos: {exc}")
        return report
    report.serving = first.serving()

    if not first.zero_lost:
        report.violations.append(
            f"{first.arrivals} arrivals but only "
            f"{sum(first.outcomes.values())} typed outcomes"
        )
    if first.kills + first.hangs == 0:
        report.violations.append("chaos injected no kills or hangs")
    if first.compile_faults == 0:
        report.violations.append("chaos injected no compile faults")
    if first.outcomes.get("fault", 0) == 0:
        report.violations.append("no attack probe turned into a fault outcome")
    if first.swaps == 0:
        report.violations.append(
            "rolling re-randomization completed no swaps under chaos"
        )
    if first.restarts == 0:
        report.violations.append("no worker came back from a crash")

    second = one_run()
    first_metrics, second_metrics = first.serving(), second.serving()
    # Host-side cache telemetry is environmental; everything else must
    # be bit-identical between the two runs.
    first_metrics.pop("cache"), second_metrics.pop("cache")
    if first_metrics != second_metrics:
        diverged = [
            key
            for key in first_metrics
            if first_metrics[key] != second_metrics.get(key)
        ]
        report.violations.append(
            f"chaos run is not deterministic; diverging keys: {diverged}"
        )
    return report


def run_chaos(
    *,
    jobs: int = 2,
    backend: str = "reference",
    seed: int = 0,
    timeout: float = 10.0,
) -> ChaosReport:
    """Run the full fault matrix; never raises on injected faults.

    Two workloads (the victim server with heap churn, so mid-run OOM has
    allocation traffic to starve, and the nginx-flavoured webserver) each
    take every fault kind once, plus clean control cells.
    """
    plan = chaos_plan(seed)
    workloads = {
        "victim": (build_victim(heap_churn=4), R2CConfig.baseline()),
        "nginx": (
            build_webserver("nginx", requests=12, footprint_pages=4),
            R2CConfig.full(seed=7),
        ),
    }
    report = ChaosReport(jobs=jobs, backend=backend, seed=seed, timeout=timeout)
    requests: List[RunRequest] = []
    kinds: List[Tuple[str, str]] = []
    for kind in EXPECTED_OUTCOMES:
        for workload_index, (workload, (module, config)) in enumerate(
            workloads.items()
        ):
            label = f"chaos/{kind}/{workload}"
            requests.append(
                RunRequest(
                    module,
                    config,
                    load_seed=seed + 1 + workload_index,
                    label=label,
                )
            )
            kinds.append((kind, workload))

    engine = ExperimentEngine(
        jobs=jobs, backend=backend, fault_plan=plan, timeout=timeout
    )
    try:
        records = engine.submit(requests)
        if len(records) != len(requests):
            report.violations.append(
                f"batch returned {len(records)} records for {len(requests)} requests"
            )
        for request, record, (kind, workload) in zip(requests, records, kinds):
            detail = record.failure or {}
            cell = ChaosCell(
                kind=kind,
                label=request.label,
                workload=workload,
                outcome=record.outcome,
                fault_class=detail.get("class", ""),
                rule=detail.get("rule", ""),
            )
            report.cells.append(cell)
            if record.label != request.label:
                report.violations.append(
                    f"{request.label}: record order broken (got {record.label})"
                )
            if not cell.ok:
                report.violations.append(
                    f"{cell.label}: outcome {cell.outcome!r} not in "
                    f"{EXPECTED_OUTCOMES[kind]} ({cell.fault_class}: "
                    f"{detail.get('message', '')})"
                )
            if kind != "control" and record.outcome != "ok" and not cell.rule:
                report.violations.append(
                    f"{cell.label}: failure not attributed to a chaos rule"
                )
        report.summary = engine.summary()
    finally:
        engine.close()
    return report
