"""The reactive supervisor: crash triage + restart policies (Section 4.2).

R2C turns attacks into faults; this module models the defender that has to
*do something* with those faults.  :class:`SupervisedSession` wraps a
:class:`~repro.attacks.scenario.VictimSession` — it is a drop-in for every
multi-probe attack (Blind ROP, PIROP, AOCR all drive ``session.probe`` and
``session.monitor`` only) — and supervises the worker the way a
fork-server master would:

* every fault is captured into a :class:`~repro.reliability.crashreport.
  CrashReport` (registers, faulting address, stack window, backtrace,
  triage);
* a :class:`RestartPolicy` decides what the next ``spawn`` means:
  ``none`` (the service stays down after its first crash), ``restart-same``
  (same image, same ASLR — the Section 4 fork-server behaviour Blind ROP
  exploits), or ``restart-rerandomize`` (MARDU-style: every respawn rolls
  new load-time dice, breaking cross-probe inference);
* restarts are **rate-limited with exponential backoff**: consecutive
  crashes escalate a virtual backoff delay (the simulator has no real
  clock; delays are accounted, not slept) and a restart budget caps total
  respawns — a crash-storm both slows the prober down and is *flagged* as
  a detection once :attr:`crash_storm_threshold` consecutive crashes pile
  up, which is how a monoculture victim with no traps still detects
  Blind ROP probing;
* detection latency — the probe index at which the defender first knew it
  was under attack, via trap trip or crash storm — lands in
  :class:`SupervisorStats` for the ``supervised`` experiment's per-policy
  comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.attacks.scenario import AttackFn, ProbeResult, VictimSession
from repro.core.config import R2CConfig
from repro.errors import ExecutionLimitExceeded
from repro.reliability.crashreport import CrashReport

#: Probe status reported while the service is down (crashed and not
#: restarted).  Attack loops treat any non-"success" status as a failed
#: probe, so existing attacks need no changes to face a dead service.
STATUS_UNAVAILABLE = "unavailable"

#: Probe status for a worker that blew its per-probe deadline (hung).
STATUS_TIMED_OUT = "timed-out"


def backoff_delay(consecutive_crashes: int, base: float, cap: float) -> float:
    """The capped exponential restart delay after the Nth consecutive crash.

    Monotone non-decreasing in ``consecutive_crashes`` and never above
    ``cap`` — the schedule the supervisor accounts against the virtual
    clock and the fleet sleeps through before reviving a worker.  Returns
    0.0 for ``consecutive_crashes <= 0`` (no crash, no delay).
    """
    if consecutive_crashes <= 0:
        return 0.0
    exponent = min(consecutive_crashes - 1, 30)
    return min(cap, base * (2**exponent))


class RestartPolicy(str, enum.Enum):
    """What the supervisor does after a worker crash."""

    NONE = "none"
    RESTART_SAME = "restart-same"
    RESTART_RERANDOMIZE = "restart-rerandomize"

    @classmethod
    def parse(cls, name: "str | RestartPolicy") -> "RestartPolicy":
        if isinstance(name, RestartPolicy):
            return name
        try:
            return cls(name)
        except ValueError:
            options = ", ".join(policy.value for policy in cls)
            raise ValueError(f"unknown restart policy {name!r}; choose from {options}")


@dataclass
class SupervisorStats:
    """Counters the supervised experiment reports per policy."""

    probes: int = 0
    crashes: int = 0
    #: Crashes whose triage was a trap trip (BTRA/BTDP/CFI).
    trap_detections: int = 0
    restarts: int = 0
    #: Probes refused because the service was down.
    denials: int = 0
    #: Probes that blew the per-probe deadline (hung worker, triaged like
    #: a crash).
    timeouts: int = 0
    #: Probe index of the first trap-trip report.
    first_trap_probe: Optional[int] = None
    #: Probe index at which the crash-storm threshold was first crossed.
    first_storm_probe: Optional[int] = None
    #: Accounted (virtual) seconds spent in restart backoff.
    backoff_seconds: float = 0.0

    @property
    def detection_latency(self) -> Optional[int]:
        """Probes until the defender first knew — trap trip or crash storm."""
        candidates = [
            probe
            for probe in (self.first_trap_probe, self.first_storm_probe)
            if probe is not None
        ]
        return min(candidates) if candidates else None


class SupervisedSession(VictimSession):
    """A :class:`VictimSession` under defender-side supervision.

    ``max_restarts`` is the restart budget; once exhausted the service
    stays down (every further probe is denied).  ``backoff_base`` /
    ``backoff_cap`` shape the per-crash exponential backoff, accounted in
    :attr:`SupervisorStats.backoff_seconds` against a virtual clock.

    ``probe_deadline_instructions`` is the per-probe deadline against the
    same virtual clock the backends already enforce: it tightens the
    session's instruction budget, and a probe that exhausts it is
    classified ``"timed-out"`` and triaged exactly like a crash (report,
    backoff, restart-or-down) — a hung worker must not block the
    supervisor forever.  This reuses the engine's hung-worker semantics
    (the engine maps the same budget exhaustion to its ``timeout``
    outcome).
    """

    def __init__(
        self,
        config: R2CConfig,
        *,
        policy: "str | RestartPolicy" = RestartPolicy.RESTART_SAME,
        max_restarts: int = 100_000,
        backoff_base: float = 0.5,
        backoff_cap: float = 60.0,
        crash_storm_threshold: int = 8,
        probe_deadline_instructions: Optional[int] = None,
        **session_kwargs,
    ):
        self.policy = RestartPolicy.parse(policy)
        session_kwargs.setdefault(
            "rerandomize_on_restart",
            self.policy is RestartPolicy.RESTART_RERANDOMIZE,
        )
        if probe_deadline_instructions is not None:
            session_kwargs.setdefault("instruction_budget", probe_deadline_instructions)
        super().__init__(config, **session_kwargs)
        self.probe_deadline_instructions = probe_deadline_instructions
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.crash_storm_threshold = crash_storm_threshold
        self.stats = SupervisorStats()
        self.reports: List[CrashReport] = []
        self._down = False
        self._consecutive_crashes = 0

    # -- service state -----------------------------------------------------

    @property
    def available(self) -> bool:
        return not self._down

    @property
    def spawns(self) -> int:
        return self._spawn_count

    # -- supervised probing ------------------------------------------------

    def probe(self, hook: AttackFn, *, attacker_seed: int = 0):
        """One probe against the *supervised* service.

        Returns (status, result) exactly like the parent, with two more
        statuses: ``"unavailable"`` when the service is down (crashed
        under policy ``none``, or the restart budget is spent), and
        ``"timed-out"`` when a per-probe deadline caught a hung worker.
        """
        self.stats.probes += 1
        if self._down:
            self.stats.denials += 1
            return STATUS_UNAVAILABLE, None
        probe = self.probe_ex(hook, attacker_seed=attacker_seed)
        if probe.exception is None:
            # The worker survived: the storm, if any, has broken.
            self._consecutive_crashes = 0
            return probe.status, probe.result
        if self.probe_deadline_instructions is not None and isinstance(
            probe.exception, ExecutionLimitExceeded
        ):
            # The deadline fired: a hung worker, not a fault.  Triage it
            # like a crash (report + backoff + restart-or-down) so it
            # cannot wedge the service, but report it distinctly.
            probe.status = STATUS_TIMED_OUT
            probe.timed_out = True
            self.stats.timeouts += 1
        self._on_crash(probe)
        return probe.status, probe.result

    def _on_crash(self, probe: ProbeResult) -> None:
        report = CrashReport.from_fault(
            probe.exception, probe.cpu, probe.process, sequence=self.stats.probes
        )
        self.reports.append(report)
        self.stats.crashes += 1
        self._consecutive_crashes += 1
        if report.detected:
            self.stats.trap_detections += 1
            if self.stats.first_trap_probe is None:
                self.stats.first_trap_probe = self.stats.probes
        if (
            self._consecutive_crashes >= self.crash_storm_threshold
            and self.stats.first_storm_probe is None
        ):
            self.stats.first_storm_probe = self.stats.probes
        if self.policy is RestartPolicy.NONE:
            self._down = True
            return
        if self.stats.restarts >= self.max_restarts:
            self._down = True
            return
        # Exponential, capped backoff against the virtual clock: each
        # consecutive crash doubles the delay a real supervisor would
        # impose before the respawn (accounted, not slept).
        self.stats.backoff_seconds += backoff_delay(
            self._consecutive_crashes, self.backoff_base, self.backoff_cap
        )
        self.stats.restarts += 1
