"""Reactive reliability layer: fault injection, crash triage, supervision.

R2C's reactive half (Sections 4.2, 7.2) needs three things this package
provides: deterministic *fault injection* to exercise every failure path
on demand (:mod:`repro.reliability.faults`, driven by ``python -m repro
chaos``), defender-side *crash triage* into structured reports
(:mod:`repro.reliability.crashreport`), and a *supervisor* that drives
restart policies against crash-probing attacks
(:mod:`repro.reliability.supervisor`).

The chaos driver (:mod:`repro.reliability.chaos`) imports the eval engine
and is intentionally *not* re-exported here: the engine type-checks
against :class:`FaultPlan`, so pulling chaos in at package-import time
would create a cycle.
"""

from repro.reliability.crashreport import (
    DETECTION_TRIAGES,
    TRIAGE_BENIGN,
    TRIAGE_BTDP,
    TRIAGE_BTRA,
    TRIAGE_CFI,
    CrashReport,
    triage_fault,
)
from repro.reliability.faults import BITFLIP_REGIONS, FAULT_KINDS, FaultPlan, FaultRule
from repro.reliability.supervisor import (
    STATUS_UNAVAILABLE,
    RestartPolicy,
    SupervisedSession,
    SupervisorStats,
)

__all__ = [
    "BITFLIP_REGIONS",
    "CrashReport",
    "DETECTION_TRIAGES",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "RestartPolicy",
    "STATUS_UNAVAILABLE",
    "SupervisedSession",
    "SupervisorStats",
    "TRIAGE_BENIGN",
    "TRIAGE_BTDP",
    "TRIAGE_BTRA",
    "TRIAGE_CFI",
    "triage_fault",
]
