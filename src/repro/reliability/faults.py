"""Deterministic fault injection for the experiment engine.

R2C is a *reactive* defense: its value proposition is that corruption
faults immediately and the defender survives the fault (Sections 4.2,
7.2).  Proving the survival half needs faults on demand — so this module
defines a seeded, picklable :class:`FaultPlan` the engine threads through
to its workers.  Rules match request labels by glob and inject one of five
fault kinds, each exercising a different error path:

``bitflip``
    Flip seeded bits in a mapped region of the loaded process before
    execution (:meth:`~repro.machine.memory.Memory.corrupt_bit`).  Applied
    once, pre-run, so both execution backends then run the *same* corrupted
    image — fault records stay byte-identical across backends.
``alloc-oom``
    Arm the process allocator to fail after N more allocations
    (:meth:`~repro.heap.allocator.Allocator.arm_oom`).
``compile-error``
    Raise a synthetic :class:`~repro.errors.InjectedFault` before the
    compile, modelling toolchain breakage.
``worker-crash``
    Hard-kill the pool worker (``os._exit``) mid-batch; in-process
    execution records the crash instead of taking down the host.
``worker-hang``
    Sleep past the engine's wall-clock timeout in a pool worker; serial
    execution converts the rule directly into a ``timeout`` record.

Determinism: bitflip addresses derive from ``DiversityRng(plan.seed)``
keyed by (rule id, load seed) — never from the label — so two requests
with equal run keys matched by the same rules behave identically and the
engine's run-level dedup stays sound (the engine extends the run key with
:meth:`FaultPlan.injection_signature`).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.rng import DiversityRng

#: The supported fault kinds, in documentation order.
FAULT_KINDS = (
    "bitflip",
    "alloc-oom",
    "compile-error",
    "worker-crash",
    "worker-hang",
)

#: Regions a bitflip rule may target.  Text is deliberately absent:
#: instructions are simulator objects, not bytes, so flipping text pages
#: would corrupt nothing observable.
BITFLIP_REGIONS = ("data", "heap", "stack")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* requests (label glob) get *what* fault.

    ``rule_id`` is free-form but must be unique within a plan; it is
    carried into the failure detail of every record the rule produces, so
    chaos runs can assert each rule actually fired.
    """

    rule_id: str
    kind: str
    match: str = "*"
    #: bitflip: how many bits to flip.
    count: int = 1
    #: bitflip: which region of the address space to corrupt.
    region: str = "data"
    #: alloc-oom: how many allocations to allow after arming.
    after_allocs: int = 0
    #: worker-hang: how long the worker sleeps (should exceed the engine
    #: timeout, or the "hang" resolves itself).
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.kind == "bitflip" and self.region not in BITFLIP_REGIONS:
            raise ValueError(
                f"bad bitflip region {self.region!r}; choose from {BITFLIP_REGIONS}"
            )

    def matches(self, label: str) -> bool:
        return fnmatch.fnmatchcase(label, self.match)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable, picklable set of :class:`FaultRule`.

    Plans cross the process boundary with every worker dispatch, so they
    must stay plain data.  All lookups key on the request *label* — labels
    are the experiment-facing name of a cell, which is what a chaos matrix
    naturally addresses.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        ids = [rule.rule_id for rule in self.rules]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate rule ids in plan: {ids}")

    # -- lookups -----------------------------------------------------------

    def rules_for(self, label: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.matches(label))

    def rule_of_kind(self, label: str, kind: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.kind == kind and rule.matches(label):
                return rule
        return None

    def injection_signature(self, label: str) -> Optional[Tuple[object, ...]]:
        """What the engine appends to the run key for this label.

        ``None`` means no rule matches — the request's behaviour is
        untouched and the plain run key stands.  Otherwise the signature
        captures everything that can change behaviour: the plan seed and
        the matched rule set.
        """
        matched = self.rules_for(label)
        if not matched:
            return None
        return (self.seed, tuple(rule.rule_id for rule in matched))

    # -- application -------------------------------------------------------

    def apply_process_faults(self, process, request) -> List[str]:
        """Arm per-process faults (bitflips, allocator OOM) on a loaded
        process; returns the rule IDs actually applied."""
        label = request.label
        applied: List[str] = []
        oom = self.rule_of_kind(label, "alloc-oom")
        if oom is not None and process.allocator is not None:
            process.allocator.arm_oom(oom.after_allocs, oom.rule_id)
            applied.append(oom.rule_id)
        for rule in self.rules:
            if rule.kind == "bitflip" and rule.matches(label):
                self._apply_bitflips(process, request, rule)
                applied.append(rule.rule_id)
        return applied

    def _apply_bitflips(self, process, request, rule: FaultRule) -> None:
        layout = process.layout
        base, size = {
            "data": (layout.data_base, layout.data_size),
            "heap": (layout.heap_base, layout.heap_size),
            "stack": (layout.stack_base, layout.stack_size),
        }[rule.region]
        rng = DiversityRng(self.seed).child(f"{rule.rule_id}:{request.load_seed}")
        words = max(1, size // 8)
        for _ in range(max(1, rule.count)):
            word = rng.randint(0, words - 1)
            bit = rng.randint(0, 63)
            process.memory.corrupt_bit(base + word * 8 + bit // 8, bit % 8)
