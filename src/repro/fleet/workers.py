"""Fleet workers: real compiled victims behind the scheduler.

A :class:`FleetWorker` owns one slot in the fleet.  Each *generation* of
the slot is a freshly-diversified build (new :class:`R2CConfig` seed)
compiled through the shared :class:`~repro.fleet.cache.DiskCompileCache`
and measured once for real on the configured backend: the worker loads
the binary, runs the webserver workload to completion, and records the
resulting :class:`ServiceProfile` (cycles, instructions, i-cache
behaviour).  Every request the scheduler routes to that generation is
then *accounted* from the profile against the virtual clock — simulated
cycles are backend-invariant, so the whole fleet simulation is
deterministic across backends while still being anchored to a genuine
guest execution per generation.

Crash/backoff bookkeeping reuses the supervisor's restart schedule
(:func:`repro.reliability.supervisor.backoff_delay`): consecutive crashes
escalate the revival delay, and a flapping worker (too many consecutive
crashes) is quarantined for warm-spare replacement instead of being
revived in place.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import R2CConfig
from repro.errors import InjectedFault
from repro.eval.engine import CompileCache
from repro.machine.cpu import CPU
from repro.machine.costs import get_costs
from repro.machine.loader import load_binary
from repro.reliability.supervisor import backoff_delay
from repro.toolchain.ir import Module

#: Virtual cycles per virtual second.  The webserver workload costs a few
#: thousand cycles per serve, so 1 MHz puts per-request service time in
#: the single-digit-millisecond range — realistic request latencies
#: without inflating run horizons.
CLOCK_HZ = 1_000_000.0

#: A build attempt whose compile was chaos-faulted retries with a seed
#: bumped by this much — a "different build machine" rolling new dice.
RETRY_SEED_STRIDE = 1_000_003

#: Attempts per build before giving up (compile-fault chaos injects at
#: most one fault per build, so two attempts always suffice; the third is
#: headroom).
MAX_BUILD_ATTEMPTS = 3

#: Callable the chaos layer installs to fault background builds.  Called
#: with (worker_id, generation, attempt); raises
#: :class:`~repro.errors.InjectedFault` to fail that attempt.
BuildInjector = Callable[[int, int, int], None]


class WorkerState(str, enum.Enum):
    """Where a worker slot is in its serve/restart/swap lifecycle."""

    #: Ready for dispatch.
    IDLE = "idle"
    #: Serving a request (or hung — the scheduler tells them apart by
    #: whether the completion event is still live).
    BUSY = "busy"
    #: Crashed; waiting out the backoff delay before revival.
    RESTARTING = "restarting"
    #: A re-randomized binary is ready; finishing the current request
    #: before swapping (no new dispatches).
    DRAINING = "draining"
    #: Mid-swap: the old process is torn down and the new generation is
    #: being activated.
    SWAPPING = "swapping"
    #: Flapping (crash storm on this slot); out of rotation until the
    #: warm spare takes over.
    QUARANTINED = "quarantined"


@dataclass
class ServiceProfile:
    """One measured guest execution, reused for every request the same
    worker generation serves."""

    cycles: float
    instructions: int
    icache_hits: int
    icache_misses: int
    max_rss: int
    #: Host seconds (environmental — never feeds the virtual clock).
    compile_seconds: float
    run_seconds: float
    #: The build came out of the compile cache (memory or disk).
    cache_hit: bool

    @property
    def service_seconds(self) -> float:
        """Nominal virtual service time for one request."""
        return self.cycles / CLOCK_HZ


class FleetWorker:
    """One supervised slot in the fleet.

    The worker is deliberately *passive*: it builds and measures
    generations and keeps crash/health counters, while the
    :class:`~repro.fleet.core.Fleet` event loop owns all timing (when to
    revive, when to swap, when to quarantine).  ``epoch`` increments on
    every kill/hang/swap so stale completion events for a torn-down
    process can be recognized and dropped.
    """

    def __init__(
        self,
        worker_id: int,
        module: Module,
        base_config: R2CConfig,
        cache: CompileCache,
        *,
        backend: str = "fast",
        machine: str = "epyc-rome",
        load_seed: int = 0xF1EE7,
        instruction_budget: int = 5_000_000,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.25,
        quarantine_crashes: int = 3,
    ) -> None:
        self.worker_id = worker_id
        self.module = module
        self.base_config = base_config
        self.cache = cache
        self.backend = backend
        self.machine = machine
        self.load_seed = load_seed
        self.instruction_budget = instruction_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.quarantine_crashes = quarantine_crashes

        self.state = WorkerState.IDLE
        self.generation = 0
        #: Bumped on kill/hang/swap; events carry the epoch they were
        #: scheduled under and are ignored if the worker has moved on.
        self.epoch = 0
        self.profile: Optional[ServiceProfile] = None
        #: The next generation's profile, built in the background and
        #: promoted at swap time.
        self.pending_profile: Optional[ServiceProfile] = None
        self.pending_generation: Optional[int] = None
        self.current_request: Optional[int] = None

        self.consecutive_crashes = 0
        self.crashes = 0
        self.timeouts = 0
        self.restarts = 0
        self.swaps = 0
        self.served = 0
        self.compile_faults = 0

    # -- builds --------------------------------------------------------------

    def variant_config(self, generation: int, attempt: int = 0) -> R2CConfig:
        """The diversification config for one (generation, attempt).

        Seeds are spaced so no two (worker, generation) pairs collide,
        keeping every slot's every rotation independently diversified;
        a faulted attempt re-rolls with a far-away seed.
        """
        seed = (
            self.base_config.seed
            + 7_919 * (self.worker_id + 1)
            + 101 * generation
            + RETRY_SEED_STRIDE * attempt
        )
        return self.base_config.replace(seed=seed)

    def build(
        self, generation: int, injector: Optional[BuildInjector] = None
    ) -> ServiceProfile:
        """Compile (through the shared cache) + load + one measured run.

        ``injector`` models compile-infrastructure faults during
        background builds: an attempt it faults is counted and retried
        with a re-rolled seed, so chaos slows rotation down but never
        wedges it.
        """
        last: Optional[InjectedFault] = None
        for attempt in range(MAX_BUILD_ATTEMPTS):
            try:
                if injector is not None:
                    injector(self.worker_id, generation, attempt)
                return self._measure(self.variant_config(generation, attempt))
            except InjectedFault as fault:
                self.compile_faults += 1
                last = fault
        raise RuntimeError(
            f"worker {self.worker_id} generation {generation} build kept "
            f"faulting: {last}"
        )

    def _measure(self, config: R2CConfig) -> ServiceProfile:
        binary, compile_seconds, hit = self.cache.get_or_compile(self.module, config)
        started = time.perf_counter()
        process = load_binary(
            binary, seed=self.load_seed + 31 * self.worker_id, execute_only=True
        )
        cpu = CPU(
            process,
            get_costs(self.machine),
            instruction_budget=self.instruction_budget,
            backend=self.backend,
        )
        result = cpu.run()
        return ServiceProfile(
            cycles=result.cycles,
            instructions=result.instructions,
            icache_hits=result.icache_hits,
            icache_misses=result.icache_misses,
            max_rss=process.max_rss,
            compile_seconds=compile_seconds,
            run_seconds=time.perf_counter() - started,
            cache_hit=hit,
        )

    def promote_pending(self) -> None:
        """Activate the background-built generation (swap completion)."""
        if self.pending_profile is None or self.pending_generation is None:
            raise RuntimeError(f"worker {self.worker_id} has no pending generation")
        self.profile = self.pending_profile
        self.generation = self.pending_generation
        self.pending_profile = None
        self.pending_generation = None
        self.swaps += 1

    # -- health --------------------------------------------------------------

    def record_crash(self, *, timed_out: bool = False) -> float:
        """Account one crash (or detected hang); returns the backoff
        delay the scheduler must wait before reviving this slot."""
        self.crashes += 1
        if timed_out:
            self.timeouts += 1
        self.consecutive_crashes += 1
        return backoff_delay(self.consecutive_crashes, self.backoff_base, self.backoff_cap)

    @property
    def flapping(self) -> bool:
        """Crash-storming on this slot: quarantine + warm-spare it."""
        return self.consecutive_crashes >= self.quarantine_crashes

    @property
    def dispatchable(self) -> bool:
        return self.state is WorkerState.IDLE and self.profile is not None
