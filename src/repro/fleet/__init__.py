"""The victim fleet: a supervised, self-healing serving layer.

R2C's pitch is that diversity pays off because the *service keeps
running* while attacks turn into faults.  This package models the
defender-side machinery that makes that true at fleet scale:

* :mod:`repro.fleet.cache` — a cross-worker on-disk, single-flight
  compile cache, so N workers (and N invocations) never build the same
  (fingerprint, digest) twice;
* :mod:`repro.fleet.workers` — supervised victim workers with real
  compiled binaries, measured service profiles, and crash/backoff state;
* :mod:`repro.fleet.core` — the :class:`~repro.fleet.core.Fleet`
  scheduler: virtual-clock event loop, token-bucket admission, bounded
  queueing with explicit shedding, hedged retry, deadlines, chaos, and
  MARDU-style rolling re-randomization with zero dropped requests;
* :mod:`repro.fleet.loadgen` — the deterministic open-loop load
  generator and the ``repro-bench/v1`` serving-axis report.

Everything observable (latency percentiles, shed/retry/swap counts,
attacker window) is derived from simulated cycles and seeded RNG, so
fleet metrics are bit-identical across backends and runs.
"""

from repro.fleet.cache import DiskCompileCache
from repro.fleet.core import ChaosSpec, Fleet, FleetOutcome, FleetStats, TokenBucket
from repro.fleet.loadgen import FleetReport, open_loop_arrivals, run_fleet
from repro.fleet.workers import CLOCK_HZ, FleetWorker, ServiceProfile, WorkerState

__all__ = [
    "CLOCK_HZ",
    "ChaosSpec",
    "DiskCompileCache",
    "Fleet",
    "FleetOutcome",
    "FleetReport",
    "FleetStats",
    "FleetWorker",
    "ServiceProfile",
    "TokenBucket",
    "WorkerState",
    "open_loop_arrivals",
    "run_fleet",
]
