"""Deterministic open-loop load generation + the serving-axis report.

:func:`open_loop_arrivals` draws Poisson arrivals (exponential
inter-arrival times) from a seeded :class:`~repro.rng.DiversityRng` —
open-loop, so offered load does not slow down when the fleet does (the
coordinated-omission trap closed by construction).  :func:`run_fleet`
assembles the whole stack — webserver module, shared compile cache,
supervised workers, scheduler, chaos — runs it, and distils a
:class:`FleetReport`: p50/p99 latency, sustained RPS, shed/retry/swap
counts, measured re-randomization throughput dip, and the attacker
window (mean seconds one slot keeps one layout).  The report embeds into
the ``repro-bench/v1`` artifact as its ``serving`` section, anchored by
one real measured cell per run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import R2CConfig
from repro.eval.engine import CompileCache
from repro.fleet.cache import DiskCompileCache
from repro.fleet.core import ChaosSpec, Fleet, FleetOutcome
from repro.fleet.workers import CLOCK_HZ, FleetWorker
from repro.obs.bench import BenchCell, BenchReport
from repro.rng import DiversityRng
from repro.workloads.webserver import build_webserver

__all__ = ["FleetReport", "open_loop_arrivals", "run_fleet"]


def open_loop_arrivals(
    *, rps: float, duration_seconds: float, rng: DiversityRng
) -> List[float]:
    """Seeded Poisson arrival times in ``[0, duration_seconds)``."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    times: List[float] = []
    at = 0.0
    while True:
        at += -math.log(1.0 - rng.random()) / rps
        if at >= duration_seconds:
            return times
        times.append(at)


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass
class FleetReport:
    """Everything one fleet run reports — all virtual-clock derived, so
    bit-identical across backends for the same seed."""

    backend: str
    machine: str
    seed: int
    workers: int
    rps: float
    duration_seconds: float
    rerand_interval: Optional[float]
    chaos: bool
    arrivals: int
    outcomes: Dict[str, int]
    p50_ms: float
    p99_ms: float
    sustained_rps: float
    shed: int
    retries: int
    hedges: int
    swaps: int
    restarts: int
    quarantines: int
    spare_activations: int
    kills: int
    hangs: int
    hang_detections: int
    compile_faults: int
    layout_changes: int
    #: Mean virtual seconds one slot keeps one layout — the window an
    #: AOCR/Blind-ROP prober has before its gathered knowledge rots.
    attacker_window_seconds: float
    #: Measured serve rate inside drain+swap windows vs. outside.
    swap_window_rps: float
    steady_rps: float
    throughput_dip_pct: float
    cache: Dict[str, object] = field(default_factory=dict)
    #: The generation-0 profile of worker 0: one genuine guest execution
    #: anchoring the artifact (cycles, instructions, i-cache).
    profile: Dict[str, object] = field(default_factory=dict)

    @property
    def zero_lost(self) -> bool:
        return self.arrivals == sum(self.outcomes.values())

    def serving(self) -> Dict[str, object]:
        """The ``repro-bench/v1`` ``serving`` section."""
        return {
            "seed": self.seed,
            "workers": self.workers,
            "offered_rps": self.rps,
            "duration_seconds": self.duration_seconds,
            "rerand_interval": self.rerand_interval,
            "chaos": self.chaos,
            "arrivals": self.arrivals,
            "outcomes": dict(self.outcomes),
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "sustained_rps": self.sustained_rps,
            "shed": self.shed,
            "retries": self.retries,
            "hedges": self.hedges,
            "swaps": self.swaps,
            "restarts": self.restarts,
            "quarantines": self.quarantines,
            "spare_activations": self.spare_activations,
            "kills": self.kills,
            "hangs": self.hangs,
            "hang_detections": self.hang_detections,
            "compile_faults": self.compile_faults,
            "layout_changes": self.layout_changes,
            "attacker_window_seconds": self.attacker_window_seconds,
            "swap_window_rps": self.swap_window_rps,
            "steady_rps": self.steady_rps,
            "throughput_dip_pct": self.throughput_dip_pct,
            "zero_lost": self.zero_lost,
            "cache": dict(self.cache),
        }

    def to_bench_report(self, *, jobs: int = 1, quick: bool = True) -> BenchReport:
        """Wrap this run as a validating ``repro-bench/v1`` artifact."""
        cell = BenchCell(
            workload="webserver",
            config=f"fleet-full-s{self.seed}",
            outcome="ok",
            cycles=float(self.profile.get("cycles", 0.0)),
            instructions=int(self.profile.get("instructions", 0)),
            icache_hits=int(self.profile.get("icache_hits", 0)),
            icache_misses=int(self.profile.get("icache_misses", 0)),
            max_rss=int(self.profile.get("max_rss", 0)),
            compile_seconds=float(self.profile.get("compile_seconds", 0.0)),
            run_seconds=float(self.profile.get("run_seconds", 0.0)),
        )
        engine = {
            "executed": self.arrivals,
            "compiles": int(self.cache.get("misses", 0)),
            "compile_seconds": float(self.cache.get("compile_seconds", 0.0)),
            "run_seconds": 0.0,
            "failures": 0,
            "by_outcome": dict(self.outcomes),
        }
        return BenchReport(
            backend=self.backend,
            machine=self.machine,
            quick=quick,
            jobs=jobs,
            cells=[cell],
            engine=engine,
            serving=self.serving(),
        )


def run_fleet(
    *,
    workers: int = 4,
    rps: float = 300.0,
    duration_seconds: float = 2.0,
    rerand_interval: Optional[float] = 1.0,
    backend: str = "fast",
    machine: str = "epyc-rome",
    seed: int = 0,
    chaos: bool = False,
    chaos_spec: Optional[ChaosSpec] = None,
    cache_dir: Optional[str] = None,
    deadline_seconds: float = 0.1,
    hedge_after_seconds: Optional[float] = 0.03,
    max_queue: int = 64,
    bucket_rate: Optional[float] = None,
    bucket_burst: float = 32.0,
) -> FleetReport:
    """Build the fleet, drive it with seeded open-loop load, report.

    ``chaos`` (or an explicit ``chaos_spec``) arms seeded worker
    kills/hangs, attack-probe arrivals, and compile faults on background
    builds; the run must still resolve every request (the scheduler
    raises otherwise).
    """
    cache: CompileCache = (
        DiskCompileCache(cache_dir) if cache_dir else CompileCache()
    )
    module = build_webserver(requests=2, footprint_pages=2)
    base_config = R2CConfig.full(seed=1_000 + seed)
    pool = [
        FleetWorker(
            index,
            module,
            base_config,
            cache,
            backend=backend,
            machine=machine,
        )
        for index in range(workers)
    ]
    for worker in pool:
        worker.profile = worker.build(0)

    spec = chaos_spec if chaos_spec is not None else (ChaosSpec() if chaos else None)
    fleet = Fleet(
        pool,
        seed=seed,
        deadline_seconds=deadline_seconds,
        hedge_after_seconds=hedge_after_seconds,
        max_queue=max_queue,
        bucket_rate=bucket_rate if bucket_rate is not None else 1.2 * rps,
        bucket_burst=bucket_burst,
        rerand_interval=rerand_interval,
        chaos=spec,
    )
    arrivals = open_loop_arrivals(
        rps=rps,
        duration_seconds=duration_seconds,
        rng=DiversityRng(seed).child("loadgen"),
    )
    for at in arrivals:
        fleet.submit(at)
    fleet.schedule_rerandomization(duration_seconds)
    fleet.schedule_chaos(duration_seconds)
    stats = fleet.run()

    served_latency = [
        request.latency
        for request in fleet.requests
        if request.outcome in (FleetOutcome.OK, FleetOutcome.DEGRADED)
    ]
    window_seconds = sum(end - begin for begin, end in fleet.swap_windows)
    in_window = sum(
        1
        for request in fleet.requests
        if request.outcome in (FleetOutcome.OK, FleetOutcome.DEGRADED)
        and any(begin <= request.finish <= end for begin, end in fleet.swap_windows)
    )
    steady_seconds = max(duration_seconds - window_seconds, 1e-9)
    steady_rps = (stats.served - in_window) / steady_seconds
    swap_window_rps = in_window / window_seconds if window_seconds > 0 else 0.0
    dip_pct = (
        max(0.0, 100.0 * (1.0 - swap_window_rps / steady_rps))
        if window_seconds > 0 and steady_rps > 0
        else 0.0
    )
    attacker_window = (
        duration_seconds * workers / len(fleet.layout_changes)
        if fleet.layout_changes
        else duration_seconds
    )

    cache_stats: Dict[str, object] = {
        "hits": cache.hits,
        "misses": cache.misses,
        "compile_seconds": cache.compile_seconds,
    }
    if isinstance(cache, DiskCompileCache):
        cache_stats.update(
            disk_hits=cache.disk_hits,
            disk_writes=cache.disk_writes,
            singleflight_waits=cache.singleflight_waits,
            corrupt_entries=cache.corrupt_entries,
        )
    anchor = pool[0].profile
    assert anchor is not None
    return FleetReport(
        backend=backend,
        machine=machine,
        seed=seed,
        workers=workers,
        rps=rps,
        duration_seconds=duration_seconds,
        rerand_interval=rerand_interval,
        chaos=spec is not None,
        arrivals=stats.arrivals,
        outcomes=dict(stats.outcomes),
        p50_ms=1_000.0 * _percentile(served_latency, 0.50),
        p99_ms=1_000.0 * _percentile(served_latency, 0.99),
        sustained_rps=stats.served / duration_seconds,
        shed=stats.shed,
        retries=stats.retries,
        hedges=stats.hedges,
        swaps=stats.swaps,
        restarts=stats.restarts,
        quarantines=stats.quarantines,
        spare_activations=stats.spare_activations,
        kills=stats.kills,
        hangs=stats.hangs,
        hang_detections=stats.hang_detections,
        compile_faults=stats.compile_faults,
        layout_changes=len(fleet.layout_changes),
        attacker_window_seconds=attacker_window,
        swap_window_rps=swap_window_rps,
        steady_rps=steady_rps,
        throughput_dip_pct=dip_pct,
        cache=cache_stats,
        profile={
            "cycles": anchor.cycles,
            "instructions": anchor.instructions,
            "icache_hits": anchor.icache_hits,
            "icache_misses": anchor.icache_misses,
            "max_rss": anchor.max_rss,
            "compile_seconds": anchor.compile_seconds,
            "run_seconds": anchor.run_seconds,
            "service_ms": 1_000.0 * anchor.cycles / CLOCK_HZ,
        },
    )
