"""The fleet scheduler: virtual-clock serving with robustness invariants.

:class:`Fleet` runs a discrete-event simulation over a virtual clock.
Requests are submitted with arrival times (:meth:`Fleet.submit`), and
:meth:`Fleet.run` drains the event heap: admission, dispatch, hedging,
deadlines, crashes, hangs, warm spares, and MARDU-style rolling
re-randomization are all events keyed ``(time, seq)`` — the sequence
number makes simultaneous events deterministic, and all randomness comes
from seeded :class:`~repro.rng.DiversityRng` children, so two runs with
the same seed produce bit-identical metrics on every backend.

The robustness contract, by construction:

* **no silent drops** — every submitted request resolves to exactly one
  typed :class:`FleetOutcome`; shedding is the explicit ``REJECTED``
  outcome, never a vanished request (:meth:`Fleet.run` raises if any
  request is left unresolved);
* **bounded admission** — a token bucket plus a bounded queue shed load
  *at arrival*, so overload degrades service latency for nobody who was
  admitted;
* **deadlines + hedged retry** — an admitted request that is still
  pending at ``hedge_after_seconds`` is hedged to an idle sibling (first
  completion wins); one still pending at ``deadline_seconds`` resolves
  ``TIMED_OUT``;
* **crash containment** — a guest fault resolves that request ``FAULT``
  (the R2C story: the attack became a fault) and takes the worker
  through the supervisor's capped-backoff restart schedule; a killed or
  hung worker's in-flight request is re-enqueued at the queue head and
  completes ``DEGRADED``;
* **quarantine + warm spares** — a flapping slot leaves rotation and is
  replaced from the shared compile cache (a disk hit makes the spare
  warm — activation costs a swap, not a compile);
* **zero-downtime re-randomization** — the next generation compiles in
  the background, the worker drains between requests, and the swap
  window is measured, never guessed.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import InjectedFault
from repro.fleet.workers import FleetWorker, WorkerState
from repro.obs.tracing import span
from repro.rng import DiversityRng

__all__ = ["ChaosSpec", "Fleet", "FleetOutcome", "FleetStats", "TokenBucket"]


class FleetOutcome(str, enum.Enum):
    """The five typed resolutions every request ends in."""

    #: Served first try, within deadline.
    OK = "ok"
    #: Served, but only after a hedge or a crash-retry.
    DEGRADED = "degraded"
    #: The request was an attack probe; diversity turned it into a guest
    #: fault (and the worker was restarted).
    FAULT = "fault"
    #: Shed at admission (token bucket or queue bound) — explicit, typed,
    #: never silent.
    REJECTED = "rejected"
    #: Admitted but still unresolved at the deadline.
    TIMED_OUT = "timed-out"


@dataclass
class FleetRequest:
    """One request's lifecycle bookkeeping."""

    request_id: int
    arrival: float
    outcome: Optional[FleetOutcome] = None
    start: Optional[float] = None
    finish: Optional[float] = None
    retries: int = 0
    hedged: bool = False
    hedge_scheduled: bool = False
    #: Worker slots this request was dispatched to (original + hedge).
    workers: List[int] = field(default_factory=list)
    #: Live dispatches (original and/or hedge still running).
    inflight: int = 0
    #: Chaos marked this arrival as an attack probe.
    is_attack: bool = False

    @property
    def done(self) -> bool:
        return self.outcome is not None

    @property
    def latency(self) -> float:
        if self.finish is None:
            raise RuntimeError(f"request {self.request_id} never resolved")
        return self.finish - self.arrival


class TokenBucket:
    """Virtual-clock token bucket: ``rate`` tokens/sec, ``burst`` deep."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._stamp = 0.0

    def admit(self, now: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class ChaosSpec:
    """Fleet-scoped chaos: seeded, fractional, and always survivable.

    ``kill_fraction`` / ``hang_fraction`` of workers are killed / hung at
    seeded times (``kill_waves`` / ``hang_waves`` rounds spread across
    the run); ``attack_fraction`` of arrivals are attack probes that
    fault their worker; every ``compile_fault_every``-th background
    build's first attempt raises an
    :class:`~repro.errors.InjectedFault` compile error.
    """

    kill_fraction: float = 0.25
    hang_fraction: float = 0.25
    attack_fraction: float = 0.02
    compile_fault_every: int = 2
    kill_waves: int = 2
    hang_waves: int = 1


@dataclass
class FleetStats:
    """Counters the serving report aggregates."""

    arrivals: int = 0
    outcomes: Dict[str, int] = field(
        default_factory=lambda: {outcome.value: 0 for outcome in FleetOutcome}
    )
    shed: int = 0
    retries: int = 0
    hedges: int = 0
    restarts: int = 0
    swaps: int = 0
    rerand_skipped: int = 0
    quarantines: int = 0
    spare_activations: int = 0
    kills: int = 0
    hangs: int = 0
    hang_detections: int = 0
    compile_faults: int = 0

    @property
    def resolved(self) -> int:
        return sum(self.outcomes.values())

    @property
    def served(self) -> int:
        return self.outcomes["ok"] + self.outcomes["degraded"]


class Fleet:
    """The ``submit()`` front-end over a pool of supervised workers."""

    def __init__(
        self,
        workers: List[FleetWorker],
        *,
        seed: int = 0,
        deadline_seconds: float = 0.1,
        hedge_after_seconds: Optional[float] = 0.03,
        max_queue: int = 64,
        bucket_rate: float = 500.0,
        bucket_burst: float = 32.0,
        rerand_interval: Optional[float] = None,
        compile_seconds: float = 0.05,
        swap_seconds: float = 0.002,
        hang_detect_seconds: float = 0.05,
        chaos: Optional[ChaosSpec] = None,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.workers = workers
        self.deadline_seconds = deadline_seconds
        self.hedge_after_seconds = hedge_after_seconds
        self.max_queue = max_queue
        self.bucket = TokenBucket(bucket_rate, bucket_burst)
        self.rerand_interval = rerand_interval
        self.compile_seconds = compile_seconds
        self.swap_seconds = swap_seconds
        self.hang_detect_seconds = hang_detect_seconds
        self.chaos = chaos

        rng = DiversityRng(seed).child("fleet")
        self._jitter = rng.child("service")
        self._attack_rng = rng.child("attack")
        self._chaos_rng = rng.child("chaos")

        self.stats = FleetStats()
        self.requests: List[FleetRequest] = []
        self._queue: Deque[int] = deque()
        self._events: List[Tuple[float, int, str, tuple]] = []
        self._seq = 0
        self._rr = 0
        self._builds = 0
        #: (begin, end) of every completed swap's drain+swap window.
        self.swap_windows: List[Tuple[float, float]] = []
        self._swap_begin: Dict[int, float] = {}
        #: Virtual times a slot's layout changed (swap or spare).
        self.layout_changes: List[float] = []
        self.now = 0.0

        self._handlers = {
            "arrival": self._handle_arrival,
            "deadline": self._handle_deadline,
            "complete": self._handle_complete,
            "hedge": self._handle_hedge,
            "worker-up": self._handle_worker_up,
            "rerand": self._handle_rerand,
            "swap-ready": self._handle_swap_ready,
            "swap-done": self._handle_swap_done,
            "spare": self._handle_spare,
            "kill": self._handle_kill,
            "hang": self._handle_hang,
            "hang-detect": self._handle_hang_detect,
        }

    # -- scheduling primitives ----------------------------------------------

    def _push(self, at: float, kind: str, payload: tuple = ()) -> None:
        heapq.heappush(self._events, (at, self._seq, kind, payload))
        self._seq += 1

    def submit(self, arrival: float) -> int:
        """Enqueue one request for arrival at virtual time ``arrival``."""
        request = FleetRequest(request_id=len(self.requests), arrival=arrival)
        if self.chaos is not None and self.chaos.attack_fraction > 0:
            request.is_attack = self._attack_rng.random() < self.chaos.attack_fraction
        self.requests.append(request)
        self._push(arrival, "arrival", (request.request_id,))
        return request.request_id

    def schedule_rerandomization(self, duration: float) -> None:
        """MARDU-style rolling waves: each worker re-randomizes once per
        ``rerand_interval``, slots staggered across the interval so only
        one worker is ever draining at a time."""
        if not self.rerand_interval:
            return
        count = len(self.workers)
        stagger = self.rerand_interval / count
        wave = 0
        while True:
            base = wave * self.rerand_interval
            if base + stagger >= duration:
                break
            for index in range(count):
                at = base + (index + 1) * stagger
                if at < duration:
                    self._push(at, "rerand", (index,))
            wave += 1

    def schedule_chaos(self, duration: float) -> None:
        """Seeded kill/hang waves spread across the middle of the run."""
        if self.chaos is None:
            return
        count = len(self.workers)
        for kind, fraction, waves, rng in (
            ("kill", self.chaos.kill_fraction, self.chaos.kill_waves,
             self._chaos_rng.child("kill")),
            ("hang", self.chaos.hang_fraction, self.chaos.hang_waves,
             self._chaos_rng.child("hang")),
        ):
            if fraction <= 0:
                continue
            victims_per_wave = max(1, round(fraction * count))
            for _ in range(waves):
                at = duration * (0.15 + 0.7 * rng.random())
                victims = rng.sample(range(count), min(victims_per_wave, count))
                self._push(at, kind, (tuple(sorted(victims)),))

    def _build_injector(self, worker_id: int, generation: int, attempt: int) -> None:
        """Compile-fault chaos for background builds: first attempt of
        every Nth build fails; the retry (re-rolled seed) goes through."""
        if attempt > 0:
            return
        self._builds += 1
        every = self.chaos.compile_fault_every if self.chaos else 0
        if every > 0 and self._builds % every == 0:
            self.stats.compile_faults += 1
            raise InjectedFault(
                "compile-error",
                "fleet-chaos",
                f"injected compile fault (build {self._builds}, "
                f"worker {worker_id}, generation {generation})",
            )

    # -- the event loop ------------------------------------------------------

    def run(self) -> FleetStats:
        """Drain every event; raises if any request was lost (the zero
        silent drops contract)."""
        with span("fleet.run", category="fleet", workers=len(self.workers)):
            while self._events:
                at, _, kind, payload = heapq.heappop(self._events)
                self.now = at
                self._handlers[kind](at, *payload)
        lost = [request.request_id for request in self.requests if not request.done]
        if lost:
            raise RuntimeError(
                f"fleet lost {len(lost)} requests (ids {lost[:8]}...): "
                "every request must resolve to a typed outcome"
            )
        return self.stats

    def _resolve(self, now: float, request: FleetRequest, outcome: FleetOutcome) -> None:
        request.outcome = outcome
        request.finish = now
        self.stats.outcomes[outcome.value] += 1

    # -- admission + dispatch ------------------------------------------------

    def _handle_arrival(self, now: float, rid: int) -> None:
        self.stats.arrivals += 1
        request = self.requests[rid]
        if not self.bucket.admit(now) or len(self._queue) >= self.max_queue:
            self.stats.shed += 1
            self._resolve(now, request, FleetOutcome.REJECTED)
            return
        self._push(now + self.deadline_seconds, "deadline", (rid,))
        self._queue.append(rid)
        self._dispatch(now)

    def _next_worker(self, exclude: Tuple[int, ...] = ()) -> Optional[FleetWorker]:
        count = len(self.workers)
        for offset in range(count):
            worker = self.workers[(self._rr + offset) % count]
            if worker.dispatchable and worker.worker_id not in exclude:
                self._rr = (worker.worker_id + 1) % count
                return worker
        return None

    def _dispatch(self, now: float) -> None:
        while self._queue:
            rid = self._queue[0]
            request = self.requests[rid]
            if request.done:
                self._queue.popleft()
                continue
            worker = self._next_worker()
            if worker is None:
                return
            self._queue.popleft()
            self._assign(now, request, worker)

    def _assign(self, now: float, request: FleetRequest, worker: FleetWorker) -> None:
        worker.state = WorkerState.BUSY
        worker.current_request = request.request_id
        request.workers.append(worker.worker_id)
        request.inflight += 1
        if request.start is None:
            request.start = now
        assert worker.profile is not None
        service = worker.profile.service_seconds * (0.85 + 0.3 * self._jitter.random())
        if request.is_attack:
            # The probe faults partway through its handler.
            self._push(
                now + 0.5 * service,
                "complete",
                (worker.worker_id, worker.epoch, request.request_id, True),
            )
        else:
            self._push(
                now + service,
                "complete",
                (worker.worker_id, worker.epoch, request.request_id, False),
            )
        if self.hedge_after_seconds is not None and not request.hedge_scheduled:
            request.hedge_scheduled = True
            self._push(now + self.hedge_after_seconds, "hedge", (request.request_id,))

    # -- request lifecycle ---------------------------------------------------

    def _handle_complete(self, now: float, wid: int, epoch: int, rid: int, fault: bool) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch:
            return  # stale: this process was torn down (kill/hang/swap)
        request = self.requests[rid]
        request.inflight -= 1
        worker.current_request = None
        if fault:
            # Diversity turned the attack into a fault; the request is
            # answered with an error and the worker restarts.
            if not request.done:
                self._resolve(now, request, FleetOutcome.FAULT)
            self._crash_worker(now, worker, reenqueue=False)
            return
        worker.served += 1
        worker.consecutive_crashes = 0
        if not request.done:
            outcome = (
                FleetOutcome.DEGRADED
                if (request.retries > 0 or request.hedged)
                else FleetOutcome.OK
            )
            self._resolve(now, request, outcome)
        if worker.state is WorkerState.DRAINING:
            self._begin_swap(now, worker)
        else:
            worker.state = WorkerState.IDLE
            self._dispatch(now)

    def _handle_hedge(self, now: float, rid: int) -> None:
        request = self.requests[rid]
        if request.done or request.hedged or request.inflight == 0:
            return
        sibling = self._next_worker(exclude=tuple(request.workers))
        if sibling is None:
            return  # best-effort: no idle sibling, the deadline still guards
        request.hedged = True
        self.stats.hedges += 1
        self._assign(now, request, sibling)

    def _handle_deadline(self, now: float, rid: int) -> None:
        request = self.requests[rid]
        if request.done:
            return
        self._resolve(now, request, FleetOutcome.TIMED_OUT)

    # -- worker lifecycle ----------------------------------------------------

    def _crash_worker(
        self,
        now: float,
        worker: FleetWorker,
        *,
        timed_out: bool = False,
        reenqueue: bool = True,
    ) -> None:
        rid = worker.current_request
        worker.current_request = None
        worker.epoch += 1
        delay = worker.record_crash(timed_out=timed_out)
        if rid is not None and reenqueue:
            request = self.requests[rid]
            request.inflight -= 1
            if not request.done:
                # Head of queue: it has been waiting longest.
                request.retries += 1
                self.stats.retries += 1
                self._queue.appendleft(rid)
        if worker.flapping:
            worker.state = WorkerState.QUARANTINED
            self.stats.quarantines += 1
            self._launch_spare(now, worker)
        else:
            worker.state = WorkerState.RESTARTING
            self._push(now + delay, "worker-up", (worker.worker_id, worker.epoch))
        self._dispatch(now)

    def _handle_worker_up(self, now: float, wid: int, epoch: int) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch or worker.state is not WorkerState.RESTARTING:
            return
        self.stats.restarts += 1
        if worker.pending_profile is not None:
            # A re-randomized binary finished building while the slot was
            # down; come back up already rotated.
            worker.promote_pending()
            self.stats.swaps += 1
            self.layout_changes.append(now)
        worker.state = WorkerState.IDLE
        self._dispatch(now)

    def _handle_kill(self, now: float, victims: Tuple[int, ...]) -> None:
        for wid in victims:
            worker = self.workers[wid]
            if worker.state in (
                WorkerState.RESTARTING,
                WorkerState.QUARANTINED,
                WorkerState.SWAPPING,
            ):
                continue  # already down or mid-teardown
            self.stats.kills += 1
            self._crash_worker(now, worker)

    def _handle_hang(self, now: float, victims: Tuple[int, ...]) -> None:
        for wid in victims:
            worker = self.workers[wid]
            if worker.state not in (
                WorkerState.IDLE,
                WorkerState.BUSY,
                WorkerState.DRAINING,
            ):
                continue
            self.stats.hangs += 1
            # The process stops responding: invalidate its completion and
            # swap events, block dispatch, and arm the hang watchdog (the
            # fleet's per-request deadline analogue of the supervisor's
            # probe deadline).
            worker.epoch += 1
            worker.state = WorkerState.BUSY
            self._push(
                now + self.hang_detect_seconds, "hang-detect", (wid, worker.epoch)
            )

    def _handle_hang_detect(self, now: float, wid: int, epoch: int) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch:
            return
        self.stats.hang_detections += 1
        self._crash_worker(now, worker, timed_out=True)

    # -- rolling re-randomization -------------------------------------------

    def _handle_rerand(self, now: float, wid: int) -> None:
        worker = self.workers[wid]
        if (
            worker.state not in (WorkerState.IDLE, WorkerState.BUSY)
            or worker.pending_generation is not None
        ):
            self.stats.rerand_skipped += 1
            return
        generation = worker.generation + 1
        faults_before = worker.compile_faults
        with span("fleet.build", category="fleet", worker=wid, generation=generation):
            try:
                worker.pending_profile = worker.build(generation, self._build_injector)
            except RuntimeError:
                self.stats.rerand_skipped += 1
                return
        worker.pending_generation = generation
        # Chaos-faulted attempts cost an extra (virtual) compile each.
        attempts = 1 + (worker.compile_faults - faults_before)
        self._push(now + self.compile_seconds * attempts, "swap-ready", (wid, worker.epoch))

    def _handle_swap_ready(self, now: float, wid: int, epoch: int) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch:
            return  # crashed/hung meanwhile; worker-up promotes the build
        if worker.state is WorkerState.IDLE:
            self._swap_begin[wid] = now
            self._begin_swap(now, worker)
        elif worker.state is WorkerState.BUSY:
            self._swap_begin[wid] = now
            worker.state = WorkerState.DRAINING  # finish the current request first

    def _begin_swap(self, now: float, worker: FleetWorker) -> None:
        worker.state = WorkerState.SWAPPING
        worker.epoch += 1  # the old process is gone
        self._push(now + self.swap_seconds, "swap-done", (worker.worker_id, worker.epoch))

    def _handle_swap_done(self, now: float, wid: int, epoch: int) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch or worker.state is not WorkerState.SWAPPING:
            return
        worker.promote_pending()
        self.stats.swaps += 1
        self.layout_changes.append(now)
        begin = self._swap_begin.pop(wid, now)
        self.swap_windows.append((begin, now))
        worker.state = WorkerState.IDLE
        self._dispatch(now)

    # -- quarantine + warm spares -------------------------------------------

    def _launch_spare(self, now: float, worker: FleetWorker) -> None:
        if worker.pending_profile is None:
            generation = worker.generation + 1
            faults_before = worker.compile_faults
            with span(
                "fleet.spare", category="fleet", worker=worker.worker_id,
                generation=generation,
            ):
                try:
                    worker.pending_profile = worker.build(generation, self._build_injector)
                except RuntimeError:
                    # Builds kept faulting: fall back to the restart path
                    # so the slot is never stranded.
                    worker.state = WorkerState.RESTARTING
                    self._push(
                        now + self.compile_seconds, "worker-up",
                        (worker.worker_id, worker.epoch),
                    )
                    return
            worker.pending_generation = generation
            attempts = 1 + (worker.compile_faults - faults_before)
            if worker.pending_profile.cache_hit:
                # Warm spare: the shared cache already had this build.
                delay = self.swap_seconds
            else:
                delay = self.compile_seconds * attempts
        else:
            delay = self.swap_seconds  # a rotation build was already ready
        self._push(now + delay, "spare", (worker.worker_id, worker.epoch))

    def _handle_spare(self, now: float, wid: int, epoch: int) -> None:
        worker = self.workers[wid]
        if worker.epoch != epoch or worker.state is not WorkerState.QUARANTINED:
            return
        worker.promote_pending()
        worker.consecutive_crashes = 0
        self.stats.spare_activations += 1
        self.layout_changes.append(now)
        worker.state = WorkerState.IDLE
        self._dispatch(now)
