"""Cross-worker on-disk compile cache with single-flight compilation.

The fleet rotates variants continuously: every re-randomization wave and
every warm-spare activation wants a freshly-diversified binary, and N
workers (plus the engine's pool workers, plus repeated CLI invocations)
keep asking for the same (module fingerprint, config digest) pairs.  The
in-memory :class:`~repro.eval.engine.CompileCache` deduplicates inside one
process; this subclass extends it with a content-addressed on-disk store
so the *session boundary* stops mattering:

* **content-addressed** — entries are keyed by the same
  ``(Module.fingerprint(), R2CConfig.digest())`` pair the in-memory cache
  uses; the pair fully determines the binary, so entries never go stale
  and never need invalidation;
* **atomic** — binaries are pickled to a temp file in the cache directory
  and ``os.replace``d into place, so readers only ever see complete
  entries;
* **single-flight** — the first caller to miss takes a lock file
  (``O_CREAT | O_EXCL``, atomic on every platform we care about) and
  compiles; concurrent callers — threads or *other processes* — wait for
  the result file to appear instead of compiling the same binary again.
  Waiting is bounded: if the flight holder dies (stale lock) or the wait
  deadline passes, the waiter compiles locally rather than deadlocking —
  single-flight is an optimization, never a liveness hazard;
* **self-healing** — a corrupt or truncated entry (killed writer on an
  old kernel, disk full) is counted, deleted, and recompiled.

The engine accepts ``cache_dir`` and threads it into its pool workers, so
``--jobs N`` fan-outs share one store; the fleet hands the same cache to
every worker build, warm-spare build, and re-randomization compile.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Optional, Tuple

from repro.core.config import R2CConfig
from repro.eval.engine import CompileCache, CompileKey
from repro.toolchain.binary import Binary
from repro.toolchain.ir import Module

#: Entry-format version, baked into filenames so a future change to the
#: pickled layout coexists with old entries instead of tripping over them.
ENTRY_VERSION = 1


class DiskCompileCache(CompileCache):
    """A :class:`CompileCache` backed by a shared on-disk store."""

    def __init__(
        self,
        cache_dir: str,
        *,
        wait_seconds: float = 60.0,
        poll_seconds: float = 0.02,
        lock_stale_seconds: float = 300.0,
    ) -> None:
        super().__init__()
        self.cache_dir = cache_dir
        self.wait_seconds = wait_seconds
        self.poll_seconds = poll_seconds
        self.lock_stale_seconds = lock_stale_seconds
        #: Entries served by unpickling a file another flight wrote.
        self.disk_hits = 0
        #: Entries this cache compiled and persisted.
        self.disk_writes = 0
        #: Times a concurrent flight was detected and waited for.
        self.singleflight_waits = 0
        #: Corrupt/truncated entries deleted and recompiled.
        self.corrupt_entries = 0
        os.makedirs(cache_dir, exist_ok=True)

    # -- paths --------------------------------------------------------------

    def entry_path(self, key: CompileKey) -> str:
        fingerprint, digest = key
        return os.path.join(
            self.cache_dir, f"{fingerprint}-{digest}.v{ENTRY_VERSION}.bin"
        )

    def _lock_path(self, key: CompileKey) -> str:
        return self.entry_path(key) + ".lock"

    # -- disk I/O -----------------------------------------------------------

    def _load_entry(self, path: str) -> Optional[Binary]:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated or corrupt entry: delete it so the store heals.
            self.corrupt_entries += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _store_entry(self, path: str, binary: Binary) -> None:
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(binary, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.disk_writes += 1
        except OSError:
            # Disk trouble degrades to in-memory caching, never to failure.
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _try_lock(self, lock_path: str) -> bool:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # A stale lock (flight holder died) must not wedge the key
            # forever: break it once it is visibly old.
            try:
                if time.time() - os.path.getmtime(lock_path) > self.lock_stale_seconds:
                    os.unlink(lock_path)
            except OSError:
                pass
            return False
        except OSError:
            # Unwritable cache dir: behave as if we hold the flight and
            # just compile (the store silently degrades to memory-only).
            return True
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
        return True

    def _unlock(self, lock_path: str) -> None:
        try:
            os.unlink(lock_path)
        except OSError:
            pass

    def _wait_for_flight(self, key: CompileKey) -> Optional[Binary]:
        """Wait (bounded) for a concurrent flight's result to land."""
        path = self.entry_path(key)
        lock_path = self._lock_path(key)
        self.singleflight_waits += 1
        deadline = time.monotonic() + self.wait_seconds
        while time.monotonic() < deadline:
            binary = self._load_entry(path)
            if binary is not None:
                return binary
            if not os.path.exists(lock_path):
                # Flight holder finished (or died) without a result.
                return self._load_entry(path)
            time.sleep(self.poll_seconds)
        return None

    # -- the cache protocol -------------------------------------------------

    def get_or_compile(self, module: Module, config: R2CConfig) -> Tuple[Binary, float, bool]:
        """Return (binary, compile_seconds, was_cache_hit).

        Hit order: in-memory, on-disk, wait-for-flight, compile.  Every
        path that avoids a compile reports ``was_cache_hit=True`` with the
        (tiny) unpickle time as its cost.
        """
        key = (module.fingerprint(), config.digest())
        binary = self._entries.get(key)
        if binary is not None:
            self.hits += 1
            return binary, 0.0, True

        started = time.perf_counter()
        binary = self._load_entry(self.entry_path(key))
        if binary is not None:
            self.disk_hits += 1
            self.hits += 1
            self._entries[key] = binary
            return binary, time.perf_counter() - started, True

        lock_path = self._lock_path(key)
        acquired = self._try_lock(lock_path)
        if not acquired:
            binary = self._wait_for_flight(key)
            if binary is not None:
                self.disk_hits += 1
                self.hits += 1
                self._entries[key] = binary
                return binary, time.perf_counter() - started, True
            # The flight never landed: compile locally below (and take the
            # lock best-effort so the next waiter has a live holder).
            acquired = self._try_lock(lock_path)
        try:
            binary, elapsed, hit = super().get_or_compile(module, config)
            if not hit:
                self._store_entry(self.entry_path(key), binary)
        finally:
            if acquired:
                self._unlock(lock_path)
        return binary, elapsed, hit
